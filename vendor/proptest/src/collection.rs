//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng as _;
use std::ops::{Range, RangeInclusive};

/// A length range for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange { lo: r.start, hi: r.end }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange { lo: *r.start(), hi: *r.end() + 1 }
    }
}

impl From<usize> for SizeRange {
    fn from(len: usize) -> Self {
        SizeRange { lo: len, hi: len + 1 }
    }
}

/// A strategy producing `Vec`s whose elements come from `element` and
/// whose length is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
