//! The case-running machinery behind the [`proptest!`](crate::proptest)
//! macro.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::fmt;

/// Per-test configuration (`ProptestConfig` in the prelude).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of cases each test runs.
    pub cases: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

impl Config {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

/// The generator handed to strategies: deterministic per test path, so
/// failures reproduce run-to-run.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Seeds the generator from the test's path (FNV-1a).
    pub fn for_test(test_path: &str) -> Self {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for b in test_path.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { inner: StdRng::seed_from_u64(hash) }
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the message explains what.
    Fail(String),
    /// A `prop_assume!` rejected the inputs; the case is discarded.
    Reject,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// Whether this is an assumption rejection rather than a failure.
    pub fn is_reject(&self) -> bool {
        matches!(self, TestCaseError::Reject)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(msg) => f.write_str(msg),
            TestCaseError::Reject => f.write_str("inputs rejected by prop_assume!"),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn generated_values_respect_ranges(x in 0.0..1.0f64, n in 1usize..10) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_lengths_respect_size_range(
            mut v in crate::collection::vec(0u32..100, 2..6),
        ) {
            prop_assert!((2..6).contains(&v.len()));
            v.sort_unstable();
            prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
        }

        #[test]
        fn tuples_and_assume_work((a, b) in (0i64..100, 0i64..100)) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }
    }

    #[test]
    fn rng_is_deterministic_per_path() {
        use rand::Rng as _;
        let mut a = super::TestRng::for_test("x::y");
        let mut b = super::TestRng::for_test("x::y");
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }
}
