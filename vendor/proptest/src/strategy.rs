//! Value-generation strategies.

use crate::test_runner::TestRng;
use rand::distributions::uniform::SampleRange;
use rand::Rng as _;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of a type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, map: f }
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.generate(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                SampleRange::sample_single(self.clone(), rng)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                SampleRange::sample_single(self.clone(), rng)
            }
        }
    )+};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident . $idx:tt),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// A strategy for `bool` with the given probability of `true`.
pub fn weighted_bool(probability: f64) -> WeightedBool {
    WeightedBool { probability }
}

/// See [`weighted_bool`].
#[derive(Debug, Clone, Copy)]
pub struct WeightedBool {
    probability: f64,
}

impl Strategy for WeightedBool {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.gen_bool(self.probability)
    }
}
