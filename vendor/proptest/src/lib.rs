//! Offline stand-in for `proptest`.
//!
//! Implements the surface this workspace uses — the [`proptest!`]
//! macro, range and tuple strategies, [`collection::vec`],
//! `prop_map`, and the `prop_assert*` family — as plain deterministic
//! randomized testing (no shrinking). Each test gets a generator
//! seeded from its own path, so failures reproduce run-to-run; the
//! failing case's inputs are printed in the panic message instead of
//! being shrunk.

#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares deterministic randomized tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn prop_holds(x in 0.0..1.0f64, n in 1usize..10) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$attr:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                let mut __rng = $crate::test_runner::TestRng::for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__config.cases {
                    let mut __inputs = ::std::string::String::new();
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $(
                                let __value =
                                    $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                                {
                                    use ::std::fmt::Write as _;
                                    let _ = ::std::write!(
                                        __inputs,
                                        "{} = {:?}; ",
                                        stringify!($arg),
                                        &__value
                                    );
                                }
                                let $arg = __value;
                            )+
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match __result {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err(__e) if __e.is_reject() => {}
                        ::std::result::Result::Err(__e) => panic!(
                            "proptest case {} failed: {}\n  inputs: {}",
                            __case, __e, __inputs
                        ),
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config (<$crate::test_runner::Config as ::std::default::Default>::default())
            $($rest)*
        );
    };
}

/// Fails the current case (without panicking the whole test) unless the
/// condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// [`prop_assert!`] for equality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            __l,
            __r
        );
    }};
}

/// [`prop_assert!`] for inequality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
}

/// Discards the current case (it counts as neither pass nor fail)
/// unless the assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
