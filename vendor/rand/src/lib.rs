//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of the `rand` 0.8 API it actually uses: the
//! [`Rng`] / [`RngCore`] / [`SeedableRng`] traits, [`rngs::StdRng`],
//! `gen`, `gen_bool`, and `gen_range` over primitive ranges, plus the
//! [`distributions`] plumbing those methods sit on.
//!
//! `StdRng` is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream's ChaCha12, but the workspace's determinism
//! contract is seed-stability, not a specific stream, and every
//! calibration target is re-checked against this generator.

#![warn(missing_docs)]

pub mod distributions;
pub mod rngs;

pub use distributions::{Distribution, Standard};

/// The core of a random number generator: a source of uniform bits.
pub trait RngCore {
    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of `T` (for floats: uniform in `[0, 1)`).
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// A uniformly random value in `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, B>(&mut self, range: B) -> T
    where
        B: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanded via SplitMix64 —
    /// the same convenience entry point upstream offers.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seed_determinism() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn float_mean_is_centred() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let v = rng.gen_range(0..10u32);
            assert!(v < 10);
            let w = rng.gen_range(3..=5usize);
            assert!((3..=5).contains(&w));
            seen_lo |= v == 0;
            seen_hi |= v == 9;
        }
        assert!(seen_lo && seen_hi, "range endpoints never hit");
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let v = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "frac {frac}");
    }
}
