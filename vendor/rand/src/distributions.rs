//! The distribution plumbing behind [`Rng::gen`](crate::Rng::gen) and
//! [`Rng::gen_range`](crate::Rng::gen_range).

use crate::RngCore;

/// A distribution over values of `T`.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" uniform distribution of each primitive type: full-range
/// for integers, `[0, 1)` for floats.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<u64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<usize> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Distribution<i64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

impl Distribution<i32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i32 {
        rng.next_u32() as i32
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Range sampling (`gen_range`) support.
pub mod uniform {
    use crate::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// A range that can produce a uniform sample of `T`.
    pub trait SampleRange<T> {
        /// Draws one value from the range.
        ///
        /// # Panics
        ///
        /// Panics if the range is empty.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    /// Maps 64 uniform bits onto `[0, span)` by widening multiply —
    /// bias below 2^-64 for every span this workspace uses.
    #[inline]
    fn bounded(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
        ((rng.next_u64() as u128 * span as u128) >> 64) as u64
    }

    macro_rules! int_range {
        ($($t:ty),+) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    self.start.wrapping_add(bounded(rng, span) as $t)
                }
            }

            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as i128 - lo as i128) as u64;
                    if span == u64::MAX {
                        return lo.wrapping_add(rng.next_u64() as $t);
                    }
                    lo.wrapping_add(bounded(rng, span + 1) as $t)
                }
            }
        )+};
    }

    int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range {
        ($($t:ty),+) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let u: f64 = crate::distributions::Distribution::<f64>::sample(
                        &crate::distributions::Standard,
                        rng,
                    );
                    let v = self.start as f64 + (self.end as f64 - self.start as f64) * u;
                    // Floating rounding can land exactly on `end`; fold it back.
                    if v as $t >= self.end { self.start } else { v as $t }
                }
            }

            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let u: f64 = crate::distributions::Distribution::<f64>::sample(
                        &crate::distributions::Standard,
                        rng,
                    );
                    (lo as f64 + (hi as f64 - lo as f64) * u) as $t
                }
            }
        )+};
    }

    float_range!(f32, f64);
}
