//! Offline stand-in for `serde_derive`.
//!
//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` built
//! directly on `proc_macro` (no syn/quote — the build environment has
//! no registry access). Supports exactly the shapes this workspace
//! uses: non-generic named-field structs, tuple/newtype structs, unit
//! structs, and enums with unit and struct variants, plus the
//! `#[serde(with = "module")]` field attribute.
//!
//! Anything outside that surface panics at expansion time with a
//! message saying what to extend.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// Input model
// ---------------------------------------------------------------------------

struct Field {
    name: String,
    ty: String,
    with: Option<String>,
}

enum VariantFields {
    Unit,
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum Data {
    NamedStruct(Vec<Field>),
    /// Tuple struct with this many fields (1 = newtype).
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    data: Data,
}

// ---------------------------------------------------------------------------
// Token cursor
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor { tokens: stream.into_iter().collect(), pos: 0 }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let tt = self.tokens.get(self.pos).cloned();
        if tt.is_some() {
            self.pos += 1;
        }
        tt
    }

    fn peek_punct(&self, ch: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ch)
    }

    fn peek_ident(&self, word: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == word)
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde derive: expected {what}, found {other:?}"),
        }
    }

    fn expect_punct(&mut self, ch: char) {
        match self.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ch => {}
            other => panic!("serde derive: expected `{ch}`, found {other:?}"),
        }
    }

    /// Consumes `#[...]` if present; returns the attribute's bracket
    /// content, or `None` if the next token is not an attribute.
    fn eat_attribute(&mut self) -> Option<TokenStream> {
        if !self.peek_punct('#') {
            return None;
        }
        self.next();
        match self.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => Some(g.stream()),
            other => panic!("serde derive: malformed attribute, found {other:?}"),
        }
    }

    /// Consumes `pub` / `pub(...)` if present.
    fn eat_visibility(&mut self) {
        if self.peek_ident("pub") {
            self.next();
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.next();
            }
        }
    }

    /// Collects type tokens up to a top-level `,` (tracking `<...>`
    /// nesting, which the tokenizer does not group).
    fn collect_type(&mut self) -> String {
        let mut depth = 0i32;
        let mut parts: Vec<String> = Vec::new();
        while let Some(tt) = self.peek() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                _ => {}
            }
            parts.push(tt.to_string());
            self.pos += 1;
        }
        parts.join(" ")
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Extracts the module path from a `serde(with = "path")` attribute
/// body, or `None` for non-serde attributes (doc comments, etc.).
fn serde_with_path(attr: TokenStream) -> Option<String> {
    let mut c = Cursor::new(attr);
    if !c.peek_ident("serde") {
        return None;
    }
    c.next();
    let body = match c.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        other => panic!("serde derive: malformed #[serde] attribute, found {other:?}"),
    };
    let mut b = Cursor::new(body);
    let key = b.expect_ident("a serde attribute key");
    if key != "with" {
        panic!(
            "serde derive: unsupported attribute `#[serde({key} ...)]` — \
             this vendored derive only supports `with`"
        );
    }
    b.expect_punct('=');
    match b.next() {
        Some(TokenTree::Literal(lit)) => {
            let s = lit.to_string();
            let path = s.strip_prefix('"').and_then(|s| s.strip_suffix('"')).unwrap_or_else(|| {
                panic!("serde derive: `with` expects a string literal, got {s}")
            });
            Some(path.to_string())
        }
        other => panic!("serde derive: `with` expects a string literal, found {other:?}"),
    }
}

/// Parses `name: Type` fields (with optional attributes and visibility)
/// from the body of a braced struct or struct variant.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut c = Cursor::new(stream);
    let mut fields = Vec::new();
    while c.peek().is_some() {
        let mut with = None;
        while let Some(attr) = c.eat_attribute() {
            if let Some(path) = serde_with_path(attr) {
                with = Some(path);
            }
        }
        c.eat_visibility();
        let name = c.expect_ident("a field name");
        c.expect_punct(':');
        let ty = c.collect_type();
        fields.push(Field { name, ty, with });
        if c.peek_punct(',') {
            c.next();
        }
    }
    fields
}

/// Counts the fields of a tuple struct / tuple variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut c = Cursor::new(stream);
    let mut count = 0;
    while c.peek().is_some() {
        while c.eat_attribute().is_some() {}
        c.eat_visibility();
        let ty = c.collect_type();
        if !ty.is_empty() {
            count += 1;
        }
        if c.peek_punct(',') {
            c.next();
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut c = Cursor::new(stream);
    let mut variants = Vec::new();
    while c.peek().is_some() {
        while c.eat_attribute().is_some() {}
        let name = c.expect_ident("a variant name");
        let fields = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body = g.stream();
                c.next();
                VariantFields::Named(parse_named_fields(body))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!(
                    "serde derive: tuple enum variant `{name}` is not supported by the \
                     vendored derive (use a struct variant)"
                );
            }
            _ => VariantFields::Unit,
        };
        if c.peek_punct('=') {
            panic!("serde derive: explicit discriminants are not supported (variant `{name}`)");
        }
        if c.peek_punct(',') {
            c.next();
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let mut c = Cursor::new(input);
    loop {
        if c.eat_attribute().is_some() {
            continue;
        }
        c.eat_visibility();
        if c.peek_ident("struct") || c.peek_ident("enum") {
            break;
        }
        match c.next() {
            Some(tt) => panic!("serde derive: unexpected token {tt:?} before struct/enum keyword"),
            None => panic!("serde derive: no struct or enum found in input"),
        }
    }
    let keyword = c.expect_ident("`struct` or `enum`");
    let name = c.expect_ident("a type name");
    if c.peek_punct('<') {
        panic!("serde derive: generic type `{name}` is not supported by the vendored derive");
    }
    let data = if keyword == "struct" {
        match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Data::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Data::UnitStruct,
            other => panic!("serde derive: unexpected struct body {other:?}"),
        }
    } else {
        match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde derive: unexpected enum body {other:?}"),
        }
    };
    Input { name, data }
}

// ---------------------------------------------------------------------------
// Codegen: Serialize
// ---------------------------------------------------------------------------

fn gen_serialize_named_fields(out: &mut String, fields: &[Field], access_prefix: &str) {
    for f in fields {
        let Field { name, ty, with } = f;
        let access = format!("{access_prefix}{name}");
        match with {
            Some(path) => {
                // `with` modules see the field through a one-off wrapper
                // so the compound serializer's generic `Serialize` bound
                // still applies.
                out.push_str(&format!(
                    "{{\n\
                     struct __SerdeWith<'__a>(&'__a ({ty}));\n\
                     impl<'__a> ::serde::ser::Serialize for __SerdeWith<'__a> {{\n\
                     fn serialize<__S2: ::serde::ser::Serializer>(&self, __s: __S2) \
                     -> ::std::result::Result<__S2::Ok, __S2::Error> {{\n\
                     {path}::serialize(self.0, __s)\n\
                     }}\n\
                     }}\n\
                     ::serde::ser::SerializeStruct::serialize_field(&mut __state, \"{name}\", \
                     &__SerdeWith(&{access}))?;\n\
                     }}\n"
                ));
            }
            None => {
                out.push_str(&format!(
                    "::serde::ser::SerializeStruct::serialize_field(&mut __state, \"{name}\", \
                     &{access})?;\n"
                ));
            }
        }
    }
}

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let mut body = String::new();
    match &input.data {
        Data::NamedStruct(fields) => {
            body.push_str(&format!(
                "let mut __state = ::serde::ser::Serializer::serialize_struct(\
                 __serializer, \"{name}\", {}usize)?;\n",
                fields.len()
            ));
            gen_serialize_named_fields(&mut body, fields, "self.");
            body.push_str("::serde::ser::SerializeStruct::end(__state)\n");
        }
        Data::TupleStruct(1) => {
            body.push_str(&format!(
                "::serde::ser::Serializer::serialize_newtype_struct(__serializer, \"{name}\", \
                 &self.0)\n"
            ));
        }
        Data::TupleStruct(n) => {
            body.push_str(&format!(
                "let mut __seq = ::serde::ser::Serializer::serialize_seq(\
                 __serializer, ::std::option::Option::Some({n}usize))?;\n"
            ));
            for i in 0..*n {
                body.push_str(&format!(
                    "::serde::ser::SerializeSeq::serialize_element(&mut __seq, &self.{i})?;\n"
                ));
            }
            body.push_str("::serde::ser::SerializeSeq::end(__seq)\n");
        }
        Data::UnitStruct => {
            body.push_str("::serde::ser::Serializer::serialize_unit(__serializer)\n");
        }
        Data::Enum(variants) => {
            body.push_str("match self {\n");
            for (idx, v) in variants.iter().enumerate() {
                let vname = &v.name;
                match &v.fields {
                    VariantFields::Unit => {
                        body.push_str(&format!(
                            "{name}::{vname} => ::serde::ser::Serializer::serialize_unit_variant(\
                             __serializer, \"{name}\", {idx}u32, \"{vname}\"),\n"
                        ));
                    }
                    VariantFields::Named(fields) => {
                        let bindings =
                            fields.iter().map(|f| f.name.as_str()).collect::<Vec<_>>().join(", ");
                        body.push_str(&format!(
                            "{name}::{vname} {{ {bindings} }} => {{\n\
                             let mut __state = \
                             ::serde::ser::Serializer::serialize_struct_variant(\
                             __serializer, \"{name}\", {idx}u32, \"{vname}\", {}usize)?;\n",
                            fields.len()
                        ));
                        for f in fields {
                            if f.with.is_some() {
                                panic!(
                                    "serde derive: #[serde(with)] inside enum variants is not \
                                     supported"
                                );
                            }
                            let fname = &f.name;
                            body.push_str(&format!(
                                "::serde::ser::SerializeStruct::serialize_field(&mut __state, \
                                 \"{fname}\", {fname})?;\n"
                            ));
                        }
                        body.push_str("::serde::ser::SerializeStruct::end(__state)\n}\n");
                    }
                }
            }
            body.push_str("}\n");
        }
    }
    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all, clippy::pedantic)]\n\
         impl ::serde::ser::Serialize for {name} {{\n\
         fn serialize<__S: ::serde::ser::Serializer>(&self, __serializer: __S) \
         -> ::std::result::Result<__S::Ok, __S::Error> {{\n\
         {body}\
         }}\n\
         }}\n"
    )
}

// ---------------------------------------------------------------------------
// Codegen: Deserialize
// ---------------------------------------------------------------------------

/// Generates the field initializers of a struct literal, pulling each
/// field out of a `__fields` map binding.
fn gen_deserialize_named_fields(out: &mut String, fields: &[Field]) {
    for f in fields {
        let Field { name, with, .. } = f;
        let sub = format!(
            "::serde::de::ValueDeserializer::<__D::Error>::new(\
             ::serde::de::take_field(&mut __fields, \"{name}\"))"
        );
        match with {
            Some(path) => out.push_str(&format!("{name}: {path}::deserialize({sub})?,\n")),
            None => {
                out.push_str(&format!("{name}: ::serde::de::Deserialize::deserialize({sub})?,\n"))
            }
        }
    }
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let mut body = String::new();
    match &input.data {
        Data::NamedStruct(fields) => {
            body.push_str(&format!(
                "let __value = ::serde::de::Deserializer::value(__deserializer)?;\n\
                 #[allow(unused_mut)]\n\
                 let mut __fields = ::serde::de::Value::into_map::<__D::Error>(\
                 __value, \"{name}\")?;\n\
                 ::std::result::Result::Ok({name} {{\n"
            ));
            gen_deserialize_named_fields(&mut body, fields);
            body.push_str("})\n");
        }
        Data::TupleStruct(1) => {
            body.push_str(&format!(
                "::std::result::Result::Ok({name}(\
                 ::serde::de::Deserialize::deserialize(__deserializer)?))\n"
            ));
        }
        Data::TupleStruct(n) => {
            body.push_str(&format!(
                "let __items = ::serde::de::Value::into_seq::<__D::Error>(\
                 ::serde::de::Deserializer::value(__deserializer)?, \"{name}\")?;\n\
                 if __items.len() != {n}usize {{\n\
                 return ::std::result::Result::Err(<__D::Error as ::serde::de::Error>::custom(\
                 format!(\"expected {n} elements for `{name}`, found {{}}\", __items.len())));\n\
                 }}\n\
                 let mut __items = __items.into_iter();\n\
                 ::std::result::Result::Ok({name}(\n"
            ));
            for _ in 0..*n {
                body.push_str(
                    "::serde::de::Deserialize::deserialize(\
                     ::serde::de::ValueDeserializer::<__D::Error>::new(\
                     __items.next().expect(\"length checked\")))?,\n",
                );
            }
            body.push_str("))\n");
        }
        Data::UnitStruct => {
            body.push_str(&format!(
                "match ::serde::de::Deserializer::value(__deserializer)? {{\n\
                 ::serde::de::Value::Null => ::std::result::Result::Ok({name}),\n\
                 __other => ::std::result::Result::Err(<__D::Error as \
                 ::serde::de::Error>::custom(format!(\
                 \"expected null for unit struct `{name}`, found {{}}\", __other.kind()))),\n\
                 }}\n"
            ));
        }
        Data::Enum(variants) => {
            body.push_str(
                "let __value = ::serde::de::Deserializer::value(__deserializer)?;\n\
                 match __value {\n",
            );
            // Unit variants arrive as bare strings.
            body.push_str("::serde::de::Value::Str(__variant) => match __variant.as_str() {\n");
            for v in variants {
                if matches!(v.fields, VariantFields::Unit) {
                    let vname = &v.name;
                    body.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                    ));
                }
            }
            body.push_str(&format!(
                "_ => ::std::result::Result::Err(<__D::Error as ::serde::de::Error>::custom(\
                 format!(\"unknown variant `{{}}` of `{name}`\", __variant))),\n\
                 }},\n"
            ));
            // Data-carrying variants arrive externally tagged:
            // {"Variant": {...fields...}}.
            body.push_str(&format!(
                "::serde::de::Value::Map(mut __entries) => {{\n\
                 if __entries.len() != 1 {{\n\
                 return ::std::result::Result::Err(<__D::Error as ::serde::de::Error>::custom(\
                 \"expected a single-key map for an externally tagged `{name}` variant\"));\n\
                 }}\n\
                 let (__tag, __inner) = __entries.pop().expect(\"length checked\");\n\
                 match __tag.as_str() {{\n"
            ));
            for v in variants {
                if let VariantFields::Named(fields) = &v.fields {
                    let vname = &v.name;
                    body.push_str(&format!(
                        "\"{vname}\" => {{\n\
                         #[allow(unused_mut)]\n\
                         let mut __fields = ::serde::de::Value::into_map::<__D::Error>(\
                         __inner, \"{name}::{vname}\")?;\n\
                         ::std::result::Result::Ok({name}::{vname} {{\n"
                    ));
                    for f in fields {
                        if f.with.is_some() {
                            panic!(
                                "serde derive: #[serde(with)] inside enum variants is not \
                                 supported"
                            );
                        }
                        let fname = &f.name;
                        body.push_str(&format!(
                            "{fname}: ::serde::de::Deserialize::deserialize(\
                             ::serde::de::ValueDeserializer::<__D::Error>::new(\
                             ::serde::de::take_field(&mut __fields, \"{fname}\")))?,\n"
                        ));
                    }
                    body.push_str("})\n}\n");
                }
            }
            body.push_str(&format!(
                "_ => ::std::result::Result::Err(<__D::Error as ::serde::de::Error>::custom(\
                 format!(\"unknown variant `{{}}` of `{name}`\", __tag))),\n\
                 }}\n\
                 }}\n\
                 __other => ::std::result::Result::Err(<__D::Error as \
                 ::serde::de::Error>::custom(format!(\
                 \"invalid value for enum `{name}`: {{}}\", __other.kind()))),\n\
                 }}\n"
            ));
        }
    }
    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all, clippy::pedantic)]\n\
         impl<'de> ::serde::de::Deserialize<'de> for {name} {{\n\
         fn deserialize<__D: ::serde::de::Deserializer<'de>>(__deserializer: __D) \
         -> ::std::result::Result<Self, __D::Error> {{\n\
         {body}\
         }}\n\
         }}\n"
    )
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

fn expand(source: &str) -> TokenStream {
    source
        .parse()
        .unwrap_or_else(|e| panic!("serde derive: generated code failed to parse: {e}\n{source}"))
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(&gen_serialize(&parse_input(input)))
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(&gen_deserialize(&parse_input(input)))
}
