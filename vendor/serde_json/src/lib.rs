//! Offline stand-in for `serde_json`: [`to_string`] and [`from_str`]
//! over the vendored `serde` traits.
//!
//! The writer produces compact JSON (same shape as upstream
//! serde_json's `to_string`); floats are written with Rust's shortest
//! round-trippable `Display` form, and non-finite floats serialize as
//! `null` (JSON has no infinities), matching upstream behaviour.

#![warn(missing_docs)]

mod read;
mod write;

pub use read::from_str;
pub use write::to_string;

use std::fmt;

/// Errors from JSON serialization or parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        Error { message: message.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

/// `Result` alias with [`Error`] pre-filled.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Wrapper(u64);

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Kind {
        Plain,
        Weighted { weight: f64, label: String },
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Record {
        id: Wrapper,
        kind: Kind,
        values: Vec<f64>,
        note: Option<String>,
        flags: [bool; 2],
    }

    #[test]
    fn roundtrip_struct() {
        let r = Record {
            id: Wrapper(42),
            kind: Kind::Weighted { weight: 0.5, label: "a \"b\"\n".into() },
            values: vec![1.0, -2.25, 1e-12],
            note: None,
            flags: [true, false],
        };
        let json = to_string(&r).unwrap();
        let back: Record = from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn roundtrip_unit_variant() {
        let json = to_string(&Kind::Plain).unwrap();
        assert_eq!(json, "\"Plain\"");
        assert_eq!(from_str::<Kind>(&json).unwrap(), Kind::Plain);
    }

    #[test]
    fn newtype_is_transparent() {
        assert_eq!(to_string(&Wrapper(7)).unwrap(), "7");
        assert_eq!(from_str::<Wrapper>("7").unwrap(), Wrapper(7));
    }

    #[test]
    fn non_finite_floats_write_null() {
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        assert_eq!(to_string(&Some(f64::NAN)).unwrap(), "null");
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for v in [0.1f64, 1.0 / 3.0, 6.02214076e23, -0.0, 5e-324] {
            let json = to_string(&v).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "value {v}");
        }
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<u64>("12,").is_err());
        assert!(from_str::<u64>("{").is_err());
        assert!(from_str::<Vec<u64>>("[1, 2").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }

    #[test]
    fn unicode_escapes_parse() {
        let s: String = from_str(r#""Aé☃""#).unwrap();
        assert_eq!(s, "Aé☃");
    }
}
