//! Compact JSON writer implementing [`serde::Serializer`].

use crate::{Error, Result};
use serde::ser::{Serialize, SerializeSeq, SerializeStruct, Serializer};
use std::fmt::Write as _;

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    value.serialize(JsonSerializer { out: &mut out })?;
    Ok(out)
}

struct JsonSerializer<'a> {
    out: &'a mut String,
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    let mut start = 0;
    for (i, b) in s.bytes().enumerate() {
        let escape: Option<&str> = match b {
            b'"' => Some("\\\""),
            b'\\' => Some("\\\\"),
            b'\n' => Some("\\n"),
            b'\r' => Some("\\r"),
            b'\t' => Some("\\t"),
            0x00..=0x1f => None, // numeric escape below
            _ => continue,
        };
        out.push_str(&s[start..i]);
        match escape {
            Some(e) => out.push_str(e),
            None => {
                let _ = write!(out, "\\u{b:04x}");
            }
        }
        start = i + 1;
    }
    out.push_str(&s[start..]);
    out.push('"');
}

impl<'a> Serializer for JsonSerializer<'a> {
    type Ok = ();
    type Error = Error;
    type SerializeSeq = SeqWriter<'a>;
    type SerializeStruct = StructWriter<'a>;
    type SerializeStructVariant = VariantWriter<'a>;

    fn serialize_bool(self, v: bool) -> Result<()> {
        self.out.push_str(if v { "true" } else { "false" });
        Ok(())
    }

    fn serialize_i64(self, v: i64) -> Result<()> {
        let _ = write!(self.out, "{v}");
        Ok(())
    }

    fn serialize_u64(self, v: u64) -> Result<()> {
        let _ = write!(self.out, "{v}");
        Ok(())
    }

    fn serialize_f64(self, v: f64) -> Result<()> {
        if v.is_finite() {
            // `{:?}` keeps the shortest round-trippable form and always
            // marks the value as a float ("1.0", "6.02e23", "-0.0"),
            // so it re-parses with the exact same bits.
            let _ = write!(self.out, "{v:?}");
        } else {
            // JSON has no infinities or NaN; upstream serde_json also
            // writes null.
            self.out.push_str("null");
        }
        Ok(())
    }

    fn serialize_str(self, v: &str) -> Result<()> {
        write_escaped(self.out, v);
        Ok(())
    }

    fn serialize_unit(self) -> Result<()> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_none(self) -> Result<()> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<()> {
        value.serialize(self)
    }

    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<()> {
        value.serialize(self)
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
    ) -> Result<()> {
        write_escaped(self.out, variant);
        Ok(())
    }

    fn serialize_seq(self, _len: Option<usize>) -> Result<SeqWriter<'a>> {
        self.out.push('[');
        Ok(SeqWriter { out: self.out, first: true })
    }

    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<StructWriter<'a>> {
        self.out.push('{');
        Ok(StructWriter { out: self.out, first: true })
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result<VariantWriter<'a>> {
        self.out.push('{');
        write_escaped(self.out, variant);
        self.out.push_str(":{");
        Ok(VariantWriter { out: self.out, first: true })
    }
}

/// In-progress `[...]`.
pub struct SeqWriter<'a> {
    out: &'a mut String,
    first: bool,
}

impl SerializeSeq for SeqWriter<'_> {
    type Ok = ();
    type Error = Error;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        value.serialize(JsonSerializer { out: self.out })
    }

    fn end(self) -> Result<()> {
        self.out.push(']');
        Ok(())
    }
}

/// In-progress `{...}`.
pub struct StructWriter<'a> {
    out: &'a mut String,
    first: bool,
}

fn write_field<T: Serialize + ?Sized>(
    out: &mut String,
    first: &mut bool,
    key: &str,
    value: &T,
) -> Result<()> {
    if !*first {
        out.push(',');
    }
    *first = false;
    write_escaped(out, key);
    out.push(':');
    value.serialize(JsonSerializer { out })
}

impl SerializeStruct for StructWriter<'_> {
    type Ok = ();
    type Error = Error;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<()> {
        write_field(self.out, &mut self.first, key, value)
    }

    fn end(self) -> Result<()> {
        self.out.push('}');
        Ok(())
    }
}

/// In-progress `{"Variant":{...}}`.
pub struct VariantWriter<'a> {
    out: &'a mut String,
    first: bool,
}

impl SerializeStruct for VariantWriter<'_> {
    type Ok = ();
    type Error = Error;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<()> {
        write_field(self.out, &mut self.first, key, value)
    }

    fn end(self) -> Result<()> {
        self.out.push_str("}}");
        Ok(())
    }
}
