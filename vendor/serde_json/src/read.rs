//! Recursive-descent JSON parser producing [`serde::de::Value`] trees.

use crate::{Error, Result};
use serde::de::{Deserialize, Value, ValueDeserializer};

/// Deserializes `T` from a JSON string.
pub fn from_str<'de, T: Deserialize<'de>>(s: &str) -> Result<T> {
    let mut p = Parser { input: s, bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after JSON value"));
    }
    T::deserialize(ValueDeserializer::<Error>::new(value))
}

struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, msg: impl std::fmt::Display) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format_args!("expected `{}`", b as char)))
        }
    }

    fn expect_keyword(&mut self, word: &str) -> Result<()> {
        if self.input[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.error(format_args!("expected `{word}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b't') => self.expect_keyword("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.expect_keyword("false").map(|()| Value::Bool(false)),
            Some(b'n') => self.expect_keyword("null").map(|()| Value::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(self.error(format_args!("unexpected byte `{}`", other as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        let mut start = self.pos;
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    out.push_str(&self.input[start..self.pos]);
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    out.push_str(&self.input[start..self.pos]);
                    self.pos += 1;
                    let escaped = match self.bytes.get(self.pos) {
                        Some(b'"') => '"',
                        Some(b'\\') => '\\',
                        Some(b'/') => '/',
                        Some(b'n') => '\n',
                        Some(b't') => '\t',
                        Some(b'r') => '\r',
                        Some(b'b') => '\u{8}',
                        Some(b'f') => '\u{c}',
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.parse_unicode_escape()?;
                            out.push(c);
                            start = self.pos;
                            continue;
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    };
                    out.push(escaped);
                    self.pos += 1;
                    start = self.pos;
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    /// Parses the 4 hex digits after `\u` (cursor already past the `u`),
    /// pairing surrogates when needed.
    fn parse_unicode_escape(&mut self) -> Result<char> {
        let hi = self.parse_hex4()?;
        if (0xd800..=0xdbff).contains(&hi) {
            self.expect(b'\\')?;
            self.expect(b'u')?;
            let lo = self.parse_hex4()?;
            if !(0xdc00..=0xdfff).contains(&lo) {
                return Err(self.error("unpaired surrogate in string"));
            }
            let code = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
            char::from_u32(code).ok_or_else(|| self.error("invalid surrogate pair"))
        } else {
            char::from_u32(hi).ok_or_else(|| self.error("invalid unicode escape"))
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let hex = self
            .input
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.error("truncated \\u escape"))?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid \\u escape digits"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = &self.input[start..self.pos];
        if !is_float {
            // Exact integers when they fit; huge integer literals (e.g.
            // a float printed in full decimal expansion) fall through
            // to f64.
            if let Some(rest) = text.strip_prefix('-') {
                if rest.parse::<u64>().is_ok() {
                    if let Ok(v) = text.parse::<i64>() {
                        return Ok(Value::Int(v));
                    }
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Uint(v));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}` at byte {start}")))
    }
}
