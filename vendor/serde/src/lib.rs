//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the serde surface it uses: `Serialize`/`Deserialize` traits,
//! the `Serializer`/`Deserializer` abstractions (JSON-shaped — the only
//! format the workspace serializes to), derive macros re-exported from
//! the companion `serde_derive` stub, and `#[serde(with = "...")]`
//! support.
//!
//! The deserialization side is deliberately simpler than upstream's
//! visitor architecture: a [`Deserializer`] yields a parsed
//! [`de::Value`] tree and `Deserialize` impls pattern-match on it.

#![warn(missing_docs)]

pub mod de;
pub mod ser;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};

// The derive macros live in the macro namespace, the traits in the type
// namespace: both can be imported as `serde::{Serialize, Deserialize}`.
pub use serde_derive::{Deserialize, Serialize};
