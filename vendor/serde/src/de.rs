//! The deserialization half: [`Deserialize`], [`Deserializer`], and the
//! [`Value`] tree they exchange.
//!
//! Unlike upstream serde's visitor architecture, a [`Deserializer`]
//! here produces a fully parsed [`Value`] and `Deserialize` impls
//! pattern-match on it. That trades zero-copy streaming for a much
//! smaller contract — the right trade for this workspace, which only
//! round-trips datasets through JSON strings.

use std::fmt::Display;
use std::marker::PhantomData;

/// Errors a deserializer can produce.
pub trait Error: Sized + std::fmt::Debug + Display {
    /// Builds an error from an arbitrary message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A parsed self-describing value (the JSON data model, with integers
/// kept exact rather than coerced to `f64`).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null` — also what a missing struct field decodes as.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    Uint(u64),
    /// A negative integer.
    Int(i64),
    /// A float.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (JSON object).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// A short noun for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "a boolean",
            Value::Uint(_) | Value::Int(_) => "an integer",
            Value::Float(_) => "a float",
            Value::Str(_) => "a string",
            Value::Seq(_) => "a sequence",
            Value::Map(_) => "a map",
        }
    }

    /// Unwraps a map, or errors with `expected` as the wanted type name.
    pub fn into_map<E: Error>(self, expected: &str) -> Result<Vec<(String, Value)>, E> {
        match self {
            Value::Map(entries) => Ok(entries),
            other => Err(E::custom(format_args!(
                "expected a map for `{expected}`, found {}",
                other.kind()
            ))),
        }
    }

    /// Unwraps a sequence, or errors with `expected` as the wanted type
    /// name.
    pub fn into_seq<E: Error>(self, expected: &str) -> Result<Vec<Value>, E> {
        match self {
            Value::Seq(items) => Ok(items),
            other => Err(E::custom(format_args!(
                "expected a sequence for `{expected}`, found {}",
                other.kind()
            ))),
        }
    }
}

/// Removes and returns the entry for `key`, or [`Value::Null`] if the
/// field is absent (so `Option` fields default to `None`).
pub fn take_field(fields: &mut Vec<(String, Value)>, key: &str) -> Value {
    match fields.iter().position(|(k, _)| k == key) {
        Some(i) => fields.swap_remove(i).1,
        None => Value::Null,
    }
}

/// A data format that can produce Rust values.
pub trait Deserializer<'de>: Sized {
    /// The format's error type.
    type Error: Error;

    /// Parses the input into a [`Value`] tree.
    fn value(self) -> Result<Value, Self::Error>;
}

/// A value that can be built from any [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    /// Builds `Self` from `deserializer`.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// Adapts an already-parsed [`Value`] back into a [`Deserializer`], so
/// derived code (and `#[serde(with = "...")]` modules) can recurse into
/// sub-values.
pub struct ValueDeserializer<E> {
    value: Value,
    marker: PhantomData<fn() -> E>,
}

impl<E> ValueDeserializer<E> {
    /// Wraps `value`.
    pub fn new(value: Value) -> Self {
        ValueDeserializer { value, marker: PhantomData }
    }
}

impl<'de, E: Error> Deserializer<'de> for ValueDeserializer<E> {
    type Error = E;

    fn value(self) -> Result<Value, E> {
        Ok(self.value)
    }
}

fn type_error<T, E: Error>(expected: &str, found: &Value) -> Result<T, E> {
    Err(E::custom(format_args!("expected {expected}, found {}", found.kind())))
}

macro_rules! deserialize_uint {
    ($($t:ty),+) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                match deserializer.value()? {
                    Value::Uint(v) => <$t>::try_from(v).map_err(|_| {
                        D::Error::custom(format_args!(
                            "integer {v} out of range for {}", stringify!($t)
                        ))
                    }),
                    other => type_error("an unsigned integer", &other),
                }
            }
        }
    )+};
}

deserialize_uint!(u8, u16, u32, u64, usize);

macro_rules! deserialize_int {
    ($($t:ty),+) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let out_of_range = |v: &dyn Display| {
                    D::Error::custom(format_args!(
                        "integer {v} out of range for {}", stringify!($t)
                    ))
                };
                match deserializer.value()? {
                    Value::Int(v) => <$t>::try_from(v).map_err(|_| out_of_range(&v)),
                    Value::Uint(v) => <$t>::try_from(v).map_err(|_| out_of_range(&v)),
                    other => type_error("an integer", &other),
                }
            }
        }
    )+};
}

deserialize_int!(i8, i16, i32, i64, isize);

macro_rules! deserialize_float {
    ($($t:ty),+) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                match deserializer.value()? {
                    Value::Float(v) => Ok(v as $t),
                    Value::Uint(v) => Ok(v as $t),
                    Value::Int(v) => Ok(v as $t),
                    other => type_error("a number", &other),
                }
            }
        }
    )+};
}

deserialize_float!(f32, f64);

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.value()? {
            Value::Bool(v) => Ok(v),
            other => type_error("a boolean", &other),
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.value()? {
            Value::Str(v) => Ok(v),
            other => type_error("a string", &other),
        }
    }
}

/// Supports `&'static str` fields on derived types (used for fixed unit
/// labels). Deserializing one leaks the string — acceptable because the
/// workspace only ever serializes such types.
impl<'de> Deserialize<'de> for &'static str {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        String::deserialize(deserializer).map(|s| &*s.leak())
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.value()? {
            Value::Null => Ok(()),
            other => type_error("null", &other),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.value()? {
            Value::Null => Ok(None),
            value => T::deserialize(ValueDeserializer::<D::Error>::new(value)).map(Some),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer
            .value()?
            .into_seq::<D::Error>("Vec")?
            .into_iter()
            .map(|v| T::deserialize(ValueDeserializer::<D::Error>::new(v)))
            .collect()
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let items = Vec::<T>::deserialize(deserializer)?;
        let len = items.len();
        items.try_into().map_err(|_| {
            D::Error::custom(format_args!("expected an array of length {N}, found {len}"))
        })
    }
}

macro_rules! deserialize_tuple {
    ($(($len:literal: $($name:ident),+))+) => {$(
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<De: Deserializer<'de>>(deserializer: De) -> Result<Self, De::Error> {
                let items = deserializer.value()?.into_seq::<De::Error>("tuple")?;
                if items.len() != $len {
                    return Err(De::Error::custom(format_args!(
                        "expected a tuple of length {}, found {}", $len, items.len()
                    )));
                }
                let mut items = items.into_iter();
                Ok(($(
                    $name::deserialize(ValueDeserializer::<De::Error>::new(
                        items.next().expect("length checked"),
                    ))?,
                )+))
            }
        }
    )+};
}

deserialize_tuple! {
    (1: A)
    (2: A, B)
    (3: A, B, C)
    (4: A, B, C, D)
}
