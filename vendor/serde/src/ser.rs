//! The serialization half: [`Serialize`], [`Serializer`], and the
//! compound-serialization traits the derive macro drives.
//!
//! The trait surface is JSON-shaped: one method per JSON-representable
//! primitive, sequences, and structs (maps with statically known string
//! keys). Formats own the concrete serializer; this crate only defines
//! the contract and the impls for std types.

use std::fmt::Display;

/// Errors a serializer can produce.
pub trait Error: Sized + std::fmt::Debug + Display {
    /// Builds an error from an arbitrary message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A value that can be handed to any [`Serializer`].
pub trait Serialize {
    /// Feeds `self` into `serializer`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A data format that can receive Rust values.
pub trait Serializer: Sized {
    /// Value returned on success (the format's output handle).
    type Ok;
    /// The format's error type.
    type Error: Error;
    /// Compound serializer for sequences.
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for structs.
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for struct enum variants.
    type SerializeStructVariant: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;

    /// Serializes a `bool`.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Serializes a signed integer.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serializes an unsigned integer.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a float.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a string slice.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Serializes the unit value.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes `Option::None`.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes the payload of `Option::Some`.
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    /// Serializes a newtype struct as its inner value.
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serializes a dataless enum variant (conventionally as its name).
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    /// Begins serializing a sequence.
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    /// Begins serializing a struct.
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    /// Begins serializing a struct enum variant (externally tagged).
    fn serialize_struct_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStructVariant, Self::Error>;
}

/// In-progress sequence serialization.
pub trait SerializeSeq {
    /// Matches [`Serializer::Ok`].
    type Ok;
    /// Matches [`Serializer::Error`].
    type Error: Error;
    /// Serializes one element.
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the sequence.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// In-progress struct (or struct-variant) serialization.
pub trait SerializeStruct {
    /// Matches [`Serializer::Ok`].
    type Ok;
    /// Matches [`Serializer::Error`].
    type Error: Error;
    /// Serializes one named field.
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finishes the struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

macro_rules! serialize_as {
    ($method:ident($cast:ty): $($t:ty),+) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$method(*self as $cast)
            }
        }
    )+};
}

serialize_as!(serialize_u64(u64): u8, u16, u32, u64, usize);
serialize_as!(serialize_i64(i64): i8, i16, i32, i64, isize);
serialize_as!(serialize_f64(f64): f32, f64);

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bool(*self)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

fn serialize_elements<'a, S, T>(
    serializer: S,
    iter: impl ExactSizeIterator<Item = &'a T>,
) -> Result<S::Ok, S::Error>
where
    S: Serializer,
    T: Serialize + 'a,
{
    let mut seq = serializer.serialize_seq(Some(iter.len()))?;
    for item in iter {
        seq.serialize_element(item)?;
    }
    seq.end()
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_elements(serializer, self.iter())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_elements(serializer, self.iter())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_elements(serializer, self.iter())
    }
}

macro_rules! serialize_tuple {
    ($(($($name:ident . $idx:tt),+))+) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let mut seq = serializer.serialize_seq(Some(0 $(+ { let _ = stringify!($name); 1 })+))?;
                $(seq.serialize_element(&self.$idx)?;)+
                seq.end()
            }
        }
    )+};
}

serialize_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}
