//! Offline stand-in for `criterion`.
//!
//! Keeps the `criterion_group!` / `criterion_main!` harness shape and
//! the `Criterion` / `BenchmarkGroup` / `Bencher` API, but measures
//! with a simple calibrated wall-clock loop: each benchmark is timed
//! over enough iterations to fill a short measurement window, and the
//! median per-iteration time over `sample_size` samples is reported.
//! No plotting, no statistics beyond median/min/max.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

const DEFAULT_SAMPLE_SIZE: usize = 20;
/// Target wall-clock time for one sample's iteration batch.
const SAMPLE_TARGET: Duration = Duration::from_millis(25);

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    /// `--bench <filter>`-style substring filter from the CLI.
    filter: Option<String>,
}

impl Criterion {
    /// Applies command-line arguments (`cargo bench` passes `--bench`;
    /// a trailing free argument is treated as a name filter, matching
    /// criterion's CLI).
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                // Flags consumed by the harness contract.
                "--bench" | "--test" => {}
                // Same, but its value must be discarded too.
                "--profile-time" => {
                    let _ = args.next();
                }
                other if !other.starts_with('-') => self.filter = Some(other.to_string()),
                _ => {}
            }
        }
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup { criterion: self, sample_size: DEFAULT_SAMPLE_SIZE }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark(self, id, DEFAULT_SAMPLE_SIZE, f);
        self
    }

    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }
}

/// A set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timing samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark(self.criterion, id, self.sample_size, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; its [`iter`](Bencher::iter) method
/// times the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this sample's iteration batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    criterion: &Criterion,
    id: &str,
    sample_size: usize,
    mut f: F,
) {
    if !criterion.matches(id) {
        return;
    }

    // Calibrate: grow the iteration count until one batch fills the
    // sample window.
    let mut iters = 1u64;
    let per_iter = loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        if b.elapsed >= SAMPLE_TARGET || iters >= 1 << 20 {
            break b.elapsed / iters.max(1) as u32;
        }
        // Aim directly for the window, bounded by doubling.
        let target = SAMPLE_TARGET.as_nanos() as u64;
        let got = b.elapsed.as_nanos().max(1) as u64;
        iters = (iters * 2).max((iters * target / got).min(iters * 64)).max(iters + 1);
    };
    let _ = per_iter;

    let mut samples: Vec<Duration> = (0..sample_size)
        .map(|_| {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            b.elapsed / iters.max(1) as u32
        })
        .collect();
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let (min, max) = (samples[0], samples[samples.len() - 1]);
    println!(
        "  {id:<40} median {} / iter  (min {}, max {}, {iters} iters x {sample_size} samples)",
        fmt_duration(median),
        fmt_duration(min),
        fmt_duration(max),
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} us", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Declares a function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        let mut ran = false;
        g.bench_function("noop", |b| {
            ran = true;
            b.iter(|| 1 + 1)
        });
        g.finish();
        assert!(ran);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion { filter: Some("nomatch".into()) };
        let mut ran = false;
        c.bench_function("other", |b| {
            ran = true;
            b.iter(|| ())
        });
        assert!(!ran);
    }
}
