//! Quickstart: generate a Supercloud-like trace, run the cluster
//! simulation, and print the headline characterization numbers.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sc_repro::prelude::*;

fn main() {
    // A 5%-scale version of the paper's 125-day trace (~3,700 jobs)
    // keeps this example under a few seconds.
    let mut spec = WorkloadSpec::supercloud().scaled(0.05);
    spec.users = 96;
    let trace = Trace::generate(&spec, 42);
    println!(
        "generated {} jobs from {} users over {} days",
        trace.jobs().len(),
        trace.users().len(),
        spec.duration_days
    );

    let out = Simulation::supercloud().run(&trace);
    let funnel = out.dataset.funnel();
    println!(
        "scheduled to completion: {} GPU jobs analyzed ({} filtered <30 s), {} CPU jobs",
        funnel.gpu_jobs, funnel.gpu_jobs_filtered_out, funnel.cpu_jobs
    );

    // The paper's headline characterization, in four lines.
    let views = gpu_views(&out.dataset);
    let runtime = Ecdf::new(views.iter().map(|v| v.run_minutes()).collect()).expect("jobs");
    let sm = Ecdf::new(views.iter().map(|v| v.agg.sm_util.mean).collect()).expect("jobs");
    let power = Ecdf::new(views.iter().map(|v| v.agg.power_w.mean).collect()).expect("jobs");
    println!("median GPU-job run time : {:.0} min (paper: 30 min)", runtime.median());
    println!("median SM utilization   : {:.1} % (paper: 16 %)", sm.median());
    println!("median average power    : {:.0} W of 300 W TDP (paper: 45 W)", power.median());

    let mature = views.iter().filter(|v| v.class == LifecycleClass::Mature).count();
    println!(
        "mature jobs             : {:.0} % of jobs (paper: ~60 %) — the rest is \
         exploratory/development/IDE work",
        100.0 * mature as f64 / views.len() as f64
    );

    // And the full figure pipeline, if you want everything at once:
    let report = AnalysisReport::from_sim(&out);
    println!("\n{}", report.fig15.render());
}
