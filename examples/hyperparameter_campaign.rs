//! A researcher's hyper-parameter campaign, seen through the paper's
//! life-cycle lens.
//!
//! Sec. VI's motivating workload: "training deep learning models
//! require many hyper-parameter-tuning jobs that get terminated by the
//! user once they realize that the job hyper-parameters are not
//! optimal." This example isolates the exploratory population of a
//! simulated trace, quantifies the GPU hours it burns relative to the
//! mature work it eventually enables, and prices the paper's two
//! remedies: demoting trials to a slow/cheap GPU tier and checkpointing
//! the long-running sessions.
//!
//! ```text
//! cargo run --release --example hyperparameter_campaign
//! ```

use sc_opportunity::{checkpoint, tiering, RoutingPolicy, Tier};
use sc_repro::prelude::*;

fn main() {
    let mut spec = WorkloadSpec::supercloud().scaled(0.05);
    spec.users = 96;
    let trace = Trace::generate(&spec, 7);
    let out = Simulation::supercloud().run(&trace);
    let views = gpu_views(&out.dataset);

    // --- the campaign's footprint -------------------------------------
    let total_hours: f64 = views.iter().map(|v| v.gpu_hours()).sum();
    let mut by_class = [(LifecycleClass::Mature, 0.0, 0usize); 4];
    for (slot, &class) in by_class.iter_mut().zip(LifecycleClass::ALL.iter()) {
        let hours: f64 = views.iter().filter(|v| v.class == class).map(|v| v.gpu_hours()).sum();
        let count = views.iter().filter(|v| v.class == class).count();
        *slot = (class, hours, count);
    }
    println!("campaign footprint over {:.0} total GPU-hours:", total_hours);
    for (class, hours, count) in by_class {
        println!(
            "  {:<12} {:>6} jobs  {:>8.0} GPU-h ({:>4.1}% of hours)",
            class.to_string(),
            count,
            hours,
            100.0 * hours / total_hours
        );
    }
    println!(
        "  → non-mature work consumes {:.0}% of all GPU hours (paper: ~61%)\n",
        100.0 * (1.0 - by_class[0].1 / total_hours)
    );

    // --- remedy 1: route trials to a cheap tier ------------------------
    let slow = Tier { speed: 0.5, cost: 0.35 };
    let outcomes = tiering::evaluate(&views, slow);
    println!("{}", tiering::render(&outcomes, slow));
    let demote = outcomes
        .iter()
        .find(|o| o.policy == RoutingPolicy::DemoteNonMature)
        .expect("policy evaluated");
    println!(
        "→ demoting exploratory/dev/IDE work serves the same campaign at {:.0}% of the \
         GPU budget; mature training is untouched\n",
        demote.relative_cost * 100.0
    );

    // --- remedy 2: checkpoint the long sessions ------------------------
    let cfg = checkpoint::CheckpointConfig { write_secs: 30.0, mtti_secs: 12.0 * 3600.0 };
    let tau = cfg.young_interval();
    let study = checkpoint::evaluate(&views, tau, cfg.write_secs);
    println!(
        "checkpointing every {:.0} s (Young interval): {} jobs that died by \
         failure/timeout lose {:.0} GPU-h today; with checkpoints the loss plus overhead \
         is {:.0} GPU-h — a {:.0}% saving",
        study.interval_secs,
        study.victims,
        study.lost_hours_baseline,
        study.lost_hours_checkpointed,
        study.saving_fraction * 100.0
    );
}
