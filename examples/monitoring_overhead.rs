//! Sampling-period ablation: the paper chose 100 ms GPU sampling as "a
//! compromise between data volume and usability" (Sec. II). This
//! example quantifies that compromise: for one job, sweep the sampling
//! period and report (a) data volume, (b) aggregate error against the
//! exact analytic values, and (c) whether a 2-second SM spike — the
//! Fig. 7b bottleneck signal — is still caught.
//!
//! ```text
//! cargo run --release -p sc-repro --example monitoring_overhead
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use sc_repro::telemetry::metrics::GpuResource;
use sc_repro::telemetry::sampler::GpuSampler;
use sc_repro::workload::truth::generate_gpu_truth;
use sc_repro::workload::{PowerModel, ResourceLevels, TruthParams};

fn main() {
    // A one-hour job with a saturation spike, like the paper's
    // SM-bottlenecked population.
    let mut rng = StdRng::seed_from_u64(2022);
    let params = TruthParams {
        duration: 3_600.0,
        active_fraction: 0.8,
        mean_levels: ResourceLevels {
            sm: 22.0,
            mem: 3.0,
            mem_size: 12.0,
            pcie_tx: 8.0,
            pcie_rx: 10.0,
        },
        spike_resources: vec![GpuResource::Sm],
        ..Default::default()
    };
    let truth = generate_gpu_truth(&mut rng, &params);
    let power = PowerModel::v100();
    let exact = truth.analytic_aggregates(3_600.0, &power);
    println!(
        "ground truth (analytic): SM mean {:.2}%, SM max {:.0}%, power mean {:.1} W",
        exact.sm_util.mean, exact.sm_util.max, exact.power_w.mean
    );
    println!();
    println!("period     samples   data/job     SM-mean err   spike caught?");

    struct Wrapper<'a>(&'a sc_repro::workload::GpuGroundTruth, PowerModel);
    impl sc_repro::telemetry::MetricSource for Wrapper<'_> {
        fn gpu_count(&self) -> u32 {
            1
        }
        fn gpu_state(&self, _g: u32, t: f64) -> sc_repro::telemetry::GpuMetricSample {
            self.0.state_at(t, &self.1)
        }
        fn cpu_state(&self, _t: f64) -> sc_repro::telemetry::CpuMetricSample {
            sc_repro::telemetry::CpuMetricSample::default()
        }
    }
    let source = Wrapper(&truth, power);

    for period in [0.1, 0.5, 1.0, 5.0, 30.0, 120.0] {
        let sampler = GpuSampler::with_period(period);
        let agg = &sampler.sample_aggregates(&source, 3_600.0)[0];
        let samples = agg.sm_util.count;
        // 6 metrics × f32 in the production CSV ≈ 24 bytes per sample.
        let bytes = samples * 24;
        let err = (agg.sm_util.mean - exact.sm_util.mean).abs();
        let spike = agg.sm_util.max >= 99.5;
        println!(
            "{:>6.1} s  {:>8}   {:>7.1} KiB   {:>9.3} pp   {}",
            period,
            samples,
            bytes as f64 / 1024.0,
            err,
            if spike { "yes" } else { "NO — bottleneck invisible" }
        );
    }
    println!();
    println!(
        "The paper's 100 ms choice keeps the mean error at noise level and never \
         misses a 2 s saturation spike, at ~0.8 MiB/hour/GPU; by 30 s sampling the \
         Fig. 7b bottleneck signal is already unreliable."
    );
}
