//! An operator's capacity-planning session: how far does power capping
//! plus over-provisioning stretch the same facility?
//!
//! The paper (Sec. III): "the Supercloud system has enough power to
//! support all GPUs at their maximum possible power, and most of this
//! power goes unused. An effective way to use this power is to
//! over-provision the system with more GPUs…". This example sweeps the
//! cap level and reports the throughput/slowdown frontier, then sizes a
//! co-location deployment on top.
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```

use sc_opportunity::{colocation, OpportunityReport, PairingPolicy};
use sc_repro::prelude::*;

fn main() {
    let mut spec = WorkloadSpec::supercloud().scaled(0.05);
    spec.users = 96;
    let trace = Trace::generate(&spec, 99);
    let out = Simulation::supercloud().run(&trace);
    let views = gpu_views(&out.dataset);

    let report = OpportunityReport::run(&views, 300);

    // --- power frontier -------------------------------------------------
    println!("{}", report.powercap.render());
    let best = report.powercap.best();
    println!(
        "→ best operating point: cap at {:.0} W hosts {} GPUs in the same power \
         envelope and delivers {:.2}× the uncapped throughput (mean job slowdown {:.3})\n",
        best.cap_w, best.gpus_supported, best.relative_throughput, best.mean_slowdown
    );

    // --- co-location on top ----------------------------------------------
    println!("co-location policies over a {}-job single-GPU sample:", 300);
    for r in &report.colocation {
        println!(
            "  {:<22} mean slowdown {:.3}, p95 {:.3}, relative throughput {:.2}×",
            format!("{:?}", r.policy),
            r.mean_slowdown,
            r.p95_slowdown,
            r.relative_throughput
        );
    }
    let aware = report
        .colocation
        .iter()
        .find(|r| r.policy == PairingPolicy::UtilizationAware)
        .expect("policy evaluated");
    println!(
        "→ utilization-aware pairing converts the low average utilization of Fig. 4 \
         into {:.2}× throughput at {:.1}% mean slowdown\n",
        aware.relative_throughput,
        (aware.mean_slowdown - 1.0) * 100.0
    );

    // --- an emergent two-tier deployment -----------------------------------
    // Beyond the static economics, the simulator can *run* the tiered
    // cluster: 32 half-speed nodes absorb the interactive sessions.
    let mut tiered = sc_repro::cluster::ClusterSpec::supercloud();
    tiered.slow_tier = Some(sc_repro::cluster::SlowTierSpec { nodes: 32, speed: 0.5 });
    let tiered_out = Simulation::new(SimConfig {
        cluster: tiered,
        detailed_series_jobs: 0,
        ..Default::default()
    })
    .run(&trace);
    println!(
        "emergent two-tier run: {} interactive jobs served by 64 slow GPUs, freeing the \
         448 fast GPUs for batch/ML work (fast-tier peak in use: {} GPUs)\n",
        tiered_out.stats.slow_tier_jobs, tiered_out.stats.peak_gpus_in_use
    );

    // --- a worked pair ----------------------------------------------------
    // Pair the hottest and coldest jobs of the sample and show the
    // phase-level interference directly.
    let mut sample: Vec<&sc_core::GpuJobView> =
        views.iter().filter(|v| v.per_gpu.len() == 1).collect();
    sample.sort_by(|a, b| a.agg.sm_util.mean.partial_cmp(&b.agg.sm_util.mean).unwrap());
    if sample.len() >= 2 {
        let cold = sample[0];
        let hot = sample[sample.len() - 1];
        let mk = |v: &sc_core::GpuJobView, seed: u64| {
            let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
            sc_workload::truth::generate_gpu_truth(
                &mut rng,
                &sc_workload::TruthParams {
                    duration: 3_700.0,
                    active_fraction: (v.agg.sm_util.mean / v.agg.sm_util.max.max(1.0))
                        .clamp(0.05, 0.95),
                    mean_levels: sc_workload::ResourceLevels {
                        sm: v.agg.sm_util.mean,
                        mem: v.agg.mem_util.mean,
                        mem_size: v.agg.mem_size_util.mean,
                        pcie_tx: v.agg.pcie_tx.mean,
                        pcie_rx: v.agg.pcie_rx.mean,
                    },
                    ..Default::default()
                },
            )
        };
        let outcome = colocation::simulate_pair(&mk(hot, 1), &mk(cold, 2), 3_600.0, 3_600.0);
        println!(
            "worked pair: hot job (SM {:.0}%) + cold job (SM {:.0}%) on one GPU → \
             slowdowns {:.3} / {:.3}, GPU-time saved {:.0}%",
            hot.agg.sm_util.mean,
            cold.agg.sm_util.mean,
            outcome.slowdown_a,
            outcome.slowdown_b,
            outcome.packing_gain * 100.0
        );
    }
}
