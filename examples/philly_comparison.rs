//! Cross-system comparison: Supercloud vs a Philly-like DNN-training
//! cluster (Jeon et al. [23]), through the same pipeline.
//!
//! Sec. V of the paper anchors its multi-GPU findings against
//! Microsoft's Philly trace: "on Microsoft's Philly clusters, 93% of
//! the jobs are run on one GPU and only 2.5% of the jobs run on more
//! than four GPUs." This example generates both populations and prints
//! the side-by-side job-size and life-cycle structure.
//!
//! ```text
//! cargo run --release --example philly_comparison
//! ```

use sc_core::figures::fig13::SizeBucket;
use sc_repro::prelude::*;

fn characterize(name: &str, spec: &WorkloadSpec, seed: u64) -> (String, f64) {
    let trace = Trace::generate(spec, seed);
    let out = Simulation::supercloud().run(&trace);
    let views = gpu_views(&out.dataset);
    let users = user_stats(&views);
    let fig13 = sc_core::figures::Fig13::compute(&views, &users);
    let fig15 = sc_core::figures::Fig15::compute(&views);
    let mut s = format!("=== {name} ===\n");
    s.push_str("  job sizes:\n");
    for r in &fig13.rows {
        s.push_str(&format!(
            "    {:<9} {:>5.1}% of jobs, {:>5.1}% of GPU hours\n",
            r.bucket.label(),
            r.job_share * 100.0,
            r.hours_share * 100.0
        ));
    }
    s.push_str(&format!(
        "  users with a multi-GPU job: {:.0}%\n",
        fig13.users_with_multi_gpu * 100.0
    ));
    s.push_str("  life-cycle mix:\n");
    for c in &fig15.shares {
        s.push_str(&format!(
            "    {:<12} {:>5.1}% of jobs, {:>5.1}% of GPU hours\n",
            c.class.to_string(),
            c.job_share * 100.0,
            c.hours_share * 100.0
        ));
    }
    (s, fig13.row(SizeBucket::One).job_share)
}

fn main() {
    let mut supercloud = WorkloadSpec::supercloud().scaled(0.05);
    supercloud.users = 96;
    let mut philly = WorkloadSpec::philly().scaled(0.05);
    philly.users = 96;

    let (sc_text, sc_single) = characterize("Supercloud (this paper)", &supercloud, 11);
    let (ph_text, ph_single) = characterize("Philly-like baseline (Jeon et al.)", &philly, 11);
    println!("{sc_text}");
    println!("{ph_text}");
    println!(
        "single-GPU job share: Supercloud {:.1}% vs Philly {:.1}% — the paper's \
         comparison point (84% vs 93%); Philly's batch-training population also shows \
         almost no interactive/IDE tier, which is exactly the new trend the Supercloud \
         study highlights.",
        sc_single * 100.0,
        ph_single * 100.0
    );
}
