//! Multi-Instance-GPU (MIG) style partitioning (Sec. VIII).
//!
//! "Multi-Instance GPU (MIG) support in Nvidia GPUs is a useful step
//! toward mitigating the low-utilization challenge via co-location. …
//! resetting MIG configurations require GPUs to be idle and takes up to
//! few seconds with user intervention, and determining the optimal
//! configuration … requires multiple manual resetting trials and model
//! checkpointing overhead."
//!
//! The study: size each job's *slice demand* from its observed peak
//! compute and memory-capacity use, pack demands onto 7-slice GPUs with
//! first-fit-decreasing, and price the repartitioning overhead the
//! paper complains about — quantifying both the upside (fewer GPUs for
//! the same resident set) and the friction (reset + checkpoint cost per
//! reconfiguration).

use sc_core::GpuJobView;
use serde::{Deserialize, Serialize};

/// MIG configuration parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MigConfig {
    /// Slices per physical GPU (A100: 7).
    pub slices_per_gpu: u32,
    /// Seconds a reconfiguration keeps the GPU idle.
    pub reset_secs: f64,
    /// Seconds of checkpoint/restore around a reconfiguration.
    pub checkpoint_secs: f64,
}

impl Default for MigConfig {
    fn default() -> Self {
        MigConfig { slices_per_gpu: 7, reset_secs: 5.0, checkpoint_secs: 30.0 }
    }
}

/// Slices a job needs: the max of its compute and memory-capacity
/// demands, each sized from the job's *peak* (not average) usage so a
/// packed job is never starved at its own high-water mark.
pub fn slice_demand(peak_sm: f64, peak_mem_size: f64, slices_per_gpu: u32) -> u32 {
    assert!(slices_per_gpu >= 1, "need at least one slice per GPU");
    let frac = (peak_sm.max(peak_mem_size) / 100.0).clamp(0.0, 1.0);
    ((frac * slices_per_gpu as f64).ceil() as u32).clamp(1, slices_per_gpu)
}

/// Outcome of the packing study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MigStudy {
    /// GPUs needed with exclusive assignment (one job instance per GPU).
    pub gpus_exclusive: usize,
    /// GPUs needed with MIG packing (first-fit decreasing on slices).
    pub gpus_packed: usize,
    /// `gpus_exclusive / gpus_packed` — the capacity multiplier.
    pub packing_ratio: f64,
    /// Mean slices demanded per job instance.
    pub mean_slices: f64,
    /// Histogram of slice demands, index = slices − 1.
    pub demand_histogram: Vec<usize>,
    /// Overhead of one reconfiguration per placed instance, as a
    /// fraction of the delivered GPU-time (the paper's friction).
    pub repartition_overhead_fraction: f64,
}

/// Runs the packing study over the analyzed jobs' GPU instances.
///
/// Each GPU of a multi-GPU job is one instance (MIG packs per physical
/// GPU). Think of the result as a capacity-planning snapshot: how many
/// physical GPUs would the same resident set need?
///
/// # Panics
///
/// Panics if `views` is empty.
pub fn evaluate(views: &[GpuJobView<'_>], cfg: MigConfig) -> MigStudy {
    assert!(!views.is_empty(), "need jobs");
    let mut demands: Vec<u32> = Vec::new();
    let mut delivered_secs = 0.0;
    for v in views {
        for g in v.per_gpu {
            demands.push(slice_demand(g.sm_util.max, g.mem_size_util.max, cfg.slices_per_gpu));
            delivered_secs += v.sched.run_time();
        }
    }
    let gpus_exclusive = demands.len();
    // First-fit decreasing bin packing on slice demands.
    let mut sorted = demands.clone();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let mut bins: Vec<u32> = Vec::new(); // free slices per open GPU
    for d in sorted {
        match bins.iter_mut().find(|free| **free >= d) {
            Some(free) => *free -= d,
            None => bins.push(cfg.slices_per_gpu - d),
        }
    }
    let gpus_packed = bins.len().max(1);
    let mut hist = vec![0usize; cfg.slices_per_gpu as usize];
    for d in &demands {
        hist[(*d - 1) as usize] += 1;
    }
    let overhead_secs = gpus_exclusive as f64 * (cfg.reset_secs + cfg.checkpoint_secs);
    MigStudy {
        gpus_exclusive,
        gpus_packed,
        packing_ratio: gpus_exclusive as f64 / gpus_packed as f64,
        mean_slices: demands.iter().map(|d| *d as f64).sum::<f64>() / demands.len() as f64,
        demand_histogram: hist,
        repartition_overhead_fraction: overhead_secs / delivered_secs.max(1e-9),
    }
}

/// Renders the study as text.
pub fn render(study: &MigStudy, cfg: MigConfig) -> String {
    let mut s = format!(
        "MIG packing study ({} slices/GPU):\n  exclusive GPUs needed: {}\n  packed GPUs needed:    {}\n  capacity multiplier:   {:.2}×\n  mean slice demand:     {:.2}\n  slice-demand histogram:",
        cfg.slices_per_gpu, study.gpus_exclusive, study.gpus_packed, study.packing_ratio, study.mean_slices
    );
    for (i, n) in study.demand_histogram.iter().enumerate() {
        s.push_str(&format!(" {}:{n}", i + 1));
    }
    s.push_str(&format!(
        "\n  one-repartition-per-instance overhead: {:.3}% of delivered GPU-time\n",
        study.repartition_overhead_fraction * 100.0
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_demand_rounds_up_and_clamps() {
        assert_eq!(slice_demand(0.0, 0.0, 7), 1);
        assert_eq!(slice_demand(14.0, 5.0, 7), 1);
        assert_eq!(slice_demand(15.0, 5.0, 7), 2);
        assert_eq!(slice_demand(50.0, 90.0, 7), 7); // memory binds
        assert_eq!(slice_demand(100.0, 0.0, 7), 7);
        assert_eq!(slice_demand(300.0, 0.0, 7), 7); // clamped
    }

    #[test]
    #[should_panic(expected = "at least one slice")]
    fn zero_slices_rejected() {
        let _ = slice_demand(10.0, 10.0, 0);
    }

    #[test]
    fn ffd_packs_small_demands_tightly() {
        // Direct FFD check through the public API is covered by the
        // integration path; here verify the demand math composes.
        // 7 one-slice jobs fit one GPU; a 7-slice job needs its own.
        let demands = [1u32, 1, 1, 1, 1, 1, 1, 7];
        let mut bins: Vec<u32> = Vec::new();
        let mut sorted = demands.to_vec();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        for d in sorted {
            match bins.iter_mut().find(|free| **free >= d) {
                Some(free) => *free -= d,
                None => bins.push(7 - d),
            }
        }
        assert_eq!(bins.len(), 2);
    }
}
