//! Multi-tier GPU cluster economics (Sec. VIII recommendations).
//!
//! "Instead of buying only the latest-and-fastest GPUs, it might be
//! more cost-effective to mix them with some less-expensive,
//! less-powerful, or even less-reliable GPUs for exploratory and IDE
//! jobs. … This approach also increases the capacity of the data center
//! under the same cost budget and reduces the job wait time."
//!
//! The model: a budget buys a mix of fast GPUs (V100-class, speed 1.0,
//! unit cost 1.0) and slow GPUs (speed `s`, cost `c < s`… or even
//! `c < 1`). A routing policy sends lifecycle classes to tiers. A job
//! routed to the slow tier stretches by the compute-bound share of its
//! time: `slowdown = active · (1/s) + (1 − active)` — idle time does
//! not care how fast the silicon is, which is exactly why dev/IDE jobs
//! are cheap to demote.

use sc_core::GpuJobView;
use sc_workload::LifecycleClass;
use serde::{Deserialize, Serialize};

/// A GPU tier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Tier {
    /// Relative speed (fast tier = 1.0).
    pub speed: f64,
    /// Relative unit cost (fast tier = 1.0).
    pub cost: f64,
}

/// Which classes go to the slow tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RoutingPolicy {
    /// Everything on fast GPUs (the single-tier baseline).
    AllFast,
    /// Exploratory, development, and IDE jobs on the slow tier — the
    /// paper's recommendation.
    DemoteNonMature,
    /// Only development and IDE jobs demoted (conservative variant).
    DemoteDevIde,
}

impl RoutingPolicy {
    /// All policies.
    pub const ALL: [RoutingPolicy; 3] =
        [RoutingPolicy::AllFast, RoutingPolicy::DemoteNonMature, RoutingPolicy::DemoteDevIde];

    /// Whether a class is demoted under this policy.
    pub fn demotes(&self, class: LifecycleClass) -> bool {
        match self {
            RoutingPolicy::AllFast => false,
            RoutingPolicy::DemoteNonMature => class != LifecycleClass::Mature,
            RoutingPolicy::DemoteDevIde => {
                matches!(class, LifecycleClass::Development | LifecycleClass::Ide)
            }
        }
    }

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            RoutingPolicy::AllFast => "all-fast",
            RoutingPolicy::DemoteNonMature => "demote-non-mature",
            RoutingPolicy::DemoteDevIde => "demote-dev/IDE",
        }
    }
}

/// Outcome of one routing policy under a fixed budget.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TierOutcome {
    /// The policy.
    pub policy: RoutingPolicy,
    /// Fraction of GPU demand routed to the slow tier.
    pub demand_slow_fraction: f64,
    /// Cost to serve the whole workload's GPU-hours, relative to the
    /// all-fast baseline (provisioned capacity ∝ demand per tier).
    pub relative_cost: f64,
    /// Mean slowdown of demoted jobs.
    pub demoted_mean_slowdown: f64,
    /// Mean slowdown of mature jobs (should stay 1.0 — the point of the
    /// design).
    pub mature_mean_slowdown: f64,
    /// Extra capacity (fraction) the saved budget buys in fast GPUs if
    /// reinvested.
    pub capacity_gain: f64,
}

/// Per-job slowdown on a tier: idle time is speed-invariant.
pub fn tier_slowdown(active_fraction: f64, speed: f64) -> f64 {
    assert!(speed > 0.0, "tier speed must be positive");
    let active = active_fraction.clamp(0.0, 1.0);
    active / speed + (1.0 - active)
}

/// Evaluates routing policies over the analyzed jobs.
///
/// `active_fraction` per job is estimated from its SM duty cycle
/// (mean/max when the max is positive), the observable proxy for how
/// compute-bound the job is.
///
/// # Panics
///
/// Panics if `views` is empty or tier parameters are non-positive.
pub fn evaluate(views: &[GpuJobView<'_>], slow: Tier) -> Vec<TierOutcome> {
    assert!(!views.is_empty(), "need jobs");
    assert!(slow.speed > 0.0 && slow.cost > 0.0, "tier parameters must be positive");
    let total_hours: f64 = views.iter().map(|v| v.gpu_hours()).sum();
    RoutingPolicy::ALL
        .iter()
        .map(|&policy| {
            let mut slow_hours = 0.0;
            let mut demoted_slow = Vec::new();
            for v in views {
                if policy.demotes(v.class) {
                    let duty = if v.agg.sm_util.max > 0.0 {
                        (v.agg.sm_util.mean / v.agg.sm_util.max).clamp(0.0, 1.0)
                    } else {
                        0.0
                    };
                    let sd = tier_slowdown(duty, slow.speed);
                    demoted_slow.push(sd);
                    // Demand stretches by the slowdown on the slow tier.
                    slow_hours += v.gpu_hours() * sd;
                }
            }
            let fast_hours: f64 =
                views.iter().filter(|v| !policy.demotes(v.class)).map(|v| v.gpu_hours()).sum();
            let relative_cost = (fast_hours * 1.0 + slow_hours * slow.cost) / total_hours.max(1e-9);
            let demoted_mean = if demoted_slow.is_empty() {
                1.0
            } else {
                demoted_slow.iter().sum::<f64>() / demoted_slow.len() as f64
            };
            TierOutcome {
                policy,
                demand_slow_fraction: slow_hours / (slow_hours + fast_hours).max(1e-9),
                relative_cost,
                demoted_mean_slowdown: demoted_mean,
                mature_mean_slowdown: 1.0,
                capacity_gain: (1.0 - relative_cost).max(0.0),
            }
        })
        .collect()
}

/// Renders the study as a text table.
pub fn render(outcomes: &[TierOutcome], slow: Tier) -> String {
    let mut s = format!(
        "Two-tier cluster study (slow tier: speed {:.2}, cost {:.2}):\n  policy              slow-demand%  rel-cost  demoted-slowdown  capacity-gain\n",
        slow.speed, slow.cost
    );
    for o in outcomes {
        s.push_str(&format!(
            "  {:<18} {:>11.1}  {:>8.3}  {:>16.3}  {:>12.1}%\n",
            o.policy.label(),
            o.demand_slow_fraction * 100.0,
            o.relative_cost,
            o.demoted_mean_slowdown,
            o.capacity_gain * 100.0
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_jobs_do_not_slow_on_slow_tier() {
        assert_eq!(tier_slowdown(0.0, 0.5), 1.0);
        // Fully compute-bound doubles on a half-speed GPU.
        assert_eq!(tier_slowdown(1.0, 0.5), 2.0);
        // Half duty: 1.5×.
        assert_eq!(tier_slowdown(0.5, 0.5), 1.5);
    }

    #[test]
    #[should_panic(expected = "tier speed must be positive")]
    fn zero_speed_rejected() {
        let _ = tier_slowdown(0.5, 0.0);
    }
}
