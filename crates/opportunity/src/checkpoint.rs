//! Checkpoint/restart economics for non-mature jobs (Sec. VI takeaway).
//!
//! "A considerable number of jobs on the Supercloud system are also
//! development or IDE jobs that run until they encounter a failure or
//! timeout. To ensure that these jobs do not lose their state, there is
//! a growing need for architectural and system support for low-overhead
//! checkpoint/restart mechanisms."
//!
//! The model is the classical Young/Daly analysis: with checkpoints
//! every `tau` seconds, each costing `w` seconds of overhead, a job
//! killed at time `T` loses at most the work since its last checkpoint
//! (expected `tau / 2`) instead of everything since its last *manual*
//! save (here: everything, `T`).

use sc_core::GpuJobView;
use sc_telemetry::record::ExitStatus;
use serde::{Deserialize, Serialize};

/// Checkpointing configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CheckpointConfig {
    /// Time to write one checkpoint, seconds (model state → shared SSD;
    /// a few GB at a few GB/s).
    pub write_secs: f64,
    /// Mean time between involuntary terminations, seconds — used by
    /// the Young interval; for user-killed/timeout workloads the
    /// relevant horizon is the wall-clock limit.
    pub mtti_secs: f64,
}

impl CheckpointConfig {
    /// Young's optimal checkpoint interval: `sqrt(2 · w · MTTI)`.
    ///
    /// # Panics
    ///
    /// Panics unless both parameters are positive.
    pub fn young_interval(&self) -> f64 {
        assert!(self.write_secs > 0.0 && self.mtti_secs > 0.0, "parameters must be positive");
        (2.0 * self.write_secs * self.mtti_secs).sqrt()
    }

    /// Bridges the analytical model into the event loop: a
    /// [`sc_cluster::CheckpointPolicy`] running at this config's Young
    /// interval. Plug it into [`sc_cluster::SimConfig::checkpoint`] and
    /// checkpointable jobs killed by injected failures resume from
    /// their last interval instead of restarting from scratch.
    ///
    /// # Panics
    ///
    /// Panics unless both parameters are positive (via
    /// [`CheckpointConfig::young_interval`]).
    pub fn sim_policy(&self) -> sc_cluster::CheckpointPolicy {
        sc_cluster::CheckpointPolicy {
            interval_secs: self.young_interval(),
            write_secs: self.write_secs,
        }
    }

    /// A config matching a failure model's observed mean time to
    /// interrupt, for closing the loop: measure MTTI from a goodput
    /// run, derive the optimal interval, re-run with checkpointing.
    pub fn for_mtti(mtti_secs: f64) -> Self {
        CheckpointConfig { write_secs: 30.0, mtti_secs }
    }
}

/// Outcome of applying checkpointing to the killed-work population.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CheckpointStudy {
    /// The interval used, seconds.
    pub interval_secs: f64,
    /// GPU-hours lost without checkpointing (all work of jobs that died
    /// by failure or timeout).
    pub lost_hours_baseline: f64,
    /// GPU-hours lost with checkpointing (expected half-interval per
    /// victim) plus the checkpoint overhead paid by every job.
    pub lost_hours_checkpointed: f64,
    /// Overhead GPU-hours spent writing checkpoints.
    pub overhead_hours: f64,
    /// Net saving as a fraction of the baseline loss.
    pub saving_fraction: f64,
    /// Jobs that benefited (died involuntarily).
    pub victims: usize,
}

/// Runs the study over the analyzed jobs.
///
/// Victims are jobs whose exit is a failure, timeout, or node failure —
/// the populations the paper says lose state. Every GPU job pays the
/// periodic write overhead while running.
///
/// # Panics
///
/// Panics if `views` is empty or the interval is non-positive.
pub fn evaluate(views: &[GpuJobView<'_>], interval_secs: f64, write_secs: f64) -> CheckpointStudy {
    assert!(!views.is_empty(), "need jobs");
    assert!(interval_secs > 0.0, "interval must be positive");
    let mut lost_baseline = 0.0;
    let mut lost_ckpt = 0.0;
    let mut overhead = 0.0;
    let mut victims = 0;
    for v in views {
        let gpus = v.sched.gpus_requested as f64;
        let run = v.sched.run_time();
        // Overhead: one write every interval while running.
        overhead += (run / interval_secs) * write_secs * gpus / 3600.0;
        let dies = matches!(
            v.sched.exit,
            ExitStatus::Failed | ExitStatus::Timeout | ExitStatus::NodeFailure
        );
        if dies {
            victims += 1;
            lost_baseline += run * gpus / 3600.0;
            lost_ckpt += (interval_secs / 2.0).min(run) * gpus / 3600.0;
        }
    }
    let with_ckpt = lost_ckpt + overhead;
    CheckpointStudy {
        interval_secs,
        lost_hours_baseline: lost_baseline,
        lost_hours_checkpointed: with_ckpt,
        overhead_hours: overhead,
        saving_fraction: if lost_baseline > 0.0 {
            ((lost_baseline - with_ckpt) / lost_baseline).max(-1.0)
        } else {
            0.0
        },
        victims,
    }
}

/// Sweeps checkpoint intervals and returns `(interval, study)` rows.
pub fn sweep(views: &[GpuJobView<'_>], intervals: &[f64], write_secs: f64) -> Vec<CheckpointStudy> {
    intervals.iter().map(|&i| evaluate(views, i, write_secs)).collect()
}

/// Renders a sweep as a text table.
pub fn render(studies: &[CheckpointStudy]) -> String {
    let mut s = String::from(
        "Checkpoint/restart study:\n  interval(s)  lost-baseline(h)  lost-ckpt(h)  overhead(h)  saving%\n",
    );
    for st in studies {
        s.push_str(&format!(
            "  {:>10.0}  {:>16.1}  {:>12.1}  {:>11.1}  {:>6.1}\n",
            st.interval_secs,
            st.lost_hours_baseline,
            st.lost_hours_checkpointed,
            st.overhead_hours,
            st.saving_fraction * 100.0
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn young_interval_formula() {
        let cfg = CheckpointConfig { write_secs: 30.0, mtti_secs: 43_200.0 };
        let tau = cfg.young_interval();
        assert!((tau - (2.0f64 * 30.0 * 43_200.0).sqrt()).abs() < 1e-9);
        assert!(tau > 1000.0 && tau < 3000.0);
    }

    #[test]
    #[should_panic(expected = "parameters must be positive")]
    fn young_rejects_zero() {
        let _ = CheckpointConfig { write_secs: 0.0, mtti_secs: 1.0 }.young_interval();
    }

    #[test]
    fn sim_policy_carries_young_interval_into_the_event_loop() {
        let cfg = CheckpointConfig::for_mtti(43_200.0);
        let policy = cfg.sim_policy();
        assert_eq!(policy.interval_secs, cfg.young_interval());
        assert_eq!(policy.write_secs, cfg.write_secs);
        // The policy is the type the simulator consumes.
        let sim_cfg =
            sc_cluster::SimConfig { checkpoint: Some(policy), ..sc_cluster::SimConfig::default() };
        assert!(sim_cfg.checkpoint.is_some());
    }
}
