//! Power capping and over-provisioning (Sec. III takeaway, Fig. 9b).
//!
//! "An effective way to use this power is to over-provision the system
//! with more GPUs … this would require capping the power consumption of
//! the GPUs so as to prevent a power failure." This module quantifies
//! the trade: a cap of `C` watts lets the same facility budget host
//! `floor(448 · 300 / C)` GPUs, at the cost of slowing the (few) jobs
//! whose demand exceeds the cap.

use sc_core::GpuJobView;
use serde::{Deserialize, Serialize};

/// DVFS sensitivity, re-exported from the shared power-constants module
/// (one source of truth for every crate that models capping).
pub use sc_telemetry::gpu_power::DVFS_PERF_PER_POWER;

/// The per-cap outcome of the over-provisioning study.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CapOutcome {
    /// The cap, watts.
    pub cap_w: f64,
    /// GPUs the facility budget supports at this cap.
    pub gpus_supported: u32,
    /// Fraction of jobs with any slowdown.
    pub impacted_fraction: f64,
    /// Mean job slowdown factor (1.0 = no impact).
    pub mean_slowdown: f64,
    /// p99 job slowdown factor.
    pub p99_slowdown: f64,
    /// Cluster throughput relative to the uncapped 448-GPU baseline:
    /// `gpus_supported / 448 / mean_slowdown`.
    pub relative_throughput: f64,
}

/// The full sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverProvisionStudy {
    /// Outcomes, one per cap level, ascending.
    pub outcomes: Vec<CapOutcome>,
}

/// Expected slowdown of one job under a cap, from its power aggregates.
///
/// The job's power trace is approximated as a two-level process: an
/// elevated "peak" level at `max` for a fraction of time `f` and a
/// baseline elsewhere, with `f` chosen to reproduce the observed mean.
/// Only the peak fraction is clipped, and clipped power converts to
/// slowdown through [`DVFS_PERF_PER_POWER`].
pub fn job_slowdown(avg_w: f64, max_w: f64, idle_w: f64, cap_w: f64) -> f64 {
    if max_w <= cap_w || max_w <= idle_w {
        return 1.0;
    }
    // Fraction of time at the peak level that reproduces the mean.
    let peak_fraction = ((avg_w - idle_w) / (max_w - idle_w)).clamp(0.0, 1.0);
    let clipped = (max_w - cap_w) / max_w;
    let perf_loss = DVFS_PERF_PER_POWER * clipped * peak_fraction;
    1.0 / (1.0 - perf_loss.min(0.9))
}

impl OverProvisionStudy {
    /// Runs the sweep over `caps` for the analyzed GPU jobs.
    ///
    /// `facility_budget_w` is the provisioned power (448 × 300 W for
    /// Supercloud); `gpu_tdp_w` bounds a single GPU.
    ///
    /// # Panics
    ///
    /// Panics if `views` is empty or any cap is non-positive.
    pub fn run(
        views: &[GpuJobView<'_>],
        caps: &[f64],
        facility_budget_w: f64,
        gpu_tdp_w: f64,
        idle_w: f64,
    ) -> Self {
        assert!(!views.is_empty(), "need GPU jobs");
        let baseline_gpus = (facility_budget_w / gpu_tdp_w).floor();
        let outcomes = caps
            .iter()
            .map(|&cap_w| {
                assert!(cap_w > 0.0, "cap must be positive");
                let mut slowdowns: Vec<f64> = views
                    .iter()
                    .map(|v| job_slowdown(v.agg.power_w.mean, v.agg.power_w.max, idle_w, cap_w))
                    .collect();
                slowdowns.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                let impacted =
                    slowdowns.iter().filter(|s| **s > 1.0).count() as f64 / slowdowns.len() as f64;
                let mean_slowdown = slowdowns.iter().sum::<f64>() / slowdowns.len() as f64;
                let p99 = slowdowns[((slowdowns.len() - 1) as f64 * 0.99) as usize];
                let gpus_supported = (facility_budget_w / cap_w.min(gpu_tdp_w)).floor() as u32;
                CapOutcome {
                    cap_w,
                    gpus_supported,
                    impacted_fraction: impacted,
                    mean_slowdown,
                    p99_slowdown: p99,
                    relative_throughput: gpus_supported as f64 / baseline_gpus / mean_slowdown,
                }
            })
            .collect();
        OverProvisionStudy { outcomes }
    }

    /// The cap with the highest relative throughput.
    ///
    /// # Panics
    ///
    /// Panics if the study is empty (cannot happen after `run`).
    pub fn best(&self) -> &CapOutcome {
        self.outcomes
            .iter()
            .max_by(|a, b| {
                a.relative_throughput
                    .partial_cmp(&b.relative_throughput)
                    .expect("finite throughput")
            })
            .expect("non-empty study")
    }

    /// Renders the sweep as a text table.
    pub fn render(&self) -> String {
        let mut s = String::from(
            "Over-provisioning under power caps:\n  cap(W)  GPUs  impacted%  mean-slow  p99-slow  rel-throughput\n",
        );
        for o in &self.outcomes {
            s.push_str(&format!(
                "  {:>5.0}  {:>4}  {:>8.1}  {:>8.3}  {:>8.3}  {:>8.3}\n",
                o.cap_w,
                o.gpus_supported,
                o.impacted_fraction * 100.0,
                o.mean_slowdown,
                o.p99_slowdown,
                o.relative_throughput
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncapped_job_unaffected() {
        assert_eq!(job_slowdown(45.0, 87.0, 24.0, 150.0), 1.0);
        assert_eq!(job_slowdown(45.0, 150.0, 24.0, 150.0), 1.0);
    }

    #[test]
    fn capped_job_slows_mildly() {
        // Peak 200 W, cap 150 W: 25% of power clipped during peaks.
        let s = job_slowdown(100.0, 200.0, 24.0, 150.0);
        assert!(s > 1.0 && s < 1.15, "slowdown {s}");
        // A hotter job slows more.
        let hotter = job_slowdown(180.0, 250.0, 24.0, 150.0);
        assert!(hotter > s);
    }

    #[test]
    fn slowdown_monotone_in_cap() {
        let mut prev = f64::INFINITY;
        for cap in [100.0, 150.0, 200.0, 250.0, 300.0] {
            let s = job_slowdown(120.0, 280.0, 24.0, cap);
            assert!(s <= prev + 1e-12, "cap {cap}: {s} > {prev}");
            prev = s;
        }
    }

    #[test]
    fn degenerate_max_below_idle_is_safe() {
        assert_eq!(job_slowdown(10.0, 20.0, 24.0, 15.0), 1.0);
    }
}
