//! User-behaviour prediction baselines (Sec. IV takeaway).
//!
//! "This makes it difficult to predict the behavior of individual
//! users. This is an opportunity for designing new strategies to apply
//! ML-based techniques to predict user behavior." Before reaching for
//! ML, a resource manager would try the classical estimators — last
//! value, per-user running mean, global median. This module measures
//! how badly they do on the simulated population, *quantifying* the
//! paper's claim that per-user history barely beats global statistics
//! when within-user CoV is ~155%.

use sc_core::GpuJobView;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The estimators compared.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Predictor {
    /// Predict the user's previous job's value.
    LastValue,
    /// Predict the running mean of the user's previous jobs.
    UserMean,
    /// Predict the running median of all jobs seen so far, any user.
    GlobalMedian,
}

impl Predictor {
    /// All predictors in presentation order.
    pub const ALL: [Predictor; 3] =
        [Predictor::LastValue, Predictor::UserMean, Predictor::GlobalMedian];

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            Predictor::LastValue => "last-value",
            Predictor::UserMean => "user-mean",
            Predictor::GlobalMedian => "global-median",
        }
    }
}

/// Accuracy of one predictor on one target metric.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PredictorScore {
    /// The estimator.
    pub predictor: Predictor,
    /// Median absolute percentage error over all predictions.
    pub median_ape: f64,
    /// Fraction of predictions within 2× of the truth (the accuracy a
    /// backfill scheduler would need from a wall-time estimate).
    pub within_2x: f64,
    /// Number of predictions scored.
    pub predictions: usize,
}

/// The prediction study over run times and SM utilization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictionStudy {
    /// Run-time prediction scores.
    pub runtime: Vec<PredictorScore>,
    /// Job-mean SM utilization prediction scores.
    pub sm_util: Vec<PredictorScore>,
}

fn score<F: Fn(&GpuJobView) -> f64>(
    views: &[GpuJobView<'_>],
    value: F,
    predictor: Predictor,
) -> PredictorScore {
    // Jobs in submission order (trace ids are submission-ordered).
    let mut order: Vec<&GpuJobView> = views.iter().collect();
    order.sort_by_key(|v| v.sched.job_id);
    let mut last: HashMap<_, f64> = HashMap::new();
    let mut sums: HashMap<_, (f64, usize)> = HashMap::new();
    let mut global: Vec<f64> = Vec::new();
    let mut apes: Vec<f64> = Vec::new();
    let mut hits = 0usize;
    let mut n = 0usize;
    for v in order {
        let truth = value(v).max(1e-9);
        let prediction = match predictor {
            Predictor::LastValue => last.get(&v.sched.user).copied(),
            Predictor::UserMean => sums.get(&v.sched.user).map(|(s, c)| s / *c as f64),
            Predictor::GlobalMedian => {
                // `global` is kept sorted by insertion below.
                if global.is_empty() {
                    None
                } else {
                    Some(global[global.len() / 2])
                }
            }
        };
        if let Some(p) = prediction {
            let ape = (p - truth).abs() / truth;
            apes.push(ape);
            if truth / 2.0 <= p && p <= truth * 2.0 {
                hits += 1;
            }
            n += 1;
        }
        last.insert(v.sched.user, truth);
        let e = sums.entry(v.sched.user).or_insert((0.0, 0));
        e.0 += truth;
        e.1 += 1;
        let pos = global.partition_point(|g| *g < truth);
        global.insert(pos, truth);
    }
    apes.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    PredictorScore {
        predictor,
        median_ape: apes.get(apes.len().saturating_sub(1) / 2).copied().unwrap_or(f64::NAN),
        within_2x: if n > 0 { hits as f64 / n as f64 } else { 0.0 },
        predictions: n,
    }
}

/// Runs the study.
///
/// # Panics
///
/// Panics if `views` is empty.
pub fn evaluate(views: &[GpuJobView<'_>]) -> PredictionStudy {
    assert!(!views.is_empty(), "need jobs");
    let runtime = Predictor::ALL.iter().map(|&p| score(views, |v| v.sched.run_time(), p)).collect();
    let sm_util = Predictor::ALL.iter().map(|&p| score(views, |v| v.agg.sm_util.mean, p)).collect();
    PredictionStudy { runtime, sm_util }
}

/// Renders the study as text.
pub fn render(study: &PredictionStudy) -> String {
    let mut s = String::from(
        "User-behaviour prediction baselines:\n  target    predictor       median-APE  within-2x\n",
    );
    for (target, scores) in [("runtime", &study.runtime), ("SM util", &study.sm_util)] {
        for sc in scores {
            s.push_str(&format!(
                "  {:<8}  {:<14} {:>9.1}%  {:>8.1}%\n",
                target,
                sc.predictor.label(),
                sc.median_ape * 100.0,
                sc.within_2x * 100.0
            ));
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predictor_labels_unique() {
        let labels: Vec<_> = Predictor::ALL.iter().map(|p| p.label()).collect();
        let mut d = labels.clone();
        d.dedup();
        assert_eq!(labels.len(), d.len());
    }
}
