//! The paper's opportunity studies, quantified on the simulated
//! Supercloud workload.
//!
//! Secs. III, VI, and VIII of the paper identify four system-design
//! opportunities opened by the characterization. Each module here turns
//! one of them into a measurable experiment over the same job
//! population the figures are computed from:
//!
//! - [`powercap`]: power capping + over-provisioning ("power-capping
//!   can be a promising method to conserve power and/or improve
//!   throughput").
//! - [`colocation`]: GPU sharing policies with a phase-level
//!   interference simulator ("the opportunity to share non-contending
//!   GPU resources among concurrent jobs").
//! - [`tiering`]: multi-tier GPU cluster economics ("it might be more
//!   cost-effective to mix [fast GPUs] with some less-expensive,
//!   less-powerful … GPUs for exploratory and IDE jobs").
//! - [`checkpoint`]: Young-interval checkpoint/restart for the
//!   failure/timeout population ("a growing need for … low-overhead
//!   checkpoint/restart mechanisms").
//!
//! [`OpportunityReport::run`] executes all four with the paper-guided
//! default parameters.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod checkpoint;
pub mod colocation;
pub mod mig;
pub mod powercap;
pub mod prediction;
pub mod tiering;

pub use checkpoint::{CheckpointConfig, CheckpointStudy};
pub use colocation::{Candidate, ColocationResult, PairingPolicy};
pub use powercap::{CapOutcome, OverProvisionStudy};
pub use tiering::{RoutingPolicy, Tier, TierOutcome};

use sc_core::GpuJobView;

/// All four opportunity studies over one job population.
#[derive(Debug, Clone)]
pub struct OpportunityReport {
    /// Power-cap sweep (Fig. 9b extension).
    pub powercap: OverProvisionStudy,
    /// Co-location policy comparison.
    pub colocation: Vec<ColocationResult>,
    /// Two-tier economics.
    pub tiering: Vec<TierOutcome>,
    /// The slow tier evaluated.
    pub slow_tier: Tier,
    /// Checkpoint-interval sweep.
    pub checkpoint: Vec<checkpoint::CheckpointStudy>,
    /// MIG slice-packing study.
    pub mig: mig::MigStudy,
    /// MIG configuration evaluated.
    pub mig_config: mig::MigConfig,
    /// User-behaviour prediction baselines.
    pub prediction: prediction::PredictionStudy,
}

impl OpportunityReport {
    /// Runs every study with the default, paper-guided parameters.
    ///
    /// `colocation_sample` bounds how many single-GPU jobs feed the
    /// pairing simulator (it integrates phase processes pairwise); jobs
    /// are taken in id order for determinism.
    ///
    /// # Panics
    ///
    /// Panics if `views` is empty.
    pub fn run(views: &[GpuJobView<'_>], colocation_sample: usize) -> Self {
        assert!(!views.is_empty(), "need jobs");
        let caps = [100.0, 150.0, 200.0, 250.0, 300.0];
        let powercap = OverProvisionStudy::run(
            views,
            &caps,
            sc_telemetry::gpu_power::FACILITY_BUDGET_W,
            sc_telemetry::gpu_power::V100_TDP_W,
            sc_telemetry::gpu_power::V100_IDLE_W,
        );

        // Co-location candidates: each sampled single-GPU job is given a
        // synthetic phase process matching its *observed* mean levels and
        // SM duty cycle — the policy only ever sees what telemetry saw.
        let mut candidates = Vec::new();
        for (i, v) in views.iter().filter(|v| v.per_gpu.len() == 1).enumerate() {
            if candidates.len() >= colocation_sample {
                break;
            }
            let duration = v.sched.run_time().clamp(120.0, 14_400.0);
            let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(i as u64);
            let active = if v.agg.sm_util.max > 0.0 {
                (v.agg.sm_util.mean / v.agg.sm_util.max).clamp(0.02, 0.98)
            } else {
                0.02
            };
            let truth = sc_workload::truth::generate_gpu_truth(
                &mut rng,
                &sc_workload::TruthParams {
                    duration: duration * 1.1 + 60.0,
                    active_fraction: active,
                    mean_levels: sc_workload::ResourceLevels {
                        sm: v.agg.sm_util.mean,
                        mem: v.agg.mem_util.mean,
                        mem_size: v.agg.mem_size_util.mean,
                        pcie_tx: v.agg.pcie_tx.mean,
                        pcie_rx: v.agg.pcie_rx.mean,
                    },
                    ..Default::default()
                },
            );
            candidates.push(Candidate { truth, duration, mean_sm: v.agg.sm_util.mean });
        }
        let colocation = PairingPolicy::ALL
            .iter()
            .map(|&p| colocation::evaluate_policy(&candidates, p))
            .collect();

        let slow_tier = Tier { speed: 0.5, cost: 0.35 };
        let tiering = tiering::evaluate(views, slow_tier);

        let checkpoint = checkpoint::sweep(views, &[300.0, 900.0, 1_800.0, 3_600.0, 7_200.0], 30.0);

        let mig_config = mig::MigConfig::default();
        let mig = mig::evaluate(views, mig_config);
        let prediction = prediction::evaluate(views);

        OpportunityReport {
            powercap,
            colocation,
            tiering,
            slow_tier,
            checkpoint,
            mig,
            mig_config,
            prediction,
        }
    }

    /// Renders every study as text.
    pub fn render(&self) -> String {
        let mut s = String::from("================ opportunity studies ================\n\n");
        s.push_str(&self.powercap.render());
        s.push('\n');
        s.push_str(
            "Co-location policies (single-GPU sample):\n  policy              pairs  mean-slowdown  p95-slowdown  rel-throughput\n",
        );
        for r in &self.colocation {
            s.push_str(&format!(
                "  {:<18} {:>5}  {:>13.3}  {:>12.3}  {:>13.3}\n",
                format!("{:?}", r.policy),
                r.pairs,
                r.mean_slowdown,
                r.p95_slowdown,
                r.relative_throughput
            ));
        }
        s.push('\n');
        s.push_str(&tiering::render(&self.tiering, self.slow_tier));
        s.push('\n');
        s.push_str(&checkpoint::render(&self.checkpoint));
        s.push('\n');
        s.push_str(&mig::render(&self.mig, self.mig_config));
        s.push('\n');
        s.push_str(&prediction::render(&self.prediction));
        s
    }
}

impl PairingPolicy {
    /// All policies in presentation order.
    pub const ALL: [PairingPolicy; 4] = [
        PairingPolicy::Exclusive,
        PairingPolicy::Fifo,
        PairingPolicy::UtilizationAware,
        PairingPolicy::TimeSharing,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_cluster::{SimConfig, SimOutput, Simulation};
    use sc_workload::{Trace, WorkloadSpec};
    use std::sync::OnceLock;

    static SIM: OnceLock<SimOutput> = OnceLock::new();

    fn sim() -> &'static SimOutput {
        SIM.get_or_init(|| {
            let mut spec = WorkloadSpec::supercloud().scaled(0.01);
            spec.users = 48;
            let trace = Trace::generate(&spec, 7_070);
            Simulation::new(SimConfig { detailed_series_jobs: 40, ..Default::default() })
                .run(&trace)
        })
    }

    #[test]
    fn full_report_runs_and_renders() {
        let views = sc_core::gpu_views(&sim().dataset);
        let report = OpportunityReport::run(&views, 40);
        let text = report.render();
        assert!(text.contains("Over-provisioning"));
        assert!(text.contains("Co-location"));
        assert!(text.contains("Two-tier"));
        assert!(text.contains("Checkpoint"));
        assert_eq!(report.colocation.len(), 4);
        assert_eq!(report.tiering.len(), 3);
    }

    #[test]
    fn power_cap_throughput_peaks_below_tdp() {
        // The paper's takeaway: most jobs draw far below TDP, so a cap
        // plus over-provisioning raises throughput. The best cap must
        // not be the uncapped 300 W point.
        let views = sc_core::gpu_views(&sim().dataset);
        let report = OpportunityReport::run(&views, 10);
        let best = report.powercap.best();
        assert!(best.cap_w < 300.0, "best cap {}", best.cap_w);
        assert!(best.relative_throughput > 1.2, "throughput {}", best.relative_throughput);
    }

    #[test]
    fn demoting_non_mature_jobs_cuts_cost_without_touching_mature() {
        let views = sc_core::gpu_views(&sim().dataset);
        let report = OpportunityReport::run(&views, 10);
        let demote = report
            .tiering
            .iter()
            .find(|o| o.policy == RoutingPolicy::DemoteNonMature)
            .expect("policy present");
        assert!(demote.relative_cost < 1.0, "cost {}", demote.relative_cost);
        assert_eq!(demote.mature_mean_slowdown, 1.0);
        assert!(demote.capacity_gain > 0.0);
    }

    #[test]
    fn checkpointing_saves_lost_hours_at_sane_intervals() {
        let views = sc_core::gpu_views(&sim().dataset);
        let report = OpportunityReport::run(&views, 10);
        // At a 30-minute interval the saving must be strongly positive
        // (IDE jobs alone lose 12-24 h of state each).
        let st = report.checkpoint.iter().find(|s| s.interval_secs == 1_800.0).unwrap();
        assert!(st.saving_fraction > 0.5, "saving {}", st.saving_fraction);
        assert!(st.victims > 0);
    }

    #[test]
    fn mig_packing_multiplies_capacity() {
        // With median peak SM ~60-100% but many near-idle dev/IDE jobs,
        // 7-slice packing must fit the same resident set on fewer GPUs.
        let views = sc_core::gpu_views(&sim().dataset);
        let report = OpportunityReport::run(&views, 10);
        assert!(report.mig.packing_ratio > 1.1, "ratio {}", report.mig.packing_ratio);
        assert!(report.mig.gpus_packed < report.mig.gpus_exclusive);
        let total: usize = report.mig.demand_histogram.iter().sum();
        assert_eq!(total, report.mig.gpus_exclusive);
    }

    #[test]
    fn user_history_barely_beats_global_statistics() {
        // The paper's Sec. IV point: within-user CoV ~155% makes
        // per-user history a weak predictor. The user-mean estimator
        // must not dominate the global median (within 2× hit-rate gap
        // under 25 points).
        let views = sc_core::gpu_views(&sim().dataset);
        let report = OpportunityReport::run(&views, 10);
        let get = |p: prediction::Predictor| {
            report.prediction.runtime.iter().find(|s| s.predictor == p).expect("scored").within_2x
        };
        let user = get(prediction::Predictor::UserMean);
        let global = get(prediction::Predictor::GlobalMedian);
        assert!(
            user - global < 0.25,
            "user-mean {user} vs global-median {global}: history too informative"
        );
        // And nothing is actually *good*: median APE stays large.
        let ape =
            report.prediction.runtime.iter().map(|s| s.median_ape).fold(f64::INFINITY, f64::min);
        assert!(ape > 0.3, "best median APE {ape} — predictability too high");
    }

    #[test]
    fn colocation_throughput_exceeds_exclusive() {
        let views = sc_core::gpu_views(&sim().dataset);
        let report = OpportunityReport::run(&views, 40);
        let aware = report
            .colocation
            .iter()
            .find(|r| r.policy == PairingPolicy::UtilizationAware)
            .expect("policy present");
        assert!(aware.relative_throughput > 1.0, "throughput {}", aware.relative_throughput);
    }
}
