//! GPU co-location policies (Sec. III takeaways; related work:
//! Gandiva's time-sharing, GSLICE/Gavel's space-sharing).
//!
//! The paper's opening for this study: "Most GPU-accelerated jobs tend
//! to have low utilization … This property indicates the opportunity to
//! share non-contending GPU resources among concurrent jobs", tempered
//! by "resource utilization can vary greatly during job execution …
//! resource sharing techniques should consider the temporal variations
//! and bottlenecks".
//!
//! This module pairs jobs on one GPU and *simulates the contention*
//! over their piecewise phase processes: in every overlapped segment
//! the jobs' demands add, and when a resource oversubscribes both jobs
//! slow proportionally. That makes the trade the paper describes
//! measurable: packing raises machine throughput while interference
//! stretches individual jobs.

use sc_telemetry::metrics::GpuResource;
use sc_workload::{GpuGroundTruth, PowerModel};
use serde::{Deserialize, Serialize};

/// How candidate jobs are paired onto GPUs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PairingPolicy {
    /// No sharing: every job gets a dedicated GPU (the production
    /// baseline — "Supercloud does not co-locate jobs on the same GPU").
    Exclusive,
    /// Adjacent jobs in submission order share, blind to utilization.
    Fifo,
    /// Jobs sorted by mean SM utilization, then the least-utilizing job
    /// is paired with the most-utilizing one (the paper's
    /// "non-contending" heuristic).
    UtilizationAware,
    /// Gandiva-style time-sharing of FIFO pairs: only one job owns the
    /// GPU at a time, swapped at phase boundaries; a job's idle (data /
    /// CPU) phases proceed without the GPU, which is where the win
    /// comes from.
    TimeSharing,
}

/// One co-located pair's outcome.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PairOutcome {
    /// Slowdown of the first job (≥ 1).
    pub slowdown_a: f64,
    /// Slowdown of the second job (≥ 1).
    pub slowdown_b: f64,
    /// GPU-time saved versus running the two jobs back to back on one
    /// GPU: `(t_a + t_b - makespan) / (t_a + t_b)`.
    pub packing_gain: f64,
}

/// Aggregate results of one policy over a job population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColocationResult {
    /// The policy evaluated.
    pub policy: PairingPolicy,
    /// Number of pairs formed.
    pub pairs: usize,
    /// Mean job slowdown across all co-located jobs.
    pub mean_slowdown: f64,
    /// 95th-percentile job slowdown.
    pub p95_slowdown: f64,
    /// Throughput relative to exclusive GPUs: jobs completed per
    /// GPU-second, normalized to the exclusive baseline.
    pub relative_throughput: f64,
}

/// Simulates two jobs sharing one GPU.
///
/// Both jobs run concurrently from `t = 0`. In each merged phase
/// segment, per-resource demands add; if a resource's total exceeds
/// 100%, both jobs' progress rates in that segment scale by
/// `100 / total` for the worst such resource (the GPU rounds down to
/// the binding constraint). Each job finishes when it accumulates its
/// standalone duration of progress.
///
/// Returns the pair outcome; `duration_a/b` are the jobs' standalone
/// run times (seconds).
///
/// # Panics
///
/// Panics if either duration is not positive.
pub fn simulate_pair(
    a: &GpuGroundTruth,
    b: &GpuGroundTruth,
    duration_a: f64,
    duration_b: f64,
) -> PairOutcome {
    assert!(duration_a > 0.0 && duration_b > 0.0, "durations must be positive");
    let power = PowerModel::v100();
    // March wall-clock time over merged phase boundaries, tracking each
    // job's accumulated progress (in its own job-relative seconds).
    let mut wall = 0.0f64;
    let mut progress_a = 0.0f64;
    let mut progress_b = 0.0f64;
    let mut end_a = None;
    let mut end_b = None;
    // Resolution: sub-sample phases at fixed steps for simplicity and
    // robustness (phase boundaries are irregular between the two jobs).
    // A 5-second step resolves every phase the generator emits (minimum
    // phase length 1 s appears only at truncation).
    const STEP: f64 = 5.0;
    let max_wall = (duration_a + duration_b) * 2.0 + 60.0;
    while (end_a.is_none() || end_b.is_none()) && wall < max_wall {
        let a_running = end_a.is_none();
        let b_running = end_b.is_none();
        let sa = if a_running {
            Some(a.state_at(progress_a.min(duration_a - 1e-6).max(0.0), &power))
        } else {
            None
        };
        let sb = if b_running {
            Some(b.state_at(progress_b.min(duration_b - 1e-6).max(0.0), &power))
        } else {
            None
        };
        // Worst oversubscription across contended resources.
        let mut scale = 1.0f64;
        if let (Some(sa), Some(sb)) = (&sa, &sb) {
            for r in GpuResource::UTILIZATION {
                let total = sa.resource(r) + sb.resource(r);
                if total > 100.0 {
                    scale = scale.min(100.0 / total);
                }
            }
        }
        if a_running {
            progress_a += STEP * scale;
            if progress_a >= duration_a {
                end_a = Some(wall + STEP);
            }
        }
        if b_running {
            progress_b += STEP * scale;
            if progress_b >= duration_b {
                end_b = Some(wall + STEP);
            }
        }
        wall += STEP;
    }
    let end_a = end_a.unwrap_or(max_wall);
    let end_b = end_b.unwrap_or(max_wall);
    let makespan = end_a.max(end_b);
    PairOutcome {
        slowdown_a: end_a / duration_a,
        slowdown_b: end_b / duration_b,
        packing_gain: ((duration_a + duration_b - makespan) / (duration_a + duration_b)).max(0.0),
    }
}

/// Simulates Gandiva-style time-sharing: the GPU is granted to at most
/// one job per step; a job in an idle phase progresses without the GPU
/// (its data pipeline runs on the host), and when both jobs want the
/// GPU they alternate.
///
/// # Panics
///
/// Panics if either duration is not positive.
pub fn simulate_time_shared_pair(
    a: &GpuGroundTruth,
    b: &GpuGroundTruth,
    duration_a: f64,
    duration_b: f64,
) -> PairOutcome {
    assert!(duration_a > 0.0 && duration_b > 0.0, "durations must be positive");
    const STEP: f64 = 5.0;
    let active = |t: &GpuGroundTruth, progress: f64, cap: f64| -> bool {
        t.phase_at(progress.min(cap - 1e-6).max(0.0)).active
    };
    let mut wall = 0.0f64;
    let mut progress_a = 0.0f64;
    let mut progress_b = 0.0f64;
    let mut end_a: Option<f64> = None;
    let mut end_b: Option<f64> = None;
    let mut turn_a = true; // round-robin owner when both contend
    let max_wall = (duration_a + duration_b) * 2.0 + 60.0;
    while (end_a.is_none() || end_b.is_none()) && wall < max_wall {
        let a_runs = end_a.is_none();
        let b_runs = end_b.is_none();
        let a_active = a_runs && active(a, progress_a, duration_a);
        let b_active = b_runs && active(b, progress_b, duration_b);
        let (adv_a, adv_b) = match (a_active, b_active) {
            (true, true) => {
                // Contention: the owner advances; the other stalls.
                turn_a = !turn_a;
                if turn_a {
                    (a_runs, false)
                } else {
                    (false, b_runs)
                }
            }
            // Idle phases (or a finished peer) cost nothing.
            _ => (a_runs, b_runs),
        };
        if adv_a {
            progress_a += STEP;
            if progress_a >= duration_a {
                end_a = Some(wall + STEP);
            }
        }
        if adv_b {
            progress_b += STEP;
            if progress_b >= duration_b {
                end_b = Some(wall + STEP);
            }
        }
        wall += STEP;
    }
    let end_a = end_a.unwrap_or(max_wall);
    let end_b = end_b.unwrap_or(max_wall);
    let makespan = end_a.max(end_b);
    PairOutcome {
        slowdown_a: end_a / duration_a,
        slowdown_b: end_b / duration_b,
        packing_gain: ((duration_a + duration_b - makespan) / (duration_a + duration_b)).max(0.0),
    }
}

/// A co-location candidate: a job's single-GPU ground truth and its
/// standalone duration.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The GPU process.
    pub truth: GpuGroundTruth,
    /// Standalone run time, seconds.
    pub duration: f64,
    /// Job-mean SM utilization (pairing key).
    pub mean_sm: f64,
}

/// Evaluates a pairing policy over candidates.
///
/// # Panics
///
/// Panics if `candidates` is empty.
pub fn evaluate_policy(candidates: &[Candidate], policy: PairingPolicy) -> ColocationResult {
    assert!(!candidates.is_empty(), "need candidates");
    if policy == PairingPolicy::Exclusive {
        return ColocationResult {
            policy,
            pairs: 0,
            mean_slowdown: 1.0,
            p95_slowdown: 1.0,
            relative_throughput: 1.0,
        };
    }
    let mut order: Vec<usize> = (0..candidates.len()).collect();
    if policy == PairingPolicy::UtilizationAware {
        order.sort_by(|&x, &y| {
            candidates[x].mean_sm.partial_cmp(&candidates[y].mean_sm).expect("finite utilization")
        });
    }
    // Pair extremes for utilization-aware (low with high); adjacent for
    // FIFO.
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    match policy {
        PairingPolicy::UtilizationAware => {
            let mut lo = 0;
            let mut hi = order.len() - 1;
            while lo < hi {
                pairs.push((order[lo], order[hi]));
                lo += 1;
                hi -= 1;
            }
        }
        _ => {
            for chunk in order.chunks(2) {
                if let [x, y] = chunk {
                    pairs.push((*x, *y));
                }
            }
        }
    }
    let mut slowdowns = Vec::with_capacity(pairs.len() * 2);
    let mut gpu_seconds_shared = 0.0;
    let mut gpu_seconds_exclusive = 0.0;
    for &(x, y) in &pairs {
        let (a, b) = (&candidates[x], &candidates[y]);
        let out = if policy == PairingPolicy::TimeSharing {
            simulate_time_shared_pair(&a.truth, &b.truth, a.duration, b.duration)
        } else {
            simulate_pair(&a.truth, &b.truth, a.duration, b.duration)
        };
        slowdowns.push(out.slowdown_a);
        slowdowns.push(out.slowdown_b);
        // One shared GPU busy for the makespan vs two exclusive GPUs.
        let makespan = (out.slowdown_a * a.duration).max(out.slowdown_b * b.duration);
        gpu_seconds_shared += makespan;
        gpu_seconds_exclusive += a.duration.max(b.duration);
    }
    slowdowns.sort_by(|p, q| p.partial_cmp(q).expect("finite"));
    let mean = slowdowns.iter().sum::<f64>() / slowdowns.len() as f64;
    let p95 = slowdowns[((slowdowns.len() - 1) as f64 * 0.95) as usize];
    // Exclusive: 2 GPUs for max(t_a, t_b) wall time finish the pair.
    // Shared: 1 GPU for the (stretched) makespan. Throughput ∝ jobs /
    // GPU-time.
    let relative_throughput = (2.0 * gpu_seconds_exclusive) / gpu_seconds_shared.max(1e-9);
    ColocationResult {
        policy,
        pairs: pairs.len(),
        mean_slowdown: mean,
        p95_slowdown: p95,
        relative_throughput,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sc_workload::{ResourceLevels, TruthParams};

    fn truth(seed: u64, sm: f64, active: f64, duration: f64) -> GpuGroundTruth {
        let mut rng = StdRng::seed_from_u64(seed);
        sc_workload::truth::generate_gpu_truth(
            &mut rng,
            &TruthParams {
                duration,
                active_fraction: active,
                mean_levels: ResourceLevels {
                    sm,
                    mem: sm / 8.0,
                    mem_size: sm / 3.0,
                    pcie_tx: 5.0,
                    pcie_rx: 5.0,
                },
                ..Default::default()
            },
        )
    }

    #[test]
    fn idle_pair_runs_without_interference() {
        let a = truth(1, 5.0, 0.3, 1200.0);
        let b = truth(2, 5.0, 0.3, 1200.0);
        let out = simulate_pair(&a, &b, 1000.0, 1000.0);
        assert!(out.slowdown_a < 1.05, "slowdown {}", out.slowdown_a);
        assert!(out.slowdown_b < 1.05);
        assert!(out.packing_gain > 0.3, "gain {}", out.packing_gain);
    }

    #[test]
    fn saturated_pair_interferes() {
        let a = truth(3, 70.0, 0.95, 2400.0);
        let b = truth(4, 70.0, 0.95, 2400.0);
        let out = simulate_pair(&a, &b, 2000.0, 2000.0);
        assert!(out.slowdown_a > 1.15, "slowdown {}", out.slowdown_a);
    }

    #[test]
    fn complementary_pair_beats_symmetric_hot_pair() {
        let hot1 = truth(5, 75.0, 0.95, 2400.0);
        let hot2 = truth(6, 75.0, 0.95, 2400.0);
        let cold = truth(7, 3.0, 0.2, 2400.0);
        let hot_hot = simulate_pair(&hot1, &hot2, 2000.0, 2000.0);
        let hot_cold = simulate_pair(&hot1, &cold, 2000.0, 2000.0);
        assert!(hot_cold.slowdown_a < hot_hot.slowdown_a);
    }

    #[test]
    fn utilization_aware_policy_reduces_slowdown() {
        let mut candidates = Vec::new();
        for i in 0..12 {
            let sm = if i % 2 == 0 { 70.0 } else { 4.0 };
            candidates.push(Candidate {
                truth: truth(100 + i, sm, 0.9, 2000.0),
                duration: 1500.0,
                mean_sm: sm,
            });
        }
        // FIFO order alternates hot/cold... shuffle it so FIFO pairs
        // hot-with-hot occasionally: sort by index parity.
        candidates.sort_by_key(|c| c.mean_sm as i64);
        // Now FIFO pairs cold-cold then hot-hot; aware pairs cold-hot.
        let fifo = evaluate_policy(&candidates, PairingPolicy::Fifo);
        let aware = evaluate_policy(&candidates, PairingPolicy::UtilizationAware);
        assert!(
            aware.p95_slowdown <= fifo.p95_slowdown + 1e-9,
            "aware p95 {} vs fifo {}",
            aware.p95_slowdown,
            fifo.p95_slowdown
        );
        assert!(aware.pairs == 6 && fifo.pairs == 6);
    }

    #[test]
    fn time_sharing_never_oversubscribes() {
        // Two fully-active jobs time-shared: each gets half the GPU, so
        // each roughly doubles — but the makespan equals back-to-back
        // execution, never worse.
        let a = truth(31, 80.0, 0.98, 2400.0);
        let b = truth(32, 80.0, 0.98, 2400.0);
        let out = simulate_time_shared_pair(&a, &b, 2000.0, 2000.0);
        assert!(out.slowdown_a > 1.5, "slowdown {}", out.slowdown_a);
        assert!(out.slowdown_a < 2.2, "slowdown {}", out.slowdown_a);
    }

    #[test]
    fn time_sharing_exploits_idle_phases() {
        // Bursty jobs (40% active): the peer runs during idle phases,
        // so slowdown stays well under the 2× of pure alternation.
        let a = truth(33, 30.0, 0.4, 3000.0);
        let b = truth(34, 30.0, 0.4, 3000.0);
        let out = simulate_time_shared_pair(&a, &b, 2500.0, 2500.0);
        assert!(out.slowdown_a < 1.6, "slowdown {}", out.slowdown_a);
        assert!(out.packing_gain > 0.2, "gain {}", out.packing_gain);
    }

    #[test]
    fn exclusive_baseline_is_identity() {
        let candidates =
            vec![Candidate { truth: truth(9, 10.0, 0.5, 600.0), duration: 500.0, mean_sm: 10.0 }];
        let r = evaluate_policy(&candidates, PairingPolicy::Exclusive);
        assert_eq!(r.mean_slowdown, 1.0);
        assert_eq!(r.relative_throughput, 1.0);
    }

    #[test]
    fn sharing_raises_throughput_for_low_util_jobs() {
        let mut candidates = Vec::new();
        for i in 0..10 {
            candidates.push(Candidate {
                truth: truth(200 + i, 8.0, 0.4, 2000.0),
                duration: 1500.0,
                mean_sm: 8.0,
            });
        }
        let fifo = evaluate_policy(&candidates, PairingPolicy::Fifo);
        assert!(fifo.relative_throughput > 1.2, "throughput {}", fifo.relative_throughput);
        assert!(fifo.mean_slowdown < 1.2);
    }
}
