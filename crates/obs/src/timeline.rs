//! Cluster time-series sampled from the event loop.
//!
//! Sampling every event-loop transition at full scale would record
//! hundreds of thousands of points, so the timeline buckets samples to
//! a fixed sim-time period (the first transition at or past each
//! period boundary is kept) while the queue-depth histogram still sees
//! every transition. Both are driven only by sim time and event order,
//! so they are identical at any thread budget.

use crate::metrics::Histogram;

/// One sampled point of cluster state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelineSample {
    /// Sim time of the sample, seconds.
    pub t: f64,
    /// Jobs waiting in the scheduler queue.
    pub queued: u64,
    /// Jobs currently running.
    pub running: u64,
    /// GPUs allocated to running jobs.
    pub gpus_in_use: u64,
    /// GPUs idle on online nodes.
    pub gpus_free: u64,
    /// Nodes offline for repair.
    pub nodes_down: u64,
    /// Failure-requeued jobs waiting for their backoff to expire.
    pub requeue_backlog: u64,
    /// Cumulative failure injections so far.
    pub injected_failures: u64,
    /// Cumulative checkpoint restores so far.
    pub checkpoint_restores: u64,
}

/// Period-bucketed cluster time-series plus a full-resolution
/// queue-depth histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct Timeline {
    period_secs: f64,
    next_t: f64,
    samples: Vec<TimelineSample>,
    queue_depth: Histogram,
}

impl Timeline {
    /// A timeline sampling at most one point per `period_secs` of sim
    /// time. Periods must be positive and finite.
    pub fn new(period_secs: f64) -> Timeline {
        assert!(period_secs > 0.0 && period_secs.is_finite(), "timeline period must be positive");
        Timeline { period_secs, next_t: 0.0, samples: Vec::new(), queue_depth: Histogram::new() }
    }

    /// Sampling period, seconds of sim time.
    pub fn period_secs(&self) -> f64 {
        self.period_secs
    }

    /// Records the queue depth at one event-loop transition. Called on
    /// every transition regardless of the sampling period.
    pub fn observe_depth(&mut self, depth: u64) {
        self.queue_depth.observe(depth as f64);
    }

    /// Takes a sample if `now` has reached the next period boundary.
    /// `state` is only invoked when a sample is due, so the common
    /// case is one float compare.
    pub fn maybe_sample(&mut self, now: f64, state: impl FnOnce() -> TimelineSample) {
        if now >= self.next_t {
            self.samples.push(state());
            while self.next_t <= now {
                self.next_t += self.period_secs;
            }
        }
    }

    /// Unconditionally appends a closing sample (end-of-sim state).
    pub fn sample_final(&mut self, state: TimelineSample) {
        self.samples.push(state);
    }

    /// The sampled points, oldest first.
    pub fn samples(&self) -> &[TimelineSample] {
        &self.samples
    }

    /// Queue depth over every event-loop transition.
    pub fn queue_depth(&self) -> &Histogram {
        &self.queue_depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t: f64) -> TimelineSample {
        TimelineSample {
            t,
            queued: 1,
            running: 2,
            gpus_in_use: 4,
            gpus_free: 4,
            nodes_down: 0,
            requeue_backlog: 0,
            injected_failures: 0,
            checkpoint_restores: 0,
        }
    }

    #[test]
    fn samples_are_bucketed_to_the_period() {
        let mut tl = Timeline::new(10.0);
        for now in [0.0, 1.0, 9.0, 10.0, 11.0, 35.0, 36.0] {
            tl.maybe_sample(now, || sample(now));
        }
        let times: Vec<f64> = tl.samples().iter().map(|s| s.t).collect();
        // t=0 opens the series, then one per crossed boundary.
        assert_eq!(times, vec![0.0, 10.0, 35.0]);
    }

    #[test]
    fn state_closure_runs_only_when_due() {
        let mut tl = Timeline::new(100.0);
        tl.maybe_sample(0.0, || sample(0.0));
        tl.maybe_sample(5.0, || panic!("not due yet"));
    }

    #[test]
    fn depth_histogram_sees_every_transition() {
        let mut tl = Timeline::new(1.0e9);
        for depth in [0, 1, 2, 3] {
            tl.observe_depth(depth);
        }
        assert_eq!(tl.queue_depth().count(), 4);
        assert_eq!(tl.queue_depth().max(), Some(3.0));
    }

    #[test]
    fn final_sample_is_unconditional() {
        let mut tl = Timeline::new(10.0);
        tl.maybe_sample(0.0, || sample(0.0));
        tl.sample_final(sample(3.0));
        assert_eq!(tl.samples().len(), 2);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_is_rejected() {
        Timeline::new(0.0);
    }
}
