//! Trace records and their canonical, deterministic JSONL encoding.

use std::fmt::Write as _;

/// How much the attached sink wants to see.
///
/// Ordered: `Off < Spans < Events`. `Spans` keeps only lifetime pairs
/// ([`RecordKind::Begin`] / [`RecordKind::End`]); `Events` adds every
/// point event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum TraceLevel {
    /// Record nothing.
    #[default]
    Off,
    /// Record span begin/end pairs only.
    Spans,
    /// Record spans and point events.
    Events,
}

impl TraceLevel {
    /// Parses the CLI / `SC_OBS` spelling of a level.
    pub fn parse(s: &str) -> Option<TraceLevel> {
        match s {
            "off" | "none" => Some(TraceLevel::Off),
            "spans" => Some(TraceLevel::Spans),
            "events" | "all" => Some(TraceLevel::Events),
            _ => None,
        }
    }

    /// Names accepted by [`TraceLevel::parse`], for usage messages.
    pub const NAMES: &'static str = "off|spans|events";
}

/// The kind of a trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// A point event.
    Event,
    /// A span opens.
    Begin,
    /// A span closes.
    End,
}

impl RecordKind {
    fn label(self) -> &'static str {
        match self {
            RecordKind::Event => "event",
            RecordKind::Begin => "begin",
            RecordKind::End => "end",
        }
    }
}

/// One structured field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer (ids, counts).
    U64(u64),
    /// Float (durations, GPU-seconds). Encoded via Rust's shortest
    /// round-trip formatting, which is deterministic for equal bits.
    F64(f64),
    /// Static label (causes, exit statuses).
    Str(&'static str),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<&'static str> for Value {
    fn from(v: &'static str) -> Self {
        Value::Str(v)
    }
}

/// One trace record: a sim-time stamp, a kind, a name, and fields.
///
/// Field order is the emission order (a `Vec`, not a map), which is
/// what makes the JSONL encoding canonical.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Simulation time, seconds from trace start.
    pub t: f64,
    /// Event or span boundary.
    pub kind: RecordKind,
    /// Record name (`submit`, `attempt`, `fault`, …).
    pub name: &'static str,
    /// Structured payload, in emission order.
    pub fields: Vec<(&'static str, Value)>,
}

impl TraceRecord {
    /// Encodes the record as one canonical JSON line (no trailing
    /// newline). Equal records encode to equal bytes on every platform:
    /// integer formatting is exact and float formatting is the shortest
    /// round-trip representation of the bits.
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(64);
        s.push_str("{\"t\":");
        write_f64(&mut s, self.t);
        let _ = write!(s, ",\"kind\":\"{}\",\"name\":\"{}\"", self.kind.label(), self.name);
        for (key, value) in &self.fields {
            let _ = write!(s, ",\"{key}\":");
            match value {
                Value::U64(v) => {
                    let _ = write!(s, "{v}");
                }
                Value::F64(v) => write_f64(&mut s, *v),
                Value::Str(v) => {
                    s.push('"');
                    for c in v.chars() {
                        match c {
                            '"' => s.push_str("\\\""),
                            '\\' => s.push_str("\\\\"),
                            c if (c as u32) < 0x20 => {
                                let _ = write!(s, "\\u{:04x}", c as u32);
                            }
                            c => s.push(c),
                        }
                    }
                    s.push('"');
                }
            }
        }
        s.push('}');
        s
    }
}

/// Writes a float as JSON: shortest round-trip decimal for finite
/// values, `null` otherwise (JSON has no NaN/Inf).
fn write_f64(s: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(s, "{v}");
    } else {
        s.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_ordered_and_parse() {
        assert!(TraceLevel::Off < TraceLevel::Spans);
        assert!(TraceLevel::Spans < TraceLevel::Events);
        assert_eq!(TraceLevel::parse("off"), Some(TraceLevel::Off));
        assert_eq!(TraceLevel::parse("spans"), Some(TraceLevel::Spans));
        assert_eq!(TraceLevel::parse("events"), Some(TraceLevel::Events));
        assert_eq!(TraceLevel::parse("bogus"), None);
    }

    #[test]
    fn json_line_is_canonical() {
        let rec = TraceRecord {
            t: 12.5,
            kind: RecordKind::Event,
            name: "submit",
            fields: vec![("job", Value::U64(42)), ("gpus", Value::U64(2))],
        };
        assert_eq!(
            rec.to_json_line(),
            r#"{"t":12.5,"kind":"event","name":"submit","job":42,"gpus":2}"#
        );
    }

    #[test]
    fn float_encoding_round_trips_and_rejects_non_finite() {
        let rec = TraceRecord {
            t: 0.1 + 0.2, // 0.30000000000000004 — shortest repr keeps the bits
            kind: RecordKind::Begin,
            name: "attempt",
            fields: vec![("bad", Value::F64(f64::NAN))],
        };
        let line = rec.to_json_line();
        assert!(line.contains("0.30000000000000004"), "{line}");
        assert!(line.contains("\"bad\":null"), "{line}");
    }

    #[test]
    fn strings_are_escaped() {
        let rec = TraceRecord {
            t: 0.0,
            kind: RecordKind::Event,
            name: "note",
            fields: vec![("s", Value::Str("a\"b\\c"))],
        };
        assert!(rec.to_json_line().contains(r#""s":"a\"b\\c""#));
    }

    #[test]
    fn equal_records_encode_to_equal_bytes() {
        let mk = || TraceRecord {
            t: 1_234.000_000_001,
            kind: RecordKind::End,
            name: "attempt",
            fields: vec![("job", Value::U64(7)), ("exit", Value::Str("completed"))],
        };
        assert_eq!(mk().to_json_line(), mk().to_json_line());
    }
}
