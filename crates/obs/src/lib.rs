//! Deterministic observability for the reproduction pipeline.
//!
//! The paper's entire method is *instrumentation*: Slurm prolog/epilog
//! hooks plus 100 ms `nvidia-smi` sampling turn a production cluster
//! into a characterizable system. This crate gives the simulator the
//! same property — a first-class, queryable event/metric stream —
//! under two rules:
//!
//! 1. **Deterministic.** Every trace record is keyed to *simulation
//!    time*, never wall clock, and is emitted from the single-threaded
//!    event loop, so a JSONL trace of the same seed is byte-identical
//!    at any `sc_par` thread budget. (Wall-clock *stage* spans live in
//!    a separate [`StageLog`] that is explicitly outside the
//!    determinism contract and feeds the Chrome exporter.)
//! 2. **Free when off.** Instrumentation points gate on an enum
//!    compare ([`Obs::events_on`] / [`Obs::spans_on`]) before
//!    constructing anything; with the [`NullSink`] the cost is one
//!    predictable branch per site.
//!
//! Modules:
//!
//! - [`record`]: trace levels, field values, and the canonical JSONL
//!   encoding.
//! - [`sink`]: the [`TraceSink`] trait and the [`NullSink`] /
//!   [`RingSink`] / [`JsonlSink`] implementations, plus the cheap
//!   [`Obs`] handle instrumented code carries.
//! - [`metrics`]: counters, gauges, and log₂-bucketed histograms.
//! - [`timeline`]: the cluster time-series ([`Timeline`]) sampled on
//!   event-loop transitions — queue depth, running jobs, free GPUs,
//!   requeue backlog, failure injections, checkpoint restores.
//! - [`stagelog`]: wall-clock per-stage spans ([`StageLog`]).
//! - [`chrome`]: Chrome trace-event (`chrome://tracing` / Perfetto)
//!   export of stage spans.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chrome;
pub mod metrics;
pub mod record;
pub mod sink;
pub mod stagelog;
pub mod timeline;

pub use chrome::chrome_trace_json;
pub use metrics::{Counter, Gauge, Histogram, SharedCounter};
pub use record::{RecordKind, TraceLevel, TraceRecord, Value};
pub use sink::{JsonlSink, NullSink, Obs, RingSink, TraceSink};
pub use stagelog::{StageLog, StageSpan};
pub use timeline::{Timeline, TimelineSample};
