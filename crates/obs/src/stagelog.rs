//! Wall-clock per-stage spans for the analysis pipeline.
//!
//! Unlike everything else in this crate, stage spans measure *real*
//! time: how long telemetry synthesis or a figure computation actually
//! took on this machine. They are explicitly outside the determinism
//! contract — two runs of the same seed produce different durations —
//! and feed only the Chrome trace exporter, never the JSONL trace.

use std::sync::Mutex;
use std::time::Instant;

/// One completed wall-clock span, relative to the log's origin.
#[derive(Debug, Clone, PartialEq)]
pub struct StageSpan {
    /// Stage name (`telemetry`, `fig:gpu_util`, …).
    pub name: String,
    /// Start offset from the log origin, seconds.
    pub start_secs: f64,
    /// Duration, seconds.
    pub dur_secs: f64,
}

/// Collects wall-clock stage spans; safe to share across `sc_par`
/// worker threads.
#[derive(Debug)]
pub struct StageLog {
    t0: Instant,
    spans: Mutex<Vec<StageSpan>>,
}

impl Default for StageLog {
    fn default() -> StageLog {
        StageLog::new()
    }
}

impl StageLog {
    /// A log whose origin is now.
    pub fn new() -> StageLog {
        StageLog { t0: Instant::now(), spans: Mutex::new(Vec::new()) }
    }

    /// Runs `f`, recording a span named `name` around it.
    pub fn time<T>(&self, name: &str, f: impl FnOnce() -> T) -> T {
        let start = self.t0.elapsed().as_secs_f64();
        let out = f();
        let dur = self.t0.elapsed().as_secs_f64() - start;
        self.push(name, start, dur);
        out
    }

    /// Seconds since the log origin — the `start_secs` to use when
    /// recording an externally-timed span via [`StageLog::push`].
    pub fn elapsed_secs(&self) -> f64 {
        self.t0.elapsed().as_secs_f64()
    }

    /// Records an already-measured span.
    pub fn push(&self, name: &str, start_secs: f64, dur_secs: f64) {
        self.spans.lock().unwrap().push(StageSpan { name: name.to_string(), start_secs, dur_secs });
    }

    /// Completed spans sorted by start time then name, so export order
    /// does not depend on which worker thread finished first.
    pub fn spans(&self) -> Vec<StageSpan> {
        let mut spans = self.spans.lock().unwrap().clone();
        spans.sort_by(|a, b| {
            a.start_secs.total_cmp(&b.start_secs).then_with(|| a.name.cmp(&b.name))
        });
        spans
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_records_a_span_and_returns_the_value() {
        let log = StageLog::new();
        let v = log.time("work", || 42);
        assert_eq!(v, 42);
        let spans = log.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "work");
        assert!(spans[0].dur_secs >= 0.0);
    }

    #[test]
    fn spans_sort_by_start_then_name() {
        let log = StageLog::new();
        log.push("b", 1.0, 0.5);
        log.push("a", 1.0, 0.5);
        log.push("c", 0.0, 2.0);
        let names: Vec<String> = log.spans().into_iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["c", "a", "b"]);
    }
}
