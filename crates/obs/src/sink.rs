//! Trace sinks and the cheap [`Obs`] handle instrumented code carries.

use std::collections::VecDeque;
use std::io::{self, BufWriter, Write};
use std::sync::Mutex;

use crate::record::{RecordKind, TraceLevel, TraceRecord, Value};

/// Destination for trace records.
///
/// Implementations must be cheap to query for their [`TraceLevel`]:
/// instrumented code checks the level *before* building a record, so a
/// disabled sink costs one branch per site.
pub trait TraceSink: Sync {
    /// The most detailed record kind this sink wants.
    fn level(&self) -> TraceLevel;

    /// Accepts one record. Only called when `rec` is within
    /// [`TraceSink::level`].
    fn record(&self, rec: TraceRecord);

    /// Flushes buffered output, if any.
    fn flush(&self) -> io::Result<()> {
        Ok(())
    }
}

/// Discards everything; reports [`TraceLevel::Off`].
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn level(&self) -> TraceLevel {
        TraceLevel::Off
    }

    fn record(&self, _rec: TraceRecord) {}
}

/// Keeps the most recent `capacity` records in memory.
///
/// Intended for tests and post-mortem inspection: run a sim, then read
/// [`RingSink::records`]. Counts what it had to drop so truncation is
/// never silent.
#[derive(Debug)]
pub struct RingSink {
    level: TraceLevel,
    capacity: usize,
    state: Mutex<RingState>,
}

#[derive(Debug, Default)]
struct RingState {
    records: VecDeque<TraceRecord>,
    dropped: u64,
}

impl RingSink {
    /// A ring holding at most `capacity` records at `level`.
    pub fn new(level: TraceLevel, capacity: usize) -> RingSink {
        RingSink { level, capacity, state: Mutex::new(RingState::default()) }
    }

    /// Snapshot of the retained records, oldest first.
    pub fn records(&self) -> Vec<TraceRecord> {
        self.state.lock().unwrap().records.iter().cloned().collect()
    }

    /// How many records were evicted to stay within capacity.
    pub fn dropped(&self) -> u64 {
        self.state.lock().unwrap().dropped
    }
}

impl TraceSink for RingSink {
    fn level(&self) -> TraceLevel {
        self.level
    }

    fn record(&self, rec: TraceRecord) {
        let mut state = self.state.lock().unwrap();
        if state.records.len() == self.capacity {
            state.records.pop_front();
            state.dropped += 1;
        }
        state.records.push_back(rec);
    }
}

/// Writes one canonical JSON line per record through a buffer.
///
/// The writer is generic so tests can trace into a `Vec<u8>` and the
/// CLI into a file; both produce identical bytes for identical record
/// streams.
#[derive(Debug)]
pub struct JsonlSink<W: Write + Send> {
    level: TraceLevel,
    writer: Mutex<BufWriter<W>>,
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps `writer` in a buffered JSONL sink at `level`.
    pub fn new(level: TraceLevel, writer: W) -> JsonlSink<W> {
        JsonlSink { level, writer: Mutex::new(BufWriter::new(writer)) }
    }

    /// Flushes and returns the inner writer.
    pub fn into_inner(self) -> io::Result<W> {
        self.writer
            .into_inner()
            .expect("jsonl sink lock poisoned")
            .into_inner()
            .map_err(|e| e.into_error())
    }
}

impl<W: Write + Send> TraceSink for JsonlSink<W> {
    fn level(&self) -> TraceLevel {
        self.level
    }

    fn record(&self, rec: TraceRecord) {
        let mut writer = self.writer.lock().unwrap();
        // I/O errors surface on flush; dropping lines silently would
        // break the byte-identical contract without a diagnosis trail.
        let _ = writer.write_all(rec.to_json_line().as_bytes());
        let _ = writer.write_all(b"\n");
    }

    fn flush(&self) -> io::Result<()> {
        self.writer.lock().unwrap().flush()
    }
}

static NULL: NullSink = NullSink;

/// The handle instrumented code carries: a sink plus its level, cached
/// so the hot-path gates are plain enum compares with no vtable call.
#[derive(Clone, Copy)]
pub struct Obs<'a> {
    sink: &'a dyn TraceSink,
    level: TraceLevel,
}

impl std::fmt::Debug for Obs<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs").field("level", &self.level).finish_non_exhaustive()
    }
}

impl<'a> Obs<'a> {
    /// An `Obs` over `sink`, caching its level.
    pub fn new(sink: &'a dyn TraceSink) -> Obs<'a> {
        Obs { sink, level: sink.level() }
    }

    /// The disabled handle: every gate is false, nothing is recorded.
    pub fn off() -> Obs<'static> {
        Obs { sink: &NULL, level: TraceLevel::Off }
    }

    /// True when point events should be emitted. `#[inline]` so the
    /// off-path compiles to a register compare at the call site.
    #[inline]
    pub fn events_on(&self) -> bool {
        self.level >= TraceLevel::Events
    }

    /// True when span begin/end records should be emitted.
    #[inline]
    pub fn spans_on(&self) -> bool {
        self.level >= TraceLevel::Spans
    }

    /// Emits a point event. Call only under [`Obs::events_on`].
    pub fn event(&self, t: f64, name: &'static str, fields: Vec<(&'static str, Value)>) {
        self.sink.record(TraceRecord { t, kind: RecordKind::Event, name, fields });
    }

    /// Emits a span-begin record. Call only under [`Obs::spans_on`].
    pub fn begin(&self, t: f64, name: &'static str, fields: Vec<(&'static str, Value)>) {
        self.sink.record(TraceRecord { t, kind: RecordKind::Begin, name, fields });
    }

    /// Emits a span-end record. Call only under [`Obs::spans_on`].
    pub fn end(&self, t: f64, name: &'static str, fields: Vec<(&'static str, Value)>) {
        self.sink.record(TraceRecord { t, kind: RecordKind::End, name, fields });
    }

    /// Flushes the underlying sink.
    pub fn flush(&self) -> io::Result<()> {
        self.sink.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t: f64, name: &'static str) -> TraceRecord {
        TraceRecord { t, kind: RecordKind::Event, name, fields: Vec::new() }
    }

    #[test]
    fn null_sink_is_off() {
        let obs = Obs::off();
        assert!(!obs.events_on());
        assert!(!obs.spans_on());
        obs.flush().unwrap();
    }

    #[test]
    fn ring_sink_keeps_newest_and_counts_drops() {
        let ring = RingSink::new(TraceLevel::Events, 2);
        for i in 0..5 {
            ring.record(rec(i as f64, "e"));
        }
        let kept = ring.records();
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[0].t, 3.0);
        assert_eq!(kept[1].t, 4.0);
        assert_eq!(ring.dropped(), 3);
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_record() {
        let sink = JsonlSink::new(TraceLevel::Events, Vec::new());
        let obs = Obs::new(&sink);
        assert!(obs.events_on() && obs.spans_on());
        obs.event(1.0, "a", vec![("k", Value::U64(1))]);
        obs.begin(2.0, "b", Vec::new());
        let bytes = sink.into_inner().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(text, "{\"t\":1,\"kind\":\"event\",\"name\":\"a\",\"k\":1}\n{\"t\":2,\"kind\":\"begin\",\"name\":\"b\"}\n");
    }

    #[test]
    fn spans_level_gates_events() {
        let ring = RingSink::new(TraceLevel::Spans, 8);
        let obs = Obs::new(&ring);
        assert!(obs.spans_on());
        assert!(!obs.events_on());
    }
}
