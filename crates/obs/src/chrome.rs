//! Chrome trace-event export of wall-clock stage spans.
//!
//! Produces the JSON object format understood by `chrome://tracing`
//! and [Perfetto](https://ui.perfetto.dev): complete (`"ph":"X"`)
//! events with microsecond timestamps. Overlapping spans — the figure
//! fan-out runs on several `sc_par` workers — are spread across track
//! ids greedily so every span gets its own row.

use std::fmt::Write as _;

use crate::stagelog::StageSpan;

/// Renders `spans` as a Chrome trace-event JSON document.
///
/// Load the result in `chrome://tracing` or drop it on
/// <https://ui.perfetto.dev>. Lane (`tid`) assignment is greedy
/// first-fit over spans sorted by start time, so concurrent stages
/// stack into parallel rows.
pub fn chrome_trace_json(spans: &[StageSpan]) -> String {
    let mut ordered: Vec<&StageSpan> = spans.iter().collect();
    ordered.sort_by(|a, b| a.start_secs.total_cmp(&b.start_secs).then_with(|| a.name.cmp(&b.name)));

    // lane_free[i] = time lane i becomes free; first-fit per span.
    let mut lane_free: Vec<f64> = Vec::new();
    let mut out = String::from("{\"traceEvents\":[");
    for (i, span) in ordered.iter().enumerate() {
        let lane = match lane_free.iter().position(|&free| free <= span.start_secs) {
            Some(lane) => lane,
            None => {
                lane_free.push(0.0);
                lane_free.len() - 1
            }
        };
        lane_free[lane] = span.start_secs + span.dur_secs;

        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"stage\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}}}",
            escape(&span.name),
            (span.start_secs * 1e6).round() as u64,
            (span.dur_secs * 1e6).round().max(1.0) as u64,
            lane
        );
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &str, start: f64, dur: f64) -> StageSpan {
        StageSpan { name: name.to_string(), start_secs: start, dur_secs: dur }
    }

    #[test]
    fn empty_log_is_a_valid_document() {
        assert_eq!(chrome_trace_json(&[]), "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}");
    }

    #[test]
    fn spans_become_complete_events_in_microseconds() {
        let doc = chrome_trace_json(&[span("telemetry", 0.5, 1.25)]);
        assert!(doc.contains("\"name\":\"telemetry\""), "{doc}");
        assert!(doc.contains("\"ph\":\"X\""), "{doc}");
        assert!(doc.contains("\"ts\":500000"), "{doc}");
        assert!(doc.contains("\"dur\":1250000"), "{doc}");
    }

    #[test]
    fn overlapping_spans_get_distinct_lanes() {
        let doc = chrome_trace_json(&[
            span("a", 0.0, 2.0),
            span("b", 1.0, 2.0), // overlaps a → lane 1
            span("c", 2.5, 1.0), // after a ends → back to lane 0
        ]);
        let tids: Vec<&str> = doc.matches("\"tid\":0").collect();
        assert_eq!(tids.len(), 2, "{doc}");
        assert!(doc.contains("\"tid\":1"), "{doc}");
    }

    #[test]
    fn zero_duration_spans_stay_visible() {
        let doc = chrome_trace_json(&[span("blip", 1.0, 0.0)]);
        assert!(doc.contains("\"dur\":1"), "{doc}");
    }
}
