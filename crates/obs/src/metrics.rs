//! Deterministic counters, gauges, and log₂-bucketed histograms.
//!
//! These are plain values, not atomics: the simulator's metric updates
//! all happen on the single-threaded event loop, so interior mutability
//! would only buy non-determinism.

/// Monotone event count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.value += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.value
    }
}

/// Monotone event count shared across threads.
///
/// The serving layer's request path runs on executor worker threads,
/// so its counters (cache hits/misses, queries served) cannot be the
/// single-threaded [`Counter`]. `SharedCounter` is the atomic sibling:
/// relaxed ordering (counts are monotone and independent), cheap
/// enough for per-request increments, and safe behind an `Arc`.
#[derive(Debug, Default)]
pub struct SharedCounter {
    value: std::sync::atomic::AtomicU64,
}

impl SharedCounter {
    /// A counter at zero.
    pub fn new() -> SharedCounter {
        SharedCounter::default()
    }

    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, std::sync::atomic::Ordering::Relaxed);
    }

    /// Raises the count to `n` if it is below (no-op otherwise).
    /// Idempotent and race-free, so a counter can mirror another
    /// subsystem's monotone total without double-counting.
    pub fn record_at_least(&self, n: u64) {
        self.value.fetch_max(n, std::sync::atomic::Ordering::Relaxed);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.value.load(std::sync::atomic::Ordering::Relaxed)
    }
}

/// Last-write-wins instantaneous value.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Gauge {
    value: f64,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Replaces the value.
    pub fn set(&mut self, v: f64) {
        self.value = v;
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        self.value
    }
}

/// Number of histogram buckets: bucket 0 is `[0, 1)`, bucket `i ≥ 1`
/// is `[2^(i-1), 2^i)`, and the last bucket absorbs everything above.
const BUCKETS: usize = 33;

/// Log₂-bucketed histogram of non-negative values.
///
/// Bucket boundaries are powers of two, so bucketing is an integer
/// `ilog2` — exact and identical on every platform, unlike float
/// quantile sketches. Good for queue depths, GPU counts, and retry
/// counts where ~2× resolution is plenty.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn bucket_of(v: f64) -> usize {
        if v < 1.0 || v.is_nan() {
            // Also routes NaN and negatives to bucket 0; the sim only
            // observes non-negative quantities.
            return 0;
        }
        let n = v as u64;
        ((n.ilog2() as usize) + 1).min(BUCKETS - 1)
    }

    /// Records one observation.
    pub fn observe(&mut self, v: f64) {
        self.counts[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest observation, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of observations, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Upper bound of the bucket holding quantile `q` (in `[0, 1]`) —
    /// an approximate quantile with ~2× resolution. `None` when empty.
    pub fn quantile_bound(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(if i == 0 { 1.0 } else { (1u64 << i) as f64 });
            }
        }
        Some(self.max)
    }

    /// Per-bucket `(upper_bound, count)` pairs for non-empty buckets.
    pub fn buckets(&self) -> Vec<(f64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (if i == 0 { 1.0 } else { (1u64 << i) as f64 }, c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        let mut g = Gauge::new();
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
    }

    #[test]
    fn shared_counter_record_at_least_is_monotone() {
        let c = SharedCounter::new();
        c.add(5);
        c.record_at_least(3); // below: no-op
        assert_eq!(c.get(), 5);
        c.record_at_least(9);
        assert_eq!(c.get(), 9);
        c.record_at_least(9); // idempotent
        assert_eq!(c.get(), 9);
    }

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        assert_eq!(Histogram::bucket_of(0.0), 0);
        assert_eq!(Histogram::bucket_of(0.9), 0);
        assert_eq!(Histogram::bucket_of(1.0), 1);
        assert_eq!(Histogram::bucket_of(1.9), 1);
        assert_eq!(Histogram::bucket_of(2.0), 2);
        assert_eq!(Histogram::bucket_of(3.0), 2);
        assert_eq!(Histogram::bucket_of(4.0), 3);
        assert_eq!(Histogram::bucket_of(f64::MAX), BUCKETS - 1);
    }

    #[test]
    fn histogram_summary_statistics() {
        let mut h = Histogram::new();
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile_bound(0.5), None);
        for v in [1.0, 2.0, 3.0, 10.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 16.0);
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(10.0));
        assert_eq!(h.mean(), Some(4.0));
        // Median rank 2 falls in bucket [2,4) → upper bound 4.
        assert_eq!(h.quantile_bound(0.5), Some(4.0));
        assert_eq!(h.quantile_bound(1.0), Some(16.0));
    }

    #[test]
    fn histograms_with_equal_observations_are_equal() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [0.5, 7.0, 100.0] {
            a.observe(v);
            b.observe(v);
        }
        assert_eq!(a, b);
        assert_eq!(a.buckets(), vec![(1.0, 1), (8.0, 1), (128.0, 1)]);
    }
}
