//! Property tests for the `sc_stats::dist` samplers.
//!
//! Two families of checks, both fully seeded so every proptest case is
//! reproducible:
//!
//! - **Moment checks**: bootstrap a confidence interval for the sample
//!   mean (and, via the probability-integral style transform for the
//!   Weibull, the unit-exponential mean) and require the closed-form
//!   value to fall inside it, with a small slack factor so a marginal
//!   99.9% interval does not turn sampling noise into a red build.
//! - **KS self-tests**: the one-sample Kolmogorov–Smirnov statistic of
//!   a sample against the *same distribution's* analytic CDF must stay
//!   under the asymptotic critical value. This catches inverse-CDF
//!   typos (wrong sign, wrong parameterization) that moment checks can
//!   miss.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sc_stats::dist::{Exponential, Sample, Weibull};
use sc_stats::{bootstrap_ci, mean};

/// One-sample KS statistic: sup |F_emp(x) - F(x)| over the sample.
fn ks_one_sample(sample: &mut [f64], cdf: impl Fn(f64) -> f64) -> f64 {
    sample.sort_by(|a, b| a.total_cmp(b));
    let n = sample.len() as f64;
    let mut d = 0.0f64;
    for (i, &x) in sample.iter().enumerate() {
        let f = cdf(x);
        d = d.max((f - i as f64 / n).abs());
        d = d.max(((i + 1) as f64 / n - f).abs());
    }
    d
}

/// Asymptotic KS critical value at alpha ~= 0.001; generous so seeded
/// cases never flake while a broken sampler (which produces D values an
/// order of magnitude larger) still fails decisively.
fn ks_critical(n: usize) -> f64 {
    1.95 / (n as f64).sqrt()
}

/// `truth` must lie inside the CI widened by `slack` half-widths.
fn assert_in_ci(data: &[f64], truth: f64, seed: u64, what: &str) -> Result<(), TestCaseError> {
    let ci = bootstrap_ci(data, |s| mean(s).expect("non-empty"), 300, 0.999, seed)
        .expect("valid bootstrap parameters");
    let slack = 0.5 * ci.half_width();
    prop_assert!(
        ci.lo - slack <= truth && truth <= ci.hi + slack,
        "{what}: closed-form {truth} outside widened CI [{}, {}]",
        ci.lo - slack,
        ci.hi + slack,
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Exponential(rate): sample mean brackets 1/rate.
    #[test]
    fn prop_exponential_mean_matches_closed_form(
        rate in 0.05..20.0f64,
        seed in 0..u64::MAX,
    ) {
        let d = Exponential::new(rate).expect("positive rate");
        let mut rng = StdRng::seed_from_u64(seed);
        let sample = d.sample_n(&mut rng, 2_000);
        assert_in_ci(&sample, 1.0 / rate, seed ^ 0xA5A5, "Exponential mean")?;
    }

    /// Exponential(rate): sample variance brackets 1/rate^2. The
    /// bootstrap resamples the squared deviations, whose mean is the
    /// (biased, negligibly at n=2000) sample variance.
    #[test]
    fn prop_exponential_variance_matches_closed_form(
        rate in 0.05..20.0f64,
        seed in 0..u64::MAX,
    ) {
        let d = Exponential::new(rate).expect("positive rate");
        let mut rng = StdRng::seed_from_u64(seed);
        let sample = d.sample_n(&mut rng, 2_000);
        let m = mean(&sample).expect("non-empty");
        let sq_dev: Vec<f64> = sample.iter().map(|x| (x - m) * (x - m)).collect();
        assert_in_ci(&sq_dev, 1.0 / (rate * rate), seed ^ 0x5A5A, "Exponential variance")?;
    }

    /// Weibull(shape, scale): (X/scale)^shape is unit-exponential, so
    /// its sample mean must bracket 1. This checks both parameters at
    /// once without evaluating the gamma function.
    #[test]
    fn prop_weibull_transform_is_unit_exponential(
        shape in 0.3..4.0f64,
        scale in 0.1..50.0f64,
        seed in 0..u64::MAX,
    ) {
        let d = Weibull::new(shape, scale).expect("positive parameters");
        let mut rng = StdRng::seed_from_u64(seed);
        let transformed: Vec<f64> = d
            .sample_n(&mut rng, 2_000)
            .into_iter()
            .map(|x| (x / scale).powf(shape))
            .collect();
        assert_in_ci(&transformed, 1.0, seed ^ 0x3C3C, "Weibull unit-exp transform")?;
    }

    /// Weibull(shape, scale): empirical median brackets the analytic
    /// `median()` accessor.
    #[test]
    fn prop_weibull_median_matches_accessor(
        shape in 0.3..4.0f64,
        scale in 0.1..50.0f64,
        seed in 0..u64::MAX,
    ) {
        let d = Weibull::new(shape, scale).expect("positive parameters");
        let mut rng = StdRng::seed_from_u64(seed);
        let sample = d.sample_n(&mut rng, 2_000);
        let ci = bootstrap_ci(
            &sample,
            |s| sc_stats::percentile(s, 50.0).expect("non-empty"),
            300,
            0.999,
            seed ^ 0xC3C3,
        )
        .expect("valid bootstrap parameters");
        let slack = 0.5 * ci.half_width();
        prop_assert!(
            ci.lo - slack <= d.median() && d.median() <= ci.hi + slack,
            "Weibull median {} outside widened CI [{}, {}]",
            d.median(),
            ci.lo - slack,
            ci.hi + slack,
        );
    }

    /// KS self-test: exponential sampler vs its own analytic CDF.
    #[test]
    fn prop_exponential_ks_self_test(
        rate in 0.05..20.0f64,
        seed in 0..u64::MAX,
    ) {
        let d = Exponential::new(rate).expect("positive rate");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sample = d.sample_n(&mut rng, 2_000);
        let dstat = ks_one_sample(&mut sample, |x| 1.0 - (-rate * x).exp());
        prop_assert!(
            dstat < ks_critical(2_000),
            "KS D = {dstat} exceeds critical {}",
            ks_critical(2_000),
        );
    }

    /// KS self-test: Weibull sampler vs its own analytic CDF.
    #[test]
    fn prop_weibull_ks_self_test(
        shape in 0.3..4.0f64,
        scale in 0.1..50.0f64,
        seed in 0..u64::MAX,
    ) {
        let d = Weibull::new(shape, scale).expect("positive parameters");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sample = d.sample_n(&mut rng, 2_000);
        let dstat = ks_one_sample(&mut sample, |x| 1.0 - (-(x / scale).powf(shape)).exp());
        prop_assert!(
            dstat < ks_critical(2_000),
            "KS D = {dstat} exceeds critical {}",
            ks_critical(2_000),
        );
    }
}

/// Tighter fixed-seed KS checks at larger n: one deliberate seed per
/// distribution at the conventional alpha = 0.01 critical value. These
/// pin the exact sampler behaviour the proptest sweep covers broadly.
#[test]
fn ks_self_test_fixed_seed_tight() {
    let n = 8_000;
    let crit = 1.63 / (n as f64).sqrt();

    let exp = Exponential::with_mean(420.0).expect("positive mean");
    let mut rng = StdRng::seed_from_u64(20_220_701);
    let mut sample = exp.sample_n(&mut rng, n);
    let d_exp = ks_one_sample(&mut sample, |x| 1.0 - (-exp.rate() * x).exp());
    assert!(d_exp < crit, "Exponential KS D = {d_exp} >= {crit}");

    let wei = Weibull::new(0.7, 1_800.0).expect("positive parameters");
    let mut rng = StdRng::seed_from_u64(20_220_702);
    let mut sample = wei.sample_n(&mut rng, n);
    let d_wei = ks_one_sample(&mut sample, |x| 1.0 - (-(x / 1_800.0).powf(0.7)).exp());
    assert!(d_wei < crit, "Weibull KS D = {d_wei} >= {crit}");
}

/// The moment machinery itself must reject a wrong closed form: feed
/// the exponential-mean check a truth 3x off and require the CI to
/// exclude it. Guards against the slack factor quietly widening until
/// the property tests cannot fail.
#[test]
fn moment_check_rejects_wrong_closed_form() {
    let d = Exponential::new(2.0).expect("positive rate");
    let mut rng = StdRng::seed_from_u64(7);
    let sample = d.sample_n(&mut rng, 2_000);
    let ci = bootstrap_ci(&sample, |s| mean(s).expect("non-empty"), 300, 0.999, 7)
        .expect("valid bootstrap parameters");
    let slack = 0.5 * ci.half_width();
    let wrong = 3.0 / 2.0; // true mean is 1/2
    assert!(
        wrong < ci.lo - slack || wrong > ci.hi + slack,
        "widened CI [{}, {}] fails to exclude a 3x-wrong mean",
        ci.lo - slack,
        ci.hi + slack,
    );
}
