//! Autocorrelation and smoothing for sampled utilization series.
//!
//! Used to validate the phase process: a series that alternates between
//! active and idle phases of mean length `L` has an autocorrelation
//! that stays high for lags ≪ `L` and decays past it — unlike white
//! noise, which decorrelates immediately. The monitoring-period
//! analyses lean on this structure.

use crate::error::{ensure_sample, StatsError};

/// Sample autocorrelation at one lag (biased estimator, as in
/// `statsmodels.tsa.acf`).
///
/// A constant series has no variance to correlate; by convention lag-0
/// returns 1 and other lags return 0 for it.
///
/// # Errors
///
/// Returns [`StatsError::InsufficientData`] if `lag >= len`.
pub fn autocorrelation(series: &[f64], lag: usize) -> Result<f64, StatsError> {
    ensure_sample(series)?;
    if lag >= series.len() {
        return Err(StatsError::InsufficientData { needed: lag + 1, got: series.len() });
    }
    if lag == 0 {
        return Ok(1.0);
    }
    let n = series.len();
    let mean = series.iter().sum::<f64>() / n as f64;
    let var: f64 = series.iter().map(|v| (v - mean) * (v - mean)).sum();
    if var == 0.0 {
        return Ok(0.0);
    }
    let cov: f64 = (0..n - lag).map(|i| (series[i] - mean) * (series[i + lag] - mean)).sum();
    Ok(cov / var)
}

/// The full autocorrelation function for lags `0..=max_lag`.
///
/// # Errors
///
/// Same conditions as [`autocorrelation`].
pub fn acf(series: &[f64], max_lag: usize) -> Result<Vec<f64>, StatsError> {
    (0..=max_lag).map(|l| autocorrelation(series, l)).collect()
}

/// Centered moving average with a window of `2k + 1` samples (window
/// truncated at the edges).
///
/// # Errors
///
/// Returns the usual sample-validity errors.
pub fn moving_average(series: &[f64], k: usize) -> Result<Vec<f64>, StatsError> {
    ensure_sample(series)?;
    let n = series.len();
    Ok((0..n)
        .map(|i| {
            let lo = i.saturating_sub(k);
            let hi = (i + k + 1).min(n);
            series[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
        })
        .collect())
}

/// The decorrelation lag: the first lag at which the ACF drops below
/// `threshold` (e.g. `1/e`), or `None` if it never does within
/// `max_lag`. For an alternating phase process this estimates the mean
/// phase length in samples.
///
/// # Errors
///
/// Same conditions as [`autocorrelation`].
pub fn decorrelation_lag(
    series: &[f64],
    threshold: f64,
    max_lag: usize,
) -> Result<Option<usize>, StatsError> {
    for lag in 1..=max_lag.min(series.len().saturating_sub(1)) {
        if autocorrelation(series, lag)? < threshold {
            return Ok(Some(lag));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lag_zero_is_one() {
        assert_eq!(autocorrelation(&[1.0, 2.0, 3.0], 0).unwrap(), 1.0);
    }

    #[test]
    fn alternating_series_has_negative_lag1() {
        let s: Vec<f64> = (0..100).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let r = autocorrelation(&s, 1).unwrap();
        assert!(r < -0.9, "lag-1 acf {r}");
        let r2 = autocorrelation(&s, 2).unwrap();
        assert!(r2 > 0.9, "lag-2 acf {r2}");
    }

    #[test]
    fn square_wave_decorrelates_near_half_period() {
        // Period 40 (20 high, 20 low): ACF crosses 1/e before lag 20.
        let s: Vec<f64> = (0..2000).map(|i| if (i / 20) % 2 == 0 { 80.0 } else { 0.0 }).collect();
        let lag = decorrelation_lag(&s, 1.0 / std::f64::consts::E, 100).unwrap().unwrap();
        assert!((5..=20).contains(&lag), "decorrelation lag {lag}");
    }

    #[test]
    fn constant_series_is_conventionally_uncorrelated() {
        assert_eq!(autocorrelation(&[5.0; 50], 3).unwrap(), 0.0);
    }

    #[test]
    fn acf_returns_all_lags() {
        let s: Vec<f64> = (0..64).map(|i| (i as f64 * 0.3).sin()).collect();
        let a = acf(&s, 10).unwrap();
        assert_eq!(a.len(), 11);
        assert_eq!(a[0], 1.0);
        for v in &a {
            assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(v));
        }
    }

    #[test]
    fn moving_average_smooths() {
        let s = [0.0, 10.0, 0.0, 10.0, 0.0, 10.0];
        let m = moving_average(&s, 1).unwrap();
        assert_eq!(m.len(), s.len());
        // Interior points average to ~(0+10+0)/3 or similar.
        for v in &m[1..5] {
            assert!((3.0..=7.0).contains(v), "smoothed {v}");
        }
    }

    #[test]
    fn errors_on_bad_input() {
        assert!(autocorrelation(&[], 0).is_err());
        assert!(autocorrelation(&[1.0, 2.0], 2).is_err());
        assert!(moving_average(&[], 1).is_err());
    }
}
