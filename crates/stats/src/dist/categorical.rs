//! Discrete distributions: weighted categories and empirical frequency
//! tables.
//!
//! The paper's class mixes are categorical: submission interfaces
//! (map-reduce 1 %, batch 30 %, interactive 4 %, other 65 %), lifecycle
//! outcomes (mature 60 %, exploratory 18 %, development 19 %, IDE 3.5 %),
//! and GPU counts (1 GPU 84 %, 2 GPUs ~13.6 %, …).

use crate::error::StatsError;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A categorical distribution over indices `0..k` with arbitrary
/// non-negative weights.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), sc_stats::StatsError> {
/// use rand::SeedableRng;
/// use sc_stats::dist::Categorical;
///
/// // Interface mix from Sec. III: map-reduce, batch, interactive, other.
/// let mix = Categorical::new(&[1.0, 30.0, 4.0, 65.0])?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let idx = mix.sample_index(&mut rng);
/// assert!(idx < 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Categorical {
    cumulative: Vec<f64>,
}

impl Categorical {
    /// Creates a categorical distribution from weights (not necessarily
    /// normalized).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] for no weights and
    /// [`StatsError::InvalidParameter`] if any weight is negative,
    /// non-finite, or all weights are zero.
    pub fn new(weights: &[f64]) -> Result<Self, StatsError> {
        if weights.is_empty() {
            return Err(StatsError::EmptyInput);
        }
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut total = 0.0;
        for &w in weights {
            if !w.is_finite() || w < 0.0 {
                return Err(StatsError::InvalidParameter { name: "weight", value: w });
            }
            total += w;
            cumulative.push(total);
        }
        if total <= 0.0 {
            return Err(StatsError::InvalidParameter { name: "total", value: total });
        }
        for c in &mut cumulative {
            *c /= total;
        }
        // Guard against floating point: force the last cumulative to 1.
        *cumulative.last_mut().expect("non-empty") = 1.0;
        Ok(Categorical { cumulative })
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether there are no categories (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Probability of category `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn probability(&self, i: usize) -> f64 {
        let lo = if i == 0 { 0.0 } else { self.cumulative[i - 1] };
        self.cumulative[i] - lo
    }

    /// Draws a category index.
    pub fn sample_index<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cumulative.partition_point(|c| *c < u).min(self.cumulative.len() - 1)
    }
}

/// An empirical discrete distribution over arbitrary `u32` values with
/// observed frequencies — used for GPU-count draws where the support is
/// `{1, 2, 3, …, 32}` with very uneven mass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmpiricalDiscrete {
    values: Vec<u32>,
    dist: Categorical,
}

impl EmpiricalDiscrete {
    /// Creates the distribution from `(value, weight)` pairs.
    ///
    /// # Errors
    ///
    /// Same as [`Categorical::new`].
    pub fn new(pairs: &[(u32, f64)]) -> Result<Self, StatsError> {
        let values: Vec<u32> = pairs.iter().map(|p| p.0).collect();
        let weights: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        Ok(EmpiricalDiscrete { values, dist: Categorical::new(&weights)? })
    }

    /// Draws a value.
    pub fn sample_value<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        self.values[self.dist.sample_index(rng)]
    }

    /// The support values in insertion order.
    pub fn values(&self) -> &[u32] {
        &self.values
    }

    /// Probability of the `i`-th support value.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn probability(&self, i: usize) -> f64 {
        self.dist.probability(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn probabilities_normalize() {
        let c = Categorical::new(&[1.0, 30.0, 4.0, 65.0]).unwrap();
        let total: f64 = (0..c.len()).map(|i| c.probability(i)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!((c.probability(3) - 0.65).abs() < 1e-12);
    }

    #[test]
    fn zero_weight_category_never_sampled() {
        let c = Categorical::new(&[0.0, 1.0]).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        for _ in 0..1000 {
            assert_eq!(c.sample_index(&mut rng), 1);
        }
    }

    #[test]
    fn frequencies_converge() {
        let c = Categorical::new(&[0.6, 0.18, 0.19, 0.035]).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let mut counts = [0usize; 4];
        let n = 100_000;
        for _ in 0..n {
            counts[c.sample_index(&mut rng)] += 1;
        }
        for (i, &cnt) in counts.iter().enumerate() {
            let freq = cnt as f64 / n as f64;
            assert!((freq - c.probability(i)).abs() < 0.01, "cat {i}: {freq}");
        }
    }

    #[test]
    fn empirical_discrete_draws_support_values() {
        let d = EmpiricalDiscrete::new(&[(1, 84.0), (2, 13.6), (4, 1.9), (16, 0.5)]).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        for _ in 0..1000 {
            let v = d.sample_value(&mut rng);
            assert!([1, 2, 4, 16].contains(&v));
        }
    }

    #[test]
    fn rejects_invalid_weights() {
        assert!(Categorical::new(&[]).is_err());
        assert!(Categorical::new(&[-1.0, 2.0]).is_err());
        assert!(Categorical::new(&[0.0, 0.0]).is_err());
        assert!(Categorical::new(&[f64::NAN]).is_err());
    }
}
