//! Beta distribution for bounded utilization fractions.
//!
//! GPU utilizations live in `[0, 100]` % and the paper's per-class
//! distributions are strongly skewed (median SM 16 %, but 22 % of jobs
//! touch 100 % at some point). Beta shapes express exactly this.

use super::Sample;
use crate::error::StatsError;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A beta distribution on `(0, 1)` with shape parameters `a, b > 0`.
///
/// Sampling uses the ratio of two gamma variates, themselves drawn with
/// the Marsaglia–Tsang squeeze method (with the `a < 1` boost).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Beta {
    a: f64,
    b: f64,
}

impl Beta {
    /// Creates a beta distribution.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] unless both shapes are
    /// finite and strictly positive.
    pub fn new(a: f64, b: f64) -> Result<Self, StatsError> {
        if !a.is_finite() || a <= 0.0 {
            return Err(StatsError::InvalidParameter { name: "a", value: a });
        }
        if !b.is_finite() || b <= 0.0 {
            return Err(StatsError::InvalidParameter { name: "b", value: b });
        }
        Ok(Beta { a, b })
    }

    /// Solves shape parameters from a target mean (in `(0, 1)`) and a
    /// "concentration" `kappa = a + b > 0`: `a = mean * kappa`,
    /// `b = (1 - mean) * kappa`. Larger `kappa` concentrates mass around
    /// the mean; `kappa < 2` produces the bathtub shapes typical of
    /// utilization data.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] unless `0 < mean < 1` and
    /// `kappa > 0`.
    pub fn from_mean_concentration(mean: f64, kappa: f64) -> Result<Self, StatsError> {
        if !(mean > 0.0 && mean < 1.0) {
            return Err(StatsError::InvalidParameter { name: "mean", value: mean });
        }
        if !kappa.is_finite() || kappa <= 0.0 {
            return Err(StatsError::InvalidParameter { name: "kappa", value: kappa });
        }
        Beta::new(mean * kappa, (1.0 - mean) * kappa)
    }

    /// First shape parameter.
    pub fn a(&self) -> f64 {
        self.a
    }

    /// Second shape parameter.
    pub fn b(&self) -> f64 {
        self.b
    }

    /// Mean, `a / (a + b)`.
    pub fn mean(&self) -> f64 {
        self.a / (self.a + self.b)
    }

    /// Variance.
    pub fn variance(&self) -> f64 {
        let s = self.a + self.b;
        self.a * self.b / (s * s * (s + 1.0))
    }
}

/// A gamma distribution with the given shape and unit scale, sampled via
/// Marsaglia–Tsang. Exposed primarily for Dirichlet-style normalized
/// draws (per-user lifecycle mixes in the workload generator).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Gamma {
    shape: f64,
}

impl Gamma {
    /// Creates a gamma distribution with unit scale.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] unless `shape` is finite
    /// and strictly positive.
    pub fn new(shape: f64) -> Result<Self, StatsError> {
        if !shape.is_finite() || shape <= 0.0 {
            return Err(StatsError::InvalidParameter { name: "shape", value: shape });
        }
        Ok(Gamma { shape })
    }

    /// Shape parameter.
    pub fn shape(&self) -> f64 {
        self.shape
    }
}

impl Sample for Gamma {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        gamma_variate(rng, self.shape)
    }
}

/// Draws a gamma(shape, 1) variate via Marsaglia–Tsang.
pub(crate) fn gamma_variate<R: Rng + ?Sized>(rng: &mut R, shape: f64) -> f64 {
    if shape < 1.0 {
        // Boost: gamma(a) = gamma(a + 1) * U^(1/a).
        let u: f64 = 1.0 - rng.gen::<f64>();
        return gamma_variate(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = super::Normal::standard_variate(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = 1.0 - rng.gen::<f64>();
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

impl Sample for Beta {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let x = gamma_variate(rng, self.a);
        let y = gamma_variate(rng, self.b);
        if x + y == 0.0 {
            // Numerically possible only for tiny shapes; split evenly.
            return 0.5;
        }
        x / (x + y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn samples_in_unit_interval() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        for &(a, b) in &[(0.3, 0.3), (2.0, 5.0), (0.5, 3.0), (8.0, 1.0)] {
            let d = Beta::new(a, b).unwrap();
            for _ in 0..500 {
                let x = d.sample(&mut rng);
                assert!((0.0..=1.0).contains(&x), "x={x} for a={a}, b={b}");
            }
        }
    }

    #[test]
    fn mean_converges() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let d = Beta::new(2.0, 6.0).unwrap();
        let xs = d.sample_n(&mut rng, 50_000);
        let m = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((m - 0.25).abs() < 0.01, "mean={m}");
    }

    #[test]
    fn variance_converges() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(19);
        let d = Beta::new(2.0, 2.0).unwrap();
        let xs = d.sample_n(&mut rng, 50_000);
        let m = xs.iter().sum::<f64>() / xs.len() as f64;
        let v = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((v - d.variance()).abs() < 0.005, "var={v} expected={}", d.variance());
    }

    #[test]
    fn small_shapes_produce_bathtub_mass_near_edges() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let d = Beta::new(0.3, 0.3).unwrap();
        let xs = d.sample_n(&mut rng, 20_000);
        let near_edges = xs.iter().filter(|x| **x < 0.1 || **x > 0.9).count();
        assert!(near_edges as f64 / xs.len() as f64 > 0.5);
    }

    #[test]
    fn from_mean_concentration_hits_mean() {
        let d = Beta::from_mean_concentration(0.16, 1.5).unwrap();
        assert!((d.mean() - 0.16).abs() < 1e-12);
    }

    #[test]
    fn gamma_mean_equals_shape() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(29);
        for &shape in &[0.5, 1.0, 3.5] {
            let d = Gamma::new(shape).unwrap();
            let xs = d.sample_n(&mut rng, 50_000);
            let m = xs.iter().sum::<f64>() / xs.len() as f64;
            assert!((m - shape).abs() / shape < 0.05, "shape {shape}: mean {m}");
            assert!(xs.iter().all(|x| *x >= 0.0));
        }
        assert!(Gamma::new(0.0).is_err());
        assert_eq!(Gamma::new(2.0).unwrap().shape(), 2.0);
    }

    #[test]
    fn rejects_invalid_parameters() {
        assert!(Beta::new(0.0, 1.0).is_err());
        assert!(Beta::new(1.0, -2.0).is_err());
        assert!(Beta::from_mean_concentration(1.0, 2.0).is_err());
        assert!(Beta::from_mean_concentration(0.5, 0.0).is_err());
    }
}
