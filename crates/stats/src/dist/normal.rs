//! Normal distribution via the Box–Muller transform.

use super::Sample;
use crate::error::StatsError;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A normal (Gaussian) distribution `N(mean, std_dev^2)`.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), sc_stats::StatsError> {
/// use rand::SeedableRng;
/// use sc_stats::dist::{Normal, Sample};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let n = Normal::new(10.0, 2.0)?;
/// let x = n.sample(&mut rng);
/// assert!(x.is_finite());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `std_dev` is negative
    /// or either parameter is non-finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, StatsError> {
        if !mean.is_finite() {
            return Err(StatsError::InvalidParameter { name: "mean", value: mean });
        }
        if !std_dev.is_finite() || std_dev < 0.0 {
            return Err(StatsError::InvalidParameter { name: "std_dev", value: std_dev });
        }
        Ok(Normal { mean, std_dev })
    }

    /// The standard normal `N(0, 1)`.
    pub fn standard() -> Self {
        Normal { mean: 0.0, std_dev: 1.0 }
    }

    /// Mean parameter.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Standard-deviation parameter.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// Draws one standard-normal variate via Box–Muller.
    pub(crate) fn standard_variate<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // u1 in (0, 1] to avoid ln(0).
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

impl Sample for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * Self::standard_variate(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn moments_converge() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let n = Normal::new(5.0, 3.0).unwrap();
        let xs = n.sample_n(&mut rng, 200_000);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean={mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.05, "sd={}", var.sqrt());
    }

    #[test]
    fn zero_std_dev_is_degenerate() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let n = Normal::new(7.0, 0.0).unwrap();
        for _ in 0..10 {
            assert_eq!(n.sample(&mut rng), 7.0);
        }
    }

    #[test]
    fn rejects_invalid_parameters() {
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(0.0, f64::INFINITY).is_err());
    }
}
