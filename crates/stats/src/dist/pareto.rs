//! Pareto distribution for heavy-tailed user activity.
//!
//! Sec. IV: "top 5% of the users submit 44% of the jobs, and top 20% of
//! the users submit 83.2% of the jobs. This Pareto Principle is as
//! expected". The workload generator draws per-user activity weights
//! from a [`Pareto`] whose shape is calibrated to hit those shares.

use super::Sample;
use crate::error::StatsError;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A Pareto (type I) distribution with scale `x_min > 0` and shape
/// `alpha > 0`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pareto {
    x_min: f64,
    alpha: f64,
}

impl Pareto {
    /// Creates a Pareto distribution.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] unless both parameters
    /// are finite and strictly positive.
    pub fn new(x_min: f64, alpha: f64) -> Result<Self, StatsError> {
        if !x_min.is_finite() || x_min <= 0.0 {
            return Err(StatsError::InvalidParameter { name: "x_min", value: x_min });
        }
        if !alpha.is_finite() || alpha <= 0.0 {
            return Err(StatsError::InvalidParameter { name: "alpha", value: alpha });
        }
        Ok(Pareto { x_min, alpha })
    }

    /// Scale parameter (minimum value).
    pub fn x_min(&self) -> f64 {
        self.x_min
    }

    /// Shape parameter.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Mean; infinite when `alpha <= 1`.
    pub fn mean(&self) -> f64 {
        if self.alpha <= 1.0 {
            f64::INFINITY
        } else {
            self.alpha * self.x_min / (self.alpha - 1.0)
        }
    }

    /// Theoretical share of the total held by the top `p` fraction of the
    /// population (valid for `alpha > 1`): `p^(1 - 1/alpha)`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `(0, 1]`.
    pub fn top_share(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p <= 1.0, "p must be in (0, 1], got {p}");
        p.powf(1.0 - 1.0 / self.alpha)
    }

    /// Solves the shape `alpha` such that the top `p` fraction holds a
    /// `share` fraction of the total: inverse of [`Pareto::top_share`].
    ///
    /// The paper's "top 20% submit 83.2%" gives
    /// `alpha = 1 / (1 - ln(0.832)/ln(0.2)) ≈ 1.13`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] unless `0 < p < 1` and
    /// `p < share < 1` (the top slice must hold more than its population
    /// share for a Pareto to exist).
    pub fn shape_for_top_share(p: f64, share: f64) -> Result<f64, StatsError> {
        if !(p > 0.0 && p < 1.0) {
            return Err(StatsError::InvalidParameter { name: "p", value: p });
        }
        if !(share > p && share < 1.0) {
            return Err(StatsError::InvalidParameter { name: "share", value: share });
        }
        // share = p^(1 - 1/alpha)  =>  1 - 1/alpha = ln(share)/ln(p).
        let ratio = share.ln() / p.ln();
        Ok(1.0 / (1.0 - ratio))
    }
}

impl Sample for Pareto {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = 1.0 - rng.gen::<f64>();
        self.x_min / u.powf(1.0 / self.alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Lorenz;
    use rand::SeedableRng;

    #[test]
    fn samples_bounded_below() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let d = Pareto::new(2.0, 1.5).unwrap();
        for _ in 0..1000 {
            assert!(d.sample(&mut rng) >= 2.0);
        }
    }

    #[test]
    fn shape_solver_round_trips() {
        let alpha = Pareto::shape_for_top_share(0.2, 0.832).unwrap();
        let d = Pareto::new(1.0, alpha).unwrap();
        assert!((d.top_share(0.2) - 0.832).abs() < 1e-12);
    }

    #[test]
    fn paper_top_shares_emerge_from_samples() {
        // Calibrate to "top 20% submit 83.2%" and check the sampled
        // Lorenz shares land in the heavy-tailed ballpark. The band is
        // deliberately wide: at alpha ≈ 1.13 the variance is infinite,
        // so the empirical top-20% share of a 20k draw ranges roughly
        // 0.75–0.96 across seeds (the exact calibration is covered
        // analytically by `shape_solver_round_trips`).
        let alpha = Pareto::shape_for_top_share(0.2, 0.832).unwrap();
        let d = Pareto::new(1.0, alpha).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let xs = d.sample_n(&mut rng, 20_000);
        let l = Lorenz::new(xs).unwrap();
        let s20 = l.top_share(0.2);
        assert!(s20 > 0.70 && s20 < 0.98, "top-20% share={s20}");
        let s5 = l.top_share(0.05);
        assert!(s5 > 0.40 && s5 < 0.95, "top-5% share={s5}");
    }

    #[test]
    fn mean_formula() {
        let d = Pareto::new(2.0, 3.0).unwrap();
        assert!((d.mean() - 3.0).abs() < 1e-12);
        let heavy = Pareto::new(1.0, 0.9).unwrap();
        assert!(heavy.mean().is_infinite());
    }

    #[test]
    fn rejects_invalid_parameters() {
        assert!(Pareto::new(0.0, 1.0).is_err());
        assert!(Pareto::new(1.0, 0.0).is_err());
        assert!(Pareto::shape_for_top_share(0.2, 0.1).is_err());
        assert!(Pareto::shape_for_top_share(1.0, 0.9).is_err());
    }
}
