//! Exponential distribution for arrival processes and phase lengths.

use super::Sample;
use crate::error::StatsError;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// An exponential distribution with rate `lambda` (mean `1 / lambda`).
///
/// Used for Poisson job inter-arrival times in the cluster simulator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution with the given rate.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] unless `rate` is finite
    /// and strictly positive.
    pub fn new(rate: f64) -> Result<Self, StatsError> {
        if !rate.is_finite() || rate <= 0.0 {
            return Err(StatsError::InvalidParameter { name: "rate", value: rate });
        }
        Ok(Exponential { rate })
    }

    /// Creates an exponential distribution with the given mean.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] unless `mean` is finite
    /// and strictly positive.
    pub fn with_mean(mean: f64) -> Result<Self, StatsError> {
        if !mean.is_finite() || mean <= 0.0 {
            return Err(StatsError::InvalidParameter { name: "mean", value: mean });
        }
        Exponential::new(1.0 / mean)
    }

    /// Rate parameter λ.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Mean, `1 / lambda`.
    pub fn mean(&self) -> f64 {
        1.0 / self.rate
    }
}

impl Sample for Exponential {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse-CDF; 1 - u in (0, 1] avoids ln(0).
        let u: f64 = 1.0 - rng.gen::<f64>();
        -u.ln() / self.rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn mean_converges() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let d = Exponential::with_mean(12.5).unwrap();
        let xs = d.sample_n(&mut rng, 100_000);
        let m = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((m - 12.5).abs() / 12.5 < 0.02, "mean={m}");
    }

    #[test]
    fn samples_non_negative() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let d = Exponential::new(3.0).unwrap();
        for _ in 0..1000 {
            assert!(d.sample(&mut rng) >= 0.0);
        }
    }

    #[test]
    fn memoryless_cov_is_one() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let d = Exponential::new(1.0).unwrap();
        let xs = d.sample_n(&mut rng, 100_000);
        let cov = crate::coefficient_of_variation(&xs).unwrap();
        assert!((cov - 100.0).abs() < 2.0, "cov={cov}");
    }

    #[test]
    fn rejects_invalid_rate() {
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::new(-1.0).is_err());
        assert!(Exponential::with_mean(0.0).is_err());
    }
}
