//! Lognormal distribution, the workhorse for heavy-tailed run times.
//!
//! The paper reports run-time quantiles (GPU jobs: p25 = 4 min, median =
//! 30 min, p75 = 300 min). [`LogNormal::from_quantiles`] solves (μ, σ)
//! directly from two such quantiles, which is how the workload generator
//! is calibrated.

use super::{standard_normal_quantile, Normal, Sample};
use crate::error::StatsError;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A lognormal distribution: `exp(N(mu, sigma^2))`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a lognormal with log-space mean `mu` and log-space standard
    /// deviation `sigma`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `sigma` is negative or
    /// either parameter is non-finite.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, StatsError> {
        if !mu.is_finite() {
            return Err(StatsError::InvalidParameter { name: "mu", value: mu });
        }
        if !sigma.is_finite() || sigma < 0.0 {
            return Err(StatsError::InvalidParameter { name: "sigma", value: sigma });
        }
        Ok(LogNormal { mu, sigma })
    }

    /// Solves the lognormal whose `q1`-quantile is `v1` and whose
    /// `q2`-quantile is `v2`.
    ///
    /// For example, the paper's GPU-job run times (median 30 min,
    /// p75 = 300 min):
    ///
    /// ```
    /// # fn main() -> Result<(), sc_stats::StatsError> {
    /// use sc_stats::dist::LogNormal;
    /// let d = LogNormal::from_quantiles(0.5, 30.0, 0.75, 300.0)?;
    /// assert!((d.median() - 30.0).abs() < 1e-9);
    /// assert!((d.quantile(0.75) - 300.0).abs() < 1e-6);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if the quantile levels are
    /// not strictly inside `(0, 1)` and distinct, or the values are not
    /// positive and ordered consistently with the levels.
    pub fn from_quantiles(q1: f64, v1: f64, q2: f64, v2: f64) -> Result<Self, StatsError> {
        for (name, q) in [("q1", q1), ("q2", q2)] {
            if !(q > 0.0 && q < 1.0) {
                return Err(StatsError::InvalidParameter { name, value: q });
            }
        }
        if q1 == q2 {
            return Err(StatsError::InvalidParameter { name: "q2", value: q2 });
        }
        for (name, v) in [("v1", v1), ("v2", v2)] {
            if v <= 0.0 || !v.is_finite() {
                return Err(StatsError::InvalidParameter { name, value: v });
            }
        }
        if (q1 < q2) != (v1 < v2) {
            return Err(StatsError::InvalidParameter { name: "v2", value: v2 });
        }
        let z1 = standard_normal_quantile(q1);
        let z2 = standard_normal_quantile(q2);
        let sigma = (v2.ln() - v1.ln()) / (z2 - z1);
        let mu = v1.ln() - sigma * z1;
        LogNormal::new(mu, sigma)
    }

    /// Log-space mean.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Log-space standard deviation.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Median, `exp(mu)`.
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }

    /// Arithmetic mean, `exp(mu + sigma^2 / 2)`.
    pub fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }

    /// Quantile function.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not strictly inside `(0, 1)`.
    pub fn quantile(&self, q: f64) -> f64 {
        (self.mu + self.sigma * standard_normal_quantile(q)).exp()
    }
}

impl Sample for LogNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * Normal::standard_variate(rng)).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn median_matches_mu() {
        let d = LogNormal::new(30.0f64.ln(), 1.0).unwrap();
        assert!((d.median() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn from_quantiles_paper_runtimes() {
        // p25 = 4 min, p75 = 300 min (Fig. 3a prose).
        let d = LogNormal::from_quantiles(0.25, 4.0, 0.75, 300.0).unwrap();
        assert!((d.quantile(0.25) - 4.0).abs() < 1e-6);
        assert!((d.quantile(0.75) - 300.0).abs() < 1e-4);
        // Geometric midpoint: median = sqrt(4 * 300) ≈ 34.6 min, close to
        // the reported 30 min median — the paper's run-time distribution is
        // nearly (though not exactly) lognormal.
        assert!((d.median() - (4.0f64 * 300.0).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn sample_median_converges() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let d = LogNormal::from_quantiles(0.5, 30.0, 0.75, 300.0).unwrap();
        let mut xs = d.sample_n(&mut rng, 100_001);
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[xs.len() / 2];
        assert!((median - 30.0).abs() / 30.0 < 0.05, "median={median}");
    }

    #[test]
    fn samples_are_positive() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let d = LogNormal::new(0.0, 2.0).unwrap();
        for _ in 0..1000 {
            assert!(d.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn from_quantiles_rejects_inconsistent_input() {
        assert!(LogNormal::from_quantiles(0.5, 30.0, 0.75, 10.0).is_err());
        assert!(LogNormal::from_quantiles(0.5, 30.0, 0.5, 40.0).is_err());
        assert!(LogNormal::from_quantiles(0.0, 30.0, 0.75, 40.0).is_err());
        assert!(LogNormal::from_quantiles(0.5, -1.0, 0.75, 40.0).is_err());
    }
}
