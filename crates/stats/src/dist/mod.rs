//! Parametric distributions implemented from scratch on top of `rand`'s
//! uniform source.
//!
//! The paper's population statistics (lognormal-looking run times, Pareto
//! user activity, beta-shaped utilizations) drive the calibrated workload
//! generator. Rather than pulling in `rand_distr`, the samplers here are
//! implemented directly — they are part of the substrate this
//! reproduction must provide, and each carries unit tests against known
//! moments.
//!
//! All samplers implement [`Sample`], taking any [`rand::Rng`] so the
//! whole pipeline stays deterministic under a seeded
//! [`rand::rngs::StdRng`].

mod beta;
mod categorical;
mod exponential;
mod lognormal;
mod normal;
mod pareto;
mod weibull;

pub use beta::{Beta, Gamma};
pub use categorical::{Categorical, EmpiricalDiscrete};
pub use exponential::Exponential;
pub use lognormal::LogNormal;
pub use normal::Normal;
pub use pareto::Pareto;
pub use weibull::Weibull;

use rand::Rng;

/// A distribution from which `f64` observations can be drawn.
///
/// Implemented by every continuous sampler in this module. Use
/// [`Sample::sample_n`] to draw a vector in one call.
pub trait Sample {
    /// Draws one observation.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64;

    /// Draws `n` observations into a vector.
    fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64>
    where
        Self: Sized,
    {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// Standard normal quantile function (inverse CDF), Acklam's rational
/// approximation (|error| < 1.15e-9). Used to solve lognormal parameters
/// from reported percentiles.
///
/// # Panics
///
/// Panics if `p` is not strictly inside `(0, 1)`.
pub fn standard_normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "p must be in (0, 1), got {p}");
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    const P_HIGH: f64 = 1.0 - P_LOW;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_quantile_reference_values() {
        assert!(standard_normal_quantile(0.5).abs() < 1e-9);
        // Phi^-1(0.975) = 1.959963984540054
        assert!((standard_normal_quantile(0.975) - 1.959963984540054).abs() < 1e-7);
        assert!((standard_normal_quantile(0.025) + 1.959963984540054).abs() < 1e-7);
        // Phi^-1(0.75) = 0.6744897501960817 (the quartile constant used in
        // lognormal calibration).
        assert!((standard_normal_quantile(0.75) - 0.6744897501960817).abs() < 1e-8);
    }

    #[test]
    fn normal_quantile_symmetry() {
        for &p in &[0.01, 0.1, 0.3, 0.49] {
            let lo = standard_normal_quantile(p);
            let hi = standard_normal_quantile(1.0 - p);
            assert!((lo + hi).abs() < 1e-7, "asymmetry at p={p}");
        }
    }

    #[test]
    #[should_panic(expected = "p must be in (0, 1)")]
    fn normal_quantile_rejects_endpoint() {
        let _ = standard_normal_quantile(1.0);
    }
}
