//! Weibull distribution for hardware-failure interarrival times.
//!
//! Reliability studies of large GPU fleets (Kokolis et al., 2024) find
//! node-hardware failures are not memoryless: early-life ("infant
//! mortality") and wear-out regimes give interarrival times a Weibull
//! shape, with `k < 1` (decreasing hazard) after burn-in and `k > 1`
//! (increasing hazard) near end of life. The failure-injection subsystem
//! samples per-class interarrivals from this distribution.

use super::Sample;
use crate::error::StatsError;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A two-parameter Weibull distribution with shape `k` and scale
/// (characteristic life) `lambda`.
///
/// `k = 1` reduces to the exponential distribution with mean `lambda`;
/// `k < 1` has a decreasing hazard rate, `k > 1` an increasing one.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Weibull {
    shape: f64,
    scale: f64,
}

impl Weibull {
    /// Creates a Weibull distribution with the given shape and scale.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] unless both parameters
    /// are finite and strictly positive.
    pub fn new(shape: f64, scale: f64) -> Result<Self, StatsError> {
        if !shape.is_finite() || shape <= 0.0 {
            return Err(StatsError::InvalidParameter { name: "shape", value: shape });
        }
        if !scale.is_finite() || scale <= 0.0 {
            return Err(StatsError::InvalidParameter { name: "scale", value: scale });
        }
        Ok(Weibull { shape, scale })
    }

    /// Shape parameter `k`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Scale parameter `lambda` (the 63.2nd percentile for any shape).
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Median, `lambda * ln(2)^(1/k)`.
    pub fn median(&self) -> f64 {
        self.scale * std::f64::consts::LN_2.powf(1.0 / self.shape)
    }
}

impl Sample for Weibull {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse-CDF: x = lambda * (-ln(1 - u))^(1/k); 1 - u in (0, 1]
        // avoids ln(0).
        let u: f64 = 1.0 - rng.gen::<f64>();
        self.scale * (-u.ln()).powf(1.0 / self.shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn shape_one_is_exponential() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let d = Weibull::new(1.0, 250.0).unwrap();
        let xs = d.sample_n(&mut rng, 100_000);
        let m = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((m - 250.0).abs() / 250.0 < 0.02, "mean={m}");
    }

    #[test]
    fn empirical_median_matches_closed_form() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        for &shape in &[0.7, 1.0, 1.5, 3.0] {
            let d = Weibull::new(shape, 100.0).unwrap();
            let mut xs = d.sample_n(&mut rng, 50_000);
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let med = xs[xs.len() / 2];
            let expect = d.median();
            assert!((med - expect).abs() / expect < 0.05, "k={shape}: {med} vs {expect}");
        }
    }

    #[test]
    fn low_shape_has_heavier_tail_than_exponential() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let heavy = Weibull::new(0.6, 100.0).unwrap().sample_n(&mut rng, 50_000);
        let expo = Weibull::new(1.0, 100.0).unwrap().sample_n(&mut rng, 50_000);
        let p99 = |xs: &[f64]| {
            let mut s = xs.to_vec();
            s.sort_by(|a, b| a.partial_cmp(b).unwrap());
            s[(s.len() as f64 * 0.99) as usize]
        };
        assert!(p99(&heavy) > p99(&expo), "k<1 must have a heavier tail");
    }

    #[test]
    fn samples_non_negative() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(14);
        let d = Weibull::new(0.8, 5.0).unwrap();
        for _ in 0..1000 {
            assert!(d.sample(&mut rng) >= 0.0);
        }
    }

    #[test]
    fn rejects_invalid_parameters() {
        assert!(Weibull::new(0.0, 1.0).is_err());
        assert!(Weibull::new(1.0, 0.0).is_err());
        assert!(Weibull::new(-1.0, 1.0).is_err());
        assert!(Weibull::new(f64::NAN, 1.0).is_err());
    }
}
