//! Lorenz curves, Gini coefficients, and top-share statistics.
//!
//! Sec. IV of the paper: "While a median user submits 36 jobs, top 5% of
//! the users submit 44% of the jobs, and top 20% of the users submit
//! 83.2% of the jobs. This Pareto Principle is as expected…". [`Lorenz`]
//! quantifies exactly this concentration structure.

use crate::error::{ensure_sample, StatsError};
use serde::{Deserialize, Serialize};

/// Concentration analysis of a non-negative quantity across a population
/// (jobs per user, GPU hours per user, …).
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), sc_stats::StatsError> {
/// use sc_stats::Lorenz;
///
/// // Jobs submitted by five users.
/// let l = Lorenz::new(vec![1.0, 2.0, 3.0, 4.0, 90.0])?;
/// // The single busiest user (top 20%) submitted 90% of jobs.
/// assert!((l.top_share(0.2) - 0.9).abs() < 1e-12);
/// assert!(l.gini() > 0.5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Lorenz {
    /// Values sorted descending (largest contributor first).
    sorted_desc: Vec<f64>,
    total: f64,
}

impl Lorenz {
    /// Builds the analysis from per-individual totals.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`]/[`StatsError::NonFinite`] for
    /// invalid samples, and [`StatsError::InvalidParameter`] if any value
    /// is negative or the total is zero.
    pub fn new(mut values: Vec<f64>) -> Result<Self, StatsError> {
        ensure_sample(&values)?;
        if let Some(v) = values.iter().find(|v| **v < 0.0) {
            return Err(StatsError::InvalidParameter { name: "values", value: *v });
        }
        let total: f64 = values.iter().sum();
        if total == 0.0 {
            return Err(StatsError::InvalidParameter { name: "total", value: 0.0 });
        }
        values.sort_by(|a, b| b.partial_cmp(a).expect("values validated finite"));
        Ok(Lorenz { sorted_desc: values, total })
    }

    /// Number of individuals.
    pub fn population(&self) -> usize {
        self.sorted_desc.len()
    }

    /// Share of the total contributed by the top `fraction` of individuals
    /// (`fraction` in `(0, 1]`). The count of individuals is rounded up,
    /// so `top_share(0.05)` over 191 users considers the 10 busiest.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not within `(0, 1]`.
    pub fn top_share(&self, fraction: f64) -> f64 {
        assert!(fraction > 0.0 && fraction <= 1.0, "fraction must be in (0, 1], got {fraction}");
        let k = ((self.sorted_desc.len() as f64 * fraction).ceil() as usize)
            .clamp(1, self.sorted_desc.len());
        self.sorted_desc[..k].iter().sum::<f64>() / self.total
    }

    /// Gini coefficient in `[0, 1)`: 0 is perfect equality.
    pub fn gini(&self) -> f64 {
        // With values sorted descending, assign ascending order i=n..1.
        let n = self.sorted_desc.len() as f64;
        let mut weighted = 0.0;
        for (i, v) in self.sorted_desc.iter().enumerate() {
            // rank from largest: i=0 is the largest -> ascending rank n-i.
            let asc_rank = n - i as f64;
            weighted += asc_rank * v;
        }
        (2.0 * weighted / (n * self.total) - (n + 1.0) / n).abs()
    }

    /// The Lorenz curve as `(population fraction, cumulative share)`
    /// pairs in ascending population order (poorest first), starting at
    /// `(0, 0)` and ending at `(1, 1)`.
    pub fn curve(&self) -> Vec<(f64, f64)> {
        let n = self.sorted_desc.len();
        let mut pts = Vec::with_capacity(n + 1);
        pts.push((0.0, 0.0));
        let mut cum = 0.0;
        // Ascending order = iterate the descending vec in reverse.
        for (i, v) in self.sorted_desc.iter().rev().enumerate() {
            cum += v;
            pts.push(((i + 1) as f64 / n as f64, cum / self.total));
        }
        pts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn equal_distribution_gini_near_zero() {
        let l = Lorenz::new(vec![10.0; 100]).unwrap();
        assert!(l.gini() < 0.011, "gini={}", l.gini());
        assert!((l.top_share(0.2) - 0.2).abs() < 1e-9);
    }

    #[test]
    fn extreme_concentration() {
        let mut v = vec![0.0; 99];
        v.push(100.0);
        let l = Lorenz::new(v).unwrap();
        assert!((l.top_share(0.01) - 1.0).abs() < 1e-12);
        assert!(l.gini() > 0.98);
    }

    #[test]
    fn curve_endpoints_and_monotonicity() {
        let l = Lorenz::new(vec![5.0, 1.0, 3.0, 7.0]).unwrap();
        let c = l.curve();
        assert_eq!(c[0], (0.0, 0.0));
        let last = *c.last().unwrap();
        assert!((last.0 - 1.0).abs() < 1e-12 && (last.1 - 1.0).abs() < 1e-12);
        for w in c.windows(2) {
            assert!(w[0].1 <= w[1].1 + 1e-12);
        }
        // Lorenz curve lies below the diagonal.
        for (p, s) in &c {
            assert!(*s <= *p + 1e-9);
        }
    }

    #[test]
    fn rejects_negative_and_zero_total() {
        assert!(Lorenz::new(vec![-1.0, 2.0]).is_err());
        assert!(Lorenz::new(vec![0.0, 0.0]).is_err());
        assert!(Lorenz::new(vec![]).is_err());
    }

    #[test]
    #[should_panic(expected = "fraction must be in (0, 1]")]
    fn top_share_rejects_zero_fraction() {
        let l = Lorenz::new(vec![1.0, 2.0]).unwrap();
        let _ = l.top_share(0.0);
    }

    proptest! {
        #[test]
        fn prop_gini_in_unit_interval(values in proptest::collection::vec(0.0..1e5f64, 1..200)) {
            prop_assume!(values.iter().sum::<f64>() > 0.0);
            let l = Lorenz::new(values).unwrap();
            let g = l.gini();
            prop_assert!((0.0..=1.0).contains(&g), "gini={}", g);
        }

        #[test]
        fn prop_top_share_monotone_in_fraction(values in proptest::collection::vec(0.0..1e5f64, 2..200)) {
            prop_assume!(values.iter().sum::<f64>() > 0.0);
            let l = Lorenz::new(values).unwrap();
            let mut prev = 0.0;
            for k in 1..=10 {
                let s = l.top_share(k as f64 / 10.0);
                prop_assert!(s + 1e-12 >= prev);
                prev = s;
            }
            prop_assert!((l.top_share(1.0) - 1.0).abs() < 1e-9);
        }
    }
}
