//! Linear- and log-binned histograms for distribution shape reports.

use crate::error::{ensure_sample, StatsError};
use serde::{Deserialize, Serialize};

/// A fixed-bin histogram over a closed range.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), sc_stats::StatsError> {
/// use sc_stats::Histogram;
///
/// let h = Histogram::linear(&[1.0, 2.0, 2.5, 9.0], 0.0, 10.0, 5)?;
/// assert_eq!(h.counts(), &[1, 2, 0, 0, 1]);
/// assert_eq!(h.total(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    edges: Vec<f64>,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Builds a histogram with `bins` equal-width bins over `[lo, hi]`.
    /// Values below `lo` / above `hi` are tallied as under/overflow.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `bins == 0` or
    /// `lo >= hi`, and the usual sample-validity errors.
    pub fn linear(data: &[f64], lo: f64, hi: f64, bins: usize) -> Result<Self, StatsError> {
        ensure_sample(data)?;
        if bins == 0 {
            return Err(StatsError::InvalidParameter { name: "bins", value: 0.0 });
        }
        if lo >= hi {
            return Err(StatsError::InvalidParameter { name: "lo", value: lo });
        }
        let edges: Vec<f64> = (0..=bins).map(|i| lo + (hi - lo) * i as f64 / bins as f64).collect();
        Ok(Self::from_edges_unchecked(data, edges))
    }

    /// Builds a histogram with `bins` logarithmically spaced bins over
    /// `[lo, hi]`, suitable for run-time distributions spanning seconds
    /// to days.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `bins == 0`,
    /// `lo <= 0`, or `lo >= hi`, and the usual sample-validity errors.
    pub fn logarithmic(data: &[f64], lo: f64, hi: f64, bins: usize) -> Result<Self, StatsError> {
        ensure_sample(data)?;
        if bins == 0 {
            return Err(StatsError::InvalidParameter { name: "bins", value: 0.0 });
        }
        if lo <= 0.0 {
            return Err(StatsError::InvalidParameter { name: "lo", value: lo });
        }
        if lo >= hi {
            return Err(StatsError::InvalidParameter { name: "hi", value: hi });
        }
        let (llo, lhi) = (lo.ln(), hi.ln());
        let edges: Vec<f64> =
            (0..=bins).map(|i| (llo + (lhi - llo) * i as f64 / bins as f64).exp()).collect();
        Ok(Self::from_edges_unchecked(data, edges))
    }

    fn from_edges_unchecked(data: &[f64], edges: Vec<f64>) -> Self {
        let bins = edges.len() - 1;
        let mut counts = vec![0u64; bins];
        let mut underflow = 0;
        let mut overflow = 0;
        let lo = edges[0];
        let hi = *edges.last().expect("at least two edges");
        for &v in data {
            if v < lo {
                underflow += 1;
            } else if v > hi {
                overflow += 1;
            } else {
                // partition_point gives the first edge > v; bin index is that - 1.
                let idx = edges.partition_point(|e| *e <= v);
                let bin = idx.saturating_sub(1).min(bins - 1);
                counts[bin] += 1;
            }
        }
        Histogram { edges, counts, underflow, overflow }
    }

    /// Bin edges (`bins + 1` values).
    pub fn edges(&self) -> &[f64] {
        &self.edges
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Count of values below the lowest edge.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count of values above the highest edge.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations including under/overflow.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Per-bin fractions of the in-range total (empty histogram yields zeros).
    pub fn fractions(&self) -> Vec<f64> {
        let in_range: u64 = self.counts.iter().sum();
        if in_range == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts.iter().map(|c| *c as f64 / in_range as f64).collect()
    }

    /// Iterator of `(bin_center, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.edges.windows(2).zip(&self.counts).map(|(w, &c)| ((w[0] + w[1]) / 2.0, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn linear_binning_places_values() {
        let h = Histogram::linear(&[0.0, 0.5, 1.0, 1.5, 2.0], 0.0, 2.0, 2).unwrap();
        // Last edge is inclusive, so 2.0 lands in the final bin.
        assert_eq!(h.counts(), &[2, 3]);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn under_and_overflow_tallied() {
        let h = Histogram::linear(&[-1.0, 0.5, 3.0], 0.0, 2.0, 2).unwrap();
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn log_binning_spans_decades() {
        let h = Histogram::logarithmic(&[1.0, 10.0, 100.0, 999.0], 1.0, 1000.0, 3).unwrap();
        assert_eq!(h.counts(), &[1, 1, 2]);
    }

    #[test]
    fn invalid_parameters_error() {
        assert!(Histogram::linear(&[1.0], 0.0, 1.0, 0).is_err());
        assert!(Histogram::linear(&[1.0], 2.0, 1.0, 4).is_err());
        assert!(Histogram::logarithmic(&[1.0], 0.0, 1.0, 4).is_err());
        assert!(Histogram::logarithmic(&[1.0], -1.0, 1.0, 4).is_err());
    }

    #[test]
    fn fractions_sum_to_one_when_in_range() {
        let h = Histogram::linear(&[0.1, 0.9, 1.4, 1.9], 0.0, 2.0, 4).unwrap();
        let s: f64 = h.fractions().iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_counts_conserved(
            data in proptest::collection::vec(-10.0..30.0f64, 1..300),
            bins in 1usize..50,
        ) {
            let h = Histogram::linear(&data, 0.0, 20.0, bins).unwrap();
            prop_assert_eq!(h.total() as usize, data.len());
        }

        #[test]
        fn prop_bin_centers_ordered(
            data in proptest::collection::vec(0.0..100.0f64, 1..100),
            bins in 2usize..30,
        ) {
            let h = Histogram::linear(&data, 0.0, 100.0, bins).unwrap();
            let centers: Vec<f64> = h.iter().map(|(c, _)| c).collect();
            for w in centers.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
        }
    }
}
