//! Empirical cumulative distribution functions.
//!
//! The paper presents nearly every result as an empirical CDF ("We
//! generally use empirically-obtained cumulative distribution functions
//! (CDFs) … to present our results", Sec. II). [`Ecdf`] stores a sorted
//! copy of the sample and answers both directions of query:
//! value → cumulative fraction ([`Ecdf::fraction_at_most`]) and
//! probability → value ([`Ecdf::quantile`]).

use crate::descriptive::percentile_of_sorted;
use crate::error::{ensure_sample, StatsError};
use serde::{Deserialize, Serialize};

/// An empirical cumulative distribution function over a finite sample.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), sc_stats::StatsError> {
/// use sc_stats::Ecdf;
///
/// // GPU-job run times in minutes (Fig. 3a style).
/// let cdf = Ecdf::new(vec![1.0, 4.0, 30.0, 300.0, 1200.0])?;
/// assert_eq!(cdf.quantile(0.5), 30.0);
/// // "70% of the GPU jobs spend less than one minute in the queue"
/// // style queries:
/// assert_eq!(cdf.fraction_at_most(4.0), 0.4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from a sample, taking ownership and sorting it.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] for an empty sample and
    /// [`StatsError::NonFinite`] if any observation is NaN or infinite.
    pub fn new(mut data: Vec<f64>) -> Result<Self, StatsError> {
        ensure_sample(&data)?;
        data.sort_by(|a, b| a.partial_cmp(b).expect("values validated finite"));
        Ok(Ecdf { sorted: data })
    }

    /// Builds an ECDF from borrowed data.
    ///
    /// # Errors
    ///
    /// Same as [`Ecdf::new`].
    pub fn from_slice(data: &[f64]) -> Result<Self, StatsError> {
        Self::new(data.to_vec())
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the ECDF holds no observations. Always `false` for a
    /// successfully constructed value; provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The sorted observations underlying this ECDF.
    pub fn as_sorted(&self) -> &[f64] {
        &self.sorted
    }

    /// Fraction of observations `<= x` (the CDF evaluated at `x`).
    pub fn fraction_at_most(&self, x: f64) -> f64 {
        let idx = self.sorted.partition_point(|v| *v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Fraction of observations strictly greater than `x`; convenience for
    /// statements like "only 20% of the jobs have more than 50% SM
    /// utilization" (Sec. III).
    pub fn fraction_above(&self, x: f64) -> f64 {
        1.0 - self.fraction_at_most(x)
    }

    /// The `q`-quantile (`q` in `[0, 1]`) with linear interpolation,
    /// matching `numpy.quantile`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`. Use [`Ecdf::try_quantile`] for a
    /// fallible variant.
    pub fn quantile(&self, q: f64) -> f64 {
        self.try_quantile(q).expect("q within [0, 1]")
    }

    /// Fallible variant of [`Ecdf::quantile`].
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidProbability`] if `q` is outside `[0, 1]`.
    pub fn try_quantile(&self, q: f64) -> Result<f64, StatsError> {
        if !(0.0..=1.0).contains(&q) {
            return Err(StatsError::InvalidProbability { value: q });
        }
        Ok(percentile_of_sorted(&self.sorted, q * 100.0))
    }

    /// Median, equivalent to `quantile(0.5)`.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Minimum observation.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Maximum observation.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty by construction")
    }

    /// Evaluates the CDF on a grid of `n` points spanning the observed
    /// range, returning `(x, F(x))` pairs — the series a plotting frontend
    /// would draw. `n` is clamped to at least 2.
    pub fn curve(&self, n: usize) -> Vec<(f64, f64)> {
        let n = n.max(2);
        let (lo, hi) = (self.min(), self.max());
        (0..n)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (n - 1) as f64;
                (x, self.fraction_at_most(x))
            })
            .collect()
    }

    /// Evaluates the CDF on a logarithmic grid of `n` points — the paper
    /// plots run-time CDFs with a log x-axis (Fig. 3a). Observations
    /// `<= 0` are accommodated by flooring the grid at `min.max(floor)`.
    ///
    /// # Panics
    ///
    /// Panics if `floor` is not positive.
    pub fn log_curve(&self, n: usize, floor: f64) -> Vec<(f64, f64)> {
        assert!(floor > 0.0, "floor must be positive");
        let n = n.max(2);
        let lo = self.min().max(floor);
        let hi = self.max().max(lo * (1.0 + 1e-12));
        let (llo, lhi) = (lo.ln(), hi.ln());
        (0..n)
            .map(|i| {
                let x = (llo + (lhi - llo) * i as f64 / (n - 1) as f64).exp();
                (x, self.fraction_at_most(x))
            })
            .collect()
    }

    /// A fixed set of quantiles `(q, value)` convenient for text reports:
    /// p1, p5, p10, p25, p50, p75, p90, p95, p99.
    pub fn quantile_report(&self) -> Vec<(f64, f64)> {
        [0.01, 0.05, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99]
            .iter()
            .map(|&q| (q, self.quantile(q)))
            .collect()
    }
}

impl FromIterator<f64> for Ecdf {
    /// Collects an iterator into an ECDF.
    ///
    /// # Panics
    ///
    /// Panics if the iterator is empty or yields non-finite values; use
    /// [`Ecdf::new`] for fallible construction.
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Ecdf::new(iter.into_iter().collect()).expect("valid sample for ECDF")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fraction_at_most_step_behavior() {
        let cdf = Ecdf::new(vec![1.0, 2.0, 2.0, 3.0]).unwrap();
        assert_eq!(cdf.fraction_at_most(0.5), 0.0);
        assert_eq!(cdf.fraction_at_most(1.0), 0.25);
        assert_eq!(cdf.fraction_at_most(2.0), 0.75);
        assert_eq!(cdf.fraction_at_most(3.0), 1.0);
        assert_eq!(cdf.fraction_at_most(10.0), 1.0);
    }

    #[test]
    fn fraction_above_complements() {
        let cdf = Ecdf::new(vec![10.0, 20.0, 30.0, 40.0, 50.0]).unwrap();
        assert!((cdf.fraction_above(30.0) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn quantile_endpoints() {
        let cdf = Ecdf::new(vec![5.0, 1.0, 3.0]).unwrap();
        assert_eq!(cdf.quantile(0.0), 1.0);
        assert_eq!(cdf.quantile(1.0), 5.0);
        assert_eq!(cdf.median(), 3.0);
    }

    #[test]
    fn try_quantile_rejects_bad_q() {
        let cdf = Ecdf::new(vec![1.0]).unwrap();
        assert!(matches!(cdf.try_quantile(1.5), Err(StatsError::InvalidProbability { .. })));
    }

    #[test]
    fn curve_spans_range_and_is_monotone() {
        let cdf = Ecdf::new(vec![0.0, 1.0, 2.0, 3.0, 10.0]).unwrap();
        let curve = cdf.curve(16);
        assert_eq!(curve.len(), 16);
        assert_eq!(curve[0].0, 0.0);
        assert_eq!(curve.last().unwrap().0, 10.0);
        assert_eq!(curve.last().unwrap().1, 1.0);
        for w in curve.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn log_curve_is_monotone_and_bounded() {
        let cdf = Ecdf::new(vec![0.5, 4.0, 30.0, 300.0, 1200.0]).unwrap();
        let curve = cdf.log_curve(32, 0.1);
        for w in curve.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(curve.last().unwrap().1, 1.0);
    }

    #[test]
    fn single_observation() {
        let cdf = Ecdf::new(vec![42.0]).unwrap();
        assert_eq!(cdf.median(), 42.0);
        assert_eq!(cdf.fraction_at_most(41.9), 0.0);
        assert_eq!(cdf.fraction_at_most(42.0), 1.0);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(Ecdf::new(vec![]).is_err());
        assert!(Ecdf::new(vec![f64::NAN]).is_err());
    }

    proptest! {
        #[test]
        fn prop_cdf_monotone(data in proptest::collection::vec(-1e5..1e5f64, 1..200),
                             x1 in -2e5..2e5f64, x2 in -2e5..2e5f64) {
            let cdf = Ecdf::new(data).unwrap();
            let (lo, hi) = if x1 <= x2 { (x1, x2) } else { (x2, x1) };
            prop_assert!(cdf.fraction_at_most(lo) <= cdf.fraction_at_most(hi));
        }

        #[test]
        fn prop_cdf_bounds(data in proptest::collection::vec(-1e5..1e5f64, 1..200), x in -2e5..2e5f64) {
            let cdf = Ecdf::new(data).unwrap();
            let f = cdf.fraction_at_most(x);
            prop_assert!((0.0..=1.0).contains(&f));
        }

        #[test]
        fn prop_quantile_within_range(data in proptest::collection::vec(-1e5..1e5f64, 1..200), q in 0.0..=1.0f64) {
            let cdf = Ecdf::new(data).unwrap();
            let v = cdf.quantile(q);
            prop_assert!(v >= cdf.min() - 1e-9 && v <= cdf.max() + 1e-9);
        }

        #[test]
        fn prop_quantile_of_fraction_roundtrip(data in proptest::collection::vec(0.0..1e5f64, 2..100)) {
            // With linear interpolation, F(quantile(q)) >= q - 1/n.
            let cdf = Ecdf::new(data).unwrap();
            let slack = 1.0 / cdf.len() as f64;
            for i in 0..=10 {
                let q = i as f64 / 10.0;
                let v = cdf.quantile(q);
                prop_assert!(cdf.fraction_at_most(v + 1e-9) + slack + 1e-9 >= q);
            }
        }
    }
}
