//! Rank and linear correlation.
//!
//! Fig. 12 of the paper correlates per-user job counts and GPU hours with
//! run-time/utilization averages and CoVs using **Spearman correlation**,
//! "which performs ranked linearity correlation and is useful for
//! detecting monotonic relationships", and reports that "all correlations
//! are statistically significant: p-value < 0.05".

use crate::error::{ensure_finite, StatsError};
use serde::{Deserialize, Serialize};

/// Result of a Spearman rank-correlation test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpearmanResult {
    /// Spearman's rho in `[-1, 1]`.
    pub rho: f64,
    /// Two-sided p-value from the t-distribution approximation
    /// `t = rho * sqrt((n - 2) / (1 - rho^2))` with `n - 2` degrees of
    /// freedom (the approximation SciPy uses for n ≳ 10).
    pub p_value: f64,
    /// Sample size.
    pub n: usize,
}

impl SpearmanResult {
    /// Whether the correlation is significant at the given level
    /// (the paper uses 0.05).
    pub fn is_significant(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Assigns fractional ranks (average rank for ties), 1-based, matching
/// `scipy.stats.rankdata(method="average")`.
pub fn fractional_ranks(data: &[f64]) -> Vec<f64> {
    let n = data.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| data[a].partial_cmp(&data[b]).expect("finite data"));
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && data[idx[j + 1]] == data[idx[i]] {
            j += 1;
        }
        // Average of 1-based ranks i+1 ..= j+1.
        let avg = (i + j + 2) as f64 / 2.0;
        for k in i..=j {
            ranks[idx[k]] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Pearson product-moment correlation of two paired samples.
///
/// # Errors
///
/// Returns [`StatsError::LengthMismatch`] for unequal lengths,
/// [`StatsError::InsufficientData`] for fewer than 2 pairs, and
/// [`StatsError::NonFinite`] for invalid values. Two constant inputs have
/// undefined correlation and yield `0.0` (no monotonic relationship).
pub fn pearson(x: &[f64], y: &[f64]) -> Result<f64, StatsError> {
    if x.len() != y.len() {
        return Err(StatsError::LengthMismatch { left: x.len(), right: y.len() });
    }
    if x.len() < 2 {
        return Err(StatsError::InsufficientData { needed: 2, got: x.len() });
    }
    ensure_finite(x)?;
    ensure_finite(y)?;
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (a, b) in x.iter().zip(y) {
        let dx = a - mx;
        let dy = b - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return Ok(0.0);
    }
    Ok((sxy / (sxx.sqrt() * syy.sqrt())).clamp(-1.0, 1.0))
}

/// Spearman rank correlation with a t-approximation p-value.
///
/// # Errors
///
/// Same conditions as [`pearson`], except at least 3 pairs are required
/// for the p-value's degrees of freedom to be positive.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), sc_stats::StatsError> {
/// // A perfectly monotonic (though nonlinear) relationship.
/// let jobs = [1.0, 2.0, 3.0, 4.0, 5.0];
/// let util = [0.1, 0.5, 2.0, 30.0, 31.0];
/// let r = sc_stats::spearman(&jobs, &util)?;
/// assert!((r.rho - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn spearman(x: &[f64], y: &[f64]) -> Result<SpearmanResult, StatsError> {
    if x.len() != y.len() {
        return Err(StatsError::LengthMismatch { left: x.len(), right: y.len() });
    }
    if x.len() < 3 {
        return Err(StatsError::InsufficientData { needed: 3, got: x.len() });
    }
    ensure_finite(x)?;
    ensure_finite(y)?;
    let rx = fractional_ranks(x);
    let ry = fractional_ranks(y);
    let rho = pearson(&rx, &ry)?;
    let n = x.len();
    let p_value = if rho.abs() >= 1.0 - 1e-12 {
        0.0
    } else {
        let df = (n - 2) as f64;
        let t = rho * (df / (1.0 - rho * rho)).sqrt();
        2.0 * student_t_sf(t.abs(), df)
    };
    Ok(SpearmanResult { rho, p_value, n })
}

/// Survival function (1 - CDF) of Student's t-distribution, computed via
/// the regularized incomplete beta function.
fn student_t_sf(t: f64, df: f64) -> f64 {
    // P(T > t) = 0.5 * I_{df/(df+t^2)}(df/2, 1/2) for t >= 0.
    let x = df / (df + t * t);
    0.5 * regularized_incomplete_beta(df / 2.0, 0.5, x)
}

/// Regularized incomplete beta function `I_x(a, b)` via the continued
/// fraction expansion (Numerical Recipes' `betai`/`betacf`).
fn regularized_incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_continued_fraction(a, b, x) / a
    } else {
        1.0 - front * beta_continued_fraction(b, a, 1.0 - x) / b
    }
}

/// Lentz's continued fraction for the incomplete beta.
fn beta_continued_fraction(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-14;
    const TINY: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Natural log of the gamma function (Lanczos approximation, g=7, n=9).
pub(crate) fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return pi.ln() - (pi * x).sin().ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEFFS[0];
    let t = x + 7.5;
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ranks_handle_ties_by_averaging() {
        let r = fractional_ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn ranks_of_distinct_values() {
        let r = fractional_ranks(&[3.0, 1.0, 2.0]);
        assert_eq!(r, vec![3.0, 1.0, 2.0]);
    }

    #[test]
    fn pearson_perfect_linear() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let yn: Vec<f64> = y.iter().map(|v| -v).collect();
        assert!((pearson(&x, &yn).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_input_yields_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]).unwrap(), 0.0);
    }

    #[test]
    fn spearman_monotone_nonlinear_is_one() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [1.0, 8.0, 27.0, 64.0, 125.0];
        let r = spearman(&x, &y).unwrap();
        assert!((r.rho - 1.0).abs() < 1e-12);
        assert_eq!(r.p_value, 0.0);
    }

    #[test]
    fn spearman_matches_scipy_reference() {
        // scipy.stats.spearmanr([1,2,3,4,5], [5,6,7,8,7]) ->
        // rho=0.8207826816681233, p=0.08858700531354381
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [5.0, 6.0, 7.0, 8.0, 7.0];
        let r = spearman(&x, &y).unwrap();
        assert!((r.rho - 0.8207826816681233).abs() < 1e-9, "rho={}", r.rho);
        assert!((r.p_value - 0.08858700531354381).abs() < 1e-6, "p={}", r.p_value);
    }

    #[test]
    fn spearman_independent_is_near_zero() {
        // Alternating pattern with no monotonic trend.
        let x: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..40).map(|i| if i % 2 == 0 { 1.0 } else { 0.0 }).collect();
        let r = spearman(&x, &y).unwrap();
        assert!(r.rho.abs() < 0.2, "rho={}", r.rho);
        assert!(!r.is_significant(0.05));
    }

    #[test]
    fn ln_gamma_reference_values() {
        // Gamma(5) = 24.
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-10);
        // Gamma(0.5) = sqrt(pi).
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn incomplete_beta_edges() {
        assert_eq!(regularized_incomplete_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(regularized_incomplete_beta(2.0, 3.0, 1.0), 1.0);
        // I_x(1, 1) = x.
        assert!((regularized_incomplete_beta(1.0, 1.0, 0.3) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn errors_on_mismatched_or_short_input() {
        assert!(matches!(spearman(&[1.0, 2.0], &[1.0]), Err(StatsError::LengthMismatch { .. })));
        assert!(matches!(
            spearman(&[1.0, 2.0], &[1.0, 2.0]),
            Err(StatsError::InsufficientData { .. })
        ));
    }

    proptest! {
        #[test]
        fn prop_spearman_in_range(
            pairs in proptest::collection::vec((-1e4..1e4f64, -1e4..1e4f64), 3..100)
        ) {
            let x: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let y: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            let r = spearman(&x, &y).unwrap();
            prop_assert!((-1.0..=1.0).contains(&r.rho));
            prop_assert!((0.0..=1.0).contains(&r.p_value) || r.p_value <= 1.0 + 1e-9);
        }

        #[test]
        fn prop_spearman_symmetric(
            pairs in proptest::collection::vec((-1e4..1e4f64, -1e4..1e4f64), 3..60)
        ) {
            let x: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let y: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            let a = spearman(&x, &y).unwrap();
            let b = spearman(&y, &x).unwrap();
            prop_assert!((a.rho - b.rho).abs() < 1e-9);
        }

        #[test]
        fn prop_spearman_invariant_under_monotone_transform(
            xs in proptest::collection::vec(0.1..1e3f64, 3..60)
        ) {
            // rho(x, y) == rho(x, exp(y)) for strictly increasing transform.
            let ys: Vec<f64> = xs.iter().map(|v| v * 2.0 + 1.0).collect();
            let ys_t: Vec<f64> = ys.iter().map(|v| v.ln()).collect();
            let a = spearman(&xs, &ys).unwrap();
            let b = spearman(&xs, &ys_t).unwrap();
            prop_assert!((a.rho - b.rho).abs() < 1e-9);
        }
    }
}
