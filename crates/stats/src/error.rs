//! Error types shared across the statistics substrate.

use std::error::Error;
use std::fmt;

/// Errors returned by statistics constructors and estimators.
///
/// Every fallible public function in this crate returns `Result<_, StatsError>`
/// so that callers can distinguish "empty input" from "ill-conditioned input"
/// without panicking inside analysis pipelines.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum StatsError {
    /// The input slice was empty but at least one observation is required.
    EmptyInput,
    /// The input contained a NaN or infinite value at the given index.
    NonFinite {
        /// Position of the first offending value.
        index: usize,
    },
    /// Two paired samples had different lengths.
    LengthMismatch {
        /// Length of the first sample.
        left: usize,
        /// Length of the second sample.
        right: usize,
    },
    /// A probability-like argument was outside `[0, 1]`.
    InvalidProbability {
        /// The offending value.
        value: f64,
    },
    /// A distribution parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the parameter, e.g. `"sigma"`.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The requested statistic needs more observations than were provided.
    InsufficientData {
        /// Observations required.
        needed: usize,
        /// Observations available.
        got: usize,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::EmptyInput => write!(f, "input sample was empty"),
            StatsError::NonFinite { index } => {
                write!(f, "non-finite value at index {index}")
            }
            StatsError::LengthMismatch { left, right } => {
                write!(f, "paired samples differ in length: {left} vs {right}")
            }
            StatsError::InvalidProbability { value } => {
                write!(f, "probability {value} outside [0, 1]")
            }
            StatsError::InvalidParameter { name, value } => {
                write!(f, "parameter `{name}` has invalid value {value}")
            }
            StatsError::InsufficientData { needed, got } => {
                write!(f, "need at least {needed} observations, got {got}")
            }
        }
    }
}

impl Error for StatsError {}

/// Validates that every value in `data` is finite.
///
/// Returns the first offending index as [`StatsError::NonFinite`].
pub(crate) fn ensure_finite(data: &[f64]) -> Result<(), StatsError> {
    match data.iter().position(|v| !v.is_finite()) {
        Some(index) => Err(StatsError::NonFinite { index }),
        None => Ok(()),
    }
}

/// Validates that `data` is non-empty and finite.
pub(crate) fn ensure_sample(data: &[f64]) -> Result<(), StatsError> {
    if data.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    ensure_finite(data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_without_trailing_punctuation() {
        let msgs = [
            StatsError::EmptyInput.to_string(),
            StatsError::NonFinite { index: 3 }.to_string(),
            StatsError::LengthMismatch { left: 1, right: 2 }.to_string(),
            StatsError::InvalidProbability { value: 1.5 }.to_string(),
            StatsError::InvalidParameter { name: "sigma", value: -1.0 }.to_string(),
            StatsError::InsufficientData { needed: 2, got: 0 }.to_string(),
        ];
        for m in msgs {
            assert!(!m.ends_with('.'), "message ends with period: {m}");
            assert!(m.chars().next().unwrap().is_lowercase(), "message not lowercase: {m}");
        }
    }

    #[test]
    fn ensure_sample_rejects_empty_and_nan() {
        assert_eq!(ensure_sample(&[]), Err(StatsError::EmptyInput));
        assert_eq!(ensure_sample(&[1.0, f64::NAN]), Err(StatsError::NonFinite { index: 1 }));
        assert_eq!(ensure_sample(&[f64::INFINITY]), Err(StatsError::NonFinite { index: 0 }));
        assert!(ensure_sample(&[0.0, -1.0, 2.5]).is_ok());
    }
}
