//! Run-length segmentation of sampled time series into active and idle
//! intervals.
//!
//! Sec. III of the paper: "the GPU jobs have 'active phases' and 'idle
//! phases.' GPU resources are used during the active phases and they
//! remain unused during the idle phases". Fig. 6 reports (a) the
//! fraction of run time spent active and (b) the CoV of idle/active
//! interval lengths. This module recovers those intervals from a sampled
//! utilization series.

use crate::descriptive::coefficient_of_variation;
use crate::error::{ensure_sample, StatsError};
use serde::{Deserialize, Serialize};

/// Whether an interval is active (utilization above threshold) or idle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IntervalKind {
    /// GPU resources in use.
    Active,
    /// GPU unused (only host CPUs busy).
    Idle,
}

/// A maximal run of consecutive samples of one kind.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interval {
    /// Active or idle.
    pub kind: IntervalKind,
    /// Index of the first sample in the run.
    pub start: usize,
    /// Number of samples in the run.
    pub len: usize,
}

impl Interval {
    /// Duration in seconds given the sampling period.
    pub fn duration_secs(&self, sample_period_secs: f64) -> f64 {
        self.len as f64 * sample_period_secs
    }
}

/// The result of segmenting one job's utilization series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Segmentation {
    intervals: Vec<Interval>,
    samples: usize,
}

impl Segmentation {
    /// All intervals in order.
    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    /// Total number of samples that were segmented.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Fraction of samples spent in active intervals, in `[0, 1]`
    /// (Fig. 6a's per-job statistic).
    pub fn active_fraction(&self) -> f64 {
        if self.samples == 0 {
            return 0.0;
        }
        let active: usize =
            self.intervals.iter().filter(|i| i.kind == IntervalKind::Active).map(|i| i.len).sum();
        active as f64 / self.samples as f64
    }

    /// Lengths (in samples) of intervals of the given kind.
    pub fn lengths_of(&self, kind: IntervalKind) -> Vec<f64> {
        self.intervals.iter().filter(|i| i.kind == kind).map(|i| i.len as f64).collect()
    }

    /// Coefficient of variation (percent) of interval lengths of one kind
    /// (Fig. 6b's per-job statistic). Returns `None` when fewer than two
    /// intervals of that kind exist — a CoV over a single interval is
    /// meaningless and the paper's per-job CDF can only include jobs that
    /// alternate at least twice.
    pub fn interval_cov(&self, kind: IntervalKind) -> Option<f64> {
        let lengths = self.lengths_of(kind);
        if lengths.len() < 2 {
            return None;
        }
        coefficient_of_variation(&lengths).ok()
    }

    /// Number of intervals of one kind.
    pub fn count_of(&self, kind: IntervalKind) -> usize {
        self.intervals.iter().filter(|i| i.kind == kind).count()
    }
}

/// Segments a sampled utilization series into alternating active/idle
/// intervals. A sample is active when its value is strictly greater than
/// `threshold`. `min_run` suppresses flicker: runs shorter than `min_run`
/// samples are merged into the surrounding interval (the paper's 100 ms
/// sampling would otherwise turn single-sample dips into "idle phases").
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`]/[`StatsError::NonFinite`] for
/// invalid series and [`StatsError::InvalidParameter`] for `min_run == 0`.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), sc_stats::StatsError> {
/// use sc_stats::{segment_intervals, IntervalKind};
///
/// let sm = [0.0, 0.0, 80.0, 85.0, 90.0, 0.0, 0.0, 0.0];
/// let seg = segment_intervals(&sm, 5.0, 1)?;
/// assert_eq!(seg.intervals().len(), 3);
/// assert_eq!(seg.active_fraction(), 3.0 / 8.0);
/// assert_eq!(seg.count_of(IntervalKind::Idle), 2);
/// # Ok(())
/// # }
/// ```
pub fn segment_intervals(
    series: &[f64],
    threshold: f64,
    min_run: usize,
) -> Result<Segmentation, StatsError> {
    ensure_sample(series)?;
    if min_run == 0 {
        return Err(StatsError::InvalidParameter { name: "min_run", value: 0.0 });
    }
    // Pass 1: raw run-length encoding.
    let mut raw: Vec<Interval> = Vec::new();
    for (i, &v) in series.iter().enumerate() {
        let kind = if v > threshold { IntervalKind::Active } else { IntervalKind::Idle };
        match raw.last_mut() {
            Some(last) if last.kind == kind => last.len += 1,
            _ => raw.push(Interval { kind, start: i, len: 1 }),
        }
    }
    Ok(Segmentation { intervals: smooth(raw, min_run), samples: series.len() })
}

/// Pass 2 of segmentation: merge runs shorter than `min_run` into their
/// neighbours, repeating until stable (merging can create new short
/// runs). Shared by [`segment_intervals`] and [`SegmentBuilder`] so the
/// streaming path is the batch algorithm by construction.
fn smooth(mut merged: Vec<Interval>, min_run: usize) -> Vec<Interval> {
    loop {
        if merged.len() <= 1 {
            break;
        }
        // Find the shortest sub-min_run run (interior preference keeps
        // endpoints stable).
        let victim = merged
            .iter()
            .enumerate()
            .filter(|(_, iv)| iv.len < min_run)
            .min_by_key(|(_, iv)| iv.len)
            .map(|(i, _)| i);
        let Some(i) = victim else { break };
        // Flip the victim's kind so it merges with neighbours.
        let kind = match merged[i].kind {
            IntervalKind::Active => IntervalKind::Idle,
            IntervalKind::Idle => IntervalKind::Active,
        };
        merged[i].kind = kind;
        // Re-coalesce adjacent same-kind runs.
        let mut out: Vec<Interval> = Vec::with_capacity(merged.len());
        for iv in merged {
            match out.last_mut() {
                Some(last) if last.kind == iv.kind => last.len += iv.len,
                _ => out.push(iv),
            }
        }
        merged = out;
    }
    merged
}

/// Incremental twin of [`segment_intervals`]: values stream in one at a
/// time (or as constant runs) and only the run-length encoding is held,
/// so segmenting an `n`-sample series needs `O(#runs)` memory instead of
/// `O(n)`. [`SegmentBuilder::finish`] applies the same smoothing pass as
/// the batch function, so for identical inputs the resulting
/// [`Segmentation`] is identical — including the error behaviour on
/// empty or non-finite input.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), sc_stats::StatsError> {
/// use sc_stats::{segment_intervals, SegmentBuilder};
///
/// let sm = [0.0, 0.0, 80.0, 85.0, 90.0, 0.0, 0.0, 0.0];
/// let mut b = SegmentBuilder::new(5.0, 1);
/// for &v in &sm {
///     b.push(v);
/// }
/// assert_eq!(b.finish()?, segment_intervals(&sm, 5.0, 1)?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SegmentBuilder {
    threshold: f64,
    min_run: usize,
    runs: Vec<Interval>,
    samples: usize,
    first_non_finite: Option<usize>,
}

impl SegmentBuilder {
    /// Starts an empty segmentation with the same `threshold` / `min_run`
    /// semantics as [`segment_intervals`].
    pub fn new(threshold: f64, min_run: usize) -> Self {
        SegmentBuilder { threshold, min_run, runs: Vec::new(), samples: 0, first_non_finite: None }
    }

    /// Appends one sample.
    #[inline]
    pub fn push(&mut self, v: f64) {
        self.push_run(v, 1);
    }

    /// Appends `count` consecutive samples of the same value — the bulk
    /// entry point for constant spans.
    #[inline]
    pub fn push_run(&mut self, v: f64, count: usize) {
        if count == 0 {
            return;
        }
        if !v.is_finite() && self.first_non_finite.is_none() {
            self.first_non_finite = Some(self.samples);
        }
        let kind = if v > self.threshold { IntervalKind::Active } else { IntervalKind::Idle };
        match self.runs.last_mut() {
            Some(last) if last.kind == kind => last.len += count,
            _ => self.runs.push(Interval { kind, start: self.samples, len: count }),
        }
        self.samples += count;
    }

    /// Number of samples pushed so far.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Smooths and returns the segmentation.
    ///
    /// # Errors
    ///
    /// Exactly like [`segment_intervals`]: [`StatsError::EmptyInput`] if
    /// nothing was pushed, [`StatsError::NonFinite`] if any pushed value
    /// was NaN or infinite, and [`StatsError::InvalidParameter`] for
    /// `min_run == 0`.
    pub fn finish(self) -> Result<Segmentation, StatsError> {
        if self.samples == 0 {
            return Err(StatsError::EmptyInput);
        }
        if let Some(index) = self.first_non_finite {
            return Err(StatsError::NonFinite { index });
        }
        if self.min_run == 0 {
            return Err(StatsError::InvalidParameter { name: "min_run", value: 0.0 });
        }
        Ok(Segmentation { intervals: smooth(self.runs, self.min_run), samples: self.samples })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn all_idle_series() {
        let seg = segment_intervals(&[0.0; 10], 5.0, 1).unwrap();
        assert_eq!(seg.intervals().len(), 1);
        assert_eq!(seg.active_fraction(), 0.0);
        assert_eq!(seg.count_of(IntervalKind::Idle), 1);
    }

    #[test]
    fn all_active_series() {
        let seg = segment_intervals(&[50.0; 10], 5.0, 1).unwrap();
        assert_eq!(seg.active_fraction(), 1.0);
    }

    #[test]
    fn alternating_phases_counted() {
        let s = [0.0, 0.0, 90.0, 90.0, 0.0, 0.0, 90.0, 90.0];
        let seg = segment_intervals(&s, 5.0, 1).unwrap();
        assert_eq!(seg.count_of(IntervalKind::Active), 2);
        assert_eq!(seg.count_of(IntervalKind::Idle), 2);
        assert_eq!(seg.active_fraction(), 0.5);
    }

    #[test]
    fn min_run_suppresses_flicker() {
        // One-sample dip inside a long active phase.
        let s = [90.0, 90.0, 90.0, 0.0, 90.0, 90.0, 90.0];
        let strict = segment_intervals(&s, 5.0, 1).unwrap();
        assert_eq!(strict.intervals().len(), 3);
        let smoothed = segment_intervals(&s, 5.0, 2).unwrap();
        assert_eq!(smoothed.intervals().len(), 1);
        assert_eq!(smoothed.active_fraction(), 1.0);
    }

    #[test]
    fn interval_cov_requires_two_intervals() {
        let seg = segment_intervals(&[90.0; 5], 5.0, 1).unwrap();
        assert_eq!(seg.interval_cov(IntervalKind::Active), None);
        let s = [90.0, 0.0, 90.0, 90.0, 0.0, 90.0, 90.0, 90.0];
        let seg = segment_intervals(&s, 5.0, 1).unwrap();
        // Active runs: 1, 2, 3 -> mean 2, sd sqrt(2/3).
        let cov = seg.interval_cov(IntervalKind::Active).unwrap();
        let expect = ((2.0f64 / 3.0).sqrt() / 2.0) * 100.0;
        assert!((cov - expect).abs() < 1e-9, "cov={cov}");
    }

    #[test]
    fn interval_durations() {
        let iv = Interval { kind: IntervalKind::Active, start: 0, len: 10 };
        assert_eq!(iv.duration_secs(0.1), 1.0);
    }

    #[test]
    fn rejects_invalid_input() {
        assert!(segment_intervals(&[], 5.0, 1).is_err());
        assert!(segment_intervals(&[1.0], 5.0, 0).is_err());
    }

    #[test]
    fn builder_matches_error_behaviour() {
        assert_eq!(SegmentBuilder::new(5.0, 1).finish(), Err(StatsError::EmptyInput));
        let mut b = SegmentBuilder::new(5.0, 0);
        b.push(1.0);
        assert_eq!(b.finish(), Err(StatsError::InvalidParameter { name: "min_run", value: 0.0 }));
        let mut b = SegmentBuilder::new(5.0, 1);
        b.push(1.0);
        b.push(f64::NAN);
        b.push_run(2.0, 3);
        assert_eq!(b.finish(), Err(StatsError::NonFinite { index: 1 }));
    }

    #[test]
    fn builder_bulk_runs_match_per_sample_pushes() {
        let mut bulk = SegmentBuilder::new(0.5, 3);
        let mut single = SegmentBuilder::new(0.5, 3);
        for (v, n) in [(0.0, 5), (80.0, 2), (0.0, 1), (70.0, 7), (0.0, 4)] {
            bulk.push_run(v, n);
            for _ in 0..n {
                single.push(v);
            }
        }
        assert_eq!(bulk.samples(), single.samples());
        assert_eq!(bulk.finish().unwrap(), single.finish().unwrap());
    }

    proptest! {
        #[test]
        fn prop_builder_matches_batch(
            series in proptest::collection::vec(0.0..100.0f64, 1..300),
            threshold in 0.0..100.0f64,
            min_run in 1usize..5,
        ) {
            let batch = segment_intervals(&series, threshold, min_run).unwrap();
            let mut b = SegmentBuilder::new(threshold, min_run);
            for &v in &series {
                b.push(v);
            }
            prop_assert_eq!(b.finish().unwrap(), batch);
        }
    }

    proptest! {
        #[test]
        fn prop_intervals_partition_series(
            series in proptest::collection::vec(0.0..100.0f64, 1..300),
            threshold in 0.0..100.0f64,
            min_run in 1usize..5,
        ) {
            let seg = segment_intervals(&series, threshold, min_run).unwrap();
            let total: usize = seg.intervals().iter().map(|i| i.len).sum();
            prop_assert_eq!(total, series.len());
            // Intervals alternate in kind and are contiguous.
            let mut pos = 0;
            for w in seg.intervals().windows(2) {
                prop_assert!(w[0].kind != w[1].kind);
            }
            for iv in seg.intervals() {
                prop_assert_eq!(iv.start, pos);
                pos += iv.len;
            }
        }

        #[test]
        fn prop_active_fraction_bounded(
            series in proptest::collection::vec(0.0..100.0f64, 1..300),
            threshold in 0.0..100.0f64,
        ) {
            let seg = segment_intervals(&series, threshold, 1).unwrap();
            let f = seg.active_fraction();
            prop_assert!((0.0..=1.0).contains(&f));
        }

        #[test]
        fn prop_no_short_interior_runs_after_smoothing(
            series in proptest::collection::vec(0.0..100.0f64, 10..200),
            min_run in 2usize..4,
        ) {
            let seg = segment_intervals(&series, 50.0, min_run).unwrap();
            // After merging, only a single remaining interval may be short.
            if seg.intervals().len() > 1 {
                for iv in seg.intervals() {
                    prop_assert!(iv.len >= min_run);
                }
            }
        }
    }
}
