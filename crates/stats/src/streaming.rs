//! One-pass, mergeable streaming aggregators.
//!
//! The telemetry engine folds per-job sample series into aggregate state
//! as jobs complete instead of materializing them (the MIT Supercloud
//! dataset's 2.2 TB of raw time-series is exactly what this avoids).
//! Three primitives cover the figure pipeline's needs:
//!
//! - [`Welford`]: online mean/variance/CoV with a deterministic pairwise
//!   merge (Chan et al.'s parallel update). Merging partitions of a
//!   stream reproduces the batch [`crate::mean`]/[`crate::std_dev`]
//!   within ~1e-9 relative error (floating-point regrouping only; the
//!   count is always exact). The bound is asserted by proptests below.
//! - [`LogQuantileSketch`]: a fixed-bucket log-histogram quantile sketch
//!   (DDSketch-style). Bucket counts are integers, so merges are *exact*
//!   and order-independent; quantile estimates carry a documented
//!   relative error of at most `alpha` against the batch
//!   [`crate::percentile`].
//! - [`MergeHistogram`]: fixed-bin histogram with integer counts and
//!   exact, order-independent merges.
//!
//! All three are `O(1)`-ish state (the sketch is `O(#occupied buckets)`,
//! bounded by the dynamic range), which is what makes the streaming
//! telemetry collector's peak memory `O(aggregate state)` rather than
//! `O(samples)`.

use crate::error::StatsError;
use serde::{Deserialize, Serialize};

/// Online mean/variance accumulator (Welford) with a deterministic
/// pairwise merge.
///
/// # Example
///
/// ```
/// use sc_stats::Welford;
///
/// let mut w = Welford::new();
/// for v in [2.0, 4.0, 6.0] {
///     w.push(v);
/// }
/// assert_eq!(w.count(), 3);
/// assert!((w.mean().unwrap() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Self {
        Welford::default()
    }

    /// Folds one observation in.
    pub fn push(&mut self, v: f64) {
        self.count += 1;
        let delta = v - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (v - self.mean);
    }

    /// Merges another accumulator in (Chan's parallel combination).
    /// Deterministic for a fixed merge tree; different merge orders agree
    /// to within floating-point regrouping error (see module docs).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let n = n1 + n2;
        let delta = other.mean - self.mean;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.count += other.count;
    }

    /// Number of observations folded in.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean, or `None` for an empty accumulator.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// Population variance, or `None` for an empty accumulator.
    pub fn variance(&self) -> Option<f64> {
        (self.count > 0).then(|| (self.m2 / self.count as f64).max(0.0))
    }

    /// Population standard deviation, or `None` for an empty accumulator.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Coefficient of variation in percent, with the same zero-mean
    /// convention as [`crate::coefficient_of_variation`]: `0.0` when the
    /// mean is exactly zero.
    pub fn cov_percent(&self) -> Option<f64> {
        let mean = self.mean()?;
        let sd = self.std_dev()?;
        Some(if mean == 0.0 { 0.0 } else { sd / mean.abs() * 100.0 })
    }
}

/// A mergeable quantile sketch over non-negative values, backed by
/// fixed log-spaced buckets.
///
/// Values are mapped to bucket `ceil(log_gamma(v))` with
/// `gamma = (1 + alpha) / (1 - alpha)`; a bucket's representative value
/// `2 * gamma^i / (gamma + 1)` is within relative error `alpha` of every
/// value in the bucket, so any quantile estimate is within `alpha`
/// (relative) of the batch [`crate::percentile`] of the same data at the
/// nearest rank. Bucket counts are integers, which makes
/// [`LogQuantileSketch::merge`] exact and order-independent — the
/// property the determinism contract leans on.
///
/// Zeros (and values below [`LogQuantileSketch::MIN_TRACKED`]) are
/// counted in a dedicated zero bucket and reported as `0.0`; non-finite
/// or negative values are rejected by `push` and counted separately.
///
/// # Example
///
/// ```
/// use sc_stats::LogQuantileSketch;
///
/// let mut q = LogQuantileSketch::new(0.01).unwrap();
/// for v in 1..=1000 {
///     q.push(v as f64);
/// }
/// let median = q.quantile(0.5).unwrap();
/// assert!((median - 500.0).abs() / 500.0 <= 0.01);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogQuantileSketch {
    alpha: f64,
    ln_gamma: f64,
    /// `(bucket index, count)` pairs, sorted by index (sparse, ordered —
    /// merges and quantile walks are deterministic).
    buckets: Vec<(i32, u64)>,
    /// Values in `[0, MIN_TRACKED)`.
    zeros: u64,
    /// Values rejected by `push` (negative or non-finite).
    rejected: u64,
}

impl LogQuantileSketch {
    /// Smallest value tracked with relative precision; anything below
    /// lands in the zero bucket.
    pub const MIN_TRACKED: f64 = 1e-9;

    /// Creates a sketch with relative accuracy `alpha` (e.g. `0.01` for
    /// 1% relative quantile error).
    ///
    /// # Errors
    ///
    /// [`StatsError::InvalidParameter`] unless `0 < alpha < 1`.
    pub fn new(alpha: f64) -> Result<Self, StatsError> {
        if !(alpha > 0.0 && alpha < 1.0) {
            return Err(StatsError::InvalidParameter { name: "alpha", value: alpha });
        }
        let gamma = (1.0 + alpha) / (1.0 - alpha);
        Ok(LogQuantileSketch {
            alpha,
            ln_gamma: gamma.ln(),
            buckets: Vec::new(),
            zeros: 0,
            rejected: 0,
        })
    }

    /// Adds `n` to the bucket at `idx`, keeping the list sorted.
    fn bump(&mut self, idx: i32, n: u64) {
        match self.buckets.binary_search_by_key(&idx, |&(i, _)| i) {
            Ok(pos) => self.buckets[pos].1 += n,
            Err(pos) => self.buckets.insert(pos, (idx, n)),
        }
    }

    /// The configured relative accuracy.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Folds one value in. Negative or non-finite values are counted as
    /// rejected and do not perturb the quantiles.
    pub fn push(&mut self, v: f64) {
        if !v.is_finite() || v < 0.0 {
            self.rejected += 1;
            return;
        }
        if v < Self::MIN_TRACKED {
            self.zeros += 1;
            return;
        }
        let idx = (v.ln() / self.ln_gamma).ceil() as i32;
        self.bump(idx, 1);
    }

    /// Merges another sketch in by adding bucket counts — exact and
    /// order-independent.
    ///
    /// # Errors
    ///
    /// [`StatsError::InvalidParameter`] when the sketches were built with
    /// different `alpha` (their buckets are incompatible).
    pub fn merge(&mut self, other: &LogQuantileSketch) -> Result<(), StatsError> {
        if self.alpha != other.alpha {
            return Err(StatsError::InvalidParameter { name: "alpha", value: other.alpha });
        }
        for &(idx, n) in &other.buckets {
            self.bump(idx, n);
        }
        self.zeros += other.zeros;
        self.rejected += other.rejected;
        Ok(())
    }

    /// Number of accepted observations.
    pub fn count(&self) -> u64 {
        self.zeros + self.buckets.iter().map(|&(_, n)| n).sum::<u64>()
    }

    /// Number of rejected (negative / non-finite) observations.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Number of occupied buckets — the sketch's memory footprint.
    pub fn occupied_buckets(&self) -> usize {
        self.buckets.len() + usize::from(self.zeros > 0)
    }

    /// The `q`-quantile estimate (`q` clamped to `[0, 1]`), or `None`
    /// for an empty sketch. Uses the lower nearest rank,
    /// `floor(q * (count - 1))`, so `quantile(0.0)` / `quantile(1.0)`
    /// estimate the min / max.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * (total - 1) as f64).floor() as u64;
        if rank < self.zeros {
            return Some(0.0);
        }
        let mut seen = self.zeros;
        for &(idx, n) in &self.buckets {
            seen += n;
            if rank < seen {
                let gamma = (1.0 + self.alpha) / (1.0 - self.alpha);
                return Some(2.0 * gamma.powi(idx) / (gamma + 1.0));
            }
        }
        None // unreachable: rank < total
    }
}

/// A fixed-range histogram with integer bin counts and exact,
/// order-independent merges.
///
/// Out-of-range values are tallied in `below` / `above` counters rather
/// than dropped, so `count()` is always the number of pushed finite
/// values.
///
/// # Example
///
/// ```
/// use sc_stats::MergeHistogram;
///
/// let mut h = MergeHistogram::new(0.0, 100.0, 10).unwrap();
/// h.push(5.0);
/// h.push(95.0);
/// h.push(100.0); // == hi: clamped into the last bin
/// assert_eq!(h.counts(), &[1, 0, 0, 0, 0, 0, 0, 0, 0, 2]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MergeHistogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    below: u64,
    above: u64,
    rejected: u64,
}

impl MergeHistogram {
    /// Creates a histogram over `[lo, hi]` with `bins` equal-width bins.
    ///
    /// # Errors
    ///
    /// [`StatsError::InvalidParameter`] when `bins == 0`, bounds are
    /// non-finite, or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Self, StatsError> {
        if bins == 0 {
            return Err(StatsError::InvalidParameter { name: "bins", value: 0.0 });
        }
        if !lo.is_finite() || !hi.is_finite() || hi <= lo {
            return Err(StatsError::InvalidParameter { name: "hi", value: hi });
        }
        Ok(MergeHistogram { lo, hi, bins: vec![0; bins], below: 0, above: 0, rejected: 0 })
    }

    /// Folds one value in; non-finite values are counted as rejected.
    pub fn push(&mut self, v: f64) {
        if !v.is_finite() {
            self.rejected += 1;
            return;
        }
        if v < self.lo {
            self.below += 1;
        } else if v > self.hi {
            self.above += 1;
        } else {
            let width = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = (((v - self.lo) / width) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Merges another histogram in by adding counts — exact and
    /// order-independent.
    ///
    /// # Errors
    ///
    /// [`StatsError::LengthMismatch`] for differing bin counts and
    /// [`StatsError::InvalidParameter`] for differing bounds.
    pub fn merge(&mut self, other: &MergeHistogram) -> Result<(), StatsError> {
        if self.bins.len() != other.bins.len() {
            return Err(StatsError::LengthMismatch {
                left: self.bins.len(),
                right: other.bins.len(),
            });
        }
        if self.lo != other.lo || self.hi != other.hi {
            return Err(StatsError::InvalidParameter { name: "hi", value: other.hi });
        }
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.below += other.below;
        self.above += other.above;
        self.rejected += other.rejected;
        Ok(())
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.bins
    }

    /// Count of finite values below the range.
    pub fn below(&self) -> u64 {
        self.below
    }

    /// Count of finite values above the range.
    pub fn above(&self) -> u64 {
        self.above
    }

    /// Total finite values folded in (in-range plus out-of-range).
    pub fn count(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.below + self.above
    }

    /// `[lo, hi]` bounds.
    pub fn bounds(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }

    /// The inclusive-left edge of bin `i`.
    pub fn bin_lo(&self, i: usize) -> f64 {
        self.lo + (self.hi - self.lo) * i as f64 / self.bins.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptive::{coefficient_of_variation, mean, percentile, std_dev};
    use proptest::prelude::*;

    #[test]
    fn welford_matches_batch_single_stream() {
        let data = [3.5, 0.0, 12.25, 7.0, 99.0, 0.5];
        let mut w = Welford::new();
        for &v in &data {
            w.push(v);
        }
        assert_eq!(w.count(), data.len() as u64);
        assert!((w.mean().unwrap() - mean(&data).unwrap()).abs() < 1e-12);
        assert!((w.std_dev().unwrap() - std_dev(&data).unwrap()).abs() < 1e-12);
        assert!((w.cov_percent().unwrap() - coefficient_of_variation(&data).unwrap()).abs() < 1e-9);
    }

    #[test]
    fn welford_empty_and_zero_mean() {
        assert_eq!(Welford::new().mean(), None);
        assert_eq!(Welford::new().cov_percent(), None);
        let mut w = Welford::new();
        w.push(0.0);
        w.push(0.0);
        assert_eq!(w.cov_percent(), Some(0.0));
    }

    #[test]
    fn welford_merge_with_empty_is_identity() {
        let mut w = Welford::new();
        w.push(4.0);
        w.push(8.0);
        let before = w;
        w.merge(&Welford::new());
        assert_eq!(w, before);
        let mut e = Welford::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn sketch_rejects_bad_alpha_and_bad_values() {
        assert!(LogQuantileSketch::new(0.0).is_err());
        assert!(LogQuantileSketch::new(1.0).is_err());
        let mut q = LogQuantileSketch::new(0.01).unwrap();
        q.push(f64::NAN);
        q.push(-1.0);
        q.push(f64::INFINITY);
        assert_eq!(q.count(), 0);
        assert_eq!(q.rejected(), 3);
        assert_eq!(q.quantile(0.5), None);
    }

    #[test]
    fn sketch_zero_bucket() {
        let mut q = LogQuantileSketch::new(0.01).unwrap();
        for _ in 0..9 {
            q.push(0.0);
        }
        q.push(1000.0);
        assert_eq!(q.quantile(0.5).unwrap(), 0.0);
        assert!(q.quantile(1.0).unwrap() > 900.0);
        assert_eq!(q.occupied_buckets(), 2);
    }

    #[test]
    fn sketch_merge_alpha_mismatch_errors() {
        let mut a = LogQuantileSketch::new(0.01).unwrap();
        let b = LogQuantileSketch::new(0.02).unwrap();
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn histogram_counts_and_bounds() {
        let mut h = MergeHistogram::new(0.0, 10.0, 5).unwrap();
        for v in [-1.0, 0.0, 1.9, 2.0, 9.99, 10.0, 11.0, f64::NAN] {
            h.push(v);
        }
        assert_eq!(h.counts(), &[2, 1, 0, 0, 2]);
        assert_eq!(h.below(), 1);
        assert_eq!(h.above(), 1);
        assert_eq!(h.count(), 7);
        assert_eq!(h.bounds(), (0.0, 10.0));
        assert_eq!(h.bin_lo(1), 2.0);
        assert!(MergeHistogram::new(0.0, 0.0, 5).is_err());
        assert!(MergeHistogram::new(0.0, 1.0, 0).is_err());
    }

    #[test]
    fn histogram_merge_mismatch_errors() {
        let mut a = MergeHistogram::new(0.0, 10.0, 5).unwrap();
        assert!(a.merge(&MergeHistogram::new(0.0, 10.0, 6).unwrap()).is_err());
        assert!(a.merge(&MergeHistogram::new(0.0, 20.0, 5).unwrap()).is_err());
    }

    /// Splits `data` at the given cut points (taken modulo the length)
    /// and returns the chunks in a rotated order, modeling out-of-order
    /// merge arrival.
    fn split_rotated(data: &[f64], cuts: &[usize], rot: usize) -> Vec<Vec<f64>> {
        let mut points: Vec<usize> = cuts.iter().map(|c| c % (data.len() + 1)).collect();
        points.push(0);
        points.push(data.len());
        points.sort_unstable();
        points.dedup();
        let mut chunks: Vec<Vec<f64>> =
            points.windows(2).map(|w| data[w[0]..w[1]].to_vec()).collect();
        if !chunks.is_empty() {
            let r = rot % chunks.len();
            chunks.rotate_left(r);
        }
        chunks
    }

    proptest! {
        // Satellite: streaming-vs-batch equivalence under arbitrary merge
        // splits. Integer-count structures (sketch buckets, histograms)
        // must agree *exactly* regardless of split order; Welford agrees
        // within the documented floating-point regrouping bound, asserted
        // from both sides.

        #[test]
        fn prop_welford_split_merge_matches_batch(
            data in proptest::collection::vec(0.0..1e6f64, 1..200),
            cuts in proptest::collection::vec(0usize..100_000, 0..6),
            rot in 0usize..8,
        ) {
            let mut merged = Welford::new();
            for chunk in split_rotated(&data, &cuts, rot) {
                let mut w = Welford::new();
                for v in chunk {
                    w.push(v);
                }
                merged.merge(&w);
            }
            prop_assert_eq!(merged.count(), data.len() as u64);
            let (m_batch, m_stream) = (mean(&data).unwrap(), merged.mean().unwrap());
            let scale = m_batch.abs().max(1.0);
            prop_assert!((m_stream - m_batch).abs() <= 1e-9 * scale);
            prop_assert!((m_batch - m_stream).abs() <= 1e-9 * scale);
            let (s_batch, s_stream) = (std_dev(&data).unwrap(), merged.std_dev().unwrap());
            let s_scale = s_batch.abs().max(m_batch.abs()).max(1.0);
            prop_assert!((s_stream - s_batch).abs() <= 1e-6 * s_scale);
            prop_assert!((s_batch - s_stream).abs() <= 1e-6 * s_scale);
        }

        #[test]
        fn prop_sketch_split_merge_is_exact(
            data in proptest::collection::vec(0.0..1e9f64, 1..200),
            cuts in proptest::collection::vec(0usize..100_000, 0..6),
            rot in 0usize..8,
        ) {
            let mut single = LogQuantileSketch::new(0.01).unwrap();
            for &v in &data {
                single.push(v);
            }
            let mut merged = LogQuantileSketch::new(0.01).unwrap();
            for chunk in split_rotated(&data, &cuts, rot) {
                let mut s = LogQuantileSketch::new(0.01).unwrap();
                for v in chunk {
                    s.push(v);
                }
                merged.merge(&s).unwrap();
            }
            // Bucket-level equality: merges are exact, not approximate.
            prop_assert_eq!(&merged, &single);
            for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
                prop_assert_eq!(merged.quantile(q), single.quantile(q));
            }
        }

        #[test]
        fn prop_sketch_quantile_within_alpha_of_batch(
            data in proptest::collection::vec(1e-3..1e9f64, 1..300),
            q in 0.0..=1.0f64,
        ) {
            let alpha = 0.01;
            let mut sketch = LogQuantileSketch::new(alpha).unwrap();
            for &v in &data {
                sketch.push(v);
            }
            // The sketch's nearest-rank value, taken exactly.
            let mut sorted = data.clone();
            sorted.sort_by(f64::total_cmp);
            let rank = (q * (sorted.len() - 1) as f64).floor() as usize;
            let exact = sorted[rank];
            let est = sketch.quantile(q).unwrap();
            // Documented bound, asserted both ways: the estimate is at
            // most (1 + alpha) over the exact nearest-rank value, and the
            // exact value at most 1 / (1 - alpha) over the estimate.
            prop_assert!(est <= exact * (1.0 + alpha) + 1e-12, "est {est} exact {exact}");
            prop_assert!(exact <= est / (1.0 - alpha) + 1e-12, "est {est} exact {exact}");
            // And the batch interpolated percentile stays within alpha
            // plus one inter-rank gap of the estimate.
            let batch = percentile(&data, q * 100.0).unwrap();
            let hi_rank = ((q * (sorted.len() - 1) as f64).ceil() as usize).min(sorted.len() - 1);
            let gap = sorted[hi_rank] - sorted[rank];
            prop_assert!((batch - est).abs() <= alpha * exact + gap + 1e-12);
        }

        #[test]
        fn prop_histogram_split_merge_is_exact(
            data in proptest::collection::vec(-50.0..150.0f64, 1..200),
            cuts in proptest::collection::vec(0usize..100_000, 0..6),
            rot in 0usize..8,
        ) {
            let mut single = MergeHistogram::new(0.0, 100.0, 16).unwrap();
            for &v in &data {
                single.push(v);
            }
            let mut merged = MergeHistogram::new(0.0, 100.0, 16).unwrap();
            for chunk in split_rotated(&data, &cuts, rot) {
                let mut h = MergeHistogram::new(0.0, 100.0, 16).unwrap();
                for v in chunk {
                    h.push(v);
                }
                merged.merge(&h).unwrap();
            }
            prop_assert_eq!(&merged, &single);
        }
    }
}
