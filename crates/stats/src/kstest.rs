//! Two-sample Kolmogorov–Smirnov test.
//!
//! Used by the calibration suite to compare distribution *shapes* — e.g.
//! that the sampled telemetry path and the analytic aggregation path
//! produce the same per-job utilization distribution, or that two seeds
//! of the generator agree.

use crate::error::{ensure_sample, StatsError};
use serde::{Deserialize, Serialize};

/// Result of a two-sample KS test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KsResult {
    /// The KS statistic: the supremum distance between the two empirical
    /// CDFs, in `[0, 1]`.
    pub statistic: f64,
    /// Asymptotic two-sided p-value (Kolmogorov distribution; accurate
    /// for `n, m ≳ 20`).
    pub p_value: f64,
    /// Size of the first sample.
    pub n: usize,
    /// Size of the second sample.
    pub m: usize,
}

impl KsResult {
    /// Whether the two samples are distinguishable at level `alpha`.
    pub fn rejects_same_distribution(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Two-sample KS test.
///
/// # Errors
///
/// Returns the usual sample-validity errors for either input.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), sc_stats::StatsError> {
/// let a: Vec<f64> = (0..200).map(|i| i as f64).collect();
/// let b: Vec<f64> = (0..200).map(|i| i as f64 + 0.5).collect();
/// let r = sc_stats::kstest::ks_two_sample(&a, &b)?;
/// assert!(r.statistic < 0.05); // nearly identical distributions
/// assert!(!r.rejects_same_distribution(0.05));
/// # Ok(())
/// # }
/// ```
pub fn ks_two_sample(a: &[f64], b: &[f64]) -> Result<KsResult, StatsError> {
    ensure_sample(a)?;
    ensure_sample(b)?;
    let mut xa = a.to_vec();
    let mut xb = b.to_vec();
    xa.sort_by(|p, q| p.partial_cmp(q).expect("finite"));
    xb.sort_by(|p, q| p.partial_cmp(q).expect("finite"));
    let (n, m) = (xa.len(), xb.len());
    let mut i = 0;
    let mut j = 0;
    let mut d: f64 = 0.0;
    while i < n && j < m {
        let x = xa[i].min(xb[j]);
        while i < n && xa[i] <= x {
            i += 1;
        }
        while j < m && xb[j] <= x {
            j += 1;
        }
        let fa = i as f64 / n as f64;
        let fb = j as f64 / m as f64;
        d = d.max((fa - fb).abs());
    }
    let ne = (n as f64 * m as f64) / (n as f64 + m as f64);
    let lambda = (ne.sqrt() + 0.12 + 0.11 / ne.sqrt()) * d;
    Ok(KsResult { statistic: d, p_value: kolmogorov_sf(lambda), n, m })
}

/// Survival function of the Kolmogorov distribution:
/// `Q(λ) = 2 Σ_{k≥1} (-1)^{k-1} exp(-2 k² λ²)`.
fn kolmogorov_sf(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64).powi(2) * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{LogNormal, Normal, Sample};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identical_samples_have_zero_distance() {
        let a = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let r = ks_two_sample(&a, &a).unwrap();
        assert_eq!(r.statistic, 0.0);
        assert!((r.p_value - 1.0).abs() < 1e-9);
    }

    #[test]
    fn same_distribution_not_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = LogNormal::new(1.0, 0.8).unwrap();
        let a = d.sample_n(&mut rng, 800);
        let b = d.sample_n(&mut rng, 800);
        let r = ks_two_sample(&a, &b).unwrap();
        assert!(!r.rejects_same_distribution(0.01), "p={}", r.p_value);
    }

    #[test]
    fn shifted_distribution_rejected() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Normal::new(0.0, 1.0).unwrap().sample_n(&mut rng, 500);
        let b = Normal::new(0.8, 1.0).unwrap().sample_n(&mut rng, 500);
        let r = ks_two_sample(&a, &b).unwrap();
        assert!(r.rejects_same_distribution(0.001), "p={}", r.p_value);
        assert!(r.statistic > 0.2);
    }

    #[test]
    fn kolmogorov_sf_reference_values() {
        // Q(1.36) ≈ 0.049 (the classic 5% critical value).
        assert!((kolmogorov_sf(1.36) - 0.049).abs() < 0.002);
        assert!(kolmogorov_sf(0.0) == 1.0);
        assert!(kolmogorov_sf(3.0) < 1e-6);
    }

    #[test]
    fn statistic_bounded() {
        let a = vec![1.0, 2.0];
        let b = vec![100.0, 200.0, 300.0];
        let r = ks_two_sample(&a, &b).unwrap();
        assert_eq!(r.statistic, 1.0);
        assert!(r.rejects_same_distribution(0.2));
    }

    #[test]
    fn rejects_invalid_input() {
        assert!(ks_two_sample(&[], &[1.0]).is_err());
        assert!(ks_two_sample(&[1.0], &[f64::NAN]).is_err());
    }
}
