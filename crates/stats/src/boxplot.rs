//! Box-plot statistics (Figs. 5 and 16 of the paper).
//!
//! "The center line shows the median and the top and bottom of the box
//! show the 25th percentile and the 75th percentile" (Sec. VI). Whiskers
//! follow the Matplotlib/Tukey convention: last observation within
//! 1.5 × IQR of the box.

use crate::descriptive::percentile_of_sorted;
use crate::error::{ensure_sample, StatsError};
use serde::{Deserialize, Serialize};

/// Five-number box-plot summary with Tukey whiskers and outliers.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), sc_stats::StatsError> {
/// use sc_stats::BoxStats;
///
/// // SM utilization of IDE jobs: almost all zero (Fig. 16).
/// let b = BoxStats::from_sample(&[0.0, 0.0, 0.0, 0.0, 2.0, 95.0])?;
/// assert_eq!(b.median, 0.0);
/// assert_eq!(b.outliers, vec![95.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoxStats {
    /// Number of observations.
    pub count: usize,
    /// Lower whisker: smallest observation `>= q1 - 1.5 * IQR`.
    pub whisker_low: f64,
    /// 25th percentile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub q3: f64,
    /// Upper whisker: largest observation `<= q3 + 1.5 * IQR`.
    pub whisker_high: f64,
    /// Observations outside the whiskers, sorted ascending.
    pub outliers: Vec<f64>,
}

impl BoxStats {
    /// Computes box-plot statistics for a sample.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] or [`StatsError::NonFinite`] on
    /// invalid input.
    pub fn from_sample(data: &[f64]) -> Result<Self, StatsError> {
        ensure_sample(data)?;
        let mut sorted = data.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("values validated finite"));
        let q1 = percentile_of_sorted(&sorted, 25.0);
        let median = percentile_of_sorted(&sorted, 50.0);
        let q3 = percentile_of_sorted(&sorted, 75.0);
        let iqr = q3 - q1;
        let lo_fence = q1 - 1.5 * iqr;
        let hi_fence = q3 + 1.5 * iqr;
        // Whiskers follow Matplotlib: the last observation inside the
        // fence, but never retreating inside the box — if every point
        // beyond a quartile is an outlier, the whisker collapses onto
        // the box edge (interpolated quartiles need not be data points).
        let whisker_low =
            sorted.iter().copied().find(|v| *v >= lo_fence).unwrap_or(sorted[0]).min(q1);
        let whisker_high = sorted
            .iter()
            .rev()
            .copied()
            .find(|v| *v <= hi_fence)
            .unwrap_or(*sorted.last().expect("non-empty"))
            .max(q3);
        let outliers = sorted.iter().copied().filter(|v| *v < lo_fence || *v > hi_fence).collect();
        Ok(BoxStats { count: sorted.len(), whisker_low, q1, median, q3, whisker_high, outliers })
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }

    /// Renders a one-line textual representation, e.g. for figure tables:
    /// `|-[ 10.0 {21.0} 45.0 ]-| (n=1234, 7 outliers)`.
    pub fn render(&self) -> String {
        format!(
            "{:.1} |-[ {:.1} {{{:.1}}} {:.1} ]-| {:.1} (n={}, {} outliers)",
            self.whisker_low,
            self.q1,
            self.median,
            self.q3,
            self.whisker_high,
            self.count,
            self.outliers.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ordering_invariant_holds() {
        let b = BoxStats::from_sample(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]).unwrap();
        assert!(b.whisker_low <= b.q1);
        assert!(b.q1 <= b.median);
        assert!(b.median <= b.q3);
        assert!(b.q3 <= b.whisker_high);
        assert!(b.outliers.is_empty());
    }

    #[test]
    fn detects_high_outlier() {
        let b = BoxStats::from_sample(&[1.0, 2.0, 3.0, 4.0, 100.0]).unwrap();
        assert_eq!(b.outliers, vec![100.0]);
        assert!(b.whisker_high <= 4.0);
    }

    #[test]
    fn detects_low_outlier() {
        let b = BoxStats::from_sample(&[-100.0, 10.0, 11.0, 12.0, 13.0]).unwrap();
        assert_eq!(b.outliers, vec![-100.0]);
        assert!(b.whisker_low >= 10.0);
    }

    #[test]
    fn constant_sample_degenerates_cleanly() {
        let b = BoxStats::from_sample(&[5.0; 10]).unwrap();
        assert_eq!(b.q1, 5.0);
        assert_eq!(b.median, 5.0);
        assert_eq!(b.q3, 5.0);
        assert_eq!(b.whisker_low, 5.0);
        assert_eq!(b.whisker_high, 5.0);
        assert!(b.outliers.is_empty());
    }

    #[test]
    fn render_is_nonempty_and_contains_median() {
        let b = BoxStats::from_sample(&[0.0, 21.0, 42.0]).unwrap();
        let r = b.render();
        assert!(r.contains("{21.0}"));
    }

    proptest! {
        #[test]
        fn prop_box_ordering(data in proptest::collection::vec(-1e5..1e5f64, 1..300)) {
            let b = BoxStats::from_sample(&data).unwrap();
            prop_assert!(b.whisker_low <= b.q1 + 1e-9);
            prop_assert!(b.q1 <= b.median + 1e-9);
            prop_assert!(b.median <= b.q3 + 1e-9);
            prop_assert!(b.q3 <= b.whisker_high + 1e-9);
        }

        #[test]
        fn prop_outliers_plus_inliers_cover_sample(data in proptest::collection::vec(-1e5..1e5f64, 1..300)) {
            let b = BoxStats::from_sample(&data).unwrap();
            let inliers = data.iter().filter(|v| **v >= b.whisker_low && **v <= b.whisker_high).count();
            prop_assert_eq!(inliers + b.outliers.len(), data.len());
        }
    }
}
