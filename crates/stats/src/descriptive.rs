//! Descriptive statistics: mean, standard deviation, percentiles, and the
//! coefficient of variation that the paper leans on throughout Secs. III–V.

use crate::error::{ensure_sample, StatsError};
use serde::{Deserialize, Serialize};

/// Arithmetic mean of a sample.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] for an empty slice and
/// [`StatsError::NonFinite`] if any value is NaN or infinite.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), sc_stats::StatsError> {
/// let m = sc_stats::mean(&[1.0, 2.0, 3.0])?;
/// assert_eq!(m, 2.0);
/// # Ok(())
/// # }
/// ```
pub fn mean(data: &[f64]) -> Result<f64, StatsError> {
    ensure_sample(data)?;
    Ok(data.iter().sum::<f64>() / data.len() as f64)
}

/// Population standard deviation (divides by `n`, matching NumPy's
/// `std(ddof=0)` which the paper's analysis stack defaults to).
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] or [`StatsError::NonFinite`] on
/// invalid input.
pub fn std_dev(data: &[f64]) -> Result<f64, StatsError> {
    let m = mean(data)?;
    let var = data.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / data.len() as f64;
    Ok(var.sqrt())
}

/// Coefficient of variation expressed **as a percentage** of the mean,
/// matching the paper's convention ("the median CoV of job run time of a
/// user is 155%", Sec. IV).
///
/// A sample whose mean is zero has an undefined CoV; by the paper's usage
/// (all-idle jobs have zero utilization everywhere) this function returns
/// `0.0` in that case rather than an error, because a constant-zero series
/// genuinely has no variability.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] or [`StatsError::NonFinite`] on
/// invalid input.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), sc_stats::StatsError> {
/// let cov = sc_stats::coefficient_of_variation(&[10.0, 10.0, 10.0])?;
/// assert_eq!(cov, 0.0);
/// let cov = sc_stats::coefficient_of_variation(&[0.0, 20.0])?;
/// assert_eq!(cov, 100.0);
/// # Ok(())
/// # }
/// ```
pub fn coefficient_of_variation(data: &[f64]) -> Result<f64, StatsError> {
    let m = mean(data)?;
    if m == 0.0 {
        return Ok(0.0);
    }
    let sd = std_dev(data)?;
    Ok(sd / m.abs() * 100.0)
}

/// Linear-interpolation percentile (NumPy's default `linear` method).
///
/// `p` is in percent, i.e. `percentile(data, 50.0)` is the median.
///
/// # Errors
///
/// Returns [`StatsError::InvalidProbability`] if `p` is outside `[0, 100]`,
/// plus the usual sample-validity errors.
pub fn percentile(data: &[f64], p: f64) -> Result<f64, StatsError> {
    ensure_sample(data)?;
    if !(0.0..=100.0).contains(&p) {
        return Err(StatsError::InvalidProbability { value: p / 100.0 });
    }
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("values validated finite"));
    Ok(percentile_of_sorted(&sorted, p))
}

/// Percentile of an already-sorted slice; shared with [`crate::Ecdf`].
pub(crate) fn percentile_of_sorted(sorted: &[f64], p: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        return sorted[lo];
    }
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// A compact numeric summary of one sample: count, mean, standard
/// deviation, CoV, and the quartiles used in the paper's prose
/// ("the 25th percentile run time is 4 minutes and the 75th percentile
/// is 300 minutes").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Coefficient of variation as a percentage of the mean.
    pub cov_percent: f64,
    /// Minimum observation.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 75th percentile.
    pub p75: f64,
    /// Maximum observation.
    pub max: f64,
}

impl Summary {
    /// Computes the summary of a sample.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] or [`StatsError::NonFinite`] on
    /// invalid input.
    ///
    /// # Example
    ///
    /// ```
    /// # fn main() -> Result<(), sc_stats::StatsError> {
    /// let s = sc_stats::Summary::from_sample(&[4.0, 30.0, 300.0])?;
    /// assert_eq!(s.median, 30.0);
    /// assert_eq!(s.count, 3);
    /// # Ok(())
    /// # }
    /// ```
    pub fn from_sample(data: &[f64]) -> Result<Self, StatsError> {
        ensure_sample(data)?;
        let mut sorted = data.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("values validated finite"));
        Ok(Summary {
            count: data.len(),
            mean: mean(data)?,
            std_dev: std_dev(data)?,
            cov_percent: coefficient_of_variation(data)?,
            min: sorted[0],
            p25: percentile_of_sorted(&sorted, 25.0),
            median: percentile_of_sorted(&sorted, 50.0),
            p75: percentile_of_sorted(&sorted, 75.0),
            max: *sorted.last().expect("non-empty"),
        })
    }

    /// Interquartile range, `p75 - p25`.
    pub fn iqr(&self) -> f64 {
        self.p75 - self.p25
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn mean_matches_hand_computation() {
        assert!(close(mean(&[1.0, 2.0, 3.0, 4.0]).unwrap(), 2.5));
        assert!(close(mean(&[-5.0, 5.0]).unwrap(), 0.0));
    }

    #[test]
    fn std_dev_population_convention() {
        // Var([2, 4, 4, 4, 5, 5, 7, 9]) with ddof=0 is 4, sd is 2.
        let d = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!(close(std_dev(&d).unwrap(), 2.0));
    }

    #[test]
    fn cov_is_percent_of_mean() {
        let d = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!(close(coefficient_of_variation(&d).unwrap(), 2.0 / 5.0 * 100.0));
    }

    #[test]
    fn cov_of_constant_zero_series_is_zero() {
        assert_eq!(coefficient_of_variation(&[0.0, 0.0, 0.0]).unwrap(), 0.0);
    }

    #[test]
    fn percentile_linear_interpolation_matches_numpy() {
        let d = [1.0, 2.0, 3.0, 4.0];
        // numpy.percentile([1,2,3,4], 50) == 2.5
        assert!(close(percentile(&d, 50.0).unwrap(), 2.5));
        // numpy.percentile([1,2,3,4], 25) == 1.75
        assert!(close(percentile(&d, 25.0).unwrap(), 1.75));
        assert!(close(percentile(&d, 0.0).unwrap(), 1.0));
        assert!(close(percentile(&d, 100.0).unwrap(), 4.0));
    }

    #[test]
    fn percentile_rejects_out_of_range_p() {
        assert!(matches!(percentile(&[1.0], 101.0), Err(StatsError::InvalidProbability { .. })));
        assert!(matches!(percentile(&[1.0], -0.1), Err(StatsError::InvalidProbability { .. })));
    }

    #[test]
    fn summary_quartiles_are_ordered() {
        let s = Summary::from_sample(&[5.0, 1.0, 9.0, 3.0, 7.0]).unwrap();
        assert!(s.min <= s.p25 && s.p25 <= s.median);
        assert!(s.median <= s.p75 && s.p75 <= s.max);
        assert_eq!(s.median, 5.0);
        assert_eq!(s.iqr(), s.p75 - s.p25);
    }

    #[test]
    fn empty_inputs_error() {
        assert_eq!(mean(&[]), Err(StatsError::EmptyInput));
        assert_eq!(std_dev(&[]), Err(StatsError::EmptyInput));
        assert_eq!(Summary::from_sample(&[]).unwrap_err(), StatsError::EmptyInput);
    }

    proptest! {
        #[test]
        fn prop_mean_between_min_and_max(data in proptest::collection::vec(-1e6..1e6f64, 1..200)) {
            let m = mean(&data).unwrap();
            let lo = data.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(m >= lo - 1e-6 && m <= hi + 1e-6);
        }

        #[test]
        fn prop_std_dev_non_negative(data in proptest::collection::vec(-1e6..1e6f64, 1..200)) {
            prop_assert!(std_dev(&data).unwrap() >= 0.0);
        }

        #[test]
        fn prop_percentiles_monotone(
            data in proptest::collection::vec(0.0..1e6f64, 2..200),
            p1 in 0.0..100.0f64,
            p2 in 0.0..100.0f64,
        ) {
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            prop_assert!(percentile(&data, lo).unwrap() <= percentile(&data, hi).unwrap() + 1e-9);
        }

        #[test]
        fn prop_summary_invariant_to_order(mut data in proptest::collection::vec(0.0..1e6f64, 1..100)) {
            let s1 = Summary::from_sample(&data).unwrap();
            data.reverse();
            let s2 = Summary::from_sample(&data).unwrap();
            prop_assert!((s1.median - s2.median).abs() < 1e-9);
            prop_assert!((s1.mean - s2.mean).abs() < 1e-6);
        }
    }
}
