//! Statistics substrate for the Supercloud characterization study.
//!
//! The HPCA 2022 paper analyzed its 42 GB dataset with the SciPy stack
//! (Pandas, NumPy, Matplotlib). This crate provides the equivalent
//! primitives in Rust, implemented from scratch:
//!
//! - [`Ecdf`]: empirical cumulative distribution functions with quantile
//!   inversion — the paper's dominant presentation device.
//! - [`descriptive`]: means, standard deviations, percentiles, and the
//!   coefficient of variation (CoV) used throughout Secs. III–V.
//! - [`BoxStats`]: five-number box-plot summaries (Figs. 5 and 16).
//! - [`correlation`]: Spearman rank correlation with p-values (Fig. 12).
//! - [`Histogram`]: linear- and log-binned histograms.
//! - [`lorenz`]: Lorenz curves, Gini coefficients, and top-*k*% shares
//!   (the "top 5% of users submit 44% of jobs" Pareto analysis).
//! - [`segment`]: run-length segmentation of time series into active and
//!   idle intervals (Fig. 6), batch or incremental ([`SegmentBuilder`]).
//! - [`streaming`]: one-pass mergeable aggregators (Welford
//!   mean/variance, log-bucket quantile sketch, mergeable histogram)
//!   backing the streaming telemetry collector.
//! - [`dist`]: parametric distributions (lognormal, Pareto, beta, …)
//!   built on [`rand`]'s uniform source, used by the workload generator.
//!
//! # Example
//!
//! ```
//! use sc_stats::Ecdf;
//!
//! let runtimes = vec![4.0, 8.0, 30.0, 120.0, 300.0];
//! let cdf = Ecdf::new(runtimes).expect("non-empty, finite data");
//! assert_eq!(cdf.quantile(0.5), 30.0);
//! assert!(cdf.fraction_at_most(100.0) >= 0.6);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// Library code must surface degenerate inputs as typed errors, not
// panics; tests are exempt (unwrap there is an assertion).
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod autocorr;
pub mod bootstrap;
pub mod boxplot;
pub mod correlation;
pub mod descriptive;
pub mod dist;
pub mod ecdf;
pub mod error;
pub mod histogram;
pub mod kstest;
pub mod lorenz;
pub mod segment;
pub mod streaming;

pub use autocorr::{acf, autocorrelation, decorrelation_lag, moving_average};
pub use bootstrap::{bootstrap_ci, BootstrapCi};
pub use boxplot::BoxStats;
pub use correlation::{pearson, spearman, SpearmanResult};
pub use descriptive::{coefficient_of_variation, mean, percentile, std_dev, Summary};
pub use ecdf::Ecdf;
pub use error::StatsError;
pub use histogram::Histogram;
pub use kstest::{ks_two_sample, KsResult};
pub use lorenz::Lorenz;
pub use segment::{segment_intervals, Interval, IntervalKind, SegmentBuilder, Segmentation};
pub use streaming::{LogQuantileSketch, MergeHistogram, Welford};
