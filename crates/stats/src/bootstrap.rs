//! Percentile-bootstrap confidence intervals.
//!
//! The paper prints point estimates; a reproduction should know how
//! much of any deviation is sampling noise. [`bootstrap_ci`] resamples
//! a statistic with replacement and reports the percentile interval —
//! used by the calibration suite to check that paper values fall inside
//! (or near) the measured statistic's uncertainty band.

use crate::error::{ensure_sample, StatsError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A bootstrap confidence interval for one statistic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BootstrapCi {
    /// Point estimate on the original sample.
    pub estimate: f64,
    /// Lower percentile bound.
    pub lo: f64,
    /// Upper percentile bound.
    pub hi: f64,
    /// Confidence level, e.g. `0.95`.
    pub level: f64,
    /// Bootstrap replicates drawn.
    pub replicates: usize,
}

impl BootstrapCi {
    /// Whether `value` lies inside the interval.
    pub fn contains(&self, value: f64) -> bool {
        self.lo <= value && value <= self.hi
    }

    /// Interval half-width.
    pub fn half_width(&self) -> f64 {
        (self.hi - self.lo) / 2.0
    }
}

/// Percentile-bootstrap CI for an arbitrary statistic.
///
/// `statistic` receives each resample (same length as the input, drawn
/// with replacement) and returns a scalar. Deterministic in `seed`.
///
/// # Errors
///
/// Returns the usual sample-validity errors, and
/// [`StatsError::InvalidParameter`] for `replicates == 0` or a level
/// outside `(0, 1)`.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), sc_stats::StatsError> {
/// use sc_stats::bootstrap::bootstrap_ci;
///
/// let runtimes: Vec<f64> = (1..=500).map(|i| i as f64).collect();
/// let ci = bootstrap_ci(
///     &runtimes,
///     |s| sc_stats::percentile(s, 50.0).expect("non-empty"),
///     200,
///     0.95,
///     7,
/// )?;
/// assert!(ci.contains(250.5));
/// # Ok(())
/// # }
/// ```
pub fn bootstrap_ci<F: Fn(&[f64]) -> f64>(
    data: &[f64],
    statistic: F,
    replicates: usize,
    level: f64,
    seed: u64,
) -> Result<BootstrapCi, StatsError> {
    ensure_sample(data)?;
    if replicates == 0 {
        return Err(StatsError::InvalidParameter { name: "replicates", value: 0.0 });
    }
    if !(level > 0.0 && level < 1.0) {
        return Err(StatsError::InvalidProbability { value: level });
    }
    let estimate = statistic(data);
    let mut rng = StdRng::seed_from_u64(seed);
    let n = data.len();
    let mut resample = vec![0.0; n];
    let mut stats: Vec<f64> = Vec::with_capacity(replicates);
    for _ in 0..replicates {
        for slot in &mut resample {
            *slot = data[rng.gen_range(0..n)];
        }
        stats.push(statistic(&resample));
    }
    stats.sort_by(|a, b| a.partial_cmp(b).expect("finite statistic"));
    let alpha = (1.0 - level) / 2.0;
    let idx = |q: f64| ((stats.len() - 1) as f64 * q).round() as usize;
    Ok(BootstrapCi {
        estimate,
        lo: stats[idx(alpha)],
        hi: stats[idx(1.0 - alpha)],
        level,
        replicates,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{LogNormal, Sample};

    #[test]
    fn interval_brackets_the_estimate() {
        let data: Vec<f64> = (0..300).map(|i| (i as f64 * 0.37).sin() * 10.0 + 20.0).collect();
        let ci = bootstrap_ci(&data, |s| crate::mean(s).unwrap(), 300, 0.95, 1).unwrap();
        assert!(ci.lo <= ci.estimate && ci.estimate <= ci.hi);
        assert!(ci.half_width() > 0.0);
    }

    #[test]
    fn true_median_usually_covered() {
        let mut rng = <StdRng as SeedableRng>::seed_from_u64(9);
        let d = LogNormal::new(30.0f64.ln(), 1.0).unwrap();
        let data = d.sample_n(&mut rng, 800);
        let ci =
            bootstrap_ci(&data, |s| crate::percentile(s, 50.0).unwrap(), 400, 0.95, 2).unwrap();
        assert!(ci.contains(30.0), "95% CI [{}, {}] misses 30", ci.lo, ci.hi);
    }

    #[test]
    fn deterministic_per_seed() {
        let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let a = bootstrap_ci(&data, |s| crate::mean(s).unwrap(), 100, 0.9, 3).unwrap();
        let b = bootstrap_ci(&data, |s| crate::mean(s).unwrap(), 100, 0.9, 3).unwrap();
        assert_eq!(a, b);
        let c = bootstrap_ci(&data, |s| crate::mean(s).unwrap(), 100, 0.9, 4).unwrap();
        assert_ne!(a.lo, c.lo);
    }

    #[test]
    fn width_shrinks_with_sample_size() {
        let small: Vec<f64> = (0..40).map(|i| (i % 17) as f64).collect();
        let large: Vec<f64> = (0..4000).map(|i| (i % 17) as f64).collect();
        let ws =
            bootstrap_ci(&small, |s| crate::mean(s).unwrap(), 200, 0.95, 5).unwrap().half_width();
        let wl =
            bootstrap_ci(&large, |s| crate::mean(s).unwrap(), 200, 0.95, 5).unwrap().half_width();
        assert!(wl < ws, "large-sample width {wl} vs small {ws}");
    }

    #[test]
    fn rejects_invalid_parameters() {
        assert!(bootstrap_ci(&[], |_| 0.0, 10, 0.9, 0).is_err());
        assert!(bootstrap_ci(&[1.0], |_| 0.0, 0, 0.9, 0).is_err());
        assert!(bootstrap_ci(&[1.0], |_| 0.0, 10, 1.0, 0).is_err());
    }
}
