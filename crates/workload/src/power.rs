//! The V100 power model.
//!
//! The paper reports (Fig. 9a) a median *average* job power of 45 W and a
//! median *maximum* of 87 W against a 300 W TDP ("most jobs consume less
//! than half or even a third of the available power on average"). Board
//! power on Volta is dominated by an idle floor plus activity-linear
//! terms; we model it as
//!
//! `P = idle + c_sm · SM% + c_mem · MEM% + c_msz · MEMSZ%`, clamped to TDP.
//!
//! Linearity matters: it makes the job's *mean* power an exact function
//! of its mean utilizations, which the analytic aggregation path exploits.

use sc_telemetry::gpu_power::{V100_IDLE_W, V100_TDP_W};
use serde::{Deserialize, Serialize};

/// Linear utilization→power model for one GPU.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Idle floor in watts (V100 idles in the low tens of watts).
    pub idle_w: f64,
    /// Watts per SM-utilization percent.
    pub sm_w_per_pct: f64,
    /// Watts per memory-bandwidth-utilization percent.
    pub mem_w_per_pct: f64,
    /// Watts per memory-size-utilization percent.
    pub mem_size_w_per_pct: f64,
    /// Board power limit (V100: 300 W).
    pub tdp_w: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel::v100()
    }
}

impl PowerModel {
    /// The calibrated V100 model.
    pub fn v100() -> Self {
        PowerModel {
            idle_w: V100_IDLE_W,
            sm_w_per_pct: 1.3,
            mem_w_per_pct: 0.7,
            mem_size_w_per_pct: 0.3,
            tdp_w: V100_TDP_W,
        }
    }

    /// Instantaneous power for the given utilization percentages.
    pub fn power_w(&self, sm: f64, mem: f64, mem_size: f64) -> f64 {
        let p = self.idle_w
            + self.sm_w_per_pct * sm
            + self.mem_w_per_pct * mem
            + self.mem_size_w_per_pct * mem_size;
        p.min(self.tdp_w)
    }

    /// Power of a fully idle GPU.
    pub fn idle_power_w(&self) -> f64 {
        self.idle_w
    }

    /// Peak model power (at 100% everything), clamped to TDP.
    pub fn peak_w(&self) -> f64 {
        self.power_w(100.0, 100.0, 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_gpu_draws_floor() {
        let m = PowerModel::v100();
        assert_eq!(m.power_w(0.0, 0.0, 0.0), 20.0);
        assert_eq!(m.idle_power_w(), 20.0);
    }

    #[test]
    fn peak_is_near_but_not_above_tdp() {
        let m = PowerModel::v100();
        assert!(m.peak_w() <= m.tdp_w);
        assert!(m.peak_w() > 0.75 * m.tdp_w, "peak {}", m.peak_w());
    }

    #[test]
    fn median_job_power_in_paper_ballpark() {
        // Median job: SM 16%, mem 2%, mem-size 9% (Fig. 4a) →
        // average power should land near the paper's 45 W median.
        let m = PowerModel::v100();
        let p = m.power_w(16.0, 2.0, 9.0);
        assert!((40.0..65.0).contains(&p), "median-job power {p} W");
    }

    #[test]
    fn sm_spike_pushes_past_150w_cap() {
        // A job that touches SM 100% momentarily must be impacted by the
        // 150 W cap of Fig. 9b.
        let m = PowerModel::v100();
        assert!(m.power_w(100.0, 10.0, 20.0) > 150.0);
    }

    #[test]
    fn monotone_in_each_input() {
        let m = PowerModel::v100();
        assert!(m.power_w(50.0, 0.0, 0.0) > m.power_w(10.0, 0.0, 0.0));
        assert!(m.power_w(0.0, 50.0, 0.0) > m.power_w(0.0, 10.0, 0.0));
        assert!(m.power_w(0.0, 0.0, 50.0) > m.power_w(0.0, 0.0, 10.0));
    }
}
