//! Calibrated synthetic workload generator for the Supercloud
//! characterization study (Li et al., HPCA 2022).
//!
//! The paper measured a production population we cannot have: 191 users
//! submitting 74,820 jobs over 125 days on a 448-GPU cluster. This crate
//! provides the closest synthetic equivalent — a generative model whose
//! every parameter is calibrated to a statistic the paper reports:
//!
//! - [`spec`]: the calibrated constants, each citing its paper source.
//! - [`user`]: Pareto-activity users with skill, lifecycle mixes, and
//!   run-time scales (Secs. IV and VI).
//! - [`job`]: per-job synthesis — lifecycle class, interface, GPU count,
//!   run time, planned outcome, and telemetry ground-truth parameters.
//! - [`truth`]: the piecewise active/idle phase process each GPU
//!   exhibits, with exact analytic min/mean/max aggregation.
//! - [`power`]: the linear V100 power model.
//! - [`arrivals`]: diurnal + conference-deadline arrival intensity and
//!   bursty CPU campaigns.
//! - [`trace`]: ties it all together into a [`Trace`].
//!
//! # Example
//!
//! ```
//! use sc_workload::{Trace, WorkloadSpec};
//!
//! // A 1%-scale Supercloud trace for quick experimentation.
//! let spec = WorkloadSpec::supercloud().scaled(0.01);
//! let trace = Trace::generate(&spec, 7);
//! assert_eq!(trace.jobs().len(), spec.total_jobs);
//! let multi_gpu = trace.gpu_jobs().filter(|j| j.gpus > 1).count();
//! assert!(multi_gpu > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arrivals;
pub mod job;
pub mod power;
pub mod spec;
pub mod stream;
pub mod trace;
pub mod truth;
pub mod user;

pub use arrivals::ArrivalIntensity;
pub use job::{JobFactory, JobSpec, PlannedOutcome, DEFAULT_MAX_RESTARTS};
pub use power::PowerModel;
pub use spec::{ArrivalProcess, ClassSpec, LifecycleClass, WorkloadArchetype, WorkloadSpec};
pub use trace::Trace;
pub use truth::{GpuGroundTruth, JobGroundTruth, ResourceLevels, TruthParams};
pub use user::{UserPopulation, UserProfile};
