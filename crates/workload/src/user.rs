//! The user population model (Sec. IV of the paper).
//!
//! Users differ along four calibrated axes:
//!
//! 1. **Activity** — heavy-tailed lognormal weights ("top 5% of the
//!    users submit 44% of the jobs, and top 20% of the users submit
//!    83.2%").
//! 2. **Skill** — a latent expertise correlated with activity, which
//!    lifts average utilization (Fig. 12's positive Spearman between
//!    jobs/GPU-hours and average SM/memory utilization) without making
//!    behaviour more predictable (the CoV correlations stay low).
//! 3. **Lifecycle mix** — a Dirichlet draw around the global mix with
//!    low concentration, producing Fig. 17's extreme heterogeneity.
//! 4. **Run-time scale** — a lognormal multiplier spreading per-user
//!    average run times across orders of magnitude (Fig. 10).

use crate::spec::{LifecycleClass, WorkloadSpec};
use rand::Rng;
use sc_stats::dist::{Categorical, Gamma, LogNormal, Normal, Sample};
use sc_telemetry::record::UserId;
use serde::{Deserialize, Serialize};

/// One synthetic user.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserProfile {
    /// Anonymized identity.
    pub id: UserId,
    /// Relative job-submission weight (Pareto-distributed).
    pub activity_weight: f64,
    /// Latent expertise in `[0, 1]`; correlated with activity.
    pub skill: f64,
    /// Per-user lifecycle mix in [`LifecycleClass::ALL`] order.
    pub class_mix: [f64; 4],
    /// Multiplier applied to the user's job run times.
    pub runtime_scale: f64,
    /// Largest GPU count this user's jobs ever request (Sec. V: only
    /// 60% of users run any multi-GPU job; 5.2% reach nine or more).
    pub gpu_ceiling: u32,
}

impl UserProfile {
    /// Probability that this user's next job belongs to `class`.
    pub fn class_probability(&self, class: LifecycleClass) -> f64 {
        let idx = LifecycleClass::ALL.iter().position(|c| *c == class).expect("known class");
        self.class_mix[idx]
    }
}

/// The generated population with its sampling tables.
#[derive(Debug, Clone)]
pub struct UserPopulation {
    users: Vec<UserProfile>,
    activity: Categorical,
}

impl UserPopulation {
    /// Generates the population described by `spec`.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R, spec: &WorkloadSpec) -> Self {
        let noise = Normal::new(0.0, 0.8).expect("valid normal");
        let scale_dist =
            LogNormal::new(0.0, spec.user_runtime_scale_sigma).expect("valid lognormal");
        let shares = spec.class_shares();
        let ceiling_values: Vec<u32> =
            spec.user_gpu_ceiling_weights.iter().map(|(c, _)| *c).collect();
        let base_ceiling_weights: Vec<f64> =
            spec.user_gpu_ceiling_weights.iter().map(|(_, w)| *w).collect();

        // Activity weights: the deterministic lognormal quantile
        // staircase, randomly assigned to users. Plugging in quantiles
        // (rather than i.i.d. draws) pins the realized concentration,
        // which i.i.d. samples of only 191 users routinely miss by 10+
        // points; the lognormal shape interpolates the paper's
        // top-5% = 44% / top-20% = 83.2% pair better than a Pareto.
        let n = spec.users.max(1);
        let mut staircase: Vec<f64> = (0..n)
            .map(|i| {
                let u = (i as f64 + 0.5) / n as f64;
                (spec.user_activity_log_sigma * sc_stats::dist::standard_normal_quantile(u)).exp()
            })
            .collect();
        // Fisher–Yates shuffle so user ids are not rank-ordered.
        for i in (1..staircase.len()).rev() {
            let j = rng.gen_range(0..=i);
            staircase.swap(i, j);
        }
        let weights = staircase;
        let max_ln = weights.iter().map(|w| w.ln()).fold(f64::NEG_INFINITY, f64::max);
        let min_ln = weights.iter().map(|w| w.ln()).fold(f64::INFINITY, f64::min);
        let span = (max_ln - min_ln).max(1e-9);

        // Activity percentile ranks (0 = least active user).
        let ranks = sc_stats::correlation::fractional_ranks(&weights);
        let rank_scale = (spec.users.max(2) - 1) as f64;

        let mut users = Vec::with_capacity(spec.users);
        for (i, &w) in weights.iter().enumerate() {
            // Skill: normalized log-activity plus noise, squashed to (0, 1).
            let z = 2.5 * ((w.ln() - min_ln) / span - 0.5) + noise.sample(rng);
            let skill = 1.0 / (1.0 + (-z).exp());
            // Dirichlet draw around an activity-adjusted lifecycle mix:
            // the busiest users skew strongly mature, casual users skew
            // development/IDE. The cubic rank curve is what reconciles
            // the 60% job-weighted mature share with Fig. 17a's ">50% of
            // users have <40% mature jobs" — job volume concentrates in
            // the top ranks.
            let rank = ((ranks[i] - 1.0) / rank_scale).clamp(0.0, 1.0);
            let boost = rank.powi(3);
            let f_mature = (0.26 + 0.95 * boost).max(0.05);
            let f_expl = 0.79;
            let f_dev = (1.35 - 0.37 * boost).max(0.35);
            let f_ide = (1.60 - 0.90 * boost).max(0.15);
            let adjusted =
                [shares[0] * f_mature, shares[1] * f_expl, shares[2] * f_dev, shares[3] * f_ide];
            let adj_total: f64 = adjusted.iter().sum();
            let mut mix = [0.0; 4];
            let mut total = 0.0;
            for (k, &share) in adjusted.iter().enumerate() {
                let g =
                    Gamma::new((spec.user_mix_concentration * share / adj_total * 4.0).max(0.02))
                        .expect("positive shape");
                mix[k] = g.sample(rng).max(1e-12);
                total += mix[k];
            }
            for m in &mut mix {
                *m /= total;
            }
            users.push(UserProfile {
                id: UserId(i as u32),
                activity_weight: w,
                skill,
                class_mix: mix,
                runtime_scale: scale_dist.sample(rng),
                gpu_ceiling: {
                    // Expert users scale out more readily: tilt the
                    // ceiling weights with activity rank while keeping
                    // the rank-averaged user fractions on the Sec. V
                    // targets (the tilt factors integrate to 1 over
                    // uniform rank). This also stabilizes the realized
                    // job-size mix: the bulk of jobs comes from users
                    // whose ceilings are (near-)deterministic in rank.
                    let tilted: Vec<f64> = ceiling_values
                        .iter()
                        .zip(&base_ceiling_weights)
                        .map(|(&c, &w)| {
                            let tilt = if c == 1 {
                                1.6 - 1.2 * rank
                            } else if c <= 2 {
                                1.0
                            } else {
                                0.2 + 1.6 * rank
                            };
                            w * tilt.max(0.05)
                        })
                        .collect();
                    let dist = Categorical::new(&tilted).expect("positive weights");
                    ceiling_values[dist.sample_index(rng)]
                },
            });
        }
        let activity = Categorical::new(&weights).expect("positive weights");
        UserPopulation { users, activity }
    }

    /// All users.
    pub fn users(&self) -> &[UserProfile] {
        &self.users
    }

    /// Number of users.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// Draws the submitter of the next job, proportional to activity.
    pub fn sample_user<R: Rng + ?Sized>(&self, rng: &mut R) -> &UserProfile {
        &self.users[self.activity.sample_index(rng)]
    }

    /// Looks up a user by id.
    pub fn user(&self, id: UserId) -> Option<&UserProfile> {
        self.users.get(id.0 as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sc_stats::{spearman, Lorenz};

    fn population(seed: u64) -> UserPopulation {
        let mut rng = StdRng::seed_from_u64(seed);
        UserPopulation::generate(&mut rng, &WorkloadSpec::supercloud())
    }

    #[test]
    fn population_size_matches_spec() {
        let pop = population(1);
        assert_eq!(pop.len(), 191);
        assert!(!pop.is_empty());
        assert!(pop.user(UserId(0)).is_some());
        assert!(pop.user(UserId(191)).is_none());
    }

    #[test]
    fn activity_concentration_is_pareto_like() {
        let pop = population(2);
        let weights: Vec<f64> = pop.users().iter().map(|u| u.activity_weight).collect();
        let l = Lorenz::new(weights).unwrap();
        let top20 = l.top_share(0.2);
        // Paper: top 20% of users submit 83.2% of jobs. Finite-sample
        // draws scatter around the theoretical share.
        assert!((0.60..0.97).contains(&top20), "top-20% share {top20}");
    }

    #[test]
    fn class_mixes_are_probability_vectors() {
        let pop = population(3);
        for u in pop.users() {
            let total: f64 = u.class_mix.iter().sum();
            assert!((total - 1.0).abs() < 1e-9);
            assert!(u.class_mix.iter().all(|m| *m >= 0.0));
            assert!((0.0..=1.0).contains(&u.skill));
            assert!(u.runtime_scale > 0.0);
        }
    }

    #[test]
    fn mixes_are_heterogeneous_across_users() {
        // Fig. 17a: for more than 50% of users the mature share is below
        // 40% even though the global mature share is ~60%.
        let pop = population(4);
        let below_40 = pop
            .users()
            .iter()
            .filter(|u| u.class_probability(LifecycleClass::Mature) < 0.4)
            .count();
        let frac = below_40 as f64 / pop.len() as f64;
        assert!(frac > 0.35, "fraction of users with <40% mature mix: {frac}");
    }

    #[test]
    fn skill_correlates_with_activity() {
        let pop = population(5);
        let act: Vec<f64> = pop.users().iter().map(|u| u.activity_weight.ln()).collect();
        let skill: Vec<f64> = pop.users().iter().map(|u| u.skill).collect();
        let r = spearman(&act, &skill).unwrap();
        assert!(r.rho > 0.3, "skill-activity rho {}", r.rho);
    }

    #[test]
    fn sampling_respects_weights() {
        let pop = population(6);
        let mut rng = StdRng::seed_from_u64(100);
        let mut counts = vec![0usize; pop.len()];
        for _ in 0..20_000 {
            counts[pop.sample_user(&mut rng).id.0 as usize] += 1;
        }
        // The most active user must be sampled more than the least.
        let max_w_user = pop
            .users()
            .iter()
            .max_by(|a, b| a.activity_weight.partial_cmp(&b.activity_weight).unwrap())
            .unwrap();
        let min_w_user = pop
            .users()
            .iter()
            .min_by(|a, b| a.activity_weight.partial_cmp(&b.activity_weight).unwrap())
            .unwrap();
        assert!(counts[max_w_user.id.0 as usize] > counts[min_w_user.id.0 as usize]);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = population(7);
        let b = population(7);
        assert_eq!(a.users(), b.users());
    }
}
