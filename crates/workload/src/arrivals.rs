//! Job arrival processes: diurnal rhythm, conference-deadline surges,
//! and bursty CPU campaign submissions.
//!
//! "The usage of the system often increases closer to the deadlines of
//! popular deep learning conferences like ICML and NeurIPS … We account
//! for this effect in our analysis" (Sec. II).

use crate::spec::{ArrivalProcess, WorkloadSpec};
use rand::Rng;
use sc_stats::dist::{Exponential, Sample};
use serde::{Deserialize, Serialize};

/// Seconds per day.
const DAY_SECS: f64 = 86_400.0;

/// A non-homogeneous arrival intensity over the trace window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrivalIntensity {
    duration_secs: f64,
    diurnal_amplitude: f64,
    surge_amplitude: f64,
    deadline_days: Vec<f64>,
    process: ArrivalProcess,
}

impl ArrivalIntensity {
    /// Builds the intensity described by a workload spec.
    pub fn from_spec(spec: &WorkloadSpec) -> Self {
        ArrivalIntensity {
            duration_secs: spec.duration_secs(),
            diurnal_amplitude: spec.diurnal_amplitude,
            surge_amplitude: spec.deadline_surge_amplitude,
            deadline_days: spec.deadline_days.clone(),
            process: spec.arrival_process,
        }
    }

    /// Relative intensity at time `t` seconds (unit mean over a flat
    /// profile; not normalized exactly but bounded by
    /// [`ArrivalIntensity::max_intensity`]).
    pub fn intensity(&self, t: f64) -> f64 {
        let day = t / DAY_SECS;
        match self.process {
            ArrivalProcess::Poisson => 1.0,
            ArrivalProcess::Diurnal => {
                let day_frac = (t / DAY_SECS).fract();
                // Activity peaks mid-afternoon, troughs pre-dawn.
                let diurnal = 1.0
                    + self.diurnal_amplitude
                        * (2.0 * std::f64::consts::PI * (day_frac - 0.625)).cos();
                // Gaussian surge ramping up over ~10 days before each
                // deadline.
                let mut surge = 1.0;
                for &d in &self.deadline_days {
                    let lead = d - day;
                    if (0.0..=21.0).contains(&lead) {
                        surge += self.surge_amplitude * (-((lead - 2.0) / 5.0).powi(2)).exp();
                    }
                }
                diurnal * surge
            }
            ArrivalProcess::Spikes { period_days, width_days, amplitude } => {
                // One Gaussian bump per period, centred mid-cycle so a
                // spike never straddles the window edges.
                let phase = (day / period_days).fract() * period_days;
                let centre = period_days / 2.0;
                1.0 + amplitude * (-((phase - centre) / width_days).powi(2)).exp()
            }
            ArrivalProcess::UpAndDown { period_days, low } => {
                if (day / period_days).fract() < 0.5 {
                    1.0
                } else {
                    low
                }
            }
        }
    }

    /// Upper bound on [`ArrivalIntensity::intensity`] for rejection
    /// sampling.
    pub fn max_intensity(&self) -> f64 {
        match self.process {
            ArrivalProcess::Poisson | ArrivalProcess::UpAndDown { .. } => 1.0,
            ArrivalProcess::Diurnal => {
                (1.0 + self.diurnal_amplitude) * (1.0 + self.surge_amplitude)
            }
            ArrivalProcess::Spikes { amplitude, .. } => 1.0 + amplitude,
        }
    }

    /// Draws one arrival time from the normalized intensity via
    /// rejection sampling.
    pub fn sample_arrival<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let max = self.max_intensity();
        loop {
            let t = rng.gen_range(0.0..self.duration_secs);
            if rng.gen::<f64>() * max <= self.intensity(t) {
                return t;
            }
        }
    }

    /// Draws `n` sorted arrival times.
    pub fn sample_arrivals<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        let mut out: Vec<f64> = (0..n).map(|_| self.sample_arrival(rng)).collect();
        out.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        out
    }

    /// Draws `n` arrival times grouped into campaign bursts: burst
    /// centres follow the intensity, members trail the centre by
    /// exponential gaps of a few seconds (array submissions). Used for
    /// CPU jobs, whose full-node requests then pile up in the queue
    /// (Fig. 3b).
    pub fn sample_burst_arrivals<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        n: usize,
        mean_burst: f64,
    ) -> Vec<f64> {
        assert!(mean_burst >= 1.0, "mean burst size must be at least 1");
        let gap = Exponential::with_mean(1.0).expect("valid mean");
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            let centre = self.sample_arrival(rng);
            // Geometric-ish burst size with the requested mean.
            let size = 1
                + (mean_burst - 1.0).max(0.0) as usize
                + (Exponential::with_mean(mean_burst.max(1.001) - 1.0)
                    .map(|d| d.sample(rng) as usize)
                    .unwrap_or(0));
            let mut t = centre;
            for _ in 0..size {
                if out.len() >= n {
                    break;
                }
                out.push(t.min(self.duration_secs - 1.0));
                t += gap.sample(rng);
            }
        }
        out.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        out
    }

    /// Trace window length in seconds.
    pub fn duration_secs(&self) -> f64 {
        self.duration_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn intensity() -> ArrivalIntensity {
        ArrivalIntensity::from_spec(&crate::spec::WorkloadSpec::supercloud())
    }

    #[test]
    fn intensity_bounded_and_positive() {
        let i = intensity();
        let max = i.max_intensity();
        for k in 0..2000 {
            let t = k as f64 / 2000.0 * i.duration_secs();
            let v = i.intensity(t);
            assert!(v > 0.0 && v <= max + 1e-9, "intensity {v} at t={t}");
        }
    }

    #[test]
    fn deadline_surge_raises_rate() {
        let i = intensity();
        // Two days before the day-28 deadline vs a quiet day, at the
        // same time of day.
        let surge_t = 26.0 * DAY_SECS;
        let quiet_t = 60.0 * DAY_SECS;
        assert!(i.intensity(surge_t) > 1.3 * i.intensity(quiet_t));
    }

    #[test]
    fn arrivals_fall_in_window_and_are_sorted() {
        let i = intensity();
        let mut rng = StdRng::seed_from_u64(1);
        let arr = i.sample_arrivals(&mut rng, 5000);
        assert_eq!(arr.len(), 5000);
        for w in arr.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert!(arr[0] >= 0.0);
        assert!(*arr.last().unwrap() <= i.duration_secs());
    }

    #[test]
    fn diurnal_pattern_visible_in_samples() {
        let i = intensity();
        let mut rng = StdRng::seed_from_u64(2);
        let arr = i.sample_arrivals(&mut rng, 40_000);
        // Count arrivals in the peak quarter-day vs trough quarter-day.
        let mut peak = 0;
        let mut trough = 0;
        for t in arr {
            let frac = (t / DAY_SECS).fract();
            if (0.5..0.75).contains(&frac) {
                peak += 1;
            } else if (0.0..0.25).contains(&frac) {
                trough += 1;
            }
        }
        assert!(peak as f64 > 1.25 * trough as f64, "peak {peak} vs trough {trough}");
    }

    #[test]
    fn bursts_cluster_in_time() {
        let i = intensity();
        let mut rng = StdRng::seed_from_u64(3);
        let arr = i.sample_burst_arrivals(&mut rng, 2000, 20.0);
        assert_eq!(arr.len(), 2000);
        // Median inter-arrival gap is tiny compared to the uniform case.
        let mut gaps: Vec<f64> = arr.windows(2).map(|w| w[1] - w[0]).collect();
        gaps.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median_gap = gaps[gaps.len() / 2];
        let uniform_gap = i.duration_secs() / 2000.0;
        assert!(median_gap < uniform_gap / 10.0, "median gap {median_gap}");
    }

    #[test]
    #[should_panic(expected = "mean burst size must be at least 1")]
    fn burst_mean_validated() {
        let i = intensity();
        let mut rng = StdRng::seed_from_u64(4);
        let _ = i.sample_burst_arrivals(&mut rng, 10, 0.5);
    }

    fn with_process(process: crate::spec::ArrivalProcess) -> ArrivalIntensity {
        let mut spec = crate::spec::WorkloadSpec::supercloud();
        spec.arrival_process = process;
        ArrivalIntensity::from_spec(&spec)
    }

    #[test]
    fn poisson_intensity_is_flat() {
        let i = with_process(crate::spec::ArrivalProcess::Poisson);
        for k in 0..500 {
            let t = k as f64 / 500.0 * i.duration_secs();
            assert_eq!(i.intensity(t), 1.0);
        }
        assert_eq!(i.max_intensity(), 1.0);
    }

    #[test]
    fn spikes_peak_once_per_period() {
        let i = with_process(crate::spec::ArrivalProcess::Spikes {
            period_days: 10.0,
            width_days: 1.0,
            amplitude: 3.0,
        });
        // Mid-cycle (day 5, 15, ...) is the spike centre; cycle edges
        // sit at the base load.
        assert!(i.intensity(5.0 * DAY_SECS) > 3.9);
        assert!(i.intensity(15.0 * DAY_SECS) > 3.9);
        assert!(i.intensity(0.1 * DAY_SECS) < 1.01);
        assert!(i.max_intensity() >= i.intensity(5.0 * DAY_SECS));
    }

    #[test]
    fn up_and_down_alternates_plateaus() {
        let i =
            with_process(crate::spec::ArrivalProcess::UpAndDown { period_days: 8.0, low: 0.25 });
        assert_eq!(i.intensity(1.0 * DAY_SECS), 1.0); // high half
        assert_eq!(i.intensity(5.0 * DAY_SECS), 0.25); // low half
        assert_eq!(i.intensity(9.0 * DAY_SECS), 1.0); // next cycle
        assert_eq!(i.max_intensity(), 1.0);
    }

    #[test]
    fn diurnal_process_matches_legacy_formula() {
        // The Diurnal arm must reproduce the paper-calibrated process
        // bit for bit — the scenario DSL's byte-identity guarantee for
        // the default pipeline rests on this.
        let spec = crate::spec::WorkloadSpec::supercloud();
        let i = ArrivalIntensity::from_spec(&spec);
        for k in 0..2000 {
            let t = k as f64 / 2000.0 * i.duration_secs();
            let day_frac = (t / DAY_SECS).fract();
            let diurnal = 1.0
                + spec.diurnal_amplitude * (2.0 * std::f64::consts::PI * (day_frac - 0.625)).cos();
            let day = t / DAY_SECS;
            let mut surge = 1.0;
            for &d in &spec.deadline_days {
                let lead = d - day;
                if (0.0..=21.0).contains(&lead) {
                    surge += spec.deadline_surge_amplitude * (-((lead - 2.0) / 5.0).powi(2)).exp();
                }
            }
            assert_eq!(i.intensity(t), diurnal * surge, "t={t}");
        }
    }
}
