//! Per-job specification and synthesis.
//!
//! A [`JobSpec`] is everything the cluster simulator and telemetry need
//! to know about one job *before it runs*: resources requested, arrival
//! time, the planned outcome (complete / user-cancel / crash / run to
//! timeout — the observable side of the lifecycle classes of Sec. VI),
//! and the seed + parameters of its telemetry ground truth.

use crate::spec::{ClassSpec, LifecycleClass, WorkloadArchetype, WorkloadSpec};
use crate::truth::{JobGroundTruth, ResourceLevels, TruthParams};
use crate::user::UserProfile;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sc_stats::dist::{Beta, Categorical, LogNormal, Sample};
use sc_telemetry::metrics::GpuResource;
use sc_telemetry::record::{JobId, SubmissionInterface, UserId};
use serde::{Deserialize, Serialize};

/// How a job is destined to end, decided by the generator's ground
/// truth. The scheduler turns this into an [`sc_telemetry::ExitStatus`],
/// from which the analysis pipeline recovers the lifecycle class — the
/// same indirect inference the paper performs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PlannedOutcome {
    /// Runs for `work_secs` then exits 0 (mature work).
    Complete {
        /// Productive run time, seconds.
        work_secs: f64,
    },
    /// The user kills it after `after_secs` (hyper-parameter trial
    /// deemed sub-optimal).
    Cancel {
        /// Time until the user cancels, seconds.
        after_secs: f64,
    },
    /// Crashes after `after_secs` (code under development).
    Fail {
        /// Time until the crash, seconds.
        after_secs: f64,
    },
    /// Never finishes on its own; the wall-clock limit reaps it
    /// (IDE sessions).
    RunUntilTimeout,
}

impl PlannedOutcome {
    /// The job's natural run time given its wall-clock limit.
    pub fn run_time(&self, time_limit: f64) -> f64 {
        match *self {
            PlannedOutcome::Complete { work_secs } => work_secs.min(time_limit),
            PlannedOutcome::Cancel { after_secs } => after_secs.min(time_limit),
            PlannedOutcome::Fail { after_secs } => after_secs.min(time_limit),
            PlannedOutcome::RunUntilTimeout => time_limit,
        }
    }
}

/// The complete pre-run description of one job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Trace-unique id, assigned in arrival order.
    pub job_id: JobId,
    /// Submitting user.
    pub user: UserId,
    /// Submission time, seconds from trace start.
    pub arrival: f64,
    /// Submission interface.
    pub interface: SubmissionInterface,
    /// GPUs requested; 0 for CPU-only jobs.
    pub gpus: u32,
    /// CPU cores requested.
    pub cpus: u32,
    /// Host memory requested, GiB.
    pub mem_gib: f64,
    /// Wall-clock limit, seconds.
    pub time_limit: f64,
    /// Ground-truth lifecycle class (`None` for CPU jobs). The analysis
    /// never reads this directly — it re-derives the class from the exit
    /// status, and tests check the two agree.
    pub class: Option<LifecycleClass>,
    /// Planned termination behaviour.
    pub outcome: PlannedOutcome,
    /// Hidden workload archetype shaping the telemetry ground truth
    /// (`None` for CPU jobs). Like [`JobSpec::class`], analysis code
    /// never reads this directly — `sc-learn` recovers it from the
    /// sampled series and scores itself against this label.
    pub archetype: Option<WorkloadArchetype>,
    /// Telemetry ground-truth parameters (`None` for CPU jobs).
    pub truth_params: Option<TruthParams>,
    /// Number of the job's GPUs that sit idle throughout.
    pub idle_gpus: u32,
    /// Seed for lazily regenerating the job's [`JobGroundTruth`].
    pub truth_seed: u64,
    /// Whether the job writes periodic checkpoints when the cluster
    /// runs a checkpoint policy — training-style (mature/exploratory)
    /// work does, debug runs and IDE sessions do not.
    pub checkpointable: bool,
    /// Automatic requeues allowed after an infrastructure failure
    /// (Slurm `--requeue` semantics); 0 for interactive sessions, whose
    /// restart is worthless without the human attached.
    pub max_restarts: u32,
}

impl JobSpec {
    /// Whether this job requests GPUs.
    pub fn is_gpu_job(&self) -> bool {
        self.gpus > 0
    }

    /// Materializes the telemetry ground truth (deterministic in
    /// `truth_seed`). Returns `None` for CPU jobs.
    pub fn ground_truth(&self) -> Option<JobGroundTruth> {
        let params = self.truth_params.as_ref()?;
        let mut rng = StdRng::seed_from_u64(self.truth_seed);
        Some(JobGroundTruth::generate(&mut rng, params, self.gpus, self.idle_gpus, 0.05))
    }
}

/// Synthesizes jobs from the calibrated spec, one at a time.
#[derive(Debug)]
pub struct JobFactory<'a> {
    spec: &'a WorkloadSpec,
    gpu_counts: sc_stats::dist::EmpiricalDiscrete,
    interfaces: Categorical,
    multi_gpu_boost: LogNormal,
}

impl<'a> JobFactory<'a> {
    /// Builds a factory over a workload spec.
    pub fn new(spec: &'a WorkloadSpec) -> Self {
        let gpu_counts =
            sc_stats::dist::EmpiricalDiscrete::new(&spec.gpu_count_mix).expect("valid mix");
        let interfaces = Categorical::new(&spec.interface_weights).expect("valid weights");
        let multi_gpu_boost =
            LogNormal::new(0.0, spec.multi_gpu_runtime_sigma_boost).expect("valid lognormal");
        JobFactory { spec, gpu_counts, interfaces, multi_gpu_boost }
    }

    /// Synthesizes one GPU job for `user` arriving at `arrival`.
    pub fn gpu_job<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        job_id: JobId,
        user: &UserProfile,
        arrival: f64,
    ) -> JobSpec {
        let class = self.draw_class(rng, user);
        let cs = self.spec.class(class);
        let interface = self.draw_interface(rng, class);
        // Draw a job size, clamped to what this user ever scales to.
        let gpus = self.gpu_counts.sample_value(rng).max(1).min(user.gpu_ceiling.max(1));

        let (time_limit, outcome, run_secs) = self.draw_outcome(rng, class, cs, user, gpus);
        let mut truth_params = self.draw_truth_params(rng, class, cs, user, interface, run_secs);
        let idle_gpus = if gpus > 1 && rng.gen::<f64>() < self.spec.multi_gpu_idle_probability {
            let min_idle = gpus.div_ceil(2);
            rng.gen_range(min_idle..gpus)
        } else {
            0
        };

        let truth_seed = splitmix(job_id.0 ^ 0x9e37_79b9_7f4a_7c15);
        // The archetype and its signature hash off the seed rather than
        // drawing from `rng`, like the recovery attributes below: adding
        // them must not shift the RNG stream any existing trace field is
        // derived from.
        let archetype = assign_archetype(class, truth_seed);
        apply_archetype_signature(&mut truth_params, archetype, truth_seed);
        JobSpec {
            job_id,
            user: user.id,
            arrival,
            interface,
            gpus,
            cpus: rng.gen_range(4..=16),
            mem_gib: rng.gen_range(16.0..128.0),
            time_limit,
            class: Some(class),
            outcome,
            archetype: Some(archetype),
            truth_params: Some(truth_params),
            idle_gpus,
            truth_seed,
            // Recovery attributes hash off the seed rather than drawing
            // from `rng`: adding them must not shift the RNG stream any
            // existing trace field is derived from.
            checkpointable: checkpointable(class, truth_seed),
            max_restarts: default_max_restarts(interface),
        }
    }

    /// Synthesizes one CPU job: short, but requesting most of a node
    /// ("CPU jobs usually request all cores and full memory of the
    /// nodes", Sec. III).
    pub fn cpu_job<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        job_id: JobId,
        user: &UserProfile,
        arrival: f64,
    ) -> JobSpec {
        let runtime = LogNormal::new(
            (self.spec.cpu_runtime_median_min * 60.0).ln(),
            self.spec.cpu_runtime_sigma,
        )
        .expect("valid lognormal")
        .sample(rng)
        .clamp(5.0, 86_400.0);
        JobSpec {
            job_id,
            user: user.id,
            arrival,
            interface: if rng.gen::<f64>() < 0.5 {
                SubmissionInterface::Batch
            } else {
                SubmissionInterface::MapReduce
            },
            gpus: 0,
            cpus: 80,
            mem_gib: rng.gen_range(368.0..380.0),
            time_limit: 86_400.0,
            class: None,
            outcome: PlannedOutcome::Complete { work_secs: runtime },
            archetype: None,
            truth_params: None,
            idle_gpus: 0,
            truth_seed: splitmix(job_id.0),
            checkpointable: false,
            max_restarts: DEFAULT_MAX_RESTARTS,
        }
    }

    fn draw_class<R: Rng + ?Sized>(&self, rng: &mut R, user: &UserProfile) -> LifecycleClass {
        let mix = Categorical::new(&user.class_mix).expect("valid mix");
        LifecycleClass::ALL[mix.sample_index(rng)]
    }

    fn draw_interface<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        class: LifecycleClass,
    ) -> SubmissionInterface {
        if class == LifecycleClass::Ide {
            return SubmissionInterface::Interactive;
        }
        if rng.gen::<f64>() < self.spec.interactive_non_ide_fraction {
            return SubmissionInterface::Interactive;
        }
        match self.interfaces.sample_index(rng) {
            0 => SubmissionInterface::MapReduce,
            1 => SubmissionInterface::Batch,
            _ => SubmissionInterface::Other,
        }
    }

    fn draw_outcome<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        class: LifecycleClass,
        cs: &ClassSpec,
        user: &UserProfile,
        gpus: u32,
    ) -> (f64, PlannedOutcome, f64) {
        if class == LifecycleClass::Ide {
            // "The timeout limit is 12 hours or 24 hours, depending on
            // the requested amount."
            let hours = self.spec.ide_timeout_hours[rng.gen_range(0..2usize)];
            let limit = hours * 3600.0;
            return (limit, PlannedOutcome::RunUntilTimeout, limit);
        }
        let median_secs = cs.runtime_median_min * 60.0 * user.runtime_scale;
        let dist = LogNormal::new(median_secs.ln(), cs.runtime_sigma).expect("valid lognormal");
        let mut runtime = dist.sample(rng);
        if gpus > 1 {
            runtime *= self.multi_gpu_boost.sample(rng);
        }
        // Short-job injection: a slice of GPU jobs finish in under 30 s
        // and are dropped by the dataset filter.
        if rng.gen::<f64>() < self.spec.short_gpu_job_fraction {
            runtime = rng.gen_range(2.0..28.0);
        }
        let limit = 86_400.0;
        let runtime = runtime.clamp(2.0, 0.95 * limit);
        let outcome = match class {
            LifecycleClass::Mature => PlannedOutcome::Complete { work_secs: runtime },
            LifecycleClass::Exploratory => PlannedOutcome::Cancel { after_secs: runtime },
            LifecycleClass::Development => PlannedOutcome::Fail { after_secs: runtime },
            LifecycleClass::Ide => unreachable!("handled above"),
        };
        (limit, outcome, runtime)
    }

    fn draw_truth_params<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        class: LifecycleClass,
        cs: &ClassSpec,
        user: &UserProfile,
        interface: SubmissionInterface,
        run_secs: f64,
    ) -> TruthParams {
        // Skill lifts average utilization (Fig. 12). Centred at 0.4 —
        // the job-weighted median skill — so the busy population's
        // multiplier is ≈ 1 and class medians stay on target.
        let skill_mult = 1.0 + self.spec.skill_utilization_gain * (user.skill - 0.4) * 2.0;
        // Interface modifiers (Fig. 5): map-reduce spends its time in
        // data movement; interactive sessions mostly think.
        let iface_mult = match interface {
            SubmissionInterface::MapReduce => 0.35,
            SubmissionInterface::Interactive => 0.5,
            SubmissionInterface::Batch => 0.85,
            SubmissionInterface::Other => 1.1,
        };
        // Job-mean levels are lognormal around the class median (scaled
        // by skill and interface), so the *median* across jobs lands on
        // the paper's reported medians while the heavy upper tail
        // supplies the ">50% utilization" mass of Fig. 4a. Expert users
        // are *not* more predictable (Fig. 12: the CoV correlations stay
        // low even though averages rise): their level spread widens with
        // skill, offsetting their narrower class mix.
        let sigma_scale = 0.45 + 1.6 * user.skill;
        let draw_level = |rng: &mut R, median: f64, sigma: f64| -> f64 {
            let m = (median * skill_mult * iface_mult).clamp(0.05, 90.0);
            LogNormal::new(m.ln(), sigma * sigma_scale)
                .expect("valid lognormal")
                .sample(rng)
                .clamp(0.0, 95.0)
        };
        let sm = draw_level(rng, cs.sm_median, 1.0);
        let mem = draw_level(rng, cs.mem_median, 1.35);
        let mem_size = draw_level(rng, cs.mem_size_median, 1.5);
        // PCIe means are near-uniform across jobs (Fig. 4b), but dormant
        // jobs barely move data.
        let busy = matches!(class, LifecycleClass::Mature | LifecycleClass::Exploratory);
        let (pcie_tx, pcie_rx) = if busy {
            (rng.gen_range(0.0..45.0), rng.gen_range(0.0..55.0))
        } else {
            (rng.gen_range(0.0..8.0), rng.gen_range(0.0..8.0))
        };
        // A slice of otherwise-busy jobs is input-pipeline-bound and
        // barely touches the GPU; together with development/IDE jobs
        // this supplies Fig. 6a's low-active mass (p25 ≈ 14%).
        let io_bound = busy && rng.gen::<f64>() < 0.10;
        let af_mean = if io_bound { 0.12 } else { cs.active_fraction_mean };
        let active_fraction =
            Beta::from_mean_concentration(af_mean.clamp(0.01, 0.99), cs.active_fraction_kappa)
                .expect("valid beta")
                .sample(rng);

        TruthParams {
            duration: 86_400.0f64.min(run_secs.max(30.0) * 1.05 + 60.0),
            active_fraction,
            mean_active_secs: (run_secs / 12.0).clamp(45.0, 900.0),
            sigma_active: 1.75,
            sigma_idle: 1.45,
            mean_levels: ResourceLevels { sm, mem, mem_size, pcie_tx, pcie_rx },
            phase_level_sigma: 0.15,
            wave_frac: rng.gen_range(0.05..0.35),
            wave_period: 45.0,
            spike_resources: self.draw_spikes(rng, busy, active_fraction),
            spike_len: 2.0,
        }
    }

    /// Draws the set of resources this job saturates at least once,
    /// with the correlation structure of Fig. 8: overall P(SM)≈22%,
    /// P(Rx)≈15%, P(Tx)≈10%, P(MemSize)≈10%, P(Mem)≈0%; jointly
    /// P(Rx∧SM)≈9%, P(Rx∧Tx)≈3%, every pair below 10%.
    fn draw_spikes<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        busy: bool,
        active_fraction: f64,
    ) -> Vec<GpuResource> {
        // Only jobs that actually exercise the GPU can hit a ceiling.
        if !busy || active_fraction < 0.15 {
            return Vec::new();
        }
        // Busy-and-active jobs are ~72% of the population; conditional
        // probabilities are scaled so the marginals land on the global
        // targets.
        let mut out = Vec::new();
        let sm = rng.gen::<f64>() < 0.30;
        if sm {
            out.push(GpuResource::Sm);
        }
        let p_rx = if sm { 0.41 } else { 0.11 };
        let rx = rng.gen::<f64>() < p_rx;
        if rx {
            out.push(GpuResource::PcieRx);
        }
        let p_tx = if rx { 0.22 } else { 0.11 };
        if rng.gen::<f64>() < p_tx {
            out.push(GpuResource::PcieTx);
        }
        if rng.gen::<f64>() < 0.14 {
            out.push(GpuResource::MemorySize);
        }
        if rng.gen::<f64>() < 0.005 {
            out.push(GpuResource::Memory);
        }
        out
    }
}

/// Default automatic-requeue cap for non-interactive jobs (Slurm sites
/// commonly bound `--requeue` retries to a small constant).
pub const DEFAULT_MAX_RESTARTS: u32 = 3;

/// Fraction of mature/exploratory jobs whose training loop actually
/// writes checkpoints — periodic saving is common but not universal.
const CHECKPOINT_ADOPTION: f64 = 0.85;

/// Whether a job of `class` checkpoints, decided by hashing its seed so
/// the choice is reproducible and consumes no RNG draws.
fn checkpointable(class: LifecycleClass, truth_seed: u64) -> bool {
    matches!(class, LifecycleClass::Mature | LifecycleClass::Exploratory)
        && hash_unit(truth_seed ^ 0xc4ec_7015) < CHECKPOINT_ADOPTION
}

/// Assigns the hidden archetype from the lifecycle class and the job's
/// seed — a pure hash, so the assignment consumes no RNG draws.
/// Debug runs are bursty, IDE sessions idle-heavy; training-style work
/// splits evenly between CNN-like and transformer-like shapes.
fn assign_archetype(class: LifecycleClass, truth_seed: u64) -> WorkloadArchetype {
    match class {
        LifecycleClass::Development => WorkloadArchetype::BurstyDev,
        LifecycleClass::Ide => WorkloadArchetype::IdleHeavy,
        LifecycleClass::Mature | LifecycleClass::Exploratory => {
            if hash_unit(truth_seed ^ 0xa11c_4a7e) < 0.5 {
                WorkloadArchetype::CnnPeriodic
            } else {
                WorkloadArchetype::TransformerPlateau
            }
        }
    }
}

/// Applies the archetype's phase-skeleton signature to freshly drawn
/// truth parameters. Only the wave geometry and the phase-length scale
/// move — mean levels, active fractions and interval sigmas stay on the
/// paper's calibrated class targets — and every adjustment is a pure
/// hash of the seed, so the trace RNG stream is untouched.
fn apply_archetype_signature(p: &mut TruthParams, archetype: WorkloadArchetype, truth_seed: u64) {
    let jitter = |salt: u64| hash_unit(truth_seed ^ salt);
    match archetype {
        WorkloadArchetype::CnnPeriodic => {
            // Epoch-periodic occupancy: a strong utilization wave with
            // a tens-of-seconds period.
            p.wave_frac = 0.50 + 0.25 * jitter(0x00c7_71a1);
            p.wave_period = 24.0 + 40.0 * jitter(0x00c7_71a2);
        }
        WorkloadArchetype::TransformerPlateau => {
            // Long, flat plateaus: stretch the phase-length scale and
            // flatten the wave to a ripple. Phases shorter than the
            // (long) wave period suppress their wave entirely.
            p.wave_frac = 0.03 + 0.04 * jitter(0x7a15_0001);
            p.wave_period = 300.0 + 300.0 * jitter(0x7a15_0002);
            p.mean_active_secs = (p.mean_active_secs * 3.0).min(2700.0);
        }
        WorkloadArchetype::BurstyDev => {
            // Choppy debug bursts: short phases with a fast, moderate
            // oscillation.
            p.wave_frac = 0.18 + 0.18 * jitter(0xdeb0_0001);
            p.wave_period = 8.0 + 10.0 * jitter(0xdeb0_0002);
            p.mean_active_secs = (p.mean_active_secs * 0.3).max(20.0);
        }
        WorkloadArchetype::IdleHeavy => {
            // Near-idle sessions: long stretches with no oscillation to
            // speak of.
            p.wave_frac = 0.02 + 0.03 * jitter(0x1d1e_0001);
            p.wave_period = 120.0 + 120.0 * jitter(0x1d1e_0002);
        }
    }
}

/// Requeue cap by interface: restarting an interactive session without
/// its human is pointless; everything else retries.
fn default_max_restarts(interface: SubmissionInterface) -> u32 {
    match interface {
        SubmissionInterface::Interactive => 0,
        _ => DEFAULT_MAX_RESTARTS,
    }
}

/// Hashes a seed to a unit-interval float (murmur3 finalizer).
fn hash_unit(mut x: u64) -> f64 {
    x = (x ^ (x >> 33)).wrapping_mul(0xff51_afd7_ed55_8ccd);
    x = (x ^ (x >> 33)).wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^= x >> 33;
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// SplitMix64 finalizer for deriving per-job seeds from ids.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::user::UserPopulation;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (WorkloadSpec, UserPopulation) {
        let spec = WorkloadSpec::supercloud();
        let mut rng = StdRng::seed_from_u64(11);
        let pop = UserPopulation::generate(&mut rng, &spec);
        (spec, pop)
    }

    #[test]
    fn gpu_job_fields_are_sane() {
        let (spec, pop) = setup();
        let factory = JobFactory::new(&spec);
        let mut rng = StdRng::seed_from_u64(1);
        for i in 0..500 {
            let user = pop.sample_user(&mut rng).clone();
            let j = factory.gpu_job(&mut rng, JobId(i), &user, 1000.0);
            assert!(j.is_gpu_job());
            assert!(j.gpus >= 1 && j.gpus <= 32);
            assert!(j.idle_gpus < j.gpus);
            assert!(j.time_limit > 0.0);
            assert!(j.outcome.run_time(j.time_limit) <= j.time_limit);
            assert!(j.class.is_some());
            let p = j.truth_params.as_ref().unwrap();
            assert!((0.0..=1.0).contains(&p.active_fraction));
            assert!(p.mean_levels.sm >= 0.0 && p.mean_levels.sm <= 100.0);
        }
    }

    #[test]
    fn ide_jobs_run_to_timeout_on_interactive_interface() {
        let (spec, pop) = setup();
        let factory = JobFactory::new(&spec);
        let mut rng = StdRng::seed_from_u64(2);
        let mut saw_ide = false;
        for i in 0..3000 {
            let user = pop.sample_user(&mut rng).clone();
            let j = factory.gpu_job(&mut rng, JobId(i), &user, 0.0);
            if j.class == Some(LifecycleClass::Ide) {
                saw_ide = true;
                assert_eq!(j.interface, SubmissionInterface::Interactive);
                assert!(matches!(j.outcome, PlannedOutcome::RunUntilTimeout));
                let hours = j.time_limit / 3600.0;
                assert!(hours == 12.0 || hours == 24.0, "IDE limit {hours} h");
            }
        }
        assert!(saw_ide, "no IDE job generated in 3000 draws");
    }

    #[test]
    fn class_shares_converge_to_global_mix() {
        let (spec, pop) = setup();
        let factory = JobFactory::new(&spec);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 4];
        let n = 20_000;
        for i in 0..n {
            let user = pop.sample_user(&mut rng).clone();
            let j = factory.gpu_job(&mut rng, JobId(i), &user, 0.0);
            let idx = LifecycleClass::ALL.iter().position(|c| Some(*c) == j.class).unwrap();
            counts[idx] += 1;
        }
        let shares: Vec<f64> = counts.iter().map(|c| *c as f64 / n as f64).collect();
        // Population-weighted user mixes are noisier than the global
        // target; allow a few points of slack.
        assert!((shares[0] - 0.595).abs() < 0.12, "mature {}", shares[0]);
        assert!((shares[3] - 0.035).abs() < 0.03, "IDE {}", shares[3]);
    }

    #[test]
    fn outcome_run_time_respects_limit() {
        let o = PlannedOutcome::Complete { work_secs: 100.0 };
        assert_eq!(o.run_time(50.0), 50.0);
        assert_eq!(o.run_time(200.0), 100.0);
        assert_eq!(PlannedOutcome::RunUntilTimeout.run_time(3600.0), 3600.0);
        assert_eq!(PlannedOutcome::Cancel { after_secs: 10.0 }.run_time(3600.0), 10.0);
        assert_eq!(PlannedOutcome::Fail { after_secs: 9e9 }.run_time(3600.0), 3600.0);
    }

    #[test]
    fn cpu_jobs_request_most_of_a_node() {
        let (spec, pop) = setup();
        let factory = JobFactory::new(&spec);
        let mut rng = StdRng::seed_from_u64(4);
        for i in 0..200 {
            let user = pop.sample_user(&mut rng).clone();
            let j = factory.cpu_job(&mut rng, JobId(i), &user, 0.0);
            assert!(!j.is_gpu_job());
            assert!(j.cpus >= 64);
            assert!(j.mem_gib >= 300.0);
            assert!(j.ground_truth().is_none());
        }
    }

    #[test]
    fn ground_truth_is_reproducible_from_seed() {
        let (spec, pop) = setup();
        let factory = JobFactory::new(&spec);
        let mut rng = StdRng::seed_from_u64(5);
        let user = pop.sample_user(&mut rng).clone();
        let j = factory.gpu_job(&mut rng, JobId(42), &user, 0.0);
        let a = j.ground_truth().unwrap();
        let b = j.ground_truth().unwrap();
        assert_eq!(a, b);
        assert_eq!(a.gpus.len(), j.gpus as usize);
    }

    #[test]
    fn realized_gpu_count_mix_matches_fig13() {
        // After ceiling clamping, the job-level mix must land on the
        // paper's Fig. 13a: 84% single-GPU, ~2.4% above two GPUs.
        let (spec, pop) = setup();
        let factory = JobFactory::new(&spec);
        let mut rng = StdRng::seed_from_u64(31);
        let n = 30_000;
        let mut single = 0;
        let mut above_two = 0;
        let mut nine_plus = 0;
        for i in 0..n {
            let user = pop.sample_user(&mut rng).clone();
            let j = factory.gpu_job(&mut rng, JobId(i), &user, 0.0);
            match j.gpus {
                1 => single += 1,
                g if g >= 9 => {
                    nine_plus += 1;
                    above_two += 1;
                }
                g if g > 2 => above_two += 1,
                _ => {}
            }
        }
        let single = single as f64 / n as f64;
        let above_two = above_two as f64 / n as f64;
        let nine_plus = nine_plus as f64 / n as f64;
        assert!((single - 0.84).abs() < 0.05, "single-GPU share {single}");
        assert!((above_two - 0.024).abs() < 0.02, ">2-GPU share {above_two}");
        assert!(nine_plus < 0.012, "9+-GPU share {nine_plus}");
    }

    #[test]
    fn recovery_attributes_follow_class_and_interface() {
        let (spec, pop) = setup();
        let factory = JobFactory::new(&spec);
        let mut rng = StdRng::seed_from_u64(7);
        let mut ckpt = 0usize;
        let n = 5_000;
        for i in 0..n {
            let user = pop.sample_user(&mut rng).clone();
            let j = factory.gpu_job(&mut rng, JobId(i), &user, 0.0);
            if j.checkpointable {
                ckpt += 1;
                assert!(
                    matches!(j.class, Some(LifecycleClass::Mature | LifecycleClass::Exploratory)),
                    "only training-style work checkpoints"
                );
            }
            if j.interface == SubmissionInterface::Interactive {
                assert_eq!(j.max_restarts, 0, "interactive sessions never auto-requeue");
            } else {
                assert_eq!(j.max_restarts, DEFAULT_MAX_RESTARTS);
            }
            // Attributes are a pure function of the spec, not the RNG.
            assert_eq!(j.checkpointable, j.checkpointable);
        }
        let frac = ckpt as f64 / n as f64;
        assert!(frac > 0.4 && frac < 0.8, "checkpoint adoption {frac}");
        // CPU jobs never checkpoint but do requeue.
        let user = pop.sample_user(&mut rng).clone();
        let c = factory.cpu_job(&mut rng, JobId(99_999), &user, 0.0);
        assert!(!c.checkpointable);
        assert_eq!(c.max_restarts, DEFAULT_MAX_RESTARTS);
    }

    #[test]
    fn spike_marginals_near_fig8_targets() {
        let (spec, pop) = setup();
        let factory = JobFactory::new(&spec);
        let mut rng = StdRng::seed_from_u64(6);
        let n = 30_000;
        let mut sm = 0;
        let mut rx = 0;
        let mut joint = 0;
        for i in 0..n {
            let user = pop.sample_user(&mut rng).clone();
            let j = factory.gpu_job(&mut rng, JobId(i), &user, 0.0);
            let spikes = &j.truth_params.as_ref().unwrap().spike_resources;
            let has_sm = spikes.contains(&GpuResource::Sm);
            let has_rx = spikes.contains(&GpuResource::PcieRx);
            sm += has_sm as usize;
            rx += has_rx as usize;
            joint += (has_sm && has_rx) as usize;
        }
        let p_sm = sm as f64 / n as f64;
        let p_rx = rx as f64 / n as f64;
        let p_joint = joint as f64 / n as f64;
        assert!((p_sm - 0.22).abs() < 0.07, "P(SM spike) {p_sm}");
        assert!((p_rx - 0.15).abs() < 0.06, "P(Rx spike) {p_rx}");
        assert!((p_joint - 0.09).abs() < 0.05, "P(SM∧Rx) {p_joint}");
    }
}
