//! Full-trace generation: users + arrivals + jobs, 125 days in one call.

use crate::arrivals::ArrivalIntensity;
use crate::job::{JobFactory, JobSpec};
use crate::spec::WorkloadSpec;
use crate::user::{UserPopulation, UserProfile};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sc_telemetry::record::JobId;

/// A generated trace: the population and every job, sorted by arrival.
#[derive(Debug, Clone)]
pub struct Trace {
    spec: WorkloadSpec,
    users: Vec<UserProfile>,
    jobs: Vec<JobSpec>,
    seed: u64,
}

impl Trace {
    /// Generates the complete trace for `spec`, deterministically in
    /// `seed`.
    ///
    /// GPU jobs arrive individually following the diurnal/deadline
    /// intensity; CPU jobs arrive in campaign bursts. Job ids are
    /// assigned in arrival order, like a monotonically increasing Slurm
    /// job counter.
    pub fn generate(spec: &WorkloadSpec, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let population = UserPopulation::generate(&mut rng, spec);
        let intensity = ArrivalIntensity::from_spec(spec);
        let factory = JobFactory::new(spec);

        let gpu_jobs = spec.expected_gpu_jobs();
        let cpu_jobs = spec.total_jobs.saturating_sub(gpu_jobs);

        let mut arrivals: Vec<(f64, bool)> = Vec::with_capacity(spec.total_jobs);
        for t in intensity.sample_arrivals(&mut rng, gpu_jobs) {
            arrivals.push((t, true));
        }
        for t in intensity.sample_burst_arrivals(&mut rng, cpu_jobs, spec.cpu_burst_mean) {
            arrivals.push((t, false));
        }
        arrivals.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));

        let mut jobs = Vec::with_capacity(arrivals.len());
        for (i, (t, is_gpu)) in arrivals.into_iter().enumerate() {
            let user = population.sample_user(&mut rng).clone();
            let id = JobId(i as u64 + 1);
            let job = if is_gpu {
                factory.gpu_job(&mut rng, id, &user, t)
            } else {
                factory.cpu_job(&mut rng, id, &user, t)
            };
            jobs.push(job);
        }
        Trace { spec: spec.clone(), users: population.users().to_vec(), jobs, seed }
    }

    /// The generating spec.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// The user population.
    pub fn users(&self) -> &[UserProfile] {
        &self.users
    }

    /// All jobs sorted by arrival time.
    pub fn jobs(&self) -> &[JobSpec] {
        &self.jobs
    }

    /// The generation seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// GPU jobs only.
    pub fn gpu_jobs(&self) -> impl Iterator<Item = &JobSpec> {
        self.jobs.iter().filter(|j| j.is_gpu_job())
    }

    /// CPU jobs only.
    pub fn cpu_jobs(&self) -> impl Iterator<Item = &JobSpec> {
        self.jobs.iter().filter(|j| !j.is_gpu_job())
    }

    /// Deterministically selects which jobs die to hardware failures
    /// (<0.5% on Supercloud): hashes each job id against the trace seed
    /// so the scheduler and tests agree without shared state.
    pub fn is_hardware_victim(&self, job_id: JobId) -> bool {
        let h = hash64(self.seed ^ job_id.0.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        (h as f64 / u64::MAX as f64) < self.spec.hardware_failure_probability
    }
}

fn hash64(mut x: u64) -> u64 {
    x = (x ^ (x >> 33)).wrapping_mul(0xff51_afd7_ed55_8ccd);
    x = (x ^ (x >> 33)).wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^ (x >> 33)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_trace(seed: u64) -> Trace {
        Trace::generate(&WorkloadSpec::supercloud().scaled(0.02), seed)
    }

    #[test]
    fn trace_has_requested_volume() {
        let t = small_trace(1);
        assert_eq!(t.jobs().len(), t.spec().total_jobs);
        let gpu = t.gpu_jobs().count();
        let expected = t.spec().expected_gpu_jobs();
        assert!((gpu as i64 - expected as i64).unsigned_abs() < 5, "gpu jobs {gpu}");
        assert_eq!(t.gpu_jobs().count() + t.cpu_jobs().count(), t.jobs().len());
    }

    #[test]
    fn jobs_sorted_by_arrival_with_sequential_ids() {
        let t = small_trace(2);
        for w in t.jobs().windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
            assert!(w[0].job_id < w[1].job_id);
        }
        assert_eq!(t.jobs()[0].job_id, JobId(1));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = small_trace(3);
        let b = small_trace(3);
        assert_eq!(a.jobs(), b.jobs());
        let c = small_trace(4);
        assert_ne!(a.jobs(), c.jobs());
    }

    #[test]
    fn hardware_victims_are_rare_and_deterministic() {
        let t = small_trace(5);
        let victims = t.jobs().iter().filter(|j| t.is_hardware_victim(j.job_id)).count();
        let frac = victims as f64 / t.jobs().len() as f64;
        assert!(frac < 0.015, "victim fraction {frac}");
        for j in t.jobs().iter().take(50) {
            assert_eq!(t.is_hardware_victim(j.job_id), t.is_hardware_victim(j.job_id));
        }
    }

    #[test]
    fn arrivals_within_trace_window() {
        let t = small_trace(6);
        let horizon = t.spec().duration_secs();
        for j in t.jobs() {
            assert!(j.arrival >= 0.0 && j.arrival <= horizon);
        }
    }
}
