//! Per-job ground truth: the piecewise phase process that telemetry
//! observes.
//!
//! A job's GPU behaviour is modeled as alternating **active** and
//! **idle** phases (Sec. III of the paper) whose lengths follow
//! lognormal distributions (matching the high interval-length CoVs of
//! Fig. 6b). Within an active phase each resource holds a base level
//! modulated by a coherent sinusoid (Fig. 7a's within-run variability)
//! plus optional **spikes** to 100% (Fig. 7b/8's bottleneck events).
//!
//! Because the process is piecewise-analytic, the end-of-job
//! min/mean/max aggregates can be computed *exactly* in `O(#phases)` —
//! see [`GpuGroundTruth::analytic_aggregates`] — which is what lets the
//! full 74,820-job trace run in seconds while the 100 ms sampler is
//! still exercised over the detailed time-series subset, exactly like
//! the paper's two-tier collection.

use crate::power::PowerModel;
use rand::Rng;
use sc_stats::dist::{LogNormal, Sample};
use sc_telemetry::aggregate::{Aggregate, GpuAggregates};
use sc_telemetry::metrics::{CpuMetricSample, GpuMetricSample, GpuResource};
use sc_telemetry::source::MetricSource;
use serde::{Deserialize, Serialize};

/// Base utilization levels (percent) for the five non-power resources.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ResourceLevels {
    /// SM utilization %.
    pub sm: f64,
    /// Memory-bandwidth utilization %.
    pub mem: f64,
    /// Memory-size utilization %.
    pub mem_size: f64,
    /// PCIe Tx utilization %.
    pub pcie_tx: f64,
    /// PCIe Rx utilization %.
    pub pcie_rx: f64,
}

impl ResourceLevels {
    /// Reads the level of one resource.
    ///
    /// # Panics
    ///
    /// Panics for [`GpuResource::Power`]: power is derived, not a level.
    pub fn get(&self, r: GpuResource) -> f64 {
        match r {
            GpuResource::Sm => self.sm,
            GpuResource::Memory => self.mem,
            GpuResource::MemorySize => self.mem_size,
            GpuResource::PcieTx => self.pcie_tx,
            GpuResource::PcieRx => self.pcie_rx,
            GpuResource::Power => panic!("power is derived from the other levels"),
        }
    }

    /// Returns levels scaled by `factor`, clamped to `[0, max]`.
    pub fn scaled_clamped(&self, factor: f64, max: f64) -> ResourceLevels {
        let c = |v: f64| (v * factor).clamp(0.0, max);
        ResourceLevels {
            sm: c(self.sm),
            mem: c(self.mem),
            mem_size: c(self.mem_size),
            pcie_tx: c(self.pcie_tx),
            pcie_rx: c(self.pcie_rx),
        }
    }
}

/// Fraction of the utilization wave that reaches board power (thermal
/// damping; see [`Phase::power_level_at`]).
pub const POWER_WAVE_DAMP: f64 = 0.4;

/// A momentary excursion of one resource to 100% inside an active phase.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Spike {
    /// The resource that saturates.
    pub resource: GpuResource,
    /// Offset from the phase start, seconds.
    pub offset: f64,
    /// Spike length, seconds.
    pub len: f64,
}

/// One phase of the ground-truth process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// Phase start, seconds from job start.
    pub start: f64,
    /// Phase length, seconds.
    pub len: f64,
    /// Active (GPU in use) or idle.
    pub active: bool,
    /// Base levels during the phase (all-zero for idle phases).
    pub levels: ResourceLevels,
    /// Sinusoid amplitude as a fraction of each base level.
    pub wave_frac: f64,
    /// Sinusoid period, seconds.
    pub wave_period: f64,
    /// Sinusoid phase shift, radians.
    pub wave_shift: f64,
    /// Saturation spikes inside this phase.
    pub spikes: Vec<Spike>,
}

impl Phase {
    /// Phase end time.
    pub fn end(&self) -> f64 {
        self.start + self.len
    }

    /// The effective wave amplitude for a resource: proportional to the
    /// base level, suppressed entirely for phases shorter than one wave
    /// period (they never complete a cycle), and clamped so the wave
    /// stays inside `[0, 100]`.
    pub fn amplitude(&self, r: GpuResource) -> f64 {
        if !self.active || self.len < self.wave_period {
            return 0.0;
        }
        // Memory footprint is far steadier than compute (Fig. 7a:
        // memory-size CoV median 8.2% vs SM 14%): damp its wave.
        let damp = match r {
            GpuResource::MemorySize => 0.35,
            _ => 1.0,
        };
        // Cap the wave peak just below the 100% ceiling so that only
        // explicit spikes register as bottlenecks (Fig. 7b's criterion).
        let base = self.levels.get(r);
        (self.wave_frac * damp * base).min(99.0 - base).min(base).max(0.0)
    }

    /// Ground-truth level of `r` at absolute time `t` (must lie in the
    /// phase).
    pub fn level_at(&self, r: GpuResource, t: f64) -> f64 {
        if !self.active {
            return 0.0;
        }
        let rel = t - self.start;
        for s in &self.spikes {
            if s.resource == r && rel >= s.offset && rel < s.offset + s.len {
                return 100.0;
            }
        }
        let base = self.levels.get(r);
        let amp = self.amplitude(r);
        if amp == 0.0 {
            return base;
        }
        let angle = 2.0 * std::f64::consts::PI * rel / self.wave_period + self.wave_shift;
        (base + amp * angle.sin()).clamp(0.0, 100.0)
    }

    /// Like [`Phase::level_at`] but with the wave damped by
    /// [`POWER_WAVE_DAMP`] — the input used for the power model. Board
    /// power integrates over seconds of thermal mass, so fast occupancy
    /// oscillations move it far less than their full swing; spikes (long
    /// saturations) still pass through at full strength.
    pub fn power_level_at(&self, r: GpuResource, t: f64) -> f64 {
        if !self.active {
            return 0.0;
        }
        let rel = t - self.start;
        for s in &self.spikes {
            if s.resource == r && rel >= s.offset && rel < s.offset + s.len {
                return 100.0;
            }
        }
        let base = self.levels.get(r);
        let amp = self.amplitude(r) * POWER_WAVE_DAMP;
        if amp == 0.0 {
            return base;
        }
        let angle = 2.0 * std::f64::consts::PI * rel / self.wave_period + self.wave_shift;
        (base + amp * angle.sin()).clamp(0.0, 100.0)
    }

    /// Whether any spike on `r` overlaps `[0, within]` (phase-relative).
    fn has_spike_within(&self, r: GpuResource, within: f64) -> bool {
        self.spikes.iter().any(|s| s.resource == r && s.offset < within)
    }

    /// Spike time on `r` overlapping `[0, within]`, seconds.
    fn spike_time_within(&self, r: GpuResource, within: f64) -> f64 {
        self.spikes
            .iter()
            .filter(|s| s.resource == r && s.offset < within)
            .map(|s| s.len.min(within - s.offset))
            .sum()
    }
}

/// The full ground-truth process of one GPU over one job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuGroundTruth {
    phases: Vec<Phase>,
}

impl GpuGroundTruth {
    /// Builds from a contiguous, ordered phase list.
    ///
    /// # Panics
    ///
    /// Panics if phases are empty, unordered, or non-contiguous.
    pub fn new(phases: Vec<Phase>) -> Self {
        assert!(!phases.is_empty(), "ground truth needs at least one phase");
        let mut t = phases[0].start;
        for p in &phases {
            assert!((p.start - t).abs() < 1e-6, "phases must be contiguous");
            assert!(p.len > 0.0, "phase length must be positive");
            t = p.end();
        }
        GpuGroundTruth { phases }
    }

    /// A single all-idle phase spanning `duration` — the truth of an
    /// idle GPU in a multi-GPU job (Fig. 14a).
    pub fn idle(duration: f64) -> Self {
        GpuGroundTruth::new(vec![Phase {
            start: 0.0,
            len: duration.max(1e-3),
            active: false,
            levels: ResourceLevels::default(),
            wave_frac: 0.0,
            wave_period: 1.0,
            wave_shift: 0.0,
            spikes: Vec::new(),
        }])
    }

    /// The phases.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Total covered duration.
    pub fn total_len(&self) -> f64 {
        self.phases.last().expect("non-empty").end() - self.phases[0].start
    }

    /// The phase containing time `t` (clamped to the covered range).
    pub fn phase_at(&self, t: f64) -> &Phase {
        let idx = self.phases.partition_point(|p| p.end() <= t);
        &self.phases[idx.min(self.phases.len() - 1)]
    }

    /// If the process is constant over a span starting at `t`, returns
    /// the span's end: `state_at(t') == state_at(t)` for all
    /// `t <= t' < end`. Idle phases are constant for their whole
    /// length; active phases are constant between spike boundaries
    /// whenever every resource's wave amplitude is zero (short phases
    /// never complete a wave cycle and are suppressed by
    /// [`Phase::amplitude`]). Returns `None` for waving phases.
    ///
    /// This feeds [`MetricSource::gpu_constant_until`], letting the
    /// 100 ms sampler take one `state_at` call per constant span
    /// instead of one per tick.
    pub fn constant_until(&self, t: f64) -> Option<f64> {
        let phase = self.phase_at(t);
        if !phase.active {
            return Some(phase.end());
        }
        if GpuResource::UTILIZATION.iter().any(|&r| phase.amplitude(r) != 0.0) {
            return None;
        }
        // Flat base levels: the state only changes at spike edges.
        let rel = t - phase.start;
        let mut end = phase.end();
        for s in &phase.spikes {
            for boundary in [s.offset, s.offset + s.len] {
                if boundary > rel {
                    end = end.min(phase.start + boundary);
                }
            }
        }
        Some(end)
    }

    /// Ground-truth sample at time `t`.
    pub fn state_at(&self, t: f64, power: &PowerModel) -> GpuMetricSample {
        let phase = self.phase_at(t);
        let sm = phase.level_at(GpuResource::Sm, t);
        let mem = phase.level_at(GpuResource::Memory, t);
        let mem_size = phase.level_at(GpuResource::MemorySize, t);
        GpuMetricSample {
            sm_util: sm,
            mem_util: mem,
            mem_size_util: mem_size,
            pcie_tx: phase.level_at(GpuResource::PcieTx, t),
            pcie_rx: phase.level_at(GpuResource::PcieRx, t),
            power_w: power.power_w(
                phase.power_level_at(GpuResource::Sm, t),
                phase.power_level_at(GpuResource::Memory, t),
                phase.power_level_at(GpuResource::MemorySize, t),
            ),
        }
    }

    /// Exact min/mean/max aggregates over `[0, duration]`, computed
    /// analytically from the phase structure. Equivalent to sampling at
    /// an infinite rate; agrees with the 100 ms sampler to within the
    /// wave quantization (tested in this module).
    pub fn analytic_aggregates(&self, duration: f64, power: &PowerModel) -> GpuAggregates {
        let duration = duration.min(self.total_len()).max(1e-9);
        let mut agg = GpuAggregates::new();
        let mut acc: [(f64, f64, f64); 5] = [(f64::INFINITY, 0.0, f64::NEG_INFINITY); 5];
        let mut pw = (f64::INFINITY, 0.0, f64::NEG_INFINITY);
        let mut covered = 0.0;
        for phase in &self.phases {
            if phase.start >= duration {
                break;
            }
            let overlap = (duration - phase.start).min(phase.len);
            covered += overlap;
            let w = overlap / duration;
            let mut phase_stats = [(0.0, 0.0, 0.0); 5]; // (min, mean, max) per resource
            for (i, r) in GpuResource::UTILIZATION.iter().enumerate() {
                let (mn, mean, mx) = if phase.active {
                    let base = phase.levels.get(*r);
                    let amp = phase.amplitude(*r);
                    let spike_time = phase.spike_time_within(*r, overlap);
                    let mean = base + (100.0 - base) * spike_time / overlap.max(1e-9);
                    let mx = if phase.has_spike_within(*r, overlap) { 100.0 } else { base + amp };
                    (base - amp, mean.min(100.0), mx)
                } else {
                    (0.0, 0.0, 0.0)
                };
                phase_stats[i] = (mn, mean, mx);
                acc[i].0 = acc[i].0.min(mn);
                acc[i].1 += mean * w;
                acc[i].2 = acc[i].2.max(mx);
            }
            // Power: linear in (sm, mem, mem_size) -> the mean maps
            // through exactly; extremes use the coherent-wave property
            // with the thermally damped amplitude of `power_level_at`.
            let (sm, mem, msz) = (phase_stats[0], phase_stats[1], phase_stats[2]);
            let damped = |r: GpuResource| phase.amplitude(r) * POWER_WAVE_DAMP;
            let p_min = if phase.active {
                power.power_w(
                    (phase.levels.sm - damped(GpuResource::Sm)).max(0.0),
                    (phase.levels.mem - damped(GpuResource::Memory)).max(0.0),
                    (phase.levels.mem_size - damped(GpuResource::MemorySize)).max(0.0),
                )
            } else {
                power.power_w(sm.0, mem.0, msz.0)
            };
            let p_mean = power.power_w(sm.1, mem.1, msz.1);
            let mut p_max = power.power_w(
                phase.levels.sm + damped(GpuResource::Sm),
                phase.levels.mem + damped(GpuResource::Memory),
                phase.levels.mem_size + damped(GpuResource::MemorySize),
            );
            if phase.active {
                // A spike saturates one resource while the others sit at
                // their base level.
                for (r, base_mem) in [
                    (GpuResource::Sm, (100.0, phase.levels.mem, phase.levels.mem_size)),
                    (GpuResource::Memory, (phase.levels.sm, 100.0, phase.levels.mem_size)),
                    (GpuResource::MemorySize, (phase.levels.sm, phase.levels.mem, 100.0)),
                ] {
                    if phase.has_spike_within(r, overlap) {
                        p_max = p_max.max(power.power_w(base_mem.0, base_mem.1, base_mem.2));
                    }
                }
            } else {
                p_max = p_max.max(power.idle_power_w());
            }
            pw.0 = pw.0.min(p_min);
            pw.1 += p_mean * w;
            pw.2 = pw.2.max(p_max);
        }
        debug_assert!((covered - duration).abs() < 1e-3, "phases must cover the duration");
        let count = (duration / 0.1).ceil() as u64; // nominal 100 ms samples
        let mk = |(min, mean, max): (f64, f64, f64)| Aggregate { min, mean, max, count };
        agg.sm_util = mk(acc[0]);
        agg.mem_util = mk(acc[1]);
        agg.mem_size_util = mk(acc[2]);
        agg.pcie_tx = mk(acc[3]);
        agg.pcie_rx = mk(acc[4]);
        agg.power_w = mk(pw);
        agg
    }
}

/// Parameters for generating one job's ground truth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TruthParams {
    /// Total duration to cover (the job's wall-clock limit), seconds.
    pub duration: f64,
    /// Target fraction of time in active phases, `[0, 1]`.
    pub active_fraction: f64,
    /// Mean active-interval length, seconds.
    pub mean_active_secs: f64,
    /// Log-space sigma of active-interval lengths (Fig. 6b target:
    /// median CoV 169% → σ ≈ 1.16).
    pub sigma_active: f64,
    /// Log-space sigma of idle-interval lengths (median CoV 126% →
    /// σ ≈ 1.0).
    pub sigma_idle: f64,
    /// Target *job-mean* levels (averaged over the whole run including
    /// idle time). Active-phase levels are scaled up by
    /// `1 / active_fraction` to hit these means.
    pub mean_levels: ResourceLevels,
    /// Log-space sigma of the per-phase level multiplier.
    pub phase_level_sigma: f64,
    /// Within-phase wave amplitude as a fraction of the base level.
    pub wave_frac: f64,
    /// Within-phase wave period, seconds.
    pub wave_period: f64,
    /// Resources that saturate to 100% at least once during the run.
    pub spike_resources: Vec<GpuResource>,
    /// Spike length in seconds.
    pub spike_len: f64,
}

impl Default for TruthParams {
    fn default() -> Self {
        TruthParams {
            duration: 1800.0,
            active_fraction: 0.8,
            mean_active_secs: 180.0,
            sigma_active: 1.16,
            sigma_idle: 1.0,
            mean_levels: ResourceLevels {
                sm: 16.0,
                mem: 2.0,
                mem_size: 9.0,
                pcie_tx: 10.0,
                pcie_rx: 12.0,
            },
            phase_level_sigma: 0.35,
            wave_frac: 0.22,
            wave_period: 45.0,
            spike_resources: Vec::new(),
            spike_len: 2.0,
        }
    }
}

/// Generates one GPU's ground truth from the parameters.
///
/// # Panics
///
/// Panics if `duration <= 0` or `active_fraction` is outside `[0, 1]`.
pub fn generate_gpu_truth<R: Rng + ?Sized>(rng: &mut R, p: &TruthParams) -> GpuGroundTruth {
    assert!(p.duration > 0.0, "duration must be positive");
    assert!((0.0..=1.0).contains(&p.active_fraction), "active_fraction must be in [0, 1]");
    if p.active_fraction < 0.005 {
        return GpuGroundTruth::idle(p.duration);
    }
    let f = p.active_fraction.min(0.995);
    // Active-phase levels hit the job-mean targets after dilution by f.
    let active_levels = p.mean_levels.scaled_clamped(1.0 / f, 92.0);
    let mean_idle_secs = (p.mean_active_secs * (1.0 - f) / f).max(1.0);
    // LogNormal with target mean m: mu = ln(m) - sigma^2/2.
    let active_dist = LogNormal::new(
        p.mean_active_secs.ln() - p.sigma_active * p.sigma_active / 2.0,
        p.sigma_active,
    )
    .expect("valid lognormal");
    let idle_dist =
        LogNormal::new(mean_idle_secs.ln() - p.sigma_idle * p.sigma_idle / 2.0, p.sigma_idle)
            .expect("valid lognormal");
    let level_mult =
        LogNormal::new(-p.phase_level_sigma * p.phase_level_sigma / 2.0, p.phase_level_sigma)
            .expect("valid lognormal");

    let mut phases = Vec::new();
    let mut t = 0.0;
    let mut active = rng.gen::<f64>() < f;
    while t < p.duration {
        let raw = if active { active_dist.sample(rng) } else { idle_dist.sample(rng) };
        let len = raw.clamp(1.0, p.duration).min(p.duration - t).max(1e-3);
        let levels = if active {
            active_levels.scaled_clamped(level_mult.sample(rng), 96.0)
        } else {
            ResourceLevels::default()
        };
        phases.push(Phase {
            start: t,
            len,
            active,
            levels,
            wave_frac: p.wave_frac,
            wave_period: p.wave_period * rng.gen_range(0.7..1.4),
            wave_shift: rng.gen_range(0.0..std::f64::consts::TAU),
            spikes: Vec::new(),
        });
        t += len;
        active = !active;
    }
    // Plant one saturation spike per spiking resource in a random active
    // phase long enough to host it.
    let active_idx: Vec<usize> = phases
        .iter()
        .enumerate()
        .filter(|(_, ph)| ph.active && ph.len > 2.0 * p.spike_len)
        .map(|(i, _)| i)
        .collect();
    if !active_idx.is_empty() {
        for &r in &p.spike_resources {
            let pi = active_idx[rng.gen_range(0..active_idx.len())];
            let phase_len = phases[pi].len;
            let offset = rng.gen_range(0.0..(phase_len - p.spike_len));
            phases[pi].spikes.push(Spike { resource: r, offset, len: p.spike_len });
        }
    }
    GpuGroundTruth::new(phases)
}

/// The ground truth of a whole job: one process per GPU plus the CPU
/// side, implementing [`MetricSource`] for the telemetry samplers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobGroundTruth {
    /// Per-GPU processes.
    pub gpus: Vec<GpuGroundTruth>,
    /// Power model shared by the job's GPUs.
    pub power: PowerModel,
    /// Host CPU utilization (constant; CPU-side detail is out of the
    /// paper's GPU analyses).
    pub cpu_util: f64,
}

impl JobGroundTruth {
    /// Generates the job truth: `gpu_count - idle_gpus` active GPUs share
    /// one phase schedule with per-GPU level jitter (`gpu_jitter`
    /// lognormal sigma — Fig. 14b shows active GPUs behave uniformly),
    /// while `idle_gpus` GPUs sit fully idle (Fig. 14a's pathology).
    ///
    /// # Panics
    ///
    /// Panics if `idle_gpus >= gpu_count` and `gpu_count > 0` is violated.
    pub fn generate<R: Rng + ?Sized>(
        rng: &mut R,
        params: &TruthParams,
        gpu_count: u32,
        idle_gpus: u32,
        gpu_jitter: f64,
    ) -> Self {
        assert!(gpu_count > 0, "a GPU job needs at least one GPU");
        assert!(idle_gpus < gpu_count, "at least one GPU must be active");
        let reference = generate_gpu_truth(rng, params);
        let jitter_dist =
            LogNormal::new(-gpu_jitter * gpu_jitter / 2.0, gpu_jitter).expect("valid lognormal");
        let mut gpus = Vec::with_capacity(gpu_count as usize);
        for g in 0..gpu_count {
            if g >= gpu_count - idle_gpus {
                gpus.push(GpuGroundTruth::idle(params.duration));
                continue;
            }
            if g == 0 {
                gpus.push(reference.clone());
                continue;
            }
            let mult = jitter_dist.sample(rng);
            let phases = reference
                .phases()
                .iter()
                .map(|ph| Phase {
                    levels: ph.levels.scaled_clamped(mult, 98.0),
                    spikes: ph.spikes.clone(),
                    ..*ph
                })
                .collect();
            gpus.push(GpuGroundTruth::new(phases));
        }
        JobGroundTruth { gpus, power: PowerModel::v100(), cpu_util: rng.gen_range(2.0..60.0) }
    }

    /// Exact per-GPU aggregates over `[0, duration]`.
    pub fn analytic_aggregates(&self, duration: f64) -> Vec<GpuAggregates> {
        self.gpus.iter().map(|g| g.analytic_aggregates(duration, &self.power)).collect()
    }
}

impl MetricSource for JobGroundTruth {
    fn gpu_count(&self) -> u32 {
        self.gpus.len() as u32
    }

    fn gpu_state(&self, gpu_index: u32, t: f64) -> GpuMetricSample {
        self.gpus[gpu_index as usize].state_at(t, &self.power)
    }

    fn gpu_constant_until(&self, gpu_index: u32, t: f64) -> Option<f64> {
        self.gpus[gpu_index as usize].constant_until(t)
    }

    fn cpu_state(&self, _t: f64) -> CpuMetricSample {
        CpuMetricSample { cpu_util: self.cpu_util, mem_used_gib: 8.0, io_mib_s: 5.0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sc_telemetry::sampler::GpuSampler;

    fn params() -> TruthParams {
        TruthParams { duration: 3600.0, ..Default::default() }
    }

    #[test]
    fn phases_cover_duration_contiguously() {
        let mut rng = StdRng::seed_from_u64(1);
        let truth = generate_gpu_truth(&mut rng, &params());
        assert!((truth.total_len() - 3600.0).abs() < 1e-6);
        let mut t = 0.0;
        for ph in truth.phases() {
            assert!((ph.start - t).abs() < 1e-6);
            t = ph.end();
        }
    }

    #[test]
    fn active_fraction_close_to_target() {
        let mut rng = StdRng::seed_from_u64(2);
        // Long job so the renewal process converges.
        let p = TruthParams { duration: 400_000.0, active_fraction: 0.7, ..Default::default() };
        let truth = generate_gpu_truth(&mut rng, &p);
        let active: f64 = truth.phases().iter().filter(|p| p.active).map(|p| p.len).sum();
        let frac = active / truth.total_len();
        assert!((frac - 0.7).abs() < 0.12, "active fraction {frac}");
    }

    #[test]
    fn analytic_mean_hits_job_mean_targets() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = TruthParams { duration: 2_000_000.0, ..Default::default() };
        let truth = generate_gpu_truth(&mut rng, &p);
        let agg = truth.analytic_aggregates(p.duration, &PowerModel::v100());
        // Job-mean SM should approach the 16% target (renewal + level
        // noise makes this stochastic; wide band).
        assert!((agg.sm_util.mean - 16.0).abs() < 5.0, "sm mean {}", agg.sm_util.mean);
        assert!(agg.mem_util.mean < 6.0);
        assert!(agg.sm_util.min >= 0.0 && agg.sm_util.max <= 100.0);
    }

    #[test]
    fn sampled_aggregates_agree_with_analytic() {
        let mut rng = StdRng::seed_from_u64(4);
        let p = TruthParams { duration: 600.0, ..Default::default() };
        let truth = JobGroundTruth::generate(&mut rng, &p, 1, 0, 0.05);
        let analytic = &truth.analytic_aggregates(600.0)[0];
        let sampled = &GpuSampler::new().sample_aggregates(&truth, 600.0)[0];
        assert!(
            (analytic.sm_util.mean - sampled.sm_util.mean).abs() < 2.5,
            "mean: analytic {} vs sampled {}",
            analytic.sm_util.mean,
            sampled.sm_util.mean
        );
        assert!((analytic.sm_util.max - sampled.sm_util.max).abs() < 3.0);
        assert!((analytic.power_w.mean - sampled.power_w.mean).abs() < 4.0);
    }

    #[test]
    fn spikes_reach_100_in_both_paths() {
        let mut rng = StdRng::seed_from_u64(5);
        let p = TruthParams {
            duration: 1200.0,
            active_fraction: 0.95,
            spike_resources: vec![GpuResource::Sm],
            ..Default::default()
        };
        let truth = JobGroundTruth::generate(&mut rng, &p, 1, 0, 0.0);
        let analytic = &truth.analytic_aggregates(1200.0)[0];
        assert_eq!(analytic.sm_util.max, 100.0);
        let sampled = &GpuSampler::new().sample_aggregates(&truth, 1200.0)[0];
        assert_eq!(sampled.sm_util.max, 100.0, "100 ms sampling must catch a 2 s spike");
    }

    #[test]
    fn idle_gpus_report_zero() {
        let mut rng = StdRng::seed_from_u64(6);
        let truth = JobGroundTruth::generate(&mut rng, &params(), 4, 2, 0.05);
        assert_eq!(truth.gpu_count(), 4);
        let aggs = truth.analytic_aggregates(3600.0);
        assert_eq!(aggs[3].sm_util.max, 0.0);
        assert_eq!(aggs[2].sm_util.max, 0.0);
        assert!(aggs[0].sm_util.mean > 0.0);
        // Idle GPU still draws its idle-power floor.
        assert!((aggs[3].power_w.mean - 20.0).abs() < 1e-9);
    }

    #[test]
    fn active_gpus_are_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let truth = JobGroundTruth::generate(&mut rng, &params(), 4, 0, 0.05);
        let aggs = truth.analytic_aggregates(3600.0);
        let means: Vec<f64> = aggs.iter().map(|a| a.sm_util.mean).collect();
        let cov = sc_stats::coefficient_of_variation(&means).unwrap();
        assert!(cov < 15.0, "active-GPU CoV {cov}%");
    }

    #[test]
    fn fully_idle_truth_for_zero_active_fraction() {
        let mut rng = StdRng::seed_from_u64(8);
        let p = TruthParams { active_fraction: 0.0, ..params() };
        let truth = generate_gpu_truth(&mut rng, &p);
        assert_eq!(truth.phases().len(), 1);
        assert!(!truth.phases()[0].active);
    }

    #[test]
    fn state_is_deterministic_in_t() {
        let mut rng = StdRng::seed_from_u64(9);
        let truth = JobGroundTruth::generate(&mut rng, &params(), 2, 0, 0.05);
        let a = truth.gpu_state(0, 123.456);
        let b = truth.gpu_state(0, 123.456);
        assert_eq!(a, b);
        assert!(a.is_valid());
    }

    /// Delegates `gpu_state` but hides the constant-span hint, forcing
    /// the sampler onto its tick-by-tick slow path.
    struct NoHint<'a>(&'a JobGroundTruth);

    impl MetricSource for NoHint<'_> {
        fn gpu_count(&self) -> u32 {
            self.0.gpu_count()
        }
        fn gpu_state(&self, gpu_index: u32, t: f64) -> GpuMetricSample {
            self.0.gpu_state(gpu_index, t)
        }
        fn cpu_state(&self, t: f64) -> CpuMetricSample {
            self.0.cpu_state(t)
        }
    }

    #[test]
    fn constant_span_fast_path_is_bit_identical() {
        // The fast path folds the same sample value through the same
        // aggregation loop, so series and aggregates must match the
        // slow path exactly — not approximately.
        for seed in [11u64, 12, 13] {
            let mut rng = StdRng::seed_from_u64(seed);
            let p = TruthParams {
                duration: 900.0,
                active_fraction: 0.5,
                spike_resources: vec![GpuResource::Sm, GpuResource::Memory],
                ..Default::default()
            };
            let truth = JobGroundTruth::generate(&mut rng, &p, 3, 1, 0.05);
            let sampler = GpuSampler::new();
            let fast = sampler.sample_series(&truth, 900.0);
            let slow = sampler.sample_series(&NoHint(&truth), 900.0);
            assert_eq!(fast, slow, "seed {seed}: series diverged");
            let fast_agg = sampler.sample_aggregates(&truth, 900.0);
            let slow_agg = sampler.sample_aggregates(&NoHint(&truth), 900.0);
            assert_eq!(fast_agg, slow_agg, "seed {seed}: aggregates diverged");
        }
    }

    #[test]
    fn constant_until_spans_respect_their_contract() {
        let mut rng = StdRng::seed_from_u64(14);
        let p = TruthParams {
            duration: 1200.0,
            spike_resources: vec![GpuResource::Sm],
            ..Default::default()
        };
        let truth = JobGroundTruth::generate(&mut rng, &p, 1, 0, 0.0);
        let g = &truth.gpus[0];
        let mut t = 0.0;
        while t < 1200.0 {
            match g.constant_until(t) {
                Some(end) => {
                    assert!(end > t, "span must advance past {t}");
                    let reference = g.state_at(t, &truth.power);
                    let probe = (end.min(1200.0) - t) * 0.37 + t;
                    assert_eq!(g.state_at(probe, &truth.power), reference);
                    t = end.min(1200.0).max(t + 0.05);
                }
                None => t += 0.05,
            }
        }
    }

    #[test]
    fn truncated_aggregates_use_partial_overlap() {
        let mut rng = StdRng::seed_from_u64(10);
        let truth = generate_gpu_truth(&mut rng, &params());
        let full = truth.analytic_aggregates(3600.0, &PowerModel::v100());
        let half = truth.analytic_aggregates(1800.0, &PowerModel::v100());
        // Means differ in general; bounds still respected.
        assert!(half.sm_util.max <= full.sm_util.max + 1e-9);
        assert!(half.sm_util.min >= 0.0);
    }
}
