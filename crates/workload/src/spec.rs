//! The calibrated workload specification.
//!
//! Every constant here is traceable to a number the paper reports; the
//! doc comment on each field cites it. [`WorkloadSpec::supercloud`] is
//! the 125-day Supercloud population; [`WorkloadSpec::philly`] is the
//! Microsoft Philly baseline used for the cross-system comparison
//! (Sec. V cites Jeon et al., reference 23 of the paper: "93% of the jobs are run on one GPU
//! and only 2.5% of the jobs run on more than four GPUs").

use serde::{Deserialize, Serialize};

/// Per-lifecycle-class calibration: run-time distribution and resource
/// behaviour (Secs. III and VI).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassSpec {
    /// Share of all GPU jobs in this class (Fig. 15a).
    pub job_share: f64,
    /// Median run time in minutes ("a median exploratory job (62
    /// minutes) runs longer than a median mature job (36 minutes)").
    pub runtime_median_min: f64,
    /// Log-space sigma of the lognormal run-time distribution.
    pub runtime_sigma: f64,
    /// Median SM utilization % during active phases (Fig. 16a: 21 / 15 /
    /// 0 / 0 for mature / exploratory / development / IDE).
    pub sm_median: f64,
    /// Concentration of the per-job SM-level beta draw (lower = more
    /// bathtub-shaped spread).
    pub sm_kappa: f64,
    /// Median memory-bandwidth utilization % (Fig. 16b; overall median
    /// 2%).
    pub mem_median: f64,
    /// Median memory-size utilization % (Fig. 16c; overall median 9%).
    pub mem_size_median: f64,
    /// Mean fraction of run time spent in active phases (Fig. 6a:
    /// overall median 84%, p25 14% — development/IDE jobs sit mostly
    /// idle).
    pub active_fraction_mean: f64,
    /// Beta concentration of the per-job active-fraction draw.
    pub active_fraction_kappa: f64,
}

/// The paper's four development life-cycle classes (Sec. VI, Fig. 15).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LifecycleClass {
    /// "Completed with a zero exit code" — around 60% of jobs.
    Mature,
    /// "Terminated by the user before completion as they deem the jobs
    /// to be suboptimal … (e.g., hyper-parameter tuning)" — about 18%.
    Exploratory,
    /// "Run while the algorithm is being developed and the code is being
    /// debugged" — about 19%.
    Development,
    /// "Interactive jobs that run for a long time and timeout" — 3.5%.
    Ide,
}

impl LifecycleClass {
    /// All classes in the paper's presentation order.
    pub const ALL: [LifecycleClass; 4] = [
        LifecycleClass::Mature,
        LifecycleClass::Exploratory,
        LifecycleClass::Development,
        LifecycleClass::Ide,
    ];

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            LifecycleClass::Mature => "mature",
            LifecycleClass::Exploratory => "exploratory",
            LifecycleClass::Development => "development",
            LifecycleClass::Ide => "IDE",
        }
    }
}

impl std::fmt::Display for LifecycleClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The hidden workload archetype behind a GPU job's telemetry shape.
///
/// The MIT Supercloud dataset spawned a workload-classification
/// challenge (Weiss et al., arXiv:2204.05839): infer what *kind* of
/// program produced a job's CPU/GPU/memory time series. The generator
/// mirrors that setup — each GPU job carries a hidden archetype that
/// shapes its phase skeleton (wave geometry and phase lengths only;
/// mean levels and active fractions stay on the paper's calibrated
/// class targets), and `sc-learn` tries to recover the label from the
/// sampled series alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadArchetype {
    /// CNN-style training: short, strongly periodic epochs — a
    /// pronounced utilization wave with a tens-of-seconds period.
    CnnPeriodic,
    /// Transformer-style training: long, flat utilization plateaus with
    /// barely any within-phase oscillation.
    TransformerPlateau,
    /// Interactive development / debugging: short bursts of activity
    /// with choppy, fast oscillation between them.
    BurstyDev,
    /// Idle-heavy notebook (IDE) sessions: the GPU sits near-idle in
    /// long flat stretches.
    IdleHeavy,
}

impl WorkloadArchetype {
    /// All archetypes, in presentation (and label-index) order.
    pub const ALL: [WorkloadArchetype; 4] = [
        WorkloadArchetype::CnnPeriodic,
        WorkloadArchetype::TransformerPlateau,
        WorkloadArchetype::BurstyDev,
        WorkloadArchetype::IdleHeavy,
    ];

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            WorkloadArchetype::CnnPeriodic => "cnn-periodic",
            WorkloadArchetype::TransformerPlateau => "transformer-plateau",
            WorkloadArchetype::BurstyDev => "bursty-dev",
            WorkloadArchetype::IdleHeavy => "idle-heavy",
        }
    }

    /// The archetype's index in [`WorkloadArchetype::ALL`].
    pub fn index(&self) -> usize {
        WorkloadArchetype::ALL.iter().position(|a| a == self).expect("archetype present in ALL")
    }
}

impl std::fmt::Display for WorkloadArchetype {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Multi-GPU size distribution (Fig. 13a): `(gpu_count, weight)` pairs.
pub type GpuCountMix = Vec<(u32, f64)>;

/// The shape of the job-arrival intensity over the trace window.
///
/// [`ArrivalProcess::Diurnal`] is the paper's calibrated process
/// (time-of-day rhythm times conference-deadline surges) and the
/// default everywhere; the other variants open the scenario space the
/// DSL needs — a memoryless baseline, periodic spike bursts, and
/// up-and-down load cycles in the spirit of the cloud-simulator
/// exemplar scenarios.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Homogeneous Poisson arrivals: constant intensity, no rhythm.
    Poisson,
    /// The calibrated non-homogeneous process: diurnal rhythm modulated
    /// by deadline surges ([`WorkloadSpec::diurnal_amplitude`],
    /// [`WorkloadSpec::deadline_surge_amplitude`],
    /// [`WorkloadSpec::deadline_days`]).
    #[default]
    Diurnal,
    /// Periodic spike bursts riding on a flat base load: every
    /// `period_days` the intensity ramps through a Gaussian bump of
    /// relative height `amplitude` and width `width_days`.
    Spikes {
        /// Days between successive spike centres (> 0).
        period_days: f64,
        /// Gaussian width of one spike, days (> 0).
        width_days: f64,
        /// Spike height relative to the base intensity (>= 0).
        amplitude: f64,
    },
    /// Alternating high/low load plateaus: the first half of every
    /// `period_days` cycle runs at full intensity, the second half at
    /// `low` times it — workload cycles with planned quiet windows.
    UpAndDown {
        /// Days per high+low cycle (> 0).
        period_days: f64,
        /// Relative intensity of the low plateau, in (0, 1].
        low: f64,
    },
}

impl ArrivalProcess {
    /// Short display label (`poisson`, `diurnal`, `spikes`,
    /// `up-and-down`).
    pub fn label(&self) -> &'static str {
        match self {
            ArrivalProcess::Poisson => "poisson",
            ArrivalProcess::Diurnal => "diurnal",
            ArrivalProcess::Spikes { .. } => "spikes",
            ArrivalProcess::UpAndDown { .. } => "up-and-down",
        }
    }
}

/// The complete generative specification of one cluster's workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Human-readable name ("supercloud", "philly").
    pub name: String,
    /// Trace length in days (125 in the paper).
    pub duration_days: f64,
    /// Unique users (191 in the paper).
    pub users: usize,
    /// Total jobs across the trace, CPU jobs included (74,820).
    pub total_jobs: usize,
    /// Fraction of jobs that are GPU jobs before the 30 s filter.
    /// The paper's funnel (74,820 total, 47,120 analyzed GPU jobs plus
    /// filtered short GPU jobs) implies roughly 68%.
    pub gpu_job_fraction: f64,
    /// Fraction of GPU jobs shorter than 30 s ("no activity is observed
    /// for these very short jobs"); they exist in the trace and are
    /// dropped by the dataset filter.
    pub short_gpu_job_fraction: f64,
    /// Log-space sigma of the lognormal user-activity weights. The
    /// paper's concentration pair (top 5% submit 44%, top 20% submit
    /// 83.2%) is flatter at the very top than any Pareto; a lognormal
    /// with sigma ≈ 1.65 interpolates both.
    pub user_activity_log_sigma: f64,
    /// Dirichlet-like concentration of per-user lifecycle mixes around
    /// the global mix. Small values give the extreme user heterogeneity
    /// of Fig. 17 (">50% of users have <40% mature jobs").
    pub user_mix_concentration: f64,
    /// Log-space sigma of the per-user run-time scale multiplier
    /// (drives the per-user averages spread of Fig. 10).
    pub user_runtime_scale_sigma: f64,
    /// Strength of the expert-skill → utilization link (drives the
    /// positive Spearman correlations of Fig. 12).
    pub skill_utilization_gain: f64,
    /// Per-class calibration, indexed by [`LifecycleClass::ALL`] order.
    pub classes: [ClassSpec; 4],
    /// Interface shares for jobs *not* forced to interactive
    /// (map-reduce, batch, other); IDE jobs always use the interactive
    /// interface and a thin slice of completing interactive jobs is
    /// added to reach the 4% interactive share of Sec. III.
    pub interface_weights: [f64; 3],
    /// Fraction of non-IDE jobs submitted interactively (completing
    /// notebook sessions). 0.5% closes the gap between the 4% interactive
    /// share and the 3.5% IDE share.
    pub interactive_non_ide_fraction: f64,
    /// GPU-count *draw* weights, applied before clamping to the user's
    /// [`WorkloadSpec::user_gpu_ceiling_weights`] tier. Multi-GPU draws
    /// are deliberately over-weighted because clamping by the (mostly
    /// single-GPU) user population pushes the realized mix back onto
    /// Fig. 13a's 84% single-GPU / ~2.4% above-two-GPU shares.
    pub gpu_count_mix: GpuCountMix,
    /// Per-user largest-job tier: `(ceiling, weight)`. Calibrated to
    /// Sec. V's user statistics: 60% of users run at least one
    /// multi-GPU job, 13% reach three GPUs, 5.2% reach nine or more.
    pub user_gpu_ceiling_weights: Vec<(u32, f64)>,
    /// Extra log-space sigma added to multi-GPU job run times. Medians
    /// stay comparable (Sec. V: "no significant difference") while the
    /// heavier tail lets multi-GPU jobs reach ≈50% of all GPU hours
    /// (Fig. 13b).
    pub multi_gpu_runtime_sigma_boost: f64,
    /// Probability that a multi-GPU job leaves half or more of its GPUs
    /// idle (Fig. 14: "about 40% of the jobs experience very high CoV …
    /// because these jobs have half or more of their GPUs idle").
    pub multi_gpu_idle_probability: f64,
    /// CPU-job run-time median in minutes (Fig. 3a: 8 minutes).
    pub cpu_runtime_median_min: f64,
    /// CPU-job run-time lognormal sigma.
    pub cpu_runtime_sigma: f64,
    /// Mean number of jobs per CPU submission burst. CPU workloads
    /// arrive as campaign bursts (map-reduce arrays, parameter sweeps),
    /// which combined with their full-node requests produces the longer
    /// queue waits of Fig. 3b.
    pub cpu_burst_mean: f64,
    /// IDE/interactive wall-clock limits in hours ("the timeout limit is
    /// 12 hours or 24 hours, depending on the requested amount").
    pub ide_timeout_hours: [f64; 2],
    /// Probability a job is killed by a hardware failure ("less than
    /// 0.5% job failures", Sec. II).
    pub hardware_failure_probability: f64,
    /// Relative amplitude of the diurnal arrival modulation.
    pub diurnal_amplitude: f64,
    /// Relative surge in arrivals near conference deadlines ("usage of
    /// the system often increases closer to the deadlines of popular
    /// deep learning conferences like ICML and NeurIPS").
    pub deadline_surge_amplitude: f64,
    /// Days (since trace start) of conference deadlines within the
    /// 125-day window.
    pub deadline_days: Vec<f64>,
    /// Shape of the arrival intensity. [`ArrivalProcess::Diurnal`]
    /// reproduces the paper's calibrated process exactly; the other
    /// variants are scenario-DSL extensions.
    pub arrival_process: ArrivalProcess,
}

impl WorkloadSpec {
    /// The calibrated MIT Supercloud population of the paper.
    pub fn supercloud() -> Self {
        WorkloadSpec {
            name: "supercloud".to_string(),
            duration_days: 125.0,
            users: 191,
            total_jobs: 74_820,
            gpu_job_fraction: 0.68,
            short_gpu_job_fraction: 0.074,
            // Solved from "top 20% submit 83.2%": alpha ≈ 1.13.
            user_activity_log_sigma: 1.65,
            user_mix_concentration: 1.1,
            user_runtime_scale_sigma: 0.9,
            skill_utilization_gain: 0.65,
            classes: [
                // Mature: 60% of jobs, median 36 min.
                ClassSpec {
                    job_share: 0.595,
                    runtime_median_min: 36.0,
                    runtime_sigma: 1.62,
                    sm_median: 22.0,
                    sm_kappa: 1.1,
                    mem_median: 3.0,
                    mem_size_median: 12.0,
                    active_fraction_mean: 0.86,
                    active_fraction_kappa: 3.0,
                },
                // Exploratory: 18%, median 62 min.
                ClassSpec {
                    job_share: 0.18,
                    runtime_median_min: 62.0,
                    runtime_sigma: 2.55,
                    sm_median: 16.0,
                    sm_kappa: 1.2,
                    mem_median: 2.2,
                    mem_size_median: 10.0,
                    active_fraction_mean: 0.82,
                    active_fraction_kappa: 3.0,
                },
                // Development: 19%, short debug runs, near-zero
                // utilization (Fig. 16 median SM 0%).
                ClassSpec {
                    job_share: 0.19,
                    runtime_median_min: 5.0,
                    runtime_sigma: 2.4,
                    sm_median: 0.8,
                    sm_kappa: 0.6,
                    mem_median: 0.3,
                    mem_size_median: 2.0,
                    active_fraction_mean: 0.10,
                    active_fraction_kappa: 1.2,
                },
                // IDE: 3.5%, runs to the 12/24 h timeout, idle GPUs
                // (Fig. 16: even the p75 SM utilization is 0%).
                ClassSpec {
                    job_share: 0.035,
                    runtime_median_min: 720.0, // superseded by timeout
                    runtime_sigma: 0.0,
                    sm_median: 0.35,
                    sm_kappa: 0.5,
                    mem_median: 0.15,
                    mem_size_median: 1.5,
                    active_fraction_mean: 0.04,
                    active_fraction_kappa: 1.0,
                },
            ],
            // map-reduce : batch : other among non-interactive jobs,
            // scaled so the global mix lands on 1% / 30% / 65%.
            interface_weights: [1.0, 30.0, 65.0],
            interactive_non_ide_fraction: 0.005,
            gpu_count_mix: vec![
                (1, 116.0),
                (2, 13.0),
                (3, 2.4),
                (4, 3.6),
                (6, 2.4),
                (8, 2.4),
                (9, 1.35),
                (12, 1.95),
                (16, 1.95),
                (24, 1.35),
                (32, 0.68),
            ],
            user_gpu_ceiling_weights: vec![(1, 0.40), (2, 0.47), (8, 0.078), (32, 0.052)],
            multi_gpu_runtime_sigma_boost: 1.1,
            multi_gpu_idle_probability: 0.45,
            cpu_runtime_median_min: 8.0,
            cpu_runtime_sigma: 1.9,
            cpu_burst_mean: 500.0,
            ide_timeout_hours: [12.0, 24.0],
            hardware_failure_probability: 0.004,
            diurnal_amplitude: 0.55,
            deadline_surge_amplitude: 1.1,
            // ICML-like and NeurIPS-like deadlines inside the window.
            deadline_days: vec![28.0, 97.0],
            arrival_process: ArrivalProcess::Diurnal,
        }
    }

    /// The Microsoft Philly baseline (Jeon et al., reference 23 of the paper), used to
    /// reproduce the paper's cross-system comparison: more single-GPU
    /// jobs (93%), almost no interactive/IDE load, and long queue waits
    /// driven by exclusive scheduling of a saturated cluster.
    pub fn philly() -> Self {
        let mut spec = WorkloadSpec::supercloud();
        spec.name = "philly".to_string();
        // "On Microsoft's Philly clusters, 93% of the jobs are run on one
        // GPU and only 2.5% of the jobs run on more than four GPUs."
        spec.gpu_count_mix = vec![(1, 88.0), (2, 4.0), (4, 3.0), (8, 3.0), (16, 1.3), (32, 0.7)];
        // Philly's DNN-training users scale out more readily.
        spec.user_gpu_ceiling_weights = vec![(1, 0.25), (2, 0.25), (8, 0.25), (32, 0.25)];
        // Philly is a batch DNN-training cluster: no IDE tier, a larger
        // mature share, and higher average utilization.
        spec.classes[0].job_share = 0.70;
        spec.classes[1].job_share = 0.20;
        spec.classes[2].job_share = 0.095;
        spec.classes[3].job_share = 0.005;
        spec.interactive_non_ide_fraction = 0.001;
        spec.gpu_job_fraction = 0.95;
        spec
    }

    /// Scales the population by `factor` (jobs and users), keeping
    /// every distributional parameter — for fast tests, examples, and
    /// large-scale stress runs.
    ///
    /// Factors above 1 also extend the trace window proportionally, so
    /// arrival intensity — and with it cluster contention — stays in
    /// the calibrated regime while the job population grows (a longer
    /// campaign, not an overloaded cluster).
    ///
    /// # Panics
    ///
    /// Panics unless `factor` is positive and finite.
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(factor > 0.0 && factor.is_finite(), "factor must be positive and finite");
        self.total_jobs = ((self.total_jobs as f64 * factor).round() as usize).max(50);
        self.users = ((self.users as f64 * factor).round() as usize).max(8);
        if factor > 1.0 {
            self.duration_days *= factor;
        }
        self
    }

    /// The class spec for a lifecycle class.
    pub fn class(&self, class: LifecycleClass) -> &ClassSpec {
        let idx =
            LifecycleClass::ALL.iter().position(|c| *c == class).expect("class present in ALL");
        &self.classes[idx]
    }

    /// Global lifecycle shares, normalized.
    pub fn class_shares(&self) -> [f64; 4] {
        let total: f64 = self.classes.iter().map(|c| c.job_share).sum();
        [
            self.classes[0].job_share / total,
            self.classes[1].job_share / total,
            self.classes[2].job_share / total,
            self.classes[3].job_share / total,
        ]
    }

    /// Trace duration in seconds.
    pub fn duration_secs(&self) -> f64 {
        self.duration_days * 86_400.0
    }

    /// Expected number of GPU jobs (before the 30 s filter).
    pub fn expected_gpu_jobs(&self) -> usize {
        (self.total_jobs as f64 * self.gpu_job_fraction).round() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn supercloud_class_shares_match_paper() {
        let spec = WorkloadSpec::supercloud();
        let shares = spec.class_shares();
        assert!((shares[0] - 0.595).abs() < 0.01, "mature {}", shares[0]);
        assert!((shares[1] - 0.18).abs() < 0.01);
        assert!((shares[2] - 0.19).abs() < 0.01);
        assert!((shares[3] - 0.035).abs() < 0.005);
        let total: f64 = shares.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn gpu_count_draw_weights_are_sane() {
        // The *realized* (post-ceiling) mix is asserted in the job
        // factory tests; here we sanity-check the draw table itself.
        let spec = WorkloadSpec::supercloud();
        let total: f64 = spec.gpu_count_mix.iter().map(|(_, w)| w).sum();
        assert!(total > 0.0);
        let single = spec.gpu_count_mix.iter().find(|(g, _)| *g == 1).unwrap().1 / total;
        assert!(single > 0.6, "single-GPU draw weight {single}");
        // Multi-GPU draws are over-weighted relative to the realized 16%.
        assert!(1.0 - single > 0.16);
    }

    #[test]
    fn user_ceiling_weights_match_sec5_user_stats() {
        let spec = WorkloadSpec::supercloud();
        let total: f64 = spec.user_gpu_ceiling_weights.iter().map(|(_, w)| w).sum();
        let frac = |pred: fn(u32) -> bool| -> f64 {
            spec.user_gpu_ceiling_weights
                .iter()
                .filter(|(c, _)| pred(*c))
                .map(|(_, w)| w / total)
                .sum()
        };
        // 60% of users can run multi-GPU, 13% reach 3+, 5.2% reach 9+.
        assert!((frac(|c| c >= 2) - 0.60).abs() < 0.01);
        assert!((frac(|c| c >= 3) - 0.13).abs() < 0.01);
        assert!((frac(|c| c >= 9) - 0.052).abs() < 0.005);
    }

    #[test]
    fn philly_draws_skew_single_gpu() {
        let spec = WorkloadSpec::philly();
        let total: f64 = spec.gpu_count_mix.iter().map(|(_, w)| w).sum();
        let single = spec.gpu_count_mix.iter().find(|(g, _)| *g == 1).unwrap().1 / total;
        assert!(single > 0.85, "philly single-GPU draw weight {single}");
    }

    #[test]
    fn scaled_preserves_parameters() {
        let spec = WorkloadSpec::supercloud().scaled(0.01);
        assert_eq!(spec.total_jobs, 748);
        assert!(spec.users >= 2);
        assert_eq!(spec.classes[0].runtime_median_min, 36.0);
    }

    #[test]
    #[should_panic(expected = "factor must be positive and finite")]
    fn scaled_rejects_bad_factor() {
        let _ = WorkloadSpec::supercloud().scaled(0.0);
    }

    #[test]
    fn scaled_up_extends_the_window_at_constant_intensity() {
        let base = WorkloadSpec::supercloud();
        let spec = WorkloadSpec::supercloud().scaled(13.366);
        assert_eq!(spec.total_jobs, 1_000_044);
        assert_eq!(spec.users, 2_553);
        let base_rate = base.total_jobs as f64 / base.duration_days;
        let rate = spec.total_jobs as f64 / spec.duration_days;
        assert!((rate / base_rate - 1.0).abs() < 1e-3, "arrival intensity drifted: {rate}");
        assert_eq!(spec.classes[0].runtime_median_min, 36.0);
    }

    #[test]
    fn class_lookup() {
        let spec = WorkloadSpec::supercloud();
        assert_eq!(spec.class(LifecycleClass::Mature).runtime_median_min, 36.0);
        assert_eq!(spec.class(LifecycleClass::Ide).job_share, 0.035);
        assert_eq!(LifecycleClass::Ide.to_string(), "IDE");
    }
}
