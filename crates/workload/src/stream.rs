//! Streaming producer for the detailed-telemetry pipeline.
//!
//! [`JobGroundTruth::stream_util3`] walks a job's ground truth tick by
//! tick and pushes the **job-level** `[sm, mem, mem_size]` utilization
//! triple of every 100 ms sample into a [`Util3Sink`] — the exact
//! values the batch path obtained by materializing the per-GPU
//! [`GpuTimeSeries`](sc_telemetry::sampler::GpuTimeSeries) and
//! averaging across GPUs, but computed in one pass with `O(#GPUs)`
//! state.
//!
//! Two structural facts make this fast without changing a single bit:
//!
//! 1. **Shared phase skeletons.** [`JobGroundTruth::generate`] clones
//!    one reference process across the job's active GPUs, scaling only
//!    the base levels; phase boundaries, wave periods, wave shifts and
//!    spike schedules are identical. All eight `sin` evaluations the
//!    batch sampler performed per tick per GPU therefore evaluate the
//!    sine of the *same angle* — one `sin` per skeleton per tick
//!    serves every member GPU. GPUs that do not share structure (idle
//!    GPUs, hand-built truths) simply form one-member skeletons, so
//!    the walk is exact for arbitrary inputs.
//! 2. **Constant spans.** Idle phases and flat active phases (no wave
//!    amplitude on any member) hold a constant triple between spike
//!    boundaries; those spans are forwarded through
//!    [`Util3Sink::push_run`] in one call, using the same strict
//!    `k * period < end` tick arithmetic as the batch sampler's fast
//!    path.
//!
//! Per-member levels go through the same [`Phase::amplitude`] /
//! clamp arithmetic as [`Phase::level_at`], in the same operation
//! order, so every pushed value is the f64 the batch sampler produced.
//! The workload crate's tests assert bit equality against
//! `sample_series` + `phase_stats` + `active_variability` across
//! seeds, GPU mixes, spikes, and duration edge cases.

use crate::truth::{JobGroundTruth, Phase, Spike};
use sc_telemetry::metrics::GpuResource;
use sc_telemetry::sampler::tick_count;
use sc_telemetry::stream::Util3Sink;

/// One GPU inside a skeleton: its own per-phase levels, with the
/// current phase's base levels and wave amplitudes cached.
struct Member<'a> {
    /// Index into the job's GPU list (job-level averaging is in
    /// ascending GPU order, so the output slot matters).
    gpu: usize,
    phases: &'a [Phase],
    base: [f64; 3],
    amp: [f64; 3],
}

/// A group of GPUs sharing one phase structure (boundaries, waves,
/// spikes), walked with a single cursor and a single `sin` per tick.
struct Skeleton<'a> {
    /// Structure source (the first member's phases).
    phases: &'a [Phase],
    members: Vec<Member<'a>>,
    /// Current phase index; advances monotonically with `t`.
    pi: usize,
    // Caches for `phases[pi]`:
    active: bool,
    start: f64,
    /// Phase end, or `+inf` on the last phase (`phase_at` clamps past
    /// the covered range, so the final state extends forever).
    end: f64,
    wave_period: f64,
    wave_shift: f64,
    spikes: &'a [Spike],
    /// Whether any member has a non-zero utilization wave amplitude in
    /// the current phase — the only case that needs a `sin`.
    any_wave: bool,
    /// Whether this skeleton needs a per-tick evaluation in the current
    /// sub-span (set by [`Skeleton::prepare_span`]). Constant skeletons
    /// have their member values written once into the shared slots.
    waving: bool,
}

/// The three streamed resources, in output order.
const UTIL3: [GpuResource; 3] = [GpuResource::Sm, GpuResource::Memory, GpuResource::MemorySize];

/// Whether two phase lists share structure: equal boundaries, activity,
/// wave geometry and spike schedules (base levels are free — they stay
/// per-member).
fn same_structure(a: &[Phase], b: &[Phase]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.start == y.start
                && x.len == y.len
                && x.active == y.active
                && x.wave_period == y.wave_period
                && x.wave_shift == y.wave_shift
                && x.spikes == y.spikes
        })
}

impl<'a> Skeleton<'a> {
    fn new(phases: &'a [Phase], gpu: usize) -> Self {
        Skeleton {
            phases,
            members: vec![Member { gpu, phases, base: [0.0; 3], amp: [0.0; 3] }],
            pi: 0,
            active: false,
            start: 0.0,
            end: 0.0,
            wave_period: 1.0,
            wave_shift: 0.0,
            spikes: &[],
            any_wave: false,
            waving: false,
        }
    }

    /// Recomputes the phase caches after `pi` changed.
    fn refresh(&mut self) {
        let ph = &self.phases[self.pi];
        self.active = ph.active;
        self.start = ph.start;
        self.end = if self.pi + 1 == self.phases.len() { f64::INFINITY } else { ph.end() };
        self.wave_period = ph.wave_period;
        self.wave_shift = ph.wave_shift;
        self.spikes = &ph.spikes;
        let mut any_wave = false;
        for m in &mut self.members {
            let mp = &m.phases[self.pi];
            m.base = [mp.levels.sm, mp.levels.mem, mp.levels.mem_size];
            for (j, r) in UTIL3.iter().enumerate() {
                m.amp[j] = mp.amplitude(*r);
                any_wave |= m.amp[j] != 0.0;
            }
        }
        self.any_wave = any_wave;
    }

    /// Advances the cursor to the phase containing `t` (monotone `t`
    /// makes this equivalent to the batch path's binary search, which
    /// clamps past the last phase).
    fn advance_to(&mut self, t: f64) {
        let mut moved = false;
        while self.pi + 1 < self.phases.len() && self.phases[self.pi].end() <= t {
            self.pi += 1;
            moved = true;
        }
        if moved {
            self.refresh();
        }
    }

    /// Spike mask for the three streamed resources at time `t`.
    fn spike_mask(&self, rel: f64) -> [bool; 3] {
        let mut mask = [false; 3];
        for s in self.spikes {
            if rel >= s.offset && rel < s.offset + s.len {
                match s.resource {
                    GpuResource::Sm => mask[0] = true,
                    GpuResource::Memory => mask[1] = true,
                    GpuResource::MemorySize => mask[2] = true,
                    _ => {}
                }
            }
        }
        mask
    }

    /// Prepares the skeleton for the sub-span starting at `t` and
    /// returns the span end (`> t`, absolute time) up to which its
    /// prepared state is valid:
    ///
    /// - Idle phases are constant until the phase ends: member slots in
    ///   `vals` are written once (zeros) and `true` is returned.
    /// - Flat active phases (no member wave) are constant until the
    ///   phase ends or the next utilization spike boundary: member
    ///   slots are written once and `true` is returned.
    /// - Waving phases return `false`; the caller evaluates every tick
    ///   via [`Skeleton::eval_wave`] until the phase ends.
    ///
    /// Values match [`Phase::level_at`] bit for bit: `100.0` under a
    /// spike, the unclamped base when the amplitude is zero.
    fn prepare_span(&mut self, t: f64, vals: &mut [[f64; 3]]) -> (f64, bool) {
        if !self.active {
            self.waving = false;
            for m in &self.members {
                vals[m.gpu] = [0.0; 3];
            }
            return (self.end, true);
        }
        if self.any_wave {
            self.waving = true;
            return (self.end, false);
        }
        self.waving = false;
        let rel = t - self.start;
        let mask = self.spike_mask(rel);
        let mut end = self.end;
        for s in self.spikes {
            if matches!(s.resource, GpuResource::Sm | GpuResource::Memory | GpuResource::MemorySize)
            {
                for b in [s.offset, s.offset + s.len] {
                    if b > rel {
                        end = end.min(self.start + b);
                    }
                }
            }
        }
        for m in &self.members {
            let mut v = [0.0; 3];
            for j in 0..3 {
                v[j] = if mask[j] { 100.0 } else { m.base[j] };
            }
            vals[m.gpu] = v;
        }
        (end, true)
    }

    /// Writes every member's `[sm, mem, mem_size]` sample at time `t`
    /// into its GPU slot — the same arithmetic, in the same order, as
    /// [`Phase::level_at`], with the sine evaluated once. Only called
    /// while [`Skeleton::waving`], so the phase caches are valid and a
    /// wave is running; the spike mask is re-derived per tick exactly
    /// like the batch path.
    fn eval_wave(&self, t: f64, vals: &mut [[f64; 3]]) {
        let rel = t - self.start;
        let mask = self.spike_mask(rel);
        let angle = 2.0 * std::f64::consts::PI * rel / self.wave_period + self.wave_shift;
        let sin = angle.sin();
        for m in &self.members {
            let mut v = [0.0; 3];
            for j in 0..3 {
                v[j] = if mask[j] {
                    100.0
                } else if m.amp[j] == 0.0 {
                    m.base[j]
                } else {
                    (m.base[j] + m.amp[j] * sin).clamp(0.0, 100.0)
                };
            }
            vals[m.gpu] = v;
        }
    }
}

impl JobGroundTruth {
    /// Streams the job-level `[sm, mem, mem_size]` triple of every
    /// sampler tick over `[0, duration)` into `sink`, in tick order.
    ///
    /// Produces exactly the triples of
    /// `GpuSampler::with_period(period_secs).sample_series(self, duration)`
    /// reduced by `job_level_series` — bit for bit — without
    /// materializing the series: ticks follow the same strict
    /// `k * period < duration` contract, constant spans go through
    /// [`Util3Sink::push_run`], and per-tick values reuse one sine per
    /// shared phase skeleton.
    pub fn stream_util3<S: Util3Sink>(&self, duration: f64, period_secs: f64, sink: &mut S) {
        let n = tick_count(duration, period_secs);
        if n == 0 || self.gpus.is_empty() {
            return;
        }
        let mut skeletons: Vec<Skeleton<'_>> = Vec::new();
        for (gi, gpu) in self.gpus.iter().enumerate() {
            let phases = gpu.phases();
            match skeletons.iter_mut().find(|s| same_structure(s.phases, phases)) {
                Some(s) => {
                    s.members.push(Member { gpu: gi, phases, base: [0.0; 3], amp: [0.0; 3] })
                }
                None => skeletons.push(Skeleton::new(phases, gi)),
            }
        }
        for s in &mut skeletons {
            s.refresh();
        }
        let g = self.gpus.len() as f64;
        // When the GPU count is a power of two, dividing by it and
        // multiplying by its (exact) reciprocal are both the correctly
        // rounded result of the same real number — bit-identical — and
        // the multiply is several cycles cheaper per tick.
        let inv_g = self.gpus.len().is_power_of_two().then(|| 1.0 / g);
        let scale = move |sum: f64| match inv_g {
            Some(r) => sum * r,
            None => sum / g,
        };
        let mut vals = vec![[0.0f64; 3]; self.gpus.len()];
        let mut k = 0usize;
        while k < n {
            let t = k as f64 * period_secs;
            let mut constant = true;
            let mut span = f64::INFINITY;
            for s in &mut skeletons {
                s.advance_to(t);
                let (end, c) = s.prepare_span(t, &mut vals);
                span = span.min(end);
                constant &= c;
            }
            // Ticks covered by the sub-span — every tick strictly
            // before `span`: replicate the batch fast path's
            // `while k < n && k * period < end` exactly (the float
            // estimate is corrected against the defining inequality in
            // both directions). Spans end strictly after `t`, so
            // `kb > k` and the walk always progresses.
            let kb = if span.is_finite() {
                let mut j = ((span / period_secs).ceil() as usize).clamp(k + 1, n);
                while j > k + 1 && ((j - 1) as f64) * period_secs >= span {
                    j -= 1;
                }
                while j < n && (j as f64) * period_secs < span {
                    j += 1;
                }
                j
            } else {
                n
            };
            if constant {
                // All member slots were written by `prepare_span`.
                sink.push_run(job_level(&vals, scale), kb - k);
            } else if skeletons.len() == 1 {
                // One skeleton covering every GPU — the dominant case.
                // Fold member values straight into the job-level sums
                // (members are in ascending GPU order, so each metric's
                // chain is the exact `job_level_series` fold) without
                // the `vals` round trip.
                //
                // Whether any utilization spike can fire inside the
                // sub-span is decided up front: the per-tick `rel` is
                // monotone nondecreasing in the tick index (subtraction
                // and rounding are both monotone), so comparing the
                // first and last tick's `rel` against each spike window
                // is exact — every tick the per-tick test would mask is
                // inside `[rel_first, rel_last]`. Spans without spikes
                // (almost all of them) then skip the mask entirely.
                let s = &skeletons[0];
                let rel_first = (k as f64) * period_secs - s.start;
                let rel_last = ((kb - 1) as f64) * period_secs - s.start;
                let masked = s.spikes.iter().any(|sp| {
                    matches!(
                        sp.resource,
                        GpuResource::Sm | GpuResource::Memory | GpuResource::MemorySize
                    ) && sp.offset <= rel_last
                        && sp.offset + sp.len > rel_first
                });
                if !masked {
                    if let [m] = s.members.as_slice() {
                        // Single GPU, no spikes: everything hoisted into
                        // locals. The job-level fold for one member is
                        // `0.0 + v` and no value here is `-0.0`, so
                        // pushing `v` directly is bit-identical.
                        let [b0, b1, b2] = m.base;
                        let [a0, a1, a2] = m.amp;
                        for kk in k..kb {
                            let t = kk as f64 * period_secs;
                            let rel = t - s.start;
                            let angle =
                                2.0 * std::f64::consts::PI * rel / s.wave_period + s.wave_shift;
                            let sin = angle.sin();
                            let v0 = if a0 == 0.0 { b0 } else { (b0 + a0 * sin).clamp(0.0, 100.0) };
                            let v1 = if a1 == 0.0 { b1 } else { (b1 + a1 * sin).clamp(0.0, 100.0) };
                            let v2 = if a2 == 0.0 { b2 } else { (b2 + a2 * sin).clamp(0.0, 100.0) };
                            sink.push([scale(v0), scale(v1), scale(v2)]);
                        }
                    } else {
                        for kk in k..kb {
                            let t = kk as f64 * period_secs;
                            let rel = t - s.start;
                            let angle =
                                2.0 * std::f64::consts::PI * rel / s.wave_period + s.wave_shift;
                            let sin = angle.sin();
                            let mut sum = [0.0f64; 3];
                            for m in &s.members {
                                for (j, sum_j) in sum.iter_mut().enumerate() {
                                    *sum_j += if m.amp[j] == 0.0 {
                                        m.base[j]
                                    } else {
                                        (m.base[j] + m.amp[j] * sin).clamp(0.0, 100.0)
                                    };
                                }
                            }
                            sink.push([scale(sum[0]), scale(sum[1]), scale(sum[2])]);
                        }
                    }
                    k = kb;
                    continue;
                }
                for kk in k..kb {
                    let t = kk as f64 * period_secs;
                    let rel = t - s.start;
                    let mask = s.spike_mask(rel);
                    let angle = 2.0 * std::f64::consts::PI * rel / s.wave_period + s.wave_shift;
                    let sin = angle.sin();
                    let mut sum = [0.0f64; 3];
                    for m in &s.members {
                        for j in 0..3 {
                            sum[j] += if mask[j] {
                                100.0
                            } else if m.amp[j] == 0.0 {
                                m.base[j]
                            } else {
                                (m.base[j] + m.amp[j] * sin).clamp(0.0, 100.0)
                            };
                        }
                    }
                    sink.push([scale(sum[0]), scale(sum[1]), scale(sum[2])]);
                }
            } else {
                // Waving skeletons re-evaluate per tick; constant ones
                // keep the slots `prepare_span` filled. No phase ends
                // before `span`, so the per-tick phase search of the
                // batch path is hoisted out of the loop.
                for kk in k..kb {
                    let t = kk as f64 * period_secs;
                    for s in &skeletons {
                        if s.waving {
                            s.eval_wave(t, &mut vals);
                        }
                    }
                    sink.push(job_level(&vals, scale));
                }
            }
            k = kb;
        }
    }
}

/// Job-level averaging in ascending GPU order — the exact fold of
/// `job_level_series` (a sequential sum from 0.0 scaled by the GPU
/// count).
#[inline]
fn job_level(vals: &[[f64; 3]], scale: impl Fn(f64) -> f64) -> [f64; 3] {
    let mut triple = [0.0f64; 3];
    for (j, out) in triple.iter_mut().enumerate() {
        let mut sum = 0.0f64;
        for v in vals {
            sum += v[j];
        }
        *out = scale(sum);
    }
    triple
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::PowerModel;
    use crate::truth::{generate_gpu_truth, GpuGroundTruth, ResourceLevels, TruthParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sc_telemetry::phases::{active_variability, phase_stats};
    use sc_telemetry::sampler::GpuSampler;
    use sc_telemetry::stream::stream_detail;

    /// Collects every pushed triple, expanding runs — the literal
    /// job-level series.
    struct VecSink(Vec<[f64; 3]>);

    impl Util3Sink for VecSink {
        fn push(&mut self, v: [f64; 3]) {
            self.0.push(v);
        }
    }

    fn batch_triples(truth: &JobGroundTruth, duration: f64, period: f64) -> Vec<[f64; 3]> {
        let series = GpuSampler::with_period(period).sample_series(truth, duration);
        let sm = series.job_level_series(|s| s.sm_util);
        let mem = series.job_level_series(|s| s.mem_util);
        let msize = series.job_level_series(|s| s.mem_size_util);
        (0..series.len()).map(|k| [sm[k], mem[k], msize[k]]).collect()
    }

    fn assert_stream_matches_batch(truth: &JobGroundTruth, duration: f64, period: f64, tag: &str) {
        let mut sink = VecSink(Vec::new());
        truth.stream_util3(duration, period, &mut sink);
        let batch = batch_triples(truth, duration, period);
        assert_eq!(sink.0.len(), batch.len(), "{tag}: tick count diverged");
        for (k, (s, b)) in sink.0.iter().zip(&batch).enumerate() {
            assert_eq!(s, b, "{tag}: tick {k} diverged (bit equality required)");
        }
    }

    #[test]
    fn stream_is_bit_identical_to_batch_series() {
        for seed in [3u64, 7, 21, 42] {
            let mut rng = StdRng::seed_from_u64(seed);
            let p = TruthParams {
                duration: 900.0,
                active_fraction: 0.5,
                spike_resources: vec![GpuResource::Sm, GpuResource::Memory],
                ..Default::default()
            };
            let truth = JobGroundTruth::generate(&mut rng, &p, 3, 1, 0.05);
            assert_stream_matches_batch(&truth, 900.0, 0.1, &format!("seed {seed}"));
        }
    }

    #[test]
    fn stream_matches_batch_across_gpu_mixes() {
        for (gpus, idle, jitter) in [(1u32, 0u32, 0.0), (2, 0, 0.3), (4, 2, 0.05), (8, 7, 0.1)] {
            let mut rng = StdRng::seed_from_u64(1000 + gpus as u64);
            let p = TruthParams { duration: 600.0, ..Default::default() };
            let truth = JobGroundTruth::generate(&mut rng, &p, gpus, idle, jitter);
            assert_stream_matches_batch(&truth, 600.0, 0.1, &format!("gpus {gpus} idle {idle}"));
        }
    }

    #[test]
    fn stream_matches_batch_on_duration_edge_cases() {
        let mut rng = StdRng::seed_from_u64(5);
        let p = TruthParams { duration: 400.0, ..Default::default() };
        let truth = JobGroundTruth::generate(&mut rng, &p, 2, 0, 0.1);
        // An inexact tick multiple (3.0 * 0.1 != 0.3 exactly), a
        // sub-tick duration, a truncated run, and a run past the truth's
        // covered range (phase_at clamps to the final phase).
        for duration in [3.0 * 0.1, 0.05, 137.77, 400.0, 550.0] {
            assert_stream_matches_batch(&truth, duration, 0.1, &format!("duration {duration}"));
        }
        // Zero-duration runs stream nothing, like the batch sampler.
        let mut sink = VecSink(Vec::new());
        truth.stream_util3(0.0, 0.1, &mut sink);
        assert!(sink.0.is_empty());
    }

    #[test]
    fn stream_matches_batch_on_non_generated_truths() {
        // Hand-built truths exercise the no-shared-skeleton path: a
        // fully idle job and a job whose GPUs have unrelated phases.
        let idle = JobGroundTruth {
            gpus: vec![GpuGroundTruth::idle(120.0), GpuGroundTruth::idle(120.0)],
            power: PowerModel::v100(),
            cpu_util: 10.0,
        };
        assert_stream_matches_batch(&idle, 120.0, 0.1, "all idle");

        let mut rng_a = StdRng::seed_from_u64(11);
        let mut rng_b = StdRng::seed_from_u64(99);
        let p = TruthParams {
            duration: 300.0,
            spike_resources: vec![GpuResource::MemorySize, GpuResource::PcieTx],
            ..Default::default()
        };
        let unrelated = JobGroundTruth {
            gpus: vec![generate_gpu_truth(&mut rng_a, &p), generate_gpu_truth(&mut rng_b, &p)],
            power: PowerModel::v100(),
            cpu_util: 10.0,
        };
        assert_stream_matches_batch(&unrelated, 300.0, 0.1, "unrelated structures");
    }

    #[test]
    fn stream_matches_batch_with_flat_levels() {
        // wave_frac 0 makes every active phase flat: the whole job
        // should stream as constant spans and still match.
        let mut rng = StdRng::seed_from_u64(17);
        let p = TruthParams {
            duration: 500.0,
            wave_frac: 0.0,
            spike_resources: vec![GpuResource::Sm],
            ..Default::default()
        };
        let truth = JobGroundTruth::generate(&mut rng, &p, 2, 0, 0.2);
        assert_stream_matches_batch(&truth, 500.0, 0.1, "flat levels");
    }

    #[test]
    fn streamed_detail_stats_match_batch_pipeline() {
        // End-to-end: the streaming producer into the streaming
        // consumer must reproduce phase_stats + active_variability of
        // the materialized series exactly.
        for seed in [2u64, 13, 64] {
            let mut rng = StdRng::seed_from_u64(seed);
            let p = TruthParams {
                duration: 1200.0,
                active_fraction: 0.6,
                spike_resources: vec![GpuResource::Sm],
                ..Default::default()
            };
            let truth = JobGroundTruth::generate(&mut rng, &p, 2, 1, 0.05);
            let (sp, sv) =
                stream_detail(|sink| truth.stream_util3(1200.0, 0.1, sink)).expect("ticks pushed");
            let series = GpuSampler::new().sample_series(&truth, 1200.0);
            let bp = phase_stats(&series).expect("non-empty");
            let bv = active_variability(&series).expect("non-empty");
            assert_eq!(sp, bp, "seed {seed}: phase stats diverged");
            assert_eq!(sv, bv, "seed {seed}: variability diverged");
        }
    }

    #[test]
    fn stream_matches_batch_for_mostly_idle_low_activity() {
        let mut rng = StdRng::seed_from_u64(23);
        let p = TruthParams {
            duration: 800.0,
            active_fraction: 0.05,
            mean_levels: ResourceLevels { sm: 3.0, mem: 0.5, mem_size: 2.0, ..Default::default() },
            ..Default::default()
        };
        let truth = JobGroundTruth::generate(&mut rng, &p, 1, 0, 0.0);
        assert_stream_matches_batch(&truth, 800.0, 0.1, "mostly idle");
    }
}
