//! Discrete-event GPU-cluster and Slurm-like scheduler simulator.
//!
//! The substrate the paper's measurements came from: the 224-node /
//! 448-V100 MIT Supercloud (Table I), its single job queue, exclusive
//! GPUs with shared CPU co-location, dense multi-GPU placement, and the
//! prolog/epilog telemetry hooks.
//!
//! - [`spec`]: Table I hardware constants.
//! - [`resources`]: node-level accounting and placement.
//! - [`event`]: the discrete-event queue.
//! - [`scheduler`]: FCFS + EASY backfill.
//! - [`policy`]: closed-loop policy hooks (placement overrides,
//!   dispatch-time stretch and power caps) driven by the event loop.
//! - [`failure`]: the injected-failure taxonomy (GPU Xid faults, node
//!   hardware, transient infra) and its deterministic schedule.
//! - [`reliability`]: per-job-size reliability accounting — ETTF/ETTR,
//!   failures per 1k GPU-days, restart overhead by size class.
//! - [`sim`]: the driver that replays a [`sc_workload::Trace`] and
//!   produces the joined analysis [`sc_telemetry::Dataset`], with
//!   retry/requeue recovery, checkpoint resume, and a goodput ledger.
//!
//! # Example
//!
//! ```
//! use sc_cluster::{SimConfig, Simulation};
//! use sc_workload::{Trace, WorkloadSpec};
//!
//! let trace = Trace::generate(&WorkloadSpec::supercloud().scaled(0.002), 1);
//! let out = Simulation::new(SimConfig::default()).run(&trace);
//! assert!(out.dataset.funnel().gpu_jobs > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod event;
pub mod failure;
pub mod policy;
pub mod reliability;
pub mod resources;
pub mod scheduler;
pub mod sim;
pub mod spec;

pub use failure::{
    ClassModel, FailureCause, FailureConfigError, FailureModel, Interarrival, RetryPolicy,
    ScheduledFailure,
};
pub use policy::{Dispatch, Policy, PolicyDecision};
pub use reliability::{
    size_bucket, size_bucket_label, ReliabilityStats, SizeClassStats, SIZE_BUCKET_COUNT,
    SIZE_BUCKET_EDGES,
};
pub use resources::{Allocation, ClusterState, NodeAlloc, NodeId, NodeState};
pub use scheduler::{QueuedJob, RunningJob, SchedulePass, SchedulePolicy, Scheduler};
pub use sim::{
    CheckpointPolicy, DetailedJobStats, GoodputAccounting, JobFate, SimConfig, SimOutput, SimStats,
    Simulation,
};
pub use spec::{ClusterSpec, GpuSpec, NodeSpec, SlowTierSpec};
