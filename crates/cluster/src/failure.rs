//! Failure injection: the taxonomy, interarrival models, and the
//! deterministic fleet-wide failure schedule.
//!
//! The paper's measurement window saw hardware behind fewer than 0.5%
//! of job deaths, but reliability studies of comparable fleets (Kokolis
//! et al.; Cankur et al.) show failure attribution and goodput dominate
//! operational cost at scale. This module injects a three-class
//! taxonomy — single-GPU Xid faults, whole-node hardware failures, and
//! transient infrastructure blips — with per-class exponential or
//! Weibull interarrivals.
//!
//! Everything is pre-scheduled: [`FailureModel::schedule`] expands the
//! model into a sorted event list from its own seeded RNG *before* the
//! event loop runs, so the failure sequence is a pure function of
//! `(model, fleet, horizon)` — byte-identical at any thread count and
//! independent of every other RNG stream in the pipeline.

use crate::resources::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sc_stats::dist::{Exponential, Sample, Weibull};
pub use sc_telemetry::record::FailureCause;
use serde::{Deserialize, Serialize};

/// Interarrival law for one failure class, parameterized by the mean
/// time between failures of a single unit (node or GPU).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Interarrival {
    /// Memoryless arrivals — transient faults with a constant hazard.
    Exponential {
        /// Mean time between failures per unit, seconds.
        mtbf_secs: f64,
    },
    /// Weibull arrivals — hardware wear with a non-constant hazard
    /// (`shape < 1`: infant mortality; `shape > 1`: wear-out).
    Weibull {
        /// Characteristic life per unit (the 63.2nd percentile),
        /// seconds.
        mtbf_secs: f64,
        /// Weibull shape parameter `k`.
        shape: f64,
    },
}

impl Interarrival {
    /// Samples one fleet-level gap: a fleet of `units` identical parts
    /// fails `units` times as often as one part.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are non-positive (a config bug).
    fn sample_gap<R: Rng + ?Sized>(&self, rng: &mut R, units: f64) -> f64 {
        match *self {
            Interarrival::Exponential { mtbf_secs } => {
                Exponential::with_mean(mtbf_secs / units).expect("positive MTBF").sample(rng)
            }
            Interarrival::Weibull { mtbf_secs, shape } => {
                Weibull::new(shape, mtbf_secs / units).expect("valid Weibull").sample(rng)
            }
        }
    }

    /// The per-unit MTBF parameter, seconds.
    pub fn mtbf_secs(&self) -> f64 {
        match *self {
            Interarrival::Exponential { mtbf_secs } => mtbf_secs,
            Interarrival::Weibull { mtbf_secs, .. } => mtbf_secs,
        }
    }
}

/// One class of the failure taxonomy: its cause label, interarrival
/// law, and how long the struck node stays out of service.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassModel {
    /// The cause recorded against victims.
    pub cause: FailureCause,
    /// Interarrival law, per unit (GPU for [`FailureCause::GpuXid`],
    /// node otherwise).
    pub interarrival: Interarrival,
    /// Node downtime after the event, seconds; 0 means the node never
    /// leaves service (a GPU reset, not a repair ticket).
    pub repair_secs: f64,
}

/// Automatic-requeue policy applied to victims of injected failures.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Global cap on requeues per job; the effective cap is the minimum
    /// of this and the job's own `max_restarts`.
    pub max_retries: u32,
    /// Delay before the first requeue, seconds.
    pub backoff_base_secs: f64,
    /// Multiplier applied per additional retry (exponential backoff).
    pub backoff_factor: f64,
}

impl RetryPolicy {
    /// Backoff before requeue number `retry` (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `retry` is zero.
    pub fn backoff_secs(&self, retry: u32) -> f64 {
        assert!(retry >= 1, "retries are 1-based");
        self.backoff_base_secs * self.backoff_factor.powi(retry as i32 - 1)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_retries: 3, backoff_base_secs: 60.0, backoff_factor: 2.0 }
    }
}

/// The complete failure-injection model: taxonomy classes, the retry
/// policy, and the schedule seed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureModel {
    /// Seed for the failure schedule (independent of the trace seed).
    pub seed: u64,
    /// Active taxonomy classes.
    pub classes: Vec<ClassModel>,
    /// Requeue policy for victims.
    pub retry: RetryPolicy,
}

impl FailureModel {
    /// The default taxonomy, calibrated to a healthy production fleet:
    /// node hardware fails with a slightly decreasing hazard (post
    /// burn-in Weibull, `k = 0.9`) about once per ~92 node-days, GPUs
    /// throw Xid faults about once per ~170 GPU-days, and transient
    /// infra blips hit a node about once per ~60 node-days but clear in
    /// minutes.
    pub fn supercloud(seed: u64) -> Self {
        FailureModel {
            seed,
            classes: vec![
                ClassModel {
                    cause: FailureCause::NodeHardware,
                    interarrival: Interarrival::Weibull { mtbf_secs: 8.0e6, shape: 0.9 },
                    repair_secs: 4.0 * 3600.0,
                },
                ClassModel {
                    cause: FailureCause::GpuXid,
                    interarrival: Interarrival::Exponential { mtbf_secs: 1.5e7 },
                    repair_secs: 0.0,
                },
                ClassModel {
                    cause: FailureCause::InfraTransient,
                    interarrival: Interarrival::Exponential { mtbf_secs: 5.0e6 },
                    repair_secs: 300.0,
                },
            ],
            retry: RetryPolicy::default(),
        }
    }

    /// A nodes-only model — the pre-taxonomy behaviour, for ablations
    /// and the whole-node failure studies.
    pub fn nodes_only(node_mtbf_secs: f64, repair_secs: f64, seed: u64) -> Self {
        FailureModel {
            seed,
            classes: vec![ClassModel {
                cause: FailureCause::NodeHardware,
                interarrival: Interarrival::Exponential { mtbf_secs: node_mtbf_secs },
                repair_secs,
            }],
            retry: RetryPolicy::default(),
        }
    }

    /// Returns a copy with every class's MTBF scaled by `factor` —
    /// `0.1` makes the fleet ten times less reliable. Used by the
    /// `--mtbf` sweep flag.
    ///
    /// # Panics
    ///
    /// Panics unless `factor` is finite and positive.
    pub fn scaled_mtbf(&self, factor: f64) -> Self {
        assert!(factor.is_finite() && factor > 0.0, "MTBF scale must be positive");
        let mut out = self.clone();
        for c in &mut out.classes {
            c.interarrival = match c.interarrival {
                Interarrival::Exponential { mtbf_secs } => {
                    Interarrival::Exponential { mtbf_secs: mtbf_secs * factor }
                }
                Interarrival::Weibull { mtbf_secs, shape } => {
                    Interarrival::Weibull { mtbf_secs: mtbf_secs * factor, shape }
                }
            };
        }
        out
    }

    /// Looks up a named failure profile: `off` (no injection),
    /// `supercloud` (the default taxonomy), `stress` (10× failure
    /// rates), or `transient` (blip-dominated). Returns `None` for an
    /// unknown name; `Some(None)` means injection disabled.
    pub fn profile(name: &str, seed: u64) -> Option<Option<FailureModel>> {
        match name {
            "off" | "none" => Some(None),
            "supercloud" | "default" => Some(Some(FailureModel::supercloud(seed))),
            "stress" => Some(Some(FailureModel::supercloud(seed).scaled_mtbf(0.1))),
            "transient" => {
                let mut m = FailureModel::supercloud(seed);
                m.classes.retain(|c| c.cause == FailureCause::InfraTransient);
                m.classes[0].interarrival = Interarrival::Exponential { mtbf_secs: 1.0e6 };
                Some(Some(m))
            }
            _ => None,
        }
    }

    /// Names accepted by [`FailureModel::profile`], for usage messages.
    pub const PROFILE_NAMES: &'static str = "off|supercloud|stress|transient";

    /// Expands the model into the fleet-wide failure schedule over
    /// `[0, horizon)`, sorted by time with deterministic tie-breaking.
    ///
    /// Each class samples from its own `StdRng` stream (derived from
    /// the model seed and the class index), so adding or removing a
    /// class never perturbs the others' arrival times.
    pub fn schedule(&self, nodes: u32, gpus: u32, horizon: f64) -> Vec<ScheduledFailure> {
        let mut out = Vec::new();
        for class in &self.classes {
            let units = match class.cause {
                FailureCause::GpuXid => gpus as f64,
                _ => nodes as f64,
            };
            if units <= 0.0 {
                continue;
            }
            // Stream seeded by the taxonomy slot (not the list
            // position): adding or removing another class never
            // perturbs this one's arrivals.
            let slot = class.cause.index() as u64 + 1;
            let mut rng = StdRng::seed_from_u64(self.seed ^ slot.wrapping_mul(0x9e37_79b9));
            let mut t = 0.0;
            loop {
                t += class.interarrival.sample_gap(&mut rng, units);
                if t >= horizon {
                    break;
                }
                out.push(ScheduledFailure {
                    time: t,
                    cause: class.cause,
                    node: NodeId(rng.gen_range(0..nodes)),
                    pick: rng.gen::<u64>(),
                    repair_secs: class.repair_secs,
                });
            }
        }
        // Total order: time, then taxonomy slot, then node — every key
        // is deterministic, so ties cannot depend on sort internals.
        out.sort_by(|a, b| {
            a.time
                .partial_cmp(&b.time)
                .expect("finite failure times")
                .then(a.cause.index().cmp(&b.cause.index()))
                .then(a.node.cmp(&b.node))
        });
        out
    }
}

/// One pre-scheduled failure event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduledFailure {
    /// When it strikes, seconds from trace start.
    pub time: f64,
    /// Taxonomy class.
    pub cause: FailureCause,
    /// The struck node.
    pub node: NodeId,
    /// Victim-selection entropy (which resident job a GPU fault hits).
    pub pick: u64,
    /// Node downtime, seconds; 0 keeps the node in service.
    pub repair_secs: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_and_sorted() {
        let m = FailureModel::supercloud(7);
        let a = m.schedule(224, 448, 1.0e7);
        let b = m.schedule(224, 448, 1.0e7);
        assert_eq!(a, b);
        assert!(!a.is_empty(), "expected failures over a 115-day horizon");
        for w in a.windows(2) {
            assert!(w[0].time <= w[1].time, "schedule must be sorted");
        }
        for f in &a {
            assert!(f.node.0 < 224);
            assert!(f.time >= 0.0 && f.time < 1.0e7);
        }
    }

    #[test]
    fn class_streams_are_independent() {
        // Removing one class must not move the others' arrival times.
        let full = FailureModel::supercloud(3);
        let mut no_xid = full.clone();
        no_xid.classes.retain(|c| c.cause != FailureCause::GpuXid);
        let times = |s: &[ScheduledFailure], cause: FailureCause| -> Vec<f64> {
            s.iter().filter(|f| f.cause == cause).map(|f| f.time).collect()
        };
        let a = full.schedule(224, 448, 5.0e6);
        let b = no_xid.schedule(224, 448, 5.0e6);
        assert_eq!(times(&a, FailureCause::NodeHardware), times(&b, FailureCause::NodeHardware));
        assert_eq!(
            times(&a, FailureCause::InfraTransient),
            times(&b, FailureCause::InfraTransient)
        );
        assert!(times(&b, FailureCause::GpuXid).is_empty());
    }

    #[test]
    fn rate_tracks_fleet_size_and_mtbf() {
        let m = FailureModel::nodes_only(1.0e6, 3600.0, 1);
        let horizon = 2.0e7;
        let small = m.schedule(10, 20, horizon).len() as f64;
        let big = m.schedule(100, 200, horizon).len() as f64;
        // Expected counts: nodes * horizon / mtbf = 200 and 2000.
        assert!((small - 200.0).abs() < 60.0, "small fleet count {small}");
        assert!((big / small - 10.0).abs() < 2.0, "rate must scale with nodes");
        let fast = m.scaled_mtbf(0.5).schedule(10, 20, horizon).len() as f64;
        assert!((fast / small - 2.0).abs() < 0.5, "halving MTBF must double failures");
    }

    #[test]
    fn backoff_grows_exponentially() {
        let r = RetryPolicy { max_retries: 3, backoff_base_secs: 60.0, backoff_factor: 2.0 };
        assert_eq!(r.backoff_secs(1), 60.0);
        assert_eq!(r.backoff_secs(2), 120.0);
        assert_eq!(r.backoff_secs(3), 240.0);
    }

    #[test]
    fn profiles_resolve() {
        assert!(FailureModel::profile("off", 1).unwrap().is_none());
        assert!(FailureModel::profile("supercloud", 1).unwrap().is_some());
        let stress = FailureModel::profile("stress", 1).unwrap().unwrap();
        let base = FailureModel::supercloud(1);
        assert!(
            stress.classes[0].interarrival.mtbf_secs() < base.classes[0].interarrival.mtbf_secs()
        );
        let transient = FailureModel::profile("transient", 1).unwrap().unwrap();
        assert_eq!(transient.classes.len(), 1);
        assert!(FailureModel::profile("bogus", 1).is_none());
    }
}
