//! Failure injection: the taxonomy, interarrival models, and the
//! deterministic fleet-wide failure schedule.
//!
//! The paper's measurement window saw hardware behind fewer than 0.5%
//! of job deaths, but reliability studies of comparable fleets (Kokolis
//! et al.; Cankur et al.) show failure attribution and goodput dominate
//! operational cost at scale. This module injects a three-class
//! taxonomy — single-GPU Xid faults, whole-node hardware failures, and
//! transient infrastructure blips — with per-class exponential or
//! Weibull interarrivals.
//!
//! Everything is pre-scheduled: [`FailureModel::schedule`] expands the
//! model into a sorted event list from its own seeded RNG *before* the
//! event loop runs, so the failure sequence is a pure function of
//! `(model, fleet, horizon)` — byte-identical at any thread count and
//! independent of every other RNG stream in the pipeline.

use crate::resources::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sc_stats::dist::{Exponential, Sample, Weibull};
pub use sc_telemetry::record::FailureCause;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Typed rejection of an invalid failure-model parameter.
///
/// The scenario layer converts these into `ScenarioError` range
/// diagnostics (`line N: [failures] key: ...`), so a malformed config
/// key reports like every other field instead of panicking deep inside
/// the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureConfigError {
    /// Which parameter was rejected (e.g. `"mtbf_factor"`).
    pub param: &'static str,
    /// Why it was rejected, in user-facing terms.
    pub reason: String,
}

impl FailureConfigError {
    fn new(param: &'static str, reason: impl Into<String>) -> Self {
        FailureConfigError { param, reason: reason.into() }
    }
}

impl fmt::Display for FailureConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.param, self.reason)
    }
}

impl std::error::Error for FailureConfigError {}

/// Interarrival law for one failure class, parameterized by the mean
/// time between failures of a single unit (node or GPU).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Interarrival {
    /// Memoryless arrivals — transient faults with a constant hazard.
    Exponential {
        /// Mean time between failures per unit, seconds.
        mtbf_secs: f64,
    },
    /// Weibull arrivals — hardware wear with a non-constant hazard
    /// (`shape < 1`: infant mortality; `shape > 1`: wear-out).
    Weibull {
        /// Characteristic life per unit (the 63.2nd percentile),
        /// seconds.
        mtbf_secs: f64,
        /// Weibull shape parameter `k`.
        shape: f64,
    },
}

impl Interarrival {
    /// Samples one fleet-level gap: a fleet of `units` identical parts
    /// fails `units` times as often as one part.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are non-positive (a config bug).
    fn sample_gap<R: Rng + ?Sized>(&self, rng: &mut R, units: f64) -> f64 {
        match *self {
            Interarrival::Exponential { mtbf_secs } => {
                Exponential::with_mean(mtbf_secs / units).expect("positive MTBF").sample(rng)
            }
            Interarrival::Weibull { mtbf_secs, shape } => {
                Weibull::new(shape, mtbf_secs / units).expect("valid Weibull").sample(rng)
            }
        }
    }

    /// The per-unit MTBF parameter, seconds.
    pub fn mtbf_secs(&self) -> f64 {
        match *self {
            Interarrival::Exponential { mtbf_secs } => mtbf_secs,
            Interarrival::Weibull { mtbf_secs, .. } => mtbf_secs,
        }
    }

    /// Validates the law's parameters, returning the typed error the
    /// scenario layer surfaces as a range diagnostic. [`sample_gap`]
    /// still panics on bad inputs — `validate` exists so config paths
    /// reject them long before any sampling happens.
    ///
    /// [`sample_gap`]: Interarrival::sample_gap
    pub fn validate(&self) -> Result<(), FailureConfigError> {
        let mtbf = self.mtbf_secs();
        if !(mtbf.is_finite() && mtbf > 0.0) {
            return Err(FailureConfigError::new(
                "mtbf_secs",
                format!("must be positive and finite, got {mtbf}"),
            ));
        }
        if let Interarrival::Weibull { shape, .. } = *self {
            if !(shape.is_finite() && shape > 0.0) {
                return Err(FailureConfigError::new(
                    "shape",
                    format!("Weibull shape must be positive and finite, got {shape}"),
                ));
            }
        }
        Ok(())
    }

    /// Constant-hazard approximation for one unit: `1 / mtbf_secs`.
    /// Exact for the exponential law; for Weibull it treats the
    /// characteristic life as the mean, which is what the Young/Daly
    /// analytic overlay needs (a single effective rate).
    pub fn hazard_per_unit_sec(&self) -> f64 {
        1.0 / self.mtbf_secs()
    }
}

/// One class of the failure taxonomy: its cause label, interarrival
/// law, and how long the struck node stays out of service.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassModel {
    /// The cause recorded against victims.
    pub cause: FailureCause,
    /// Interarrival law, per unit (GPU for [`FailureCause::GpuXid`],
    /// node otherwise).
    pub interarrival: Interarrival,
    /// Node downtime after the event, seconds; 0 means the node never
    /// leaves service (a GPU reset, not a repair ticket).
    pub repair_secs: f64,
}

/// Automatic-requeue policy applied to victims of injected failures.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Global cap on requeues per job; the effective cap is the minimum
    /// of this and the job's own `max_restarts`.
    pub max_retries: u32,
    /// Delay before the first requeue, seconds.
    pub backoff_base_secs: f64,
    /// Multiplier applied per additional retry (exponential backoff).
    pub backoff_factor: f64,
}

impl RetryPolicy {
    /// Backoff before requeue number `retry` (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `retry` is zero.
    pub fn backoff_secs(&self, retry: u32) -> f64 {
        assert!(retry >= 1, "retries are 1-based");
        self.backoff_base_secs * self.backoff_factor.powi(retry as i32 - 1)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_retries: 3, backoff_base_secs: 60.0, backoff_factor: 2.0 }
    }
}

/// The complete failure-injection model: taxonomy classes, the retry
/// policy, and the schedule seed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureModel {
    /// Seed for the failure schedule (independent of the trace seed).
    pub seed: u64,
    /// Active taxonomy classes.
    pub classes: Vec<ClassModel>,
    /// Requeue policy for victims.
    pub retry: RetryPolicy,
}

impl FailureModel {
    /// The default taxonomy, calibrated to a healthy production fleet:
    /// node hardware fails with a slightly decreasing hazard (post
    /// burn-in Weibull, `k = 0.9`) about once per ~92 node-days, GPUs
    /// throw Xid faults about once per ~170 GPU-days, and transient
    /// infra blips hit a node about once per ~60 node-days but clear in
    /// minutes.
    pub fn supercloud(seed: u64) -> Self {
        FailureModel {
            seed,
            classes: vec![
                ClassModel {
                    cause: FailureCause::NodeHardware,
                    interarrival: Interarrival::Weibull { mtbf_secs: 8.0e6, shape: 0.9 },
                    repair_secs: 4.0 * 3600.0,
                },
                ClassModel {
                    cause: FailureCause::GpuXid,
                    interarrival: Interarrival::Exponential { mtbf_secs: 1.5e7 },
                    repair_secs: 0.0,
                },
                ClassModel {
                    cause: FailureCause::InfraTransient,
                    interarrival: Interarrival::Exponential { mtbf_secs: 5.0e6 },
                    repair_secs: 300.0,
                },
            ],
            retry: RetryPolicy::default(),
        }
    }

    /// A nodes-only model — the pre-taxonomy behaviour, for ablations
    /// and the whole-node failure studies.
    pub fn nodes_only(node_mtbf_secs: f64, repair_secs: f64, seed: u64) -> Self {
        FailureModel {
            seed,
            classes: vec![ClassModel {
                cause: FailureCause::NodeHardware,
                interarrival: Interarrival::Exponential { mtbf_secs: node_mtbf_secs },
                repair_secs,
            }],
            retry: RetryPolicy::default(),
        }
    }

    /// Returns a copy with every class's MTBF scaled by `factor` —
    /// `0.1` makes the fleet ten times less reliable. Used by the
    /// `--mtbf` sweep flag.
    ///
    /// # Panics
    ///
    /// Panics unless `factor` is finite and positive. Config paths that
    /// must not panic (the scenario parser) use
    /// [`FailureModel::try_scaled_mtbf`] instead.
    pub fn scaled_mtbf(&self, factor: f64) -> Self {
        self.try_scaled_mtbf(factor).expect("MTBF scale must be positive")
    }

    /// Fallible form of [`FailureModel::scaled_mtbf`]: rejects a
    /// non-finite or non-positive factor with a typed error instead of
    /// panicking, so malformed `[failures] mtbf_factor` keys surface as
    /// range diagnostics.
    pub fn try_scaled_mtbf(&self, factor: f64) -> Result<Self, FailureConfigError> {
        if !(factor.is_finite() && factor > 0.0) {
            return Err(FailureConfigError::new(
                "mtbf_factor",
                format!("MTBF scale must be positive and finite, got {factor}"),
            ));
        }
        let mut out = self.clone();
        for c in &mut out.classes {
            c.interarrival = match c.interarrival {
                Interarrival::Exponential { mtbf_secs } => {
                    Interarrival::Exponential { mtbf_secs: mtbf_secs * factor }
                }
                Interarrival::Weibull { mtbf_secs, shape } => {
                    Interarrival::Weibull { mtbf_secs: mtbf_secs * factor, shape }
                }
            };
        }
        Ok(out)
    }

    /// Validates every class's interarrival law, repair time, and the
    /// retry policy. Returns the first violation as a typed error.
    pub fn validate(&self) -> Result<(), FailureConfigError> {
        for c in &self.classes {
            c.interarrival.validate()?;
            if !(c.repair_secs.is_finite() && c.repair_secs >= 0.0) {
                return Err(FailureConfigError::new(
                    "repair_secs",
                    format!("must be non-negative and finite, got {}", c.repair_secs),
                ));
            }
        }
        if !(self.retry.backoff_base_secs.is_finite() && self.retry.backoff_base_secs >= 0.0) {
            return Err(FailureConfigError::new(
                "backoff_base_secs",
                format!("must be non-negative and finite, got {}", self.retry.backoff_base_secs),
            ));
        }
        if !(self.retry.backoff_factor.is_finite() && self.retry.backoff_factor >= 1.0) {
            return Err(FailureConfigError::new(
                "backoff_factor",
                format!("must be >= 1 and finite, got {}", self.retry.backoff_factor),
            ));
        }
        Ok(())
    }

    /// Aggregate failure hazard (events/sec) seen by a job occupying
    /// `nodes` nodes and `gpus` GPUs — the Meta rate-vs-size law made
    /// explicit: each class contributes `units / MTBF`, where units is
    /// the job's GPU count for [`FailureCause::GpuXid`] and its node
    /// count otherwise. A job spanning N nodes is exposed to N nodes'
    /// worth of hardware hazard.
    pub fn job_hazard_per_sec(&self, nodes: u32, gpus: u32) -> f64 {
        self.classes
            .iter()
            .map(|c| {
                let units = match c.cause {
                    FailureCause::GpuXid => gpus as f64,
                    _ => nodes as f64,
                };
                units * c.interarrival.hazard_per_unit_sec()
            })
            .sum()
    }

    /// Mean time to interrupt for a job with the given footprint:
    /// `1 / job_hazard_per_sec`. Infinite for an empty footprint or an
    /// empty taxonomy — callers treat that as "no checkpointing needed".
    pub fn job_mtti_secs(&self, nodes: u32, gpus: u32) -> f64 {
        let h = self.job_hazard_per_sec(nodes, gpus);
        if h <= 0.0 {
            f64::INFINITY
        } else {
            1.0 / h
        }
    }

    /// Looks up a named failure profile: `off` (no injection),
    /// `supercloud` (the default taxonomy), `stress` (10× failure
    /// rates), or `transient` (blip-dominated). Returns `None` for an
    /// unknown name; `Some(None)` means injection disabled.
    pub fn profile(name: &str, seed: u64) -> Option<Option<FailureModel>> {
        match name {
            "off" | "none" => Some(None),
            "supercloud" | "default" => Some(Some(FailureModel::supercloud(seed))),
            "stress" => Some(Some(FailureModel::supercloud(seed).scaled_mtbf(0.1))),
            "transient" => {
                let mut m = FailureModel::supercloud(seed);
                m.classes.retain(|c| c.cause == FailureCause::InfraTransient);
                m.classes[0].interarrival = Interarrival::Exponential { mtbf_secs: 1.0e6 };
                Some(Some(m))
            }
            _ => None,
        }
    }

    /// Names accepted by [`FailureModel::profile`], for usage messages.
    pub const PROFILE_NAMES: &'static str = "off|supercloud|stress|transient";

    /// Expands the model into the fleet-wide failure schedule over the
    /// half-open interval `[0, horizon)`, sorted by time with
    /// deterministic tie-breaking.
    ///
    /// The horizon bound is strict: an event drawn exactly at the
    /// boundary is excluded, so for `h1 < h2` the `h1` schedule is a
    /// prefix of the `h2` schedule (per class) and growth-study runs at
    /// different horizons can never double-count a boundary fault.
    ///
    /// Each class samples from its own `StdRng` stream (derived from
    /// the model seed and the class index), so adding or removing a
    /// class never perturbs the others' arrival times.
    pub fn schedule(&self, nodes: u32, gpus: u32, horizon: f64) -> Vec<ScheduledFailure> {
        let mut out = Vec::new();
        for class in &self.classes {
            let units = match class.cause {
                FailureCause::GpuXid => gpus as f64,
                _ => nodes as f64,
            };
            if units <= 0.0 {
                continue;
            }
            // Stream seeded by the taxonomy slot (not the list
            // position): adding or removing another class never
            // perturbs this one's arrivals.
            let slot = class.cause.index() as u64 + 1;
            let mut rng = StdRng::seed_from_u64(self.seed ^ slot.wrapping_mul(0x9e37_79b9));
            let mut t = 0.0;
            loop {
                t += class.interarrival.sample_gap(&mut rng, units);
                if t >= horizon {
                    break;
                }
                out.push(ScheduledFailure {
                    time: t,
                    cause: class.cause,
                    node: NodeId(rng.gen_range(0..nodes)),
                    pick: rng.gen::<u64>(),
                    repair_secs: class.repair_secs,
                });
            }
        }
        // Total order: time, then taxonomy slot, then node — every key
        // is deterministic, so ties cannot depend on sort internals.
        out.sort_by(|a, b| {
            a.time
                .partial_cmp(&b.time)
                .expect("finite failure times")
                .then(a.cause.index().cmp(&b.cause.index()))
                .then(a.node.cmp(&b.node))
        });
        out
    }
}

/// One pre-scheduled failure event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduledFailure {
    /// When it strikes, seconds from trace start.
    pub time: f64,
    /// Taxonomy class.
    pub cause: FailureCause,
    /// The struck node.
    pub node: NodeId,
    /// Victim-selection entropy (which resident job a GPU fault hits).
    pub pick: u64,
    /// Node downtime, seconds; 0 keeps the node in service.
    pub repair_secs: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_and_sorted() {
        let m = FailureModel::supercloud(7);
        let a = m.schedule(224, 448, 1.0e7);
        let b = m.schedule(224, 448, 1.0e7);
        assert_eq!(a, b);
        assert!(!a.is_empty(), "expected failures over a 115-day horizon");
        for w in a.windows(2) {
            assert!(w[0].time <= w[1].time, "schedule must be sorted");
        }
        for f in &a {
            assert!(f.node.0 < 224);
            assert!(f.time >= 0.0 && f.time < 1.0e7);
        }
    }

    #[test]
    fn class_streams_are_independent() {
        // Removing one class must not move the others' arrival times.
        let full = FailureModel::supercloud(3);
        let mut no_xid = full.clone();
        no_xid.classes.retain(|c| c.cause != FailureCause::GpuXid);
        let times = |s: &[ScheduledFailure], cause: FailureCause| -> Vec<f64> {
            s.iter().filter(|f| f.cause == cause).map(|f| f.time).collect()
        };
        let a = full.schedule(224, 448, 5.0e6);
        let b = no_xid.schedule(224, 448, 5.0e6);
        assert_eq!(times(&a, FailureCause::NodeHardware), times(&b, FailureCause::NodeHardware));
        assert_eq!(
            times(&a, FailureCause::InfraTransient),
            times(&b, FailureCause::InfraTransient)
        );
        assert!(times(&b, FailureCause::GpuXid).is_empty());
    }

    #[test]
    fn rate_tracks_fleet_size_and_mtbf() {
        let m = FailureModel::nodes_only(1.0e6, 3600.0, 1);
        let horizon = 2.0e7;
        let small = m.schedule(10, 20, horizon).len() as f64;
        let big = m.schedule(100, 200, horizon).len() as f64;
        // Expected counts: nodes * horizon / mtbf = 200 and 2000.
        assert!((small - 200.0).abs() < 60.0, "small fleet count {small}");
        assert!((big / small - 10.0).abs() < 2.0, "rate must scale with nodes");
        let fast = m.scaled_mtbf(0.5).schedule(10, 20, horizon).len() as f64;
        assert!((fast / small - 2.0).abs() < 0.5, "halving MTBF must double failures");
    }

    #[test]
    fn backoff_grows_exponentially() {
        let r = RetryPolicy { max_retries: 3, backoff_base_secs: 60.0, backoff_factor: 2.0 };
        assert_eq!(r.backoff_secs(1), 60.0);
        assert_eq!(r.backoff_secs(2), 120.0);
        assert_eq!(r.backoff_secs(3), 240.0);
    }

    #[test]
    fn horizon_is_half_open_and_schedules_nest_by_prefix() {
        // Satellite fix: `[0, horizon)` is strict, so a shorter-horizon
        // schedule must be an exact prefix of a longer one per class and
        // no event may land at or past the bound.
        let m = FailureModel::supercloud(11);
        let long = m.schedule(224, 448, 8.0e6);
        for h in [0.0, 1.0e5, 2.5e6, 8.0e6] {
            let short = m.schedule(224, 448, h);
            for f in &short {
                assert!(f.time < h, "event at {} must be excluded at horizon {h}", f.time);
            }
            let expected: Vec<_> = long.iter().copied().filter(|f| f.time < h).collect();
            assert_eq!(short, expected, "horizon {h} schedule must be a prefix of the long one");
        }
        assert!(m.schedule(224, 448, 0.0).is_empty(), "zero horizon schedules nothing");
        // An event drawn exactly at the boundary is excluded: replay the
        // first NodeHardware arrival and use its time as the horizon.
        let first = long.iter().find(|f| f.cause == FailureCause::NodeHardware).unwrap();
        let at_boundary = m.schedule(224, 448, first.time);
        assert!(
            !at_boundary.iter().any(|f| f.cause == FailureCause::NodeHardware),
            "event exactly at the horizon must not be scheduled"
        );
    }

    #[test]
    fn validation_rejects_bad_parameters_with_typed_errors() {
        assert!(Interarrival::Exponential { mtbf_secs: 1.0 }.validate().is_ok());
        let err = Interarrival::Exponential { mtbf_secs: 0.0 }.validate().unwrap_err();
        assert_eq!(err.param, "mtbf_secs");
        let err = Interarrival::Exponential { mtbf_secs: f64::NAN }.validate().unwrap_err();
        assert!(err.to_string().contains("positive"));
        let err = Interarrival::Weibull { mtbf_secs: 1.0, shape: -2.0 }.validate().unwrap_err();
        assert_eq!(err.param, "shape");

        let m = FailureModel::supercloud(1);
        assert!(m.validate().is_ok());
        assert!(m.try_scaled_mtbf(0.5).is_ok());
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let err = m.try_scaled_mtbf(bad).unwrap_err();
            assert_eq!(err.param, "mtbf_factor");
            assert!(err.to_string().contains("positive"), "message: {err}");
        }
        let mut broken = m.clone();
        broken.retry.backoff_factor = 0.5;
        assert_eq!(broken.validate().unwrap_err().param, "backoff_factor");
        broken = m.clone();
        broken.classes[0].repair_secs = f64::NAN;
        assert_eq!(broken.validate().unwrap_err().param, "repair_secs");
    }

    #[test]
    fn job_hazard_scales_with_footprint() {
        let m = FailureModel::supercloud(1);
        let one = m.job_hazard_per_sec(1, 2);
        let eight = m.job_hazard_per_sec(8, 16);
        assert!(one > 0.0);
        assert!((eight / one - 8.0).abs() < 1e-9, "8x footprint => 8x hazard");
        assert!((m.job_mtti_secs(1, 2) - 1.0 / one).abs() < 1e-6);
        assert_eq!(m.job_mtti_secs(0, 0), f64::INFINITY);
        // Hand check: 1 node / 2 GPU exposure under the supercloud taxonomy.
        let expected = 1.0 / 8.0e6 + 2.0 / 1.5e7 + 1.0 / 5.0e6;
        assert!((one - expected).abs() < 1e-12);
    }

    #[test]
    fn profiles_resolve() {
        assert!(FailureModel::profile("off", 1).unwrap().is_none());
        assert!(FailureModel::profile("supercloud", 1).unwrap().is_some());
        let stress = FailureModel::profile("stress", 1).unwrap().unwrap();
        let base = FailureModel::supercloud(1);
        assert!(
            stress.classes[0].interarrival.mtbf_secs() < base.classes[0].interarrival.mtbf_secs()
        );
        let transient = FailureModel::profile("transient", 1).unwrap().unwrap();
        assert_eq!(transient.classes.len(), 1);
        assert!(FailureModel::profile("bogus", 1).is_none());
    }
}
