//! The discrete-event engine: a time-ordered queue with deterministic
//! tie-breaking.

use sc_telemetry::record::JobId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Events driving the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A job arrives in the queue. The payload is the index into the
    /// trace's job list. Requeues after an injected failure reuse this
    /// event with the same index.
    Submit(usize),
    /// A running job attempt terminates. The attempt tag lets the
    /// driver drop finishes that went stale when an injected failure
    /// killed the attempt first — a job can be killed and requeued more
    /// than once, so a bare job id would be ambiguous.
    Finish {
        /// The finishing job.
        job: JobId,
        /// Which attempt (1-based) scheduled this finish.
        attempt: u32,
    },
    /// A scheduler wake-up: Slurm's scheduling loop runs a short,
    /// configurable latency after each submission rather than inline
    /// with it.
    Tick,
    /// An injected failure strikes. The payload indexes the
    /// pre-computed failure schedule, which carries the cause, the
    /// struck node, and the repair time.
    Fault(usize),
    /// A failed node returns to service.
    NodeRepair(crate::resources::NodeId),
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    time: f64,
    seq: u64,
    event: Event,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse order: BinaryHeap is a max-heap, we want earliest first.
        other
            .time
            .partial_cmp(&self.time)
            .expect("event times are finite")
            .then(other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A min-heap event queue. Ties in time are broken by insertion order,
/// making runs bit-reproducible.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Entry>,
    seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules `event` at `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is not finite.
    pub fn push(&mut self, time: f64, event: Event) {
        assert!(time.is_finite(), "event time must be finite");
        self.heap.push(Entry { time, seq: self.seq, event });
        self.seq += 1;
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(f64, Event)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// The time of the next event without removing it.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(5.0, Event::Submit(1));
        q.push(1.0, Event::Submit(2));
        q.push(3.0, Event::Finish { job: JobId(9), attempt: 1 });
        assert_eq!(q.peek_time(), Some(1.0));
        assert_eq!(q.pop(), Some((1.0, Event::Submit(2))));
        assert_eq!(q.pop(), Some((3.0, Event::Finish { job: JobId(9), attempt: 1 })));
        assert_eq!(q.pop(), Some((5.0, Event::Submit(1))));
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.push(2.0, Event::Submit(10));
        q.push(2.0, Event::Submit(11));
        q.push(2.0, Event::Fault(3));
        assert_eq!(q.pop().unwrap().1, Event::Submit(10));
        assert_eq!(q.pop().unwrap().1, Event::Submit(11));
        assert_eq!(q.pop().unwrap().1, Event::Fault(3));
    }

    #[test]
    fn len_tracks_pushes() {
        let mut q = EventQueue::new();
        assert_eq!(q.len(), 0);
        q.push(1.0, Event::Submit(0));
        q.push(2.0, Event::Submit(1));
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic(expected = "event time must be finite")]
    fn rejects_nan_time() {
        let mut q = EventQueue::new();
        q.push(f64::NAN, Event::Submit(0));
    }
}
