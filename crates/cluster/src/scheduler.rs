//! The FCFS + EASY-backfill scheduler.
//!
//! Supercloud ran "a single job queue for all jobs" (Sec. II). We model
//! FCFS order with EASY backfill: when the head job cannot start, a
//! *shadow time* is computed from the running jobs' wall-clock limits
//! and later jobs may jump ahead only if their own limit guarantees they
//! finish before the shadow time. Estimates use requested limits — never
//! actual run times — so the scheduler cannot cheat.

use crate::policy::Policy;
use crate::resources::{Allocation, ClusterState};
use sc_telemetry::record::JobId;
use sc_workload::JobSpec;
use std::collections::HashMap;

/// A queued job: the trace index plus its submit time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueuedJob {
    /// Index into the trace job list.
    pub trace_idx: usize,
    /// Submission time.
    pub submit_time: f64,
}

/// A running job's bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct RunningJob {
    /// Index into the trace job list.
    pub trace_idx: usize,
    /// The held allocation.
    pub alloc: Allocation,
    /// Actual start time.
    pub start_time: f64,
    /// Scheduler's upper bound on the end (start + requested limit).
    pub estimated_end: f64,
    /// Run-time stretch factor of the tier the job landed on (1.0 on
    /// the fast tier) — needed to convert elapsed wall-clock back into
    /// completed work when a failure interrupts the job.
    pub stretch: f64,
    /// Per-job power cap imposed by a dispatch policy, watts. Carried
    /// here so the completion record (and hence the telemetry epilog)
    /// knows to clamp the job's synthesized power.
    pub power_cap_w: Option<f64>,
}

/// Decisions produced by one scheduling pass.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SchedulePass {
    /// `(trace_idx, allocation)` of jobs to start now, in order.
    pub started: Vec<(usize, Allocation)>,
}

/// The queue discipline, for ablation studies.
///
/// Supercloud runs backfill; the ablation bench quantifies what the
/// backfill pass buys over strict FCFS on the same trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SchedulePolicy {
    /// Strict FCFS: a blocked head job blocks everything behind it.
    FcfsOnly,
    /// FCFS with EASY backfill (the production default).
    #[default]
    EasyBackfill,
}

/// The scheduler state: pending queue and running set.
#[derive(Debug, Default)]
pub struct Scheduler {
    pending: Vec<QueuedJob>,
    running: HashMap<JobId, RunningJob>,
    policy: SchedulePolicy,
}

impl Scheduler {
    /// An empty scheduler with the production (backfill) policy.
    pub fn new() -> Self {
        Scheduler::default()
    }

    /// An empty scheduler with an explicit queue discipline.
    pub fn with_policy(policy: SchedulePolicy) -> Self {
        Scheduler { policy, ..Scheduler::default() }
    }

    /// The active queue discipline.
    pub fn policy(&self) -> SchedulePolicy {
        self.policy
    }

    /// Enqueues a submitted job.
    pub fn submit(&mut self, trace_idx: usize, submit_time: f64) {
        self.pending.push(QueuedJob { trace_idx, submit_time });
    }

    /// Registers a started job.
    pub fn mark_running(&mut self, job_id: JobId, running: RunningJob) {
        self.running.insert(job_id, running);
    }

    /// Removes a finished job, returning its bookkeeping.
    ///
    /// # Panics
    ///
    /// Panics if the job is not running (an event-ordering bug).
    pub fn finish(&mut self, job_id: JobId) -> RunningJob {
        self.running.remove(&job_id).expect("finished job must be running")
    }

    /// Number of queued jobs.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Number of running jobs.
    pub fn running_len(&self) -> usize {
        self.running.len()
    }

    /// Runs one FCFS + EASY-backfill pass at time `now` against the
    /// cluster state, committing allocations for every job it starts and
    /// removing them from the queue. `jobs` is the full trace job list.
    pub fn schedule(
        &mut self,
        now: f64,
        cluster: &mut ClusterState,
        jobs: &[JobSpec],
    ) -> SchedulePass {
        self.schedule_with(now, cluster, jobs, None)
    }

    /// Like [`Scheduler::schedule`], consulting a closed-loop
    /// [`Policy`] for placement overrides: the policy's
    /// [`Policy::place`] is tried first for every candidate (head and
    /// backfill alike) and the cluster's own packing is the fallback.
    /// With `policy` `None` the pass is byte-identical to `schedule`.
    pub fn schedule_with(
        &mut self,
        now: f64,
        cluster: &mut ClusterState,
        jobs: &[JobSpec],
        mut policy: Option<&mut (dyn Policy + '_)>,
    ) -> SchedulePass {
        let mut place = |cluster: &ClusterState, job: &JobSpec| -> Option<Allocation> {
            if let Some(p) = policy.as_deref_mut() {
                if let Some(alloc) = p.place(job, cluster) {
                    return Some(alloc);
                }
            }
            cluster.try_place(job)
        };
        let mut pass = SchedulePass::default();
        let mut blocked_shadow: Option<f64> = None;
        let mut i = 0;
        while i < self.pending.len() {
            let q = self.pending[i];
            let job = &jobs[q.trace_idx];
            match blocked_shadow {
                None => {
                    if let Some(alloc) = place(cluster, job) {
                        cluster.allocate(&alloc);
                        pass.started.push((q.trace_idx, alloc));
                        self.pending.remove(i);
                        continue; // do not advance i; next job shifted in
                    }
                    if self.policy == SchedulePolicy::FcfsOnly {
                        // Strict FCFS: the blocked head blocks everyone.
                        break;
                    }
                    // Head-of-line blocking: compute the shadow time and
                    // switch to backfill mode.
                    blocked_shadow = Some(self.shadow_time(now));
                    i += 1;
                }
                Some(shadow) => {
                    // Backfill candidates must be guaranteed (by their
                    // requested limit) to clear out before the shadow.
                    if now + job.time_limit <= shadow {
                        if let Some(alloc) = place(cluster, job) {
                            cluster.allocate(&alloc);
                            pass.started.push((q.trace_idx, alloc));
                            self.pending.remove(i);
                            continue;
                        }
                    }
                    i += 1;
                }
            }
        }
        pass
    }

    /// Earliest time the blocked head job might start: the minimum
    /// estimated end among running jobs (conservative single-resource
    /// approximation of EASY's reservation computation). With nothing
    /// running there is nothing to wait for; schedule eagerly.
    fn shadow_time(&self, now: f64) -> f64 {
        self.running.values().map(|r| r.estimated_end).fold(f64::INFINITY, f64::min).max(now)
    }

    /// Queue snapshot (for tests and instrumentation).
    pub fn pending(&self) -> &[QueuedJob] {
        &self.pending
    }

    /// Running jobs holding resources on `node` — the blast radius of a
    /// node failure.
    pub fn running_on_node(&self, node: crate::resources::NodeId) -> Vec<JobId> {
        let mut ids: Vec<JobId> = self
            .running
            .iter()
            .filter(|(_, r)| r.alloc.parts.iter().any(|p| p.node == node))
            .map(|(id, _)| *id)
            .collect();
        ids.sort();
        ids
    }

    /// Running jobs holding at least one GPU on `node` — the candidate
    /// victims of a single-GPU Xid fault there.
    pub fn gpu_residents_on_node(&self, node: crate::resources::NodeId) -> Vec<JobId> {
        let mut ids: Vec<JobId> = self
            .running
            .iter()
            .filter(|(_, r)| r.alloc.parts.iter().any(|p| p.node == node && p.gpus > 0))
            .map(|(id, _)| *id)
            .collect();
        ids.sort();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ClusterSpec;
    use sc_telemetry::record::{SubmissionInterface, UserId};
    use sc_workload::PlannedOutcome;

    fn job(id: u64, gpus: u32, cpus: u32, limit: f64) -> JobSpec {
        JobSpec {
            job_id: JobId(id),
            user: UserId(0),
            arrival: 0.0,
            interface: SubmissionInterface::Other,
            gpus,
            cpus,
            mem_gib: 16.0,
            time_limit: limit,
            class: None,
            outcome: PlannedOutcome::Complete { work_secs: limit / 2.0 },
            archetype: None,
            truth_params: None,
            idle_gpus: 0,
            truth_seed: 0,
            checkpointable: false,
            max_restarts: 0,
        }
    }

    fn one_node_cluster() -> ClusterState {
        let mut spec = ClusterSpec::supercloud();
        spec.nodes = 1; // 2 GPUs
        ClusterState::new(spec)
    }

    fn two_node_cluster() -> ClusterState {
        let mut spec = ClusterSpec::supercloud();
        spec.nodes = 2; // 4 GPUs
        ClusterState::new(spec)
    }

    #[test]
    fn fcfs_starts_jobs_in_order_when_space_allows() {
        let jobs = vec![job(1, 1, 4, 3600.0), job(2, 1, 4, 3600.0)];
        let mut cluster = one_node_cluster();
        let mut s = Scheduler::new();
        s.submit(0, 0.0);
        s.submit(1, 0.0);
        let pass = s.schedule(0.0, &mut cluster, &jobs);
        assert_eq!(pass.started.len(), 2);
        assert_eq!(pass.started[0].0, 0);
        assert_eq!(pass.started[1].0, 1);
        assert_eq!(s.pending_len(), 0);
    }

    #[test]
    fn head_of_line_blocks_non_backfillable_jobs() {
        // 4-GPU cluster. Job A holds 3 GPUs until t=1000 (limit), one
        // GPU stays free. Head job B needs 4 GPUs; job C (1 GPU, long
        // limit) physically fits in the free GPU but must NOT jump ahead
        // because it would outlive the shadow time.
        let jobs = vec![job(1, 3, 8, 1000.0), job(2, 4, 8, 1000.0), job(3, 1, 4, 5000.0)];
        let mut cluster = two_node_cluster();
        let mut s = Scheduler::new();
        s.submit(0, 0.0);
        let p = s.schedule(0.0, &mut cluster, &jobs);
        assert_eq!(p.started.len(), 1);
        s.mark_running(
            JobId(1),
            RunningJob {
                trace_idx: 0,
                alloc: p.started[0].1.clone(),
                start_time: 0.0,
                estimated_end: 1000.0,
                stretch: 1.0,
                power_cap_w: None,
            },
        );
        s.submit(1, 1.0);
        s.submit(2, 2.0);
        let p = s.schedule(2.0, &mut cluster, &jobs);
        assert!(p.started.is_empty(), "nothing may start: head blocked, C too long");
        assert_eq!(s.pending_len(), 2);
    }

    #[test]
    fn short_job_backfills_ahead_of_blocked_head() {
        // Same as above but C's limit (500 s) fits before the shadow
        // time (1000 s), so it backfills into the free GPU.
        let jobs = vec![job(1, 3, 8, 1000.0), job(2, 4, 8, 1000.0), job(3, 1, 4, 500.0)];
        let mut cluster = two_node_cluster();
        let mut s = Scheduler::new();
        s.submit(0, 0.0);
        let p = s.schedule(0.0, &mut cluster, &jobs);
        s.mark_running(
            JobId(1),
            RunningJob {
                trace_idx: 0,
                alloc: p.started[0].1.clone(),
                start_time: 0.0,
                estimated_end: 1000.0,
                stretch: 1.0,
                power_cap_w: None,
            },
        );
        s.submit(1, 1.0);
        s.submit(2, 2.0);
        let p = s.schedule(2.0, &mut cluster, &jobs);
        assert_eq!(p.started.len(), 1);
        assert_eq!(p.started[0].0, 2, "the short job backfills");
        // FCFS order preserved for the blocked head.
        assert_eq!(s.pending()[0].trace_idx, 1);
    }

    #[test]
    fn fcfs_only_policy_blocks_backfillable_job() {
        // Identical setup to `short_job_backfills_ahead_of_blocked_head`
        // but with the strict-FCFS ablation: nothing may start.
        let jobs = vec![job(1, 3, 8, 1000.0), job(2, 4, 8, 1000.0), job(3, 1, 4, 500.0)];
        let mut cluster = two_node_cluster();
        let mut s = Scheduler::with_policy(SchedulePolicy::FcfsOnly);
        assert_eq!(s.policy(), SchedulePolicy::FcfsOnly);
        s.submit(0, 0.0);
        let p = s.schedule(0.0, &mut cluster, &jobs);
        s.mark_running(
            JobId(1),
            RunningJob {
                trace_idx: 0,
                alloc: p.started[0].1.clone(),
                start_time: 0.0,
                estimated_end: 1000.0,
                stretch: 1.0,
                power_cap_w: None,
            },
        );
        s.submit(1, 1.0);
        s.submit(2, 2.0);
        let p = s.schedule(2.0, &mut cluster, &jobs);
        assert!(p.started.is_empty(), "strict FCFS must not backfill");
        assert_eq!(s.pending_len(), 2);
    }

    #[test]
    fn finish_releases_bookkeeping() {
        let jobs = vec![job(1, 1, 4, 100.0)];
        let mut cluster = one_node_cluster();
        let mut s = Scheduler::new();
        s.submit(0, 0.0);
        let p = s.schedule(0.0, &mut cluster, &jobs);
        s.mark_running(
            JobId(1),
            RunningJob {
                trace_idx: 0,
                alloc: p.started[0].1.clone(),
                start_time: 0.0,
                estimated_end: 100.0,
                stretch: 1.0,
                power_cap_w: None,
            },
        );
        assert_eq!(s.running_len(), 1);
        let r = s.finish(JobId(1));
        cluster.release(&r.alloc);
        assert_eq!(s.running_len(), 0);
        assert_eq!(cluster.gpus_in_use(), 0);
    }

    #[test]
    #[should_panic(expected = "finished job must be running")]
    fn finishing_unknown_job_is_a_bug() {
        let mut s = Scheduler::new();
        let _ = s.finish(JobId(99));
    }
}
