//! The Table I hardware model of the Supercloud system.

use serde::{Deserialize, Serialize};

/// One GPU's specification (Nvidia Volta V100 in the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Marketing name.
    pub model: String,
    /// Device memory, GiB (V100: 32 GB).
    pub mem_gib: f64,
    /// Board power limit, watts (V100: 300 W).
    pub tdp_w: f64,
}

impl GpuSpec {
    /// The V100 of Table I.
    pub fn v100() -> Self {
        GpuSpec {
            model: "Nvidia Volta V100".to_string(),
            mem_gib: 32.0,
            tdp_w: sc_telemetry::gpu_power::V100_TDP_W,
        }
    }
}

/// One compute node's specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Schedulable CPU threads per node. Table I: two Intel Xeon Gold
    /// 6248 CPUs, 20 cores each, 2-way hyperthreading → 80 threads.
    pub cpu_threads: u32,
    /// Host RAM, GiB (Table I: 384 GB).
    pub mem_gib: f64,
    /// GPUs per node (Table I: 2).
    pub gpus: u32,
    /// Local SSD, TB (Table I: 1 TB).
    pub local_ssd_tb: f64,
    /// Local HDD, TB (Table I: 3.8 TB).
    pub local_hdd_tb: f64,
}

impl NodeSpec {
    /// The Supercloud node of Table I / Fig. 1.
    pub fn supercloud() -> Self {
        NodeSpec { cpu_threads: 80, mem_gib: 384.0, gpus: 2, local_ssd_tb: 1.0, local_hdd_tb: 3.8 }
    }
}

/// The whole-cluster specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Number of nodes (Table I: 224).
    pub nodes: u32,
    /// Per-node hardware.
    pub node: NodeSpec,
    /// GPU hardware.
    pub gpu: GpuSpec,
    /// Shared storage, TB (Table I: 873 TB SSD).
    pub shared_storage_tb: f64,
    /// Interconnect description (documentary; the simulator does not
    /// model network contention — see DESIGN.md).
    pub interconnect: String,
    /// CPU-only nodes added after the study window ("in the interim,
    /// new CPU-only hardware also has been added to the system",
    /// Sec. II). Zero during the paper's measurement period.
    pub cpu_only_nodes: u32,
    /// Nodes per leaf switch of the "two-layer partial fat-tree":
    /// multi-node jobs are "placed as densely as possible, either on
    /// the same node or on neighboring nodes on the network
    /// interconnect" (Sec. V), so the placer prefers same-switch nodes.
    pub nodes_per_switch: u32,
    /// Optional slow GPU tier (Sec. VIII Recommendation II: "mix
    /// [latest-and-fastest GPUs] with some less-expensive, less-powerful
    /// … GPUs for exploratory and IDE jobs"). Interactive jobs route to
    /// this tier; compute-bound work there stretches by `1 / speed`.
    pub slow_tier: Option<SlowTierSpec>,
}

/// A slow GPU tier appended to the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlowTierSpec {
    /// Number of slow nodes (same per-node GPU count as the fast tier).
    pub nodes: u32,
    /// Relative speed of a slow GPU (fast tier = 1.0).
    pub speed: f64,
}

impl ClusterSpec {
    /// The Supercloud of Table I: 224 nodes, 448 V100s.
    pub fn supercloud() -> Self {
        ClusterSpec {
            nodes: 224,
            node: NodeSpec::supercloud(),
            gpu: GpuSpec::v100(),
            shared_storage_tb: 873.0,
            interconnect: "100 Gb/s Omnipath two-layer partial fat-tree".to_string(),
            cpu_only_nodes: 0,
            nodes_per_switch: 28,
            slow_tier: None,
        }
    }

    /// Node layout: `[0, nodes)` fast GPU nodes, then the slow tier,
    /// then CPU-only nodes. Returns the GPU count of node `idx`.
    pub fn gpus_of_node(&self, idx: u32) -> u32 {
        let slow = self.slow_tier.map_or(0, |t| t.nodes);
        if idx < self.nodes + slow {
            self.node.gpus
        } else {
            0
        }
    }

    /// Whether node `idx` belongs to the slow tier.
    pub fn is_slow_node(&self, idx: u32) -> bool {
        match self.slow_tier {
            Some(t) => idx >= self.nodes && idx < self.nodes + t.nodes,
            None => false,
        }
    }

    /// Total schedulable nodes (fast + slow + CPU-only).
    pub fn total_nodes(&self) -> u32 {
        self.nodes + self.slow_tier.map_or(0, |t| t.nodes) + self.cpu_only_nodes
    }

    /// The post-study system evolution of Sec. II: the Table I cluster
    /// plus `cpu_only_nodes` CPU-only nodes serving the full-node CPU
    /// campaigns that otherwise queue behind each other.
    pub fn supercloud_expanded(cpu_only_nodes: u32) -> Self {
        ClusterSpec { cpu_only_nodes, ..ClusterSpec::supercloud() }
    }

    /// Total GPUs in the cluster (fast tier plus any slow tier).
    pub fn total_gpus(&self) -> u32 {
        (self.nodes + self.slow_tier.map_or(0, |t| t.nodes)) * self.node.gpus
    }

    /// Total CPU threads in the cluster.
    pub fn total_cpu_threads(&self) -> u32 {
        self.nodes * self.node.cpu_threads
    }

    /// Renders Table I as text rows for the experiment report.
    pub fn table1(&self) -> Vec<(String, String)> {
        vec![
            ("Number of Nodes".into(), self.nodes.to_string()),
            ("Number of CPU Cores".into(), format!("{} threads", self.total_cpu_threads())),
            ("Node RAM".into(), format!("{} GB", self.node.mem_gib)),
            ("Number of GPUs".into(), self.total_gpus().to_string()),
            ("GPUs per Node".into(), self.node.gpus.to_string()),
            ("GPU Type".into(), self.gpu.model.clone()),
            ("GPU RAM".into(), format!("{} GB", self.gpu.mem_gib)),
            ("Interconnect".into(), self.interconnect.clone()),
            ("Shared Storage".into(), format!("{} TB SSD", self.shared_storage_tb)),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn supercloud_matches_table1() {
        let c = ClusterSpec::supercloud();
        assert_eq!(c.nodes, 224);
        assert_eq!(c.total_gpus(), 448);
        assert_eq!(c.total_cpu_threads(), 17_920); // 8960 cores, 2-way HT
        assert_eq!(c.node.gpus, 2);
        assert_eq!(c.gpu.mem_gib, 32.0);
        assert_eq!(c.gpu.tdp_w, 300.0);
    }

    #[test]
    fn expanded_cluster_adds_cpu_only_nodes() {
        let c = ClusterSpec::supercloud_expanded(64);
        assert_eq!(c.cpu_only_nodes, 64);
        assert_eq!(c.total_gpus(), 448, "expansion adds no GPUs");
        let state = crate::resources::ClusterState::new(c);
        assert_eq!(state.nodes().len(), 224 + 64);
        assert_eq!(state.nodes()[250].gpus_free, 0);
        assert_eq!(state.nodes()[250].cpus_free, 80);
    }

    #[test]
    fn table1_rows_cover_key_specs() {
        let rows = ClusterSpec::supercloud().table1();
        assert!(rows.iter().any(|(k, v)| k == "Number of GPUs" && v == "448"));
        assert!(rows.iter().any(|(k, _)| k == "Interconnect"));
    }
}
