//! Closed-loop scheduling-policy hooks for the event loop.
//!
//! The opportunity studies (power capping, GPU sharing, tiering) score
//! policies *offline*, from the joined dataset. This module is the
//! *closed-loop* counterpart: a [`Policy`] rides inside the
//! discrete-event loop and changes what the simulated cluster actually
//! does — placements, dispatch-time stretch factors, per-job power caps
//! — so an A/B harness can measure what the analytic models only
//! predict.
//!
//! Hooks are deliberately narrow and deterministic:
//!
//! - [`Policy::admit`] observes every submission (and resubmission).
//! - [`Policy::place`] may override placement for one job; returning
//!   `None` falls through to the cluster's own packing.
//! - [`Policy::dispatch`] runs once per started attempt and returns a
//!   [`Dispatch`]: an extra run-time stretch, an optional per-job power
//!   cap (applied to the job's synthesized telemetry), and the
//!   [`PolicyDecision`] that the loop records as an `sc-obs` event.
//! - [`Policy::tick`] observes scheduler wake-ups.
//! - [`Policy::release`] observes attempts leaving the cluster, so
//!   stateful policies (co-location slots) can clean up.
//!
//! Every hook runs on the single-threaded event loop and must be a pure
//! function of the simulation state it has seen — no wall clock, no
//! ambient randomness — so policy runs stay byte-identical at any
//! `sc_par` thread budget.

use crate::resources::{Allocation, ClusterState};
use sc_telemetry::record::JobId;
use sc_workload::JobSpec;

/// What [`Policy::dispatch`] tells the event loop about one started
/// attempt.
#[derive(Debug, Clone, PartialEq)]
pub struct Dispatch {
    /// Extra run-time stretch factor, multiplied onto any tier stretch.
    /// Values below 1 are clamped to 1 — a policy cannot speed a job up.
    pub stretch: f64,
    /// Per-job GPU power cap, watts. The epilog clamps the job's
    /// synthesized power telemetry to this value, so capped jobs report
    /// capped boards downstream (energy accounting, Fig. 9 analyses).
    pub power_cap_w: Option<f64>,
    /// The decision to record as an `sc-obs` event, if the policy acted
    /// on this job.
    pub decision: Option<PolicyDecision>,
}

impl Default for Dispatch {
    fn default() -> Self {
        Dispatch { stretch: 1.0, power_cap_w: None, decision: None }
    }
}

/// One policy decision, recorded as an `sc-obs` event by the event loop
/// (`cap_throttle`, `coshare_place`, `tier_route`) and counted in
/// [`crate::sim::SimStats`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PolicyDecision {
    /// The job's predicted peak power exceeds the cap; its run stretches
    /// by the DVFS slowdown model.
    CapThrottle {
        /// The enforced cap, watts.
        cap_w: f64,
        /// The applied slowdown factor (≥ 1).
        slowdown: f64,
    },
    /// The job was placed as a guest on a GPU already running `host`.
    CosharePlace {
        /// The job whose GPU this guest shares.
        host: JobId,
        /// The guest's interference slowdown factor (≥ 1).
        slowdown: f64,
    },
    /// The job was routed between tiers by a routing policy.
    TierRoute {
        /// Whether it landed on the slow tier.
        slow: bool,
    },
}

/// A closed-loop scheduling policy, driven by the event loop through
/// [`crate::sim::Simulation::run_policy`].
///
/// All methods default to no-ops so a policy implements only the hooks
/// it needs. Implementations must be deterministic (see the module
/// docs).
pub trait Policy: std::fmt::Debug {
    /// Short stable name, used in reports and trace labels.
    fn name(&self) -> &'static str;

    /// A job was submitted (or resubmitted after a failure) at `now`.
    fn admit(&mut self, _job: &JobSpec, _now: f64) {}

    /// Optionally overrides placement for `job`. Returning `None` lets
    /// the cluster's own dense packing run; returning `Some` commits
    /// the allocation as-is (it must fit — the cluster asserts).
    fn place(&mut self, _job: &JobSpec, _cluster: &ClusterState) -> Option<Allocation> {
        None
    }

    /// Runs once per started attempt, after placement.
    fn dispatch(&mut self, _job: &JobSpec, _alloc: &Allocation, _now: f64) -> Dispatch {
        Dispatch::default()
    }

    /// A scheduler wake-up at `now` (periodic observation point).
    fn tick(&mut self, _now: f64, _cluster: &ClusterState) {}

    /// The job's current attempt left the cluster (finished or was
    /// killed) at `now`.
    fn release(&mut self, _job: JobId, _now: f64) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct Noop;
    impl Policy for Noop {
        fn name(&self) -> &'static str {
            "noop"
        }
    }

    #[test]
    fn default_dispatch_is_identity() {
        let d = Dispatch::default();
        assert_eq!(d.stretch, 1.0);
        assert_eq!(d.power_cap_w, None);
        assert!(d.decision.is_none());
    }

    #[test]
    fn noop_policy_defaults_do_nothing() {
        let mut p = Noop;
        assert_eq!(p.name(), "noop");
        let cluster = ClusterState::new(crate::spec::ClusterSpec::supercloud());
        let job = sc_workload::JobSpec {
            job_id: JobId(1),
            user: sc_telemetry::record::UserId(0),
            arrival: 0.0,
            interface: sc_telemetry::record::SubmissionInterface::Other,
            gpus: 1,
            cpus: 4,
            mem_gib: 16.0,
            time_limit: 3600.0,
            class: None,
            outcome: sc_workload::PlannedOutcome::Complete { work_secs: 100.0 },
            archetype: None,
            truth_params: None,
            idle_gpus: 0,
            truth_seed: 0,
            checkpointable: false,
            max_restarts: 0,
        };
        p.admit(&job, 0.0);
        assert!(p.place(&job, &cluster).is_none());
        assert_eq!(p.dispatch(&job, &Allocation::default(), 0.0), Dispatch::default());
        p.tick(1.0, &cluster);
        p.release(JobId(1), 2.0);
    }
}
