//! Per-job-size reliability accounting: ETTF/ETTR, failure rates per
//! 1k GPU-days, and restart overhead, bucketed by allocated GPU count.
//!
//! "Revisiting Reliability in Large-Scale ML Research Clusters"
//! (arXiv 2410.21680) shows that per-job failure hazard grows with the
//! job's hardware footprint: a job spanning N nodes is exposed to N
//! nodes' worth of hardware faults. This module gives the simulator a
//! first-class accumulator for that size dependence. The event loop
//! feeds it single-threaded, so every derived metric is deterministic
//! across `SC_PAR_THREADS` budgets by construction.
//!
//! Size classes are half-open GPU-count intervals defined by a sorted
//! edge list: edges `[1, 2, 8]` produce the four canonical buckets
//! `<=1`, `2`, `3-8`, and `>8` GPUs. CPU-only jobs (0 GPUs) land in
//! the first bucket alongside single-GPU jobs; their exposure is
//! wall-clock only (zero GPU-seconds) but they still fail and restart.

use serde::{Deserialize, Serialize};

/// Canonical size-bucket edges used by the fixed-width ledger arrays in
/// [`GoodputAccounting`](crate::GoodputAccounting) and anywhere a
/// compile-time bucket count is required.
pub const SIZE_BUCKET_EDGES: [u32; 3] = [1, 2, 8];

/// Number of canonical size buckets (`SIZE_BUCKET_EDGES.len() + 1`).
pub const SIZE_BUCKET_COUNT: usize = SIZE_BUCKET_EDGES.len() + 1;

/// Seconds per day, used by the failures-per-1k-GPU-days rate.
const SECS_PER_DAY: f64 = 86_400.0;

/// Map a GPU count to its canonical size bucket (see
/// [`SIZE_BUCKET_EDGES`]). Total over all inputs: every count lands in
/// exactly one bucket.
pub fn size_bucket(gpus: u32) -> usize {
    bucket_for(&SIZE_BUCKET_EDGES, gpus)
}

/// Human-readable label for canonical bucket `i` (e.g. `"3-8 GPU"`).
pub fn size_bucket_label(i: usize) -> String {
    label_for(&SIZE_BUCKET_EDGES, i)
}

fn bucket_for(edges: &[u32], gpus: u32) -> usize {
    edges.iter().position(|&e| gpus <= e).unwrap_or(edges.len())
}

fn label_for(edges: &[u32], i: usize) -> String {
    if edges.is_empty() {
        return "all".to_string();
    }
    if i == 0 {
        if edges[0] <= 1 {
            return format!("<={} GPU", edges[0]);
        }
        return format!("0-{} GPU", edges[0]);
    }
    if i >= edges.len() {
        return format!(">{} GPU", edges[edges.len() - 1]);
    }
    let lo = edges[i - 1] + 1;
    let hi = edges[i];
    if lo == hi {
        format!("{lo} GPU")
    } else {
        format!("{lo}-{hi} GPU")
    }
}

/// Reliability counters for one job-size class.
///
/// All fields are raw sums accumulated by the event loop; the derived
/// metrics (ETTF, ETTR, rates) are computed on demand so the struct
/// stays mergeable and `Copy`.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SizeClassStats {
    /// Distinct jobs whose GPU count falls in this bucket.
    pub jobs: u64,
    /// Execution attempts started (first runs plus restarts).
    pub attempts: u64,
    /// Attempts killed by an injected failure.
    pub failures: u64,
    /// Wall-clock seconds of attempt exposure (sum of attempt durations).
    pub exposed_wall_secs: f64,
    /// GPU-seconds of attempt exposure (`wall x allocated GPUs`).
    pub exposed_gpu_secs: f64,
    /// GPU-seconds of completed, non-discarded work.
    pub useful_gpu_secs: f64,
    /// GPU-seconds discarded when attempts were killed (restart overhead).
    pub lost_gpu_secs: f64,
    /// GPU-seconds allocated but idle within attempts.
    pub idle_gpu_secs: f64,
    /// Wall-clock seconds between a failure kill and the restart of the
    /// next attempt (backoff + queue wait + scheduling latency).
    pub recovery_secs: f64,
    /// Number of observed kill-to-restart recoveries.
    pub recoveries: u64,
}

impl SizeClassStats {
    /// Effective (observed) time to failure: mean wall-clock exposure
    /// between injected failures. `None` when the class saw no failure.
    pub fn ettf_secs(&self) -> Option<f64> {
        if self.failures == 0 {
            None
        } else {
            Some(self.exposed_wall_secs / self.failures as f64)
        }
    }

    /// Effective time to recovery: mean kill-to-restart gap. `None`
    /// when no killed attempt was restarted (e.g. retries exhausted).
    pub fn ettr_secs(&self) -> Option<f64> {
        if self.recoveries == 0 {
            None
        } else {
            Some(self.recovery_secs / self.recoveries as f64)
        }
    }

    /// Failure rate normalized to 1000 GPU-days of exposure, the unit
    /// used by arXiv 2410.21680. Zero when the class has no GPU exposure.
    pub fn failures_per_1k_gpu_days(&self) -> f64 {
        let gpu_days = self.exposed_gpu_secs / SECS_PER_DAY;
        if gpu_days <= 0.0 {
            0.0
        } else {
            self.failures as f64 / gpu_days * 1000.0
        }
    }

    /// Mean GPU-seconds of work discarded per failure. `None` when the
    /// class saw no failure.
    pub fn restart_overhead_gpu_secs(&self) -> Option<f64> {
        if self.failures == 0 {
            None
        } else {
            Some(self.lost_gpu_secs / self.failures as f64)
        }
    }

    /// Goodput fraction for this class: useful / exposed GPU-seconds.
    /// `None` when the class has no GPU exposure (e.g. CPU-only jobs).
    pub fn goodput_fraction(&self) -> Option<f64> {
        if self.exposed_gpu_secs <= 0.0 {
            None
        } else {
            Some(self.useful_gpu_secs / self.exposed_gpu_secs)
        }
    }

    /// Absolute error of the per-class ledger identity
    /// `useful + lost + idle == exposed` (GPU-seconds).
    pub fn balance_error(&self) -> f64 {
        (self.useful_gpu_secs + self.lost_gpu_secs + self.idle_gpu_secs - self.exposed_gpu_secs)
            .abs()
    }
}

/// Reliability accumulator over configurable job-size classes.
///
/// Built once per simulation from the configured bucket edges and fed
/// exclusively by the single-threaded event loop, so rendering it is
/// byte-identical across `SC_PAR_THREADS` budgets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReliabilityStats {
    /// Sorted, strictly increasing GPU-count upper edges; `edges.len()+1`
    /// buckets, the last one open-ended.
    pub edges: Vec<u32>,
    /// Per-class counters, index `i` covering the `i`-th interval.
    pub buckets: Vec<SizeClassStats>,
}

impl Default for ReliabilityStats {
    fn default() -> Self {
        Self::new(&SIZE_BUCKET_EDGES)
    }
}

impl ReliabilityStats {
    /// Build an empty accumulator over the given bucket edges. Edges
    /// must be strictly increasing (validated upstream by the scenario
    /// layer); an empty slice collapses to a single `all` bucket.
    pub fn new(edges: &[u32]) -> Self {
        Self { edges: edges.to_vec(), buckets: vec![SizeClassStats::default(); edges.len() + 1] }
    }

    /// Bucket index for a job allocating `gpus` GPUs.
    pub fn bucket_index(&self, gpus: u32) -> usize {
        bucket_for(&self.edges, gpus)
    }

    /// Label for bucket `i`, derived from the edge list.
    pub fn label(&self, i: usize) -> String {
        label_for(&self.edges, i)
    }

    /// Record a distinct job with the given GPU allocation.
    pub fn observe_job(&mut self, gpus: u32) {
        let i = self.bucket_index(gpus);
        self.buckets[i].jobs += 1;
    }

    /// Record the start of an execution attempt.
    pub fn observe_attempt_start(&mut self, gpus: u32) {
        let i = self.bucket_index(gpus);
        self.buckets[i].attempts += 1;
    }

    /// Record a kill-to-restart recovery gap.
    pub fn observe_recovery(&mut self, gpus: u32, gap_secs: f64) {
        let i = self.bucket_index(gpus);
        self.buckets[i].recovery_secs += gap_secs;
        self.buckets[i].recoveries += 1;
    }

    /// Settle one finished (or killed) attempt into the per-class
    /// ledger. `failed` marks attempts ended by an injected failure.
    #[allow(clippy::too_many_arguments)]
    pub fn settle_attempt(
        &mut self,
        gpus: u32,
        wall_secs: f64,
        useful_gpu_secs: f64,
        lost_gpu_secs: f64,
        idle_gpu_secs: f64,
        failed: bool,
    ) {
        let b = &mut self.buckets[bucket_for(&self.edges, gpus)];
        b.exposed_wall_secs += wall_secs;
        b.exposed_gpu_secs += wall_secs * gpus as f64;
        b.useful_gpu_secs += useful_gpu_secs;
        b.lost_gpu_secs += lost_gpu_secs;
        b.idle_gpu_secs += idle_gpu_secs;
        if failed {
            b.failures += 1;
        }
    }

    /// Sum of a field across all classes, for cross-checks against the
    /// global goodput ledger.
    pub fn total<F: Fn(&SizeClassStats) -> f64>(&self, f: F) -> f64 {
        self.buckets.iter().map(f).sum()
    }

    /// Total injected-failure kills across all classes.
    pub fn total_failures(&self) -> u64 {
        self.buckets.iter().map(|b| b.failures).sum()
    }

    /// Fixed-width text table of the per-size-class metrics, suitable
    /// for golden tests (deterministic formatting, no wall-clock).
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str("reliability by job size class\n");
        s.push_str(
            "  class      jobs  attempts  failures  per-1k-gpu-days  ettf-h  ettr-min  lost/fail-gpu-h  goodput\n",
        );
        for (i, b) in self.buckets.iter().enumerate() {
            let ettf = b
                .ettf_secs()
                .map(|v| format!("{:7.2}", v / 3600.0))
                .unwrap_or_else(|| format!("{:>7}", "-"));
            let ettr = b
                .ettr_secs()
                .map(|v| format!("{:8.2}", v / 60.0))
                .unwrap_or_else(|| format!("{:>8}", "-"));
            let overhead = b
                .restart_overhead_gpu_secs()
                .map(|v| format!("{:15.3}", v / 3600.0))
                .unwrap_or_else(|| format!("{:>15}", "-"));
            let goodput = b
                .goodput_fraction()
                .map(|v| format!("{v:7.4}"))
                .unwrap_or_else(|| format!("{:>7}", "-"));
            s.push_str(&format!(
                "  {:<9} {:>5} {:>9} {:>9} {:>16.3} {} {} {} {}\n",
                self.label(i),
                b.jobs,
                b.attempts,
                b.failures,
                b.failures_per_1k_gpu_days(),
                ettf,
                ettr,
                overhead,
                goodput,
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_buckets_partition_gpu_counts() {
        assert_eq!(size_bucket(0), 0);
        assert_eq!(size_bucket(1), 0);
        assert_eq!(size_bucket(2), 1);
        assert_eq!(size_bucket(3), 2);
        assert_eq!(size_bucket(8), 2);
        assert_eq!(size_bucket(9), 3);
        assert_eq!(size_bucket(4096), 3);
        assert_eq!(size_bucket_label(0), "<=1 GPU");
        assert_eq!(size_bucket_label(1), "2 GPU");
        assert_eq!(size_bucket_label(2), "3-8 GPU");
        assert_eq!(size_bucket_label(3), ">8 GPU");
    }

    #[test]
    fn custom_edges_and_degenerate_edge_lists_work() {
        let r = ReliabilityStats::new(&[4, 16]);
        assert_eq!(r.buckets.len(), 3);
        assert_eq!(r.bucket_index(0), 0);
        assert_eq!(r.bucket_index(4), 0);
        assert_eq!(r.bucket_index(5), 1);
        assert_eq!(r.bucket_index(17), 2);
        assert_eq!(r.label(0), "0-4 GPU");
        assert_eq!(r.label(1), "5-16 GPU");
        assert_eq!(r.label(2), ">16 GPU");

        let all = ReliabilityStats::new(&[]);
        assert_eq!(all.buckets.len(), 1);
        assert_eq!(all.bucket_index(123), 0);
        assert_eq!(all.label(0), "all");
    }

    #[test]
    fn derived_metrics_match_hand_computation() {
        let mut r = ReliabilityStats::default();
        r.observe_job(2);
        r.observe_attempt_start(2);
        // One failed attempt: 1000 s wall on 2 GPUs, 1200 useful,
        // 600 lost, 200 idle GPU-seconds.
        r.settle_attempt(2, 1000.0, 1200.0, 600.0, 200.0, true);
        r.observe_recovery(2, 90.0);
        r.observe_attempt_start(2);
        r.settle_attempt(2, 500.0, 900.0, 0.0, 100.0, false);

        let b = &r.buckets[1];
        assert_eq!(b.jobs, 1);
        assert_eq!(b.attempts, 2);
        assert_eq!(b.failures, 1);
        assert!((b.exposed_wall_secs - 1500.0).abs() < 1e-9);
        assert!((b.exposed_gpu_secs - 3000.0).abs() < 1e-9);
        assert!((b.ettf_secs().unwrap() - 1500.0).abs() < 1e-9);
        assert!((b.ettr_secs().unwrap() - 90.0).abs() < 1e-9);
        assert!((b.restart_overhead_gpu_secs().unwrap() - 600.0).abs() < 1e-9);
        assert!((b.goodput_fraction().unwrap() - 0.7).abs() < 1e-9);
        assert!(b.balance_error() < 1e-9);
        // 3000 GPU-s = 3000/86400 GPU-days; 1 failure.
        let expected = 1000.0 / (3000.0 / 86_400.0);
        assert!((b.failures_per_1k_gpu_days() - expected).abs() < 1e-6);
        assert_eq!(r.total_failures(), 1);
    }

    #[test]
    fn empty_classes_render_dashes() {
        let r = ReliabilityStats::default();
        let text = r.render();
        assert!(text.contains("reliability by job size class"));
        assert!(text.contains(">8 GPU"));
        assert!(text.contains(" - "));
    }
}
