//! Node-level resource accounting and placement.
//!
//! The paper's key scheduling property (Sec. III): GPUs are **exclusive**
//! ("Supercloud does not co-locate jobs on the same GPU at this point.
//! However, it allows CPU resources to be divided among jobs"), and
//! multi-GPU jobs are "placed as densely as possible, either on the same
//! node or on neighboring nodes".

use crate::spec::ClusterSpec;
use sc_workload::JobSpec;
use serde::{Deserialize, Serialize};

/// Index of a node within the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// A job's slice of one node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeAlloc {
    /// The node.
    pub node: NodeId,
    /// GPUs taken on this node.
    pub gpus: u32,
    /// CPU threads taken on this node.
    pub cpus: u32,
    /// Host memory taken on this node, GiB.
    pub mem_gib: f64,
}

/// A complete allocation for one job, possibly spanning nodes.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Allocation {
    /// Per-node slices.
    pub parts: Vec<NodeAlloc>,
}

impl Allocation {
    /// Total GPUs in the allocation.
    pub fn total_gpus(&self) -> u32 {
        self.parts.iter().map(|p| p.gpus).sum()
    }

    /// Number of distinct nodes used.
    pub fn node_count(&self) -> usize {
        self.parts.len()
    }

    /// Number of distinct leaf switches the allocation touches — 1
    /// means the job's traffic never crosses the fat-tree spine.
    pub fn switch_count(&self, nodes_per_switch: u32) -> usize {
        assert!(nodes_per_switch > 0, "need at least one node per switch");
        let mut switches: Vec<u32> =
            self.parts.iter().map(|p| p.node.0 / nodes_per_switch).collect();
        switches.sort_unstable();
        switches.dedup();
        switches.len()
    }
}

/// Free capacity of one node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeState {
    /// Free CPU threads.
    pub cpus_free: u32,
    /// Free host memory, GiB.
    pub mem_free_gib: f64,
    /// Free GPUs.
    pub gpus_free: u32,
}

/// Mutable cluster state: free resources per node.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterState {
    spec: ClusterSpec,
    nodes: Vec<NodeState>,
}

impl ClusterState {
    /// A fully free cluster: the fast GPU nodes of Table I, then any
    /// slow-tier GPU nodes, then CPU-only expansion nodes (zero GPUs —
    /// GPU placement skips them naturally).
    pub fn new(spec: ClusterSpec) -> Self {
        let nodes = (0..spec.total_nodes())
            .map(|i| NodeState {
                cpus_free: spec.node.cpu_threads,
                mem_free_gib: spec.node.mem_gib,
                gpus_free: spec.gpus_of_node(i),
            })
            .collect();
        ClusterState { spec, nodes }
    }

    /// The hardware spec.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// Per-node free capacities.
    pub fn nodes(&self) -> &[NodeState] {
        &self.nodes
    }

    /// Total free GPUs.
    pub fn gpus_free(&self) -> u32 {
        self.nodes.iter().map(|n| n.gpus_free).sum()
    }

    /// GPUs currently allocated.
    pub fn gpus_in_use(&self) -> u32 {
        self.spec.total_gpus() - self.gpus_free()
    }

    /// Attempts to find an allocation for `job` without mutating state.
    ///
    /// GPU jobs are packed densely: nodes with the most free GPUs are
    /// taken first so a 2-GPU job lands on one node whenever possible.
    /// CPU jobs need a single node with the full CPU/memory request free
    /// — which is why they queue behind each other while GPU jobs
    /// co-locate (Fig. 3b).
    pub fn try_place(&self, job: &JobSpec) -> Option<Allocation> {
        if job.is_gpu_job() {
            // Tier routing (Sec. VIII Recommendation II): with a slow
            // tier configured, interactive sessions go to the slow GPUs
            // and everything else stays on the fast tier.
            let route_slow = self.spec.slow_tier.is_some()
                && job.interface == sc_telemetry::record::SubmissionInterface::Interactive;
            self.try_place_gpu_routed(job, route_slow)
        } else {
            self.try_place_cpu(job)
        }
    }

    /// GPU placement with an explicit tier choice, for routing policies
    /// that override the interface-based default: `route_slow` selects
    /// the slow tier when one is configured (and is ignored otherwise).
    pub fn try_place_gpu_routed(&self, job: &JobSpec, route_slow: bool) -> Option<Allocation> {
        let g_total = job.gpus;
        let nps = self.spec.nodes_per_switch.max(1);
        let mut order: Vec<usize> = (0..self.nodes.len())
            .filter(|&i| {
                self.spec.slow_tier.is_none() || (self.spec.is_slow_node(i as u32) == route_slow)
            })
            .collect();
        // Dense packing: most free GPUs first; ties prefer the leaf
        // switch with the most free GPUs (keeping multi-node jobs on
        // "neighboring nodes on the network interconnect"); final
        // tie-break by index keeps placement deterministic.
        let mut switch_free: Vec<u32> = vec![0; self.nodes.len() / nps as usize + 1];
        for (i, n) in self.nodes.iter().enumerate() {
            switch_free[i / nps as usize] += n.gpus_free;
        }
        order.sort_by(|&a, &b| {
            self.nodes[b]
                .gpus_free
                .cmp(&self.nodes[a].gpus_free)
                .then(switch_free[b / nps as usize].cmp(&switch_free[a / nps as usize]))
                .then(a.cmp(&b))
        });
        // For single-GPU jobs prefer half-used nodes (best fit) so full
        // pairs stay available for 2-GPU jobs.
        if g_total == 1 {
            order.sort_by(|&a, &b| {
                let key = |n: &NodeState| match n.gpus_free {
                    0 => u32::MAX,
                    f => f, // fewest free GPUs (but > 0) first
                };
                key(&self.nodes[a]).cmp(&key(&self.nodes[b])).then(a.cmp(&b))
            });
        }
        let mut remaining = g_total;
        let mut parts = Vec::new();
        for idx in order {
            if remaining == 0 {
                break;
            }
            let n = &self.nodes[idx];
            if n.gpus_free == 0 {
                continue;
            }
            let take_g = n.gpus_free.min(remaining);
            // CPU/memory shares proportional to the GPUs taken here.
            let cpus = (job.cpus * take_g).div_ceil(g_total);
            let mem = job.mem_gib * take_g as f64 / g_total as f64;
            if n.cpus_free < cpus || n.mem_free_gib < mem {
                continue;
            }
            parts.push(NodeAlloc { node: NodeId(idx as u32), gpus: take_g, cpus, mem_gib: mem });
            remaining -= take_g;
        }
        if remaining == 0 {
            Some(Allocation { parts })
        } else {
            None
        }
    }

    fn try_place_cpu(&self, job: &JobSpec) -> Option<Allocation> {
        for (idx, n) in self.nodes.iter().enumerate() {
            if n.cpus_free >= job.cpus && n.mem_free_gib >= job.mem_gib {
                return Some(Allocation {
                    parts: vec![NodeAlloc {
                        node: NodeId(idx as u32),
                        gpus: 0,
                        cpus: job.cpus,
                        mem_gib: job.mem_gib,
                    }],
                });
            }
        }
        None
    }

    /// Takes a node offline (hardware failure): zeroes its free
    /// capacity so nothing new places there. Resident jobs must have
    /// been killed (their allocations released) first.
    ///
    /// # Panics
    ///
    /// Panics if the node still has resources allocated — killing the
    /// residents is the caller's responsibility.
    pub fn set_offline(&mut self, node: NodeId) {
        let full_gpus = self.spec.gpus_of_node(node.0);
        let n = &mut self.nodes[node.0 as usize];
        assert!(
            n.gpus_free == full_gpus && n.cpus_free == self.spec.node.cpu_threads,
            "node {node:?} still hosts allocations"
        );
        n.gpus_free = 0;
        n.cpus_free = 0;
        n.mem_free_gib = 0.0;
    }

    /// Brings a repaired node back online at full capacity.
    pub fn set_online(&mut self, node: NodeId) {
        let full_gpus = self.spec.gpus_of_node(node.0);
        let n = &mut self.nodes[node.0 as usize];
        n.gpus_free = full_gpus;
        n.cpus_free = self.spec.node.cpu_threads;
        n.mem_free_gib = self.spec.node.mem_gib;
    }

    /// Commits an allocation.
    ///
    /// # Panics
    ///
    /// Panics if the allocation exceeds free capacity (a scheduler bug).
    pub fn allocate(&mut self, alloc: &Allocation) {
        for p in &alloc.parts {
            let n = &mut self.nodes[p.node.0 as usize];
            assert!(n.gpus_free >= p.gpus, "GPU over-allocation on {:?}", p.node);
            assert!(n.cpus_free >= p.cpus, "CPU over-allocation on {:?}", p.node);
            assert!(n.mem_free_gib >= p.mem_gib - 1e-9, "memory over-allocation on {:?}", p.node);
            n.gpus_free -= p.gpus;
            n.cpus_free -= p.cpus;
            n.mem_free_gib -= p.mem_gib;
        }
    }

    /// Releases an allocation.
    ///
    /// # Panics
    ///
    /// Panics if releasing would exceed the node's capacity (a
    /// double-free bug).
    pub fn release(&mut self, alloc: &Allocation) {
        for p in &alloc.parts {
            let n = &mut self.nodes[p.node.0 as usize];
            n.gpus_free += p.gpus;
            n.cpus_free += p.cpus;
            n.mem_free_gib += p.mem_gib;
            assert!(n.gpus_free <= self.spec.node.gpus, "GPU double-free on {:?}", p.node);
            assert!(n.cpus_free <= self.spec.node.cpu_threads, "CPU double-free on {:?}", p.node);
            assert!(
                n.mem_free_gib <= self.spec.node.mem_gib + 1e-6,
                "memory double-free on {:?}",
                p.node
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_telemetry::record::{JobId, SubmissionInterface, UserId};
    use sc_workload::PlannedOutcome;

    fn gpu_job(gpus: u32, cpus: u32) -> JobSpec {
        JobSpec {
            job_id: JobId(1),
            user: UserId(0),
            arrival: 0.0,
            interface: SubmissionInterface::Other,
            gpus,
            cpus,
            mem_gib: 32.0,
            time_limit: 3600.0,
            class: None,
            outcome: PlannedOutcome::Complete { work_secs: 100.0 },
            archetype: None,
            truth_params: None,
            idle_gpus: 0,
            truth_seed: 0,
            checkpointable: false,
            max_restarts: 0,
        }
    }

    fn cpu_job(cpus: u32, mem: f64) -> JobSpec {
        JobSpec { gpus: 0, cpus, mem_gib: mem, ..gpu_job(0, cpus) }
    }

    fn small_cluster(nodes: u32) -> ClusterState {
        let mut spec = ClusterSpec::supercloud();
        spec.nodes = nodes;
        ClusterState::new(spec)
    }

    #[test]
    fn two_gpu_job_lands_on_one_node() {
        let c = small_cluster(4);
        let alloc = c.try_place(&gpu_job(2, 8)).unwrap();
        assert_eq!(alloc.node_count(), 1);
        assert_eq!(alloc.total_gpus(), 2);
    }

    #[test]
    fn large_job_spans_nodes_densely() {
        let c = small_cluster(8);
        let alloc = c.try_place(&gpu_job(6, 24)).unwrap();
        assert_eq!(alloc.node_count(), 3); // 2 GPUs per node
        assert_eq!(alloc.total_gpus(), 6);
    }

    #[test]
    fn single_gpu_jobs_fill_fragments_first() {
        let mut c = small_cluster(3);
        // Occupy one GPU on node 0.
        let first = c.try_place(&gpu_job(1, 4)).unwrap();
        c.allocate(&first);
        let node0 = first.parts[0].node;
        // Next 1-GPU job should prefer the half-used node.
        let second = c.try_place(&gpu_job(1, 4)).unwrap();
        assert_eq!(second.parts[0].node, node0);
    }

    #[test]
    fn placement_fails_when_gpus_exhausted() {
        let mut c = small_cluster(1); // 2 GPUs total
        let a = c.try_place(&gpu_job(2, 8)).unwrap();
        c.allocate(&a);
        assert!(c.try_place(&gpu_job(1, 4)).is_none());
        assert_eq!(c.gpus_in_use(), 2);
        c.release(&a);
        assert_eq!(c.gpus_in_use(), 0);
    }

    #[test]
    fn multi_node_jobs_stay_on_one_switch_when_possible() {
        // 56 nodes = 2 switches of 28. Fragment switch 0 (one GPU taken
        // on each of its nodes) and leave switch 1 untouched: a 6-GPU
        // job should land entirely on switch 1.
        let mut c = small_cluster(56);
        for i in 0..28 {
            let a = Allocation {
                parts: vec![NodeAlloc { node: NodeId(i), gpus: 1, cpus: 4, mem_gib: 8.0 }],
            };
            c.allocate(&a);
        }
        let alloc = c.try_place(&gpu_job(6, 12)).unwrap();
        assert_eq!(alloc.switch_count(28), 1, "allocation spans switches: {alloc:?}");
        assert!(alloc.parts.iter().all(|p| p.node.0 >= 28));
    }

    #[test]
    fn switch_count_counts_distinct_leaves() {
        let a = Allocation {
            parts: vec![
                NodeAlloc { node: NodeId(0), gpus: 2, cpus: 4, mem_gib: 8.0 },
                NodeAlloc { node: NodeId(27), gpus: 2, cpus: 4, mem_gib: 8.0 },
                NodeAlloc { node: NodeId(28), gpus: 2, cpus: 4, mem_gib: 8.0 },
            ],
        };
        assert_eq!(a.switch_count(28), 2);
        assert_eq!(a.switch_count(1), 3);
    }

    #[test]
    fn cpu_job_needs_single_node_with_full_request() {
        let mut c = small_cluster(2);
        // A GPU job taking 16 threads leaves 64 free on its node.
        let g = c.try_place(&gpu_job(2, 16)).unwrap();
        c.allocate(&g);
        // An 80-thread CPU job cannot share that node...
        let a = c.try_place(&cpu_job(80, 360.0)).unwrap();
        assert_ne!(a.parts[0].node, g.parts[0].node);
        c.allocate(&a);
        // ...and a second full-node CPU job now has nowhere to go.
        assert!(c.try_place(&cpu_job(80, 360.0)).is_none());
        // All GPUs are taken, so no further GPU job fits either.
        assert!(c.try_place(&gpu_job(1, 8)).is_none());
    }

    #[test]
    fn cpu_constraint_blocks_gpu_placement() {
        let mut c = small_cluster(1);
        let a = c.try_place(&cpu_job(76, 300.0)).unwrap();
        c.allocate(&a);
        // 4 threads left: a GPU job wanting 8 threads cannot fit.
        assert!(c.try_place(&gpu_job(1, 8)).is_none());
        // But a thin GPU job can.
        assert!(c.try_place(&gpu_job(1, 4)).is_some());
    }

    #[test]
    #[should_panic(expected = "GPU over-allocation")]
    fn over_allocation_is_a_bug() {
        let mut c = small_cluster(1);
        let a = c.try_place(&gpu_job(2, 8)).unwrap();
        c.allocate(&a);
        c.allocate(&a); // double allocate must panic
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_job() -> impl Strategy<Value = JobSpec> {
            (0u32..=8, 1u32..=80, 1.0f64..380.0).prop_map(|(gpus, cpus, mem)| JobSpec {
                gpus,
                cpus,
                mem_gib: mem,
                ..gpu_job(1, 1)
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            #[test]
            fn prop_place_allocate_release_conserves(jobs in proptest::collection::vec(arb_job(), 1..40)) {
                let mut c = small_cluster(6);
                let gpus_before = c.gpus_free();
                let mut allocs = Vec::new();
                for j in &jobs {
                    if let Some(a) = c.try_place(j) {
                        // The allocation delivers exactly what was asked.
                        if j.is_gpu_job() {
                            prop_assert_eq!(a.total_gpus(), j.gpus);
                        }
                        c.allocate(&a);
                        allocs.push(a);
                    }
                }
                // Free never negative is enforced by type; release all.
                for a in &allocs {
                    c.release(a);
                }
                prop_assert_eq!(c.gpus_free(), gpus_before);
                for n in c.nodes() {
                    prop_assert_eq!(n.cpus_free, 80);
                    prop_assert!((n.mem_free_gib - 384.0).abs() < 1e-6);
                }
            }

            #[test]
            fn prop_placement_never_exceeds_node_capacity(jobs in proptest::collection::vec(arb_job(), 1..40)) {
                let mut c = small_cluster(4);
                for j in &jobs {
                    if let Some(a) = c.try_place(j) {
                        c.allocate(&a); // panics on over-allocation
                    }
                }
                for n in c.nodes() {
                    prop_assert!(n.gpus_free <= 2);
                    prop_assert!(n.cpus_free <= 80);
                    prop_assert!(n.mem_free_gib <= 384.0 + 1e-6);
                }
            }

            #[test]
            fn prop_gpu_parts_are_consistent(g in 1u32..=8, cpus in 1u32..=16) {
                let c = small_cluster(6);
                let j = gpu_job(g, cpus);
                if let Some(a) = c.try_place(&j) {
                    prop_assert_eq!(a.total_gpus(), g);
                    // CPU shares across parts cover the request.
                    let cpu_total: u32 = a.parts.iter().map(|p| p.cpus).sum();
                    prop_assert!(cpu_total >= cpus);
                    // Dense placement: no more nodes than strictly needed.
                    prop_assert!(a.node_count() <= g.div_ceil(2) as usize);
                }
            }
        }
    }

    #[test]
    fn conservation_under_allocate_release_cycles() {
        let mut c = small_cluster(4);
        let total_before = c.gpus_free();
        let jobs: Vec<JobSpec> = (1..=4).map(|g| gpu_job(g, 8)).collect();
        let mut allocs = Vec::new();
        for j in &jobs {
            if let Some(a) = c.try_place(j) {
                c.allocate(&a);
                allocs.push(a);
            }
        }
        for a in &allocs {
            c.release(a);
        }
        assert_eq!(c.gpus_free(), total_before);
        for n in c.nodes() {
            assert_eq!(n.cpus_free, 80);
            assert!((n.mem_free_gib - 384.0).abs() < 1e-6);
        }
    }
}
