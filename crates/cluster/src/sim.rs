//! The simulation driver: replays a generated trace through the
//! scheduler and the telemetry pipeline, producing the joined dataset
//! the characterization consumes.

use crate::event::{Event, EventQueue};
use crate::resources::ClusterState;
use crate::scheduler::{RunningJob, Scheduler};
use crate::spec::ClusterSpec;
use sc_telemetry::dataset::{Dataset, MIN_GPU_JOB_RUNTIME_SECS};
use sc_telemetry::phases::{active_variability, phase_stats, ActiveVariability, PhaseStats};
use sc_telemetry::record::{ExitStatus, GpuJobRecord, JobId, SchedulerRecord};
use sc_telemetry::sampler::GpuSampler;
use sc_workload::{JobSpec, PlannedOutcome, Trace};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Simulation configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Cluster hardware.
    pub cluster: ClusterSpec,
    /// Target size of the detailed time-series subset (2,149 jobs in the
    /// paper). Membership is decided by a deterministic hash so the
    /// subset is "a representative fraction of jobs".
    pub detailed_series_jobs: usize,
    /// GPU sampling period for the detailed subset, seconds (100 ms in
    /// production).
    pub gpu_sample_period_secs: f64,
    /// Delay between a submission and the scheduling pass that can
    /// start it, seconds — Slurm's scheduler loop latency. The paper's
    /// median single-GPU queue wait of 3 seconds on an underloaded
    /// cluster is exactly this constant.
    pub sched_latency_secs: f64,
    /// Queue discipline (ablation knob; production is EASY backfill).
    pub policy: crate::scheduler::SchedulePolicy,
    /// Optional correlated node-failure model. `None` (the default)
    /// matches the paper's measurement window, where hardware accounted
    /// for under 0.5% of job failures and those are already injected
    /// per-job by the trace; enable this for failure-domain studies.
    pub node_failures: Option<NodeFailureModel>,
}

/// Correlated node-failure injection: whole nodes die and take their
/// resident jobs with them, then return after repair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeFailureModel {
    /// Mean time between failures per node, seconds.
    pub node_mtbf_secs: f64,
    /// Repair time, seconds.
    pub repair_secs: f64,
    /// Seed for the failure schedule.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            cluster: ClusterSpec::supercloud(),
            detailed_series_jobs: 2_149,
            gpu_sample_period_secs: 0.1,
            sched_latency_secs: 3.0,
            policy: crate::scheduler::SchedulePolicy::EasyBackfill,
            node_failures: None,
        }
    }
}

/// Phase statistics extracted from one detailed-subset job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetailedJobStats {
    /// The job.
    pub job_id: JobId,
    /// Active/idle phase statistics (Fig. 6).
    pub phases: PhaseStats,
    /// Within-active-phase utilization variability (Fig. 7a); `None`
    /// for jobs with no active samples.
    pub variability: Option<ActiveVariability>,
}

/// Aggregate simulation health statistics.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SimStats {
    /// Events processed.
    pub events: u64,
    /// Peak concurrent GPUs in use.
    pub peak_gpus_in_use: u32,
    /// Total GPU-hours delivered.
    pub gpu_hours: f64,
    /// Jobs that ended via hardware failure.
    pub hardware_failures: usize,
    /// Simulated makespan (end of the last job), seconds.
    pub makespan_secs: f64,
    /// Jobs placed on the slow tier (0 without a configured tier).
    pub slow_tier_jobs: usize,
}

/// Everything the simulation produces.
#[derive(Debug, Clone)]
pub struct SimOutput {
    /// The joined scheduler + telemetry dataset (30 s filter applied).
    pub dataset: Dataset,
    /// Detailed time-series statistics for the sampled subset.
    pub detailed: Vec<DetailedJobStats>,
    /// Simulation health counters.
    pub stats: SimStats,
}

/// Wall-clock timings of one simulation run, split by stage.
///
/// Kept separate from [`SimStats`] on purpose: stats are part of the
/// deterministic output contract (tests assert equality across runs and
/// thread counts), while timings vary run to run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimTimings {
    /// Discrete-event loop (scheduling + event processing), seconds.
    pub event_loop_secs: f64,
    /// Batch telemetry synthesis (ground-truth regeneration, analytic
    /// aggregates, detailed-subset sampling), seconds.
    pub telemetry_secs: f64,
}

/// A job termination recorded by the event loop; the telemetry epilog
/// for it runs later, in the parallel batch. Order in the completion
/// list is event order, which fixes the output record order.
struct Completion {
    trace_idx: usize,
    start_time: f64,
    end_time: f64,
    exit: ExitStatus,
}

/// Everything the epilog derives from one completion — a pure function
/// of the job spec and its realized `[start, end)` window, so the batch
/// can run on any number of threads without changing a byte.
struct JobEpilog {
    sched: SchedulerRecord,
    gpu: Option<GpuJobRecord>,
    detailed: Option<DetailedJobStats>,
}

/// The discrete-event simulation.
#[derive(Debug, Clone)]
pub struct Simulation {
    config: SimConfig,
}

impl Simulation {
    /// A simulation with the given configuration.
    pub fn new(config: SimConfig) -> Self {
        Simulation { config }
    }

    /// A simulation of the full Supercloud (Table I hardware, 2,149-job
    /// detailed subset).
    pub fn supercloud() -> Self {
        Simulation::new(SimConfig::default())
    }

    /// The configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Replays `trace` to completion and builds the dataset.
    pub fn run(&self, trace: &Trace) -> SimOutput {
        self.run_timed(trace).0
    }

    /// Like [`Simulation::run`], also reporting per-stage wall-clock
    /// timings. The output is identical to `run`'s for the same trace.
    pub fn run_timed(&self, trace: &Trace) -> (SimOutput, SimTimings) {
        let wall = std::time::Instant::now();
        let jobs = trace.jobs();
        let mut cluster = ClusterState::new(self.config.cluster.clone());
        let mut scheduler = Scheduler::with_policy(self.config.policy);
        let mut queue = EventQueue::new();
        for (i, j) in jobs.iter().enumerate() {
            queue.push(j.arrival, Event::Submit(i));
        }

        // The detailed subset is drawn from the *analyzed* GPU jobs
        // (post 30 s filter), so discount the short-job slice.
        let expected_analyzed = (trace.spec().expected_gpu_jobs() as f64
            * (1.0 - trace.spec().short_gpu_job_fraction))
            .max(1.0);
        let detailed_fraction =
            (self.config.detailed_series_jobs as f64 / expected_analyzed).min(1.0);
        let sampler = GpuSampler::with_period(self.config.gpu_sample_period_secs);

        let mut completions: Vec<Completion> = Vec::with_capacity(jobs.len());
        let mut pending_end: HashMap<JobId, (f64, ExitStatus)> = HashMap::new();
        let mut killed: std::collections::HashSet<JobId> = std::collections::HashSet::new();
        let mut down: std::collections::HashSet<crate::resources::NodeId> =
            std::collections::HashSet::new();
        let mut stats = SimStats::default();

        // Pre-schedule correlated node failures, if enabled.
        if let Some(model) = self.config.node_failures {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(model.seed);
            let total_nodes = self.config.cluster.total_nodes() as usize;
            let fleet_rate = total_nodes as f64 / model.node_mtbf_secs;
            let horizon = trace.spec().duration_secs() * 1.2;
            let mut t = 0.0;
            loop {
                let u: f64 = 1.0 - rng.gen::<f64>();
                t += -u.ln() / fleet_rate;
                if t >= horizon {
                    break;
                }
                let node = crate::resources::NodeId(rng.gen_range(0..total_nodes as u32));
                queue.push(t, Event::NodeFail(node));
            }
        }

        while let Some((now, event)) = queue.pop() {
            stats.events += 1;
            match event {
                Event::Submit(idx) => {
                    scheduler.submit(idx, now);
                    // The scheduling loop wakes up a beat later.
                    queue.push(now + self.config.sched_latency_secs, Event::Tick);
                    continue;
                }
                Event::Tick => {}
                Event::Finish(job_id) => {
                    if killed.remove(&job_id) {
                        // This job already died with its node; the
                        // pre-scheduled finish is stale.
                        continue;
                    }
                    let running = scheduler.finish(job_id);
                    cluster.release(&running.alloc);
                    let (end_time, exit) = *pending_end.get(&job_id).expect("end decided at start");
                    debug_assert!((end_time - now).abs() < 1e-6);
                    completions.push(Completion {
                        trace_idx: running.trace_idx,
                        start_time: running.start_time,
                        end_time,
                        exit,
                    });
                    pending_end.remove(&job_id);
                }
                Event::NodeFail(node) => {
                    if !down.insert(node) {
                        continue; // already down; failure absorbed
                    }
                    // Kill every resident job: the accounting log shows
                    // a node failure at `now`.
                    for job_id in scheduler.running_on_node(node) {
                        let running = scheduler.finish(job_id);
                        cluster.release(&running.alloc);
                        completions.push(Completion {
                            trace_idx: running.trace_idx,
                            start_time: running.start_time,
                            end_time: now.max(running.start_time + 1.0),
                            exit: ExitStatus::NodeFailure,
                        });
                        pending_end.remove(&job_id);
                        killed.insert(job_id);
                    }
                    cluster.set_offline(node);
                    let repair = self.config.node_failures.expect("failures enabled").repair_secs;
                    queue.push(now + repair, Event::NodeRepair(node));
                }
                Event::NodeRepair(node) => {
                    down.remove(&node);
                    cluster.set_online(node);
                }
            }
            // One scheduling pass after every event.
            let pass = scheduler.schedule(now, &mut cluster, jobs);
            for (idx, alloc) in pass.started {
                let job = &jobs[idx];
                // Slow-tier physics: compute-bound work stretches by
                // 1/speed; idle (data/CPU) time is speed-invariant.
                let stretch = match self.config.cluster.slow_tier {
                    Some(tier)
                        if alloc
                            .parts
                            .iter()
                            .any(|p| self.config.cluster.is_slow_node(p.node.0)) =>
                    {
                        stats.slow_tier_jobs += 1;
                        let af = job
                            .truth_params
                            .as_ref()
                            .map_or(0.0, |p| p.active_fraction.clamp(0.0, 1.0));
                        af / tier.speed.max(1e-6) + (1.0 - af)
                    }
                    _ => 1.0,
                };
                let (end_time, exit) = self.decide_end(trace, job, now, stretch);
                scheduler.mark_running(
                    job.job_id,
                    RunningJob {
                        trace_idx: idx,
                        alloc,
                        start_time: now,
                        estimated_end: now + job.time_limit,
                    },
                );
                pending_end.insert(job.job_id, (end_time, exit));
                queue.push(end_time, Event::Finish(job.job_id));
            }
            stats.peak_gpus_in_use = stats.peak_gpus_in_use.max(cluster.gpus_in_use());
            if now > stats.makespan_secs {
                stats.makespan_secs = now;
            }
        }
        assert_eq!(scheduler.running_len(), 0, "all jobs must terminate");
        assert_eq!(scheduler.pending_len(), 0, "no job may be left queued");
        let event_loop_secs = wall.elapsed().as_secs_f64();

        // Batch telemetry synthesis, decoupled from the event loop.
        // Each epilog is a pure function of (job spec, start, end,
        // exit), so the batch parallelizes freely; `par_map` returns
        // results in completion order, which keeps the dataset
        // byte-identical to the old inline path at any thread count.
        let batch_t0 = std::time::Instant::now();
        let epilogs = sc_par::par_map(&completions, |c| {
            self.synthesize_epilog(
                &jobs[c.trace_idx],
                c.start_time,
                c.end_time,
                c.exit,
                detailed_fraction,
                &sampler,
            )
        });
        let mut sched_records: Vec<SchedulerRecord> = Vec::with_capacity(jobs.len());
        let mut gpu_records: Vec<GpuJobRecord> = Vec::new();
        let mut detailed: Vec<DetailedJobStats> = Vec::new();
        for epilog in epilogs {
            // Scalar stats accumulate in completion order, exactly as
            // the inline path summed them (float addition order
            // matters for reproducibility).
            stats.gpu_hours += epilog.sched.gpu_hours();
            if epilog.sched.exit == ExitStatus::NodeFailure {
                stats.hardware_failures += 1;
            }
            sched_records.push(epilog.sched);
            gpu_records.extend(epilog.gpu);
            detailed.extend(epilog.detailed);
        }
        let telemetry_secs = batch_t0.elapsed().as_secs_f64();

        (
            SimOutput { dataset: Dataset::join(sched_records, gpu_records), detailed, stats },
            SimTimings { event_loop_secs, telemetry_secs },
        )
    }

    /// Decides when and how a started job ends. `stretch ≥ 1` scales
    /// the job's productive run (slow-tier placement); the wall-clock
    /// limit is a property of the queue and never stretches.
    fn decide_end(
        &self,
        trace: &Trace,
        job: &JobSpec,
        start: f64,
        stretch: f64,
    ) -> (f64, ExitStatus) {
        if trace.is_hardware_victim(job.job_id) {
            // The node dies somewhere inside the natural run time.
            let natural = (job.outcome.run_time(job.time_limit) * stretch).max(1.0);
            let frac = 0.05 + 0.9 * hash_unit(job.truth_seed ^ 0xdead_beef);
            return (start + natural * frac, ExitStatus::NodeFailure);
        }
        let stretched = |secs: f64| secs * stretch;
        let (run, exit) = match job.outcome {
            PlannedOutcome::Complete { work_secs } => {
                if stretched(work_secs) < job.time_limit {
                    (stretched(work_secs), ExitStatus::Completed)
                } else {
                    (job.time_limit, ExitStatus::Timeout)
                }
            }
            PlannedOutcome::Cancel { after_secs } => {
                if stretched(after_secs) < job.time_limit {
                    (stretched(after_secs), ExitStatus::Cancelled)
                } else {
                    (job.time_limit, ExitStatus::Timeout)
                }
            }
            PlannedOutcome::Fail { after_secs } => {
                if stretched(after_secs) < job.time_limit {
                    (stretched(after_secs), ExitStatus::Failed)
                } else {
                    (job.time_limit, ExitStatus::Timeout)
                }
            }
            PlannedOutcome::RunUntilTimeout => (job.time_limit, ExitStatus::Timeout),
        };
        (start + run.max(1.0), exit)
    }

    /// The epilog of one finished job: scheduler record, analytic
    /// telemetry aggregates, and — for the detailed subset — the 100 ms
    /// sampled series reduced to phase statistics. Pure with respect to
    /// its inputs (the ground truth regenerates from the job's seed),
    /// which is what lets the batch run in parallel.
    fn synthesize_epilog(
        &self,
        job: &JobSpec,
        start_time: f64,
        end_time: f64,
        exit: ExitStatus,
        detailed_fraction: f64,
        sampler: &GpuSampler,
    ) -> JobEpilog {
        let sched = SchedulerRecord {
            job_id: job.job_id,
            user: job.user,
            interface: job.interface,
            gpus_requested: job.gpus,
            cpus_requested: job.cpus,
            mem_requested_gib: job.mem_gib,
            submit_time: job.arrival,
            start_time,
            end_time,
            time_limit: job.time_limit,
            exit,
        };
        let run_time = sched.run_time();
        let mut gpu = None;
        let mut detailed = None;
        if job.is_gpu_job() && run_time >= MIN_GPU_JOB_RUNTIME_SECS {
            if let Some(truth) = job.ground_truth() {
                gpu = Some(GpuJobRecord {
                    job_id: job.job_id,
                    per_gpu: truth.analytic_aggregates(run_time),
                });
                if hash_unit(job.truth_seed ^ 0x5eed_cafe) < detailed_fraction {
                    let series = sampler.sample_series(&truth, run_time);
                    if !series.is_empty() {
                        let phases = phase_stats(&series).expect("non-empty series");
                        let variability = active_variability(&series).expect("non-empty series");
                        detailed =
                            Some(DetailedJobStats { job_id: job.job_id, phases, variability });
                    }
                }
            }
        }
        JobEpilog { sched, gpu, detailed }
    }
}

/// Hashes a seed to a unit-interval float, for deterministic per-job
/// coin flips that are independent of RNG consumption order.
fn hash_unit(mut x: u64) -> f64 {
    x = (x ^ (x >> 33)).wrapping_mul(0xff51_afd7_ed55_8ccd);
    x = (x ^ (x >> 33)).wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^= x >> 33;
    (x >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_workload::WorkloadSpec;

    fn run_small(seed: u64) -> (Trace, SimOutput) {
        let spec = WorkloadSpec::supercloud().scaled(0.01);
        let trace = Trace::generate(&spec, seed);
        let sim = Simulation::new(SimConfig { detailed_series_jobs: 60, ..Default::default() });
        let out = sim.run(&trace);
        (trace, out)
    }

    #[test]
    fn every_job_terminates_exactly_once() {
        let (trace, out) = run_small(1);
        assert_eq!(out.dataset.funnel().total_jobs, trace.jobs().len());
        // Records are unique by job id.
        let mut ids: Vec<u64> = out.dataset.records().iter().map(|r| r.sched.job_id.0).collect();
        let before = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), before);
    }

    #[test]
    fn starts_never_precede_submission() {
        let (_, out) = run_small(2);
        for r in out.dataset.records() {
            assert!(r.sched.start_time >= r.sched.submit_time - 1e-9);
            assert!(r.sched.end_time > r.sched.start_time);
            assert!(r.sched.run_time() <= r.sched.time_limit + 1e-6);
        }
    }

    #[test]
    fn gpu_capacity_never_exceeded() {
        let (_, out) = run_small(3);
        assert!(out.stats.peak_gpus_in_use <= 448);
        assert!(out.stats.gpu_hours > 0.0);
    }

    #[test]
    fn exit_statuses_cover_all_lifecycles() {
        let (_, out) = run_small(4);
        let mut seen = std::collections::HashSet::new();
        for r in out.dataset.records() {
            seen.insert(r.sched.exit);
        }
        assert!(seen.contains(&ExitStatus::Completed));
        assert!(seen.contains(&ExitStatus::Cancelled));
        assert!(seen.contains(&ExitStatus::Failed));
        assert!(seen.contains(&ExitStatus::Timeout));
    }

    #[test]
    fn hardware_failures_are_rare() {
        let (_, out) = run_small(5);
        let frac = out.stats.hardware_failures as f64 / out.dataset.funnel().total_jobs as f64;
        assert!(frac < 0.02, "hardware failure fraction {frac}");
    }

    #[test]
    fn detailed_subset_collected() {
        let (_, out) = run_small(6);
        assert!(!out.detailed.is_empty(), "detailed subset must not be empty");
        for d in &out.detailed {
            assert!((0.0..=1.0).contains(&d.phases.active_fraction));
        }
    }

    #[test]
    fn ide_jobs_timeout_on_interactive_interface() {
        let (_, out) = run_small(7);
        let ide_like = out
            .dataset
            .records()
            .iter()
            .filter(|r| {
                r.sched.exit == ExitStatus::Timeout
                    && r.sched.interface == sc_telemetry::record::SubmissionInterface::Interactive
            })
            .count();
        assert!(ide_like > 0, "expected some interactive timeouts (IDE jobs)");
    }

    #[test]
    fn slow_tier_hosts_interactive_jobs_and_stretches_work() {
        use crate::spec::SlowTierSpec;
        let spec = WorkloadSpec::supercloud().scaled(0.01);
        let trace = Trace::generate(&spec, 2_024);
        let mut cluster = ClusterSpec::supercloud();
        cluster.slow_tier = Some(SlowTierSpec { nodes: 32, speed: 0.5 });
        let tiered =
            Simulation::new(SimConfig { cluster, detailed_series_jobs: 0, ..Default::default() })
                .run(&trace);
        let flat = Simulation::new(SimConfig { detailed_series_jobs: 0, ..Default::default() })
            .run(&trace);
        // Interactive jobs landed on the tier.
        assert!(tiered.stats.slow_tier_jobs > 0, "no jobs routed to slow tier");
        assert_eq!(flat.stats.slow_tier_jobs, 0);
        // Non-interactive run times are untouched; interactive,
        // non-timeout runs stretch (timeouts are reaped at the same
        // wall-clock limit either way).
        let runtimes = |out: &SimOutput| -> std::collections::HashMap<u64, (f64, bool)> {
            out.dataset
                .records()
                .iter()
                .map(|r| {
                    (
                        r.sched.job_id.0,
                        (
                            r.sched.run_time(),
                            r.sched.interface
                                == sc_telemetry::record::SubmissionInterface::Interactive,
                        ),
                    )
                })
                .collect()
        };
        let a = runtimes(&tiered);
        let b = runtimes(&flat);
        let mut stretched = 0;
        for (id, (rt_tiered, interactive)) in &a {
            let (rt_flat, _) = b[id];
            if *interactive {
                assert!(*rt_tiered >= rt_flat - 1e-6, "interactive job {id} sped up");
                if *rt_tiered > rt_flat + 1.0 {
                    stretched += 1;
                }
            } else {
                assert!(
                    (*rt_tiered - rt_flat).abs() < 1e-6,
                    "fast-tier job {id} changed: {rt_tiered} vs {rt_flat}"
                );
            }
        }
        assert!(stretched > 0, "no interactive job stretched");
    }

    #[test]
    fn node_failures_kill_residents_and_nodes_recover() {
        let spec = WorkloadSpec::supercloud().scaled(0.01);
        let trace = Trace::generate(&spec, 77);
        let sim = Simulation::new(SimConfig {
            detailed_series_jobs: 0,
            node_failures: Some(NodeFailureModel {
                // Aggressive MTBF so the 125-day window sees many
                // failures even at 1% job scale.
                node_mtbf_secs: 3_000_000.0,
                repair_secs: 4.0 * 3600.0,
                seed: 5,
            }),
            ..Default::default()
        });
        let out = sim.run(&trace);
        // Every job still terminates exactly once.
        assert_eq!(out.dataset.funnel().total_jobs, trace.jobs().len());
        let node_deaths = out
            .dataset
            .records()
            .iter()
            .filter(|r| r.sched.exit == ExitStatus::NodeFailure)
            .count();
        // Correlated failures add to the per-job victims.
        assert!(node_deaths > 0, "no node-failure deaths recorded");
        let frac = node_deaths as f64 / out.dataset.funnel().total_jobs as f64;
        assert!(frac < 0.1, "node failures dominate: {frac}");
        // Determinism holds with failures enabled.
        let out2 = sim.run(&trace);
        assert_eq!(out.dataset.records().len(), out2.dataset.records().len());
        assert_eq!(out.stats, out2.stats);
    }

    #[test]
    fn output_is_identical_across_thread_budgets() {
        // The deterministic-parallelism rule: the batch telemetry
        // synthesis must produce the same records, detailed subset, and
        // stats (including order-sensitive float sums) on 1 thread and
        // on many.
        let spec = WorkloadSpec::supercloud().scaled(0.005);
        let trace = Trace::generate(&spec, 31);
        let sim = Simulation::new(SimConfig { detailed_series_jobs: 30, ..Default::default() });
        let saved = sc_par::current_threads();
        sc_par::set_max_threads(1);
        let (single, timings) = sim.run_timed(&trace);
        sc_par::set_max_threads(4);
        let multi = sim.run(&trace);
        sc_par::set_max_threads(saved);
        assert_eq!(single.dataset.records(), multi.dataset.records());
        assert_eq!(single.detailed, multi.detailed);
        assert_eq!(single.stats, multi.stats);
        assert!(timings.event_loop_secs >= 0.0 && timings.telemetry_secs >= 0.0);
    }

    #[test]
    fn deterministic_output() {
        let (_, a) = run_small(8);
        let (_, b) = run_small(8);
        assert_eq!(a.dataset.records().len(), b.dataset.records().len());
        for (ra, rb) in a.dataset.records().iter().zip(b.dataset.records()) {
            assert_eq!(ra.sched, rb.sched);
        }
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn gpu_jobs_wait_less_than_cpu_jobs() {
        let (_, out) = run_small(9);
        let gpu_waits: Vec<f64> = out.dataset.gpu_jobs().map(|r| r.sched.queue_wait()).collect();
        let cpu_waits: Vec<f64> = out.dataset.cpu_jobs().map(|r| r.sched.queue_wait()).collect();
        assert!(!gpu_waits.is_empty() && !cpu_waits.is_empty());
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        // The paper's headline scheduling result, directionally: GPU
        // jobs clear the queue at (or near) the scheduler latency.
        assert!(
            mean(&gpu_waits) <= mean(&cpu_waits) + 5.0,
            "gpu mean wait {} vs cpu {}",
            mean(&gpu_waits),
            mean(&cpu_waits)
        );
        let median = |v: &[f64]| {
            let mut s = v.to_vec();
            s.sort_by(|a, b| a.partial_cmp(b).unwrap());
            s[s.len() / 2]
        };
        assert!(median(&gpu_waits) <= 10.0, "gpu median wait {}", median(&gpu_waits));
    }
}
