//! The simulation driver: replays a generated trace through the
//! scheduler and the telemetry pipeline, producing the joined dataset
//! the characterization consumes.

use crate::event::{Event, EventQueue};
use crate::failure::{FailureModel, ScheduledFailure};
use crate::policy::{Dispatch, Policy, PolicyDecision};
use crate::reliability::{size_bucket, ReliabilityStats, SIZE_BUCKET_COUNT, SIZE_BUCKET_EDGES};
use crate::resources::ClusterState;
use crate::scheduler::{RunningJob, Scheduler};
use crate::spec::ClusterSpec;
use sc_obs::{Obs, Timeline, TimelineSample};
use sc_telemetry::dataset::{Dataset, MIN_GPU_JOB_RUNTIME_SECS};
use sc_telemetry::phases::{ActiveVariability, PhaseStats};
use sc_telemetry::record::{ExitStatus, FailureCause, GpuJobRecord, JobId, SchedulerRecord};
use sc_telemetry::sampler::{tick_count, GpuSampler};
use sc_telemetry::stream::{stream_detail, TelemetryStreamSummary};
use sc_workload::{JobSpec, PlannedOutcome, Trace};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Simulation configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Cluster hardware.
    pub cluster: ClusterSpec,
    /// Target size of the detailed time-series subset (2,149 jobs in the
    /// paper). Membership is decided by a deterministic hash so the
    /// subset is "a representative fraction of jobs".
    pub detailed_series_jobs: usize,
    /// GPU sampling period for the detailed subset, seconds (100 ms in
    /// production).
    pub gpu_sample_period_secs: f64,
    /// Delay between a submission and the scheduling pass that can
    /// start it, seconds — Slurm's scheduler loop latency. The paper's
    /// median single-GPU queue wait of 3 seconds on an underloaded
    /// cluster is exactly this constant.
    pub sched_latency_secs: f64,
    /// Queue discipline (ablation knob; production is EASY backfill).
    pub policy: crate::scheduler::SchedulePolicy,
    /// Optional failure-injection model. `None` (the default) matches
    /// the paper's measurement window, where hardware accounted for
    /// under 0.5% of job failures and those are already injected
    /// per-job by the trace; enable this for reliability and goodput
    /// studies.
    pub failures: Option<FailureModel>,
    /// Optional checkpoint/restart policy. With it set, checkpointable
    /// jobs killed by an injected failure resume from their last
    /// completed interval instead of restarting from scratch; the saved
    /// work counts as useful in the goodput ledger.
    pub checkpoint: Option<CheckpointPolicy>,
    /// Job-size class edges (GPU-count upper bounds) for the
    /// [`ReliabilityStats`] accumulator; defaults to the canonical
    /// [`SIZE_BUCKET_EDGES`]. The fixed-width per-size arrays in
    /// [`GoodputAccounting`] always use the canonical edges regardless.
    pub size_bucket_edges: Vec<u32>,
}

/// Periodic checkpointing as the event loop models it: a fixed
/// wall-clock interval between checkpoint writes. Derive the interval
/// from a [`sc_stats`]-style optimum (Young/Daly) or set it directly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CheckpointPolicy {
    /// Wall-clock seconds between checkpoint writes.
    pub interval_secs: f64,
    /// Seconds one checkpoint write takes (reported as overhead in the
    /// goodput ledger; it does not stretch the simulated run).
    pub write_secs: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            cluster: ClusterSpec::supercloud(),
            detailed_series_jobs: 2_149,
            gpu_sample_period_secs: 0.1,
            sched_latency_secs: 3.0,
            policy: crate::scheduler::SchedulePolicy::EasyBackfill,
            failures: None,
            checkpoint: None,
            size_bucket_edges: SIZE_BUCKET_EDGES.to_vec(),
        }
    }
}

/// Phase statistics extracted from one detailed-subset job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetailedJobStats {
    /// The job.
    pub job_id: JobId,
    /// Active/idle phase statistics (Fig. 6).
    pub phases: PhaseStats,
    /// Within-active-phase utilization variability (Fig. 7a); `None`
    /// for jobs with no active samples.
    pub variability: Option<ActiveVariability>,
}

/// Aggregate simulation health statistics.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SimStats {
    /// Events processed.
    pub events: u64,
    /// Peak concurrent GPUs in use.
    pub peak_gpus_in_use: u32,
    /// Total GPU-hours delivered.
    pub gpu_hours: f64,
    /// Jobs that ended via hardware failure.
    pub hardware_failures: usize,
    /// Simulated makespan (end of the last job), seconds.
    pub makespan_secs: f64,
    /// Jobs placed on the slow tier (0 without a configured tier).
    pub slow_tier_jobs: usize,
    /// Injected failures that killed at least one job attempt.
    pub injected_failures: u64,
    /// Injected failures that struck an empty or already-down target
    /// and killed nothing.
    pub absorbed_faults: u64,
    /// Automatic requeues issued by the retry policy.
    pub requeues: u64,
    /// Attempts that resumed from checkpoint-preserved work instead of
    /// starting from scratch.
    pub checkpoint_restores: u64,
    /// Closed-loop policy: attempts throttled by a power cap.
    pub policy_cap_throttles: u64,
    /// Closed-loop policy: guest attempts placed onto a shared GPU.
    pub policy_coshares: u64,
    /// Closed-loop policy: attempts tier-routed by a routing policy.
    pub policy_tier_routes: u64,
}

/// The goodput ledger: every allocated GPU-second attributed to exactly
/// one bucket, across **all** attempts of every job (the joined dataset
/// only shows final attempts).
///
/// `useful` is active GPU time whose work survived — the attempt
/// reached its natural end, or a checkpoint preserved it. `lost` is
/// active GPU time destroyed by an infrastructure failure. `idle` is
/// allocated-but-idle GPU time (the paper's Fig. 6 idle phases, plus
/// wholly idle GPUs of multi-GPU jobs). By construction
/// `useful + lost + idle == allocated`.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct GoodputAccounting {
    /// Total allocated GPU-seconds over all attempts.
    pub allocated_gpu_secs: f64,
    /// Active GPU-seconds whose work survived.
    pub useful_gpu_secs: f64,
    /// Active GPU-seconds destroyed by failures.
    pub lost_gpu_secs: f64,
    /// Allocated GPU-seconds the GPUs sat idle.
    pub idle_gpu_secs: f64,
    /// GPU-seconds spent writing checkpoints (informational; a subset
    /// of `useful`, not a fourth bucket).
    pub checkpoint_write_gpu_secs: f64,
    /// `lost_gpu_secs` attributed per cause, indexed by
    /// [`FailureCause::index`].
    pub lost_by_cause_gpu_secs: [f64; 3],
    /// Job-attempt deaths per cause, indexed by [`FailureCause::index`].
    pub deaths_by_cause: [u64; 3],
    /// Allocated GPU-seconds per canonical job-size bucket, indexed by
    /// [`size_bucket`].
    pub allocated_by_size_gpu_secs: [f64; SIZE_BUCKET_COUNT],
    /// Useful GPU-seconds per canonical job-size bucket.
    pub useful_by_size_gpu_secs: [f64; SIZE_BUCKET_COUNT],
    /// Lost GPU-seconds per canonical job-size bucket — restart
    /// overhead attributed by job size, the Meta rate-vs-size view.
    pub lost_by_size_gpu_secs: [f64; SIZE_BUCKET_COUNT],
    /// Idle GPU-seconds per canonical job-size bucket.
    pub idle_by_size_gpu_secs: [f64; SIZE_BUCKET_COUNT],
}

impl GoodputAccounting {
    /// Absolute imbalance of the ledger:
    /// `|allocated − (useful + lost + idle)|`. Zero up to float
    /// rounding; tests assert it stays below `1e-6 × allocated`.
    pub fn balance_error(&self) -> f64 {
        (self.allocated_gpu_secs - (self.useful_gpu_secs + self.lost_gpu_secs + self.idle_gpu_secs))
            .abs()
    }

    /// Goodput as a fraction of allocated GPU time (1.0 with nothing
    /// allocated — nothing was wasted).
    pub fn goodput_fraction(&self) -> f64 {
        if self.allocated_gpu_secs <= 0.0 {
            1.0
        } else {
            self.useful_gpu_secs / self.allocated_gpu_secs
        }
    }

    /// Total injected deaths across causes.
    pub fn total_deaths(&self) -> u64 {
        self.deaths_by_cause.iter().sum()
    }

    /// Absolute imbalance of the per-size ledger identity for canonical
    /// bucket `i`: `|allocated − (useful + lost + idle)|`, GPU-seconds.
    pub fn size_balance_error(&self, i: usize) -> f64 {
        (self.allocated_by_size_gpu_secs[i]
            - (self.useful_by_size_gpu_secs[i]
                + self.lost_by_size_gpu_secs[i]
                + self.idle_by_size_gpu_secs[i]))
            .abs()
    }
}

/// How one job's life ended, across all its attempts — the
/// failure-attribution record the goodput report aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobFate {
    /// The job.
    pub job_id: JobId,
    /// Attempts started (1 = never disturbed).
    pub attempts: u32,
    /// Injected failures that killed one of its attempts.
    pub injected_failures: u32,
    /// Final exit status (what the accounting log shows).
    pub exit: ExitStatus,
    /// Cause of the last injected death, if any. Set together with a
    /// terminal `NodeFailure` exit when the retry budget ran out; also
    /// set for jobs that recovered and later ended some other way.
    pub last_cause: Option<FailureCause>,
}

/// Everything the simulation produces.
#[derive(Debug, Clone)]
pub struct SimOutput {
    /// The joined scheduler + telemetry dataset (30 s filter applied).
    pub dataset: Dataset,
    /// Detailed time-series statistics for the sampled subset.
    pub detailed: Vec<DetailedJobStats>,
    /// Simulation health counters.
    pub stats: SimStats,
    /// Per-job fates in completion order (every job exactly once).
    pub fates: Vec<JobFate>,
    /// The goodput ledger over all attempts.
    pub goodput: GoodputAccounting,
    /// Cluster state time-series sampled from the event loop (queue
    /// depth, running jobs, GPU occupancy, nodes down, failure and
    /// restore counters) — the substrate of the ClusterTimeline figure.
    pub timeline: Timeline,
    /// Mergeable one-pass summary of the telemetry stage, folded in
    /// input order as epilogs stream out of the parallel batch —
    /// aggregate state only, byte-identical at any thread budget.
    pub telemetry_summary: TelemetryStreamSummary,
    /// Per-job-size reliability accounting (ETTF/ETTR, failure rates,
    /// restart overhead), accumulated entirely inside the
    /// single-threaded event loop — deterministic across
    /// `SC_PAR_THREADS` by construction.
    pub reliability: ReliabilityStats,
}

/// Wall-clock timings of one simulation run, split by stage.
///
/// Kept separate from [`SimStats`] on purpose: stats are part of the
/// deterministic output contract (tests assert equality across runs and
/// thread counts), while timings vary run to run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimTimings {
    /// Discrete-event loop (scheduling + event processing), seconds.
    pub event_loop_secs: f64,
    /// Batch telemetry synthesis (ground-truth regeneration, analytic
    /// aggregates, detailed-subset sampling), seconds.
    pub telemetry_secs: f64,
}

/// A job termination recorded by the event loop; the telemetry epilog
/// for it runs later, in the parallel batch. Order in the completion
/// list is event order, which fixes the output record order.
struct Completion {
    trace_idx: usize,
    start_time: f64,
    end_time: f64,
    exit: ExitStatus,
    /// Power cap the final attempt ran under, if a policy imposed one.
    cap_w: Option<f64>,
}

/// Per-job recovery bookkeeping, indexed by trace index.
#[derive(Debug, Clone, Copy, Default)]
struct JobProgress {
    /// Attempts started so far.
    attempts: u32,
    /// Requeues consumed so far.
    retries: u32,
    /// Injected failures that killed one of this job's attempts.
    injected_failures: u32,
    /// Work-seconds (un-stretched) preserved by checkpoints.
    completed_work: f64,
    /// Cause of the last injected death.
    last_cause: Option<FailureCause>,
    /// Waiting out a requeue backoff (counted in the timeline's
    /// requeue backlog until the resubmission arrives).
    in_backoff: bool,
    /// When an injected failure killed the last attempt; consumed when
    /// the next attempt starts to measure the kill-to-restart gap
    /// (ETTR: backoff + queue wait + scheduling latency).
    killed_at: Option<f64>,
}

/// Everything the epilog derives from one completion — a pure function
/// of the job spec and its realized `[start, end)` window, so the batch
/// can run on any number of threads without changing a byte.
struct JobEpilog {
    sched: SchedulerRecord,
    gpu: Option<GpuJobRecord>,
    detailed: Option<DetailedJobStats>,
}

/// The discrete-event simulation.
#[derive(Debug, Clone)]
pub struct Simulation {
    config: SimConfig,
}

impl Simulation {
    /// A simulation with the given configuration.
    pub fn new(config: SimConfig) -> Self {
        Simulation { config }
    }

    /// A simulation of the full Supercloud (Table I hardware, 2,149-job
    /// detailed subset).
    pub fn supercloud() -> Self {
        Simulation::new(SimConfig::default())
    }

    /// The configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Replays `trace` to completion and builds the dataset.
    pub fn run(&self, trace: &Trace) -> SimOutput {
        self.run_timed(trace).0
    }

    /// Like [`Simulation::run`], also reporting per-stage wall-clock
    /// timings. The output is identical to `run`'s for the same trace.
    pub fn run_timed(&self, trace: &Trace) -> (SimOutput, SimTimings) {
        self.run_observed(trace, &Obs::off())
    }

    /// Like [`Simulation::run_timed`], emitting trace records into
    /// `obs` as the event loop runs.
    ///
    /// Every record is keyed to sim time and emitted from the
    /// single-threaded event loop, so for a given trace the record
    /// stream is byte-identical at any `sc_par` thread budget. With
    /// [`Obs::off`] each instrumentation site costs one enum compare
    /// and the output equals `run_timed`'s exactly.
    pub fn run_observed(&self, trace: &Trace, obs: &Obs<'_>) -> (SimOutput, SimTimings) {
        self.run_inner(trace, obs, None)
    }

    /// Like [`Simulation::run_observed`], with a closed-loop [`Policy`]
    /// riding inside the event loop. The policy sees every admission,
    /// scheduler tick, and release; may override placement; and its
    /// dispatch directives (stretch, per-job power cap) change the
    /// simulated outcomes. Each decision is recorded as an `sc-obs`
    /// event (`cap_throttle`, `coshare_place`, `tier_route`) and
    /// counted in [`SimStats`].
    pub fn run_policy(
        &self,
        trace: &Trace,
        obs: &Obs<'_>,
        policy: &mut dyn Policy,
    ) -> (SimOutput, SimTimings) {
        self.run_inner(trace, obs, Some(policy))
    }

    fn run_inner(
        &self,
        trace: &Trace,
        obs: &Obs<'_>,
        mut policy: Option<&mut (dyn Policy + '_)>,
    ) -> (SimOutput, SimTimings) {
        let wall = std::time::Instant::now();
        let jobs = trace.jobs();
        let mut cluster = ClusterState::new(self.config.cluster.clone());
        let mut scheduler = Scheduler::with_policy(self.config.policy);
        let mut queue = EventQueue::new();
        for (i, j) in jobs.iter().enumerate() {
            queue.push(j.arrival, Event::Submit(i));
        }

        // The detailed subset is drawn from the *analyzed* GPU jobs
        // (post 30 s filter), so discount the short-job slice.
        let expected_analyzed = (trace.spec().expected_gpu_jobs() as f64
            * (1.0 - trace.spec().short_gpu_job_fraction))
            .max(1.0);
        let detailed_fraction =
            (self.config.detailed_series_jobs as f64 / expected_analyzed).min(1.0);
        let sampler = GpuSampler::with_period(self.config.gpu_sample_period_secs);

        let mut completions: Vec<Completion> = Vec::with_capacity(jobs.len());
        let mut fates: Vec<JobFate> = Vec::with_capacity(jobs.len());
        let mut progress: Vec<JobProgress> = vec![JobProgress::default(); jobs.len()];
        // A job's pre-scheduled end, tagged with the attempt that
        // scheduled it. A `Finish` whose attempt does not match (or
        // whose entry is gone) is stale — the attempt already died to a
        // failure — and is absorbed. The tag, not a kill-set, is what
        // keeps double failures and requeues from confusing stale
        // finishes with live ones.
        let mut pending_end: HashMap<JobId, (f64, ExitStatus, u32)> = HashMap::new();
        let mut down: std::collections::HashSet<crate::resources::NodeId> =
            std::collections::HashSet::new();
        let mut stats = SimStats::default();
        let mut goodput = GoodputAccounting::default();
        let mut reliability = ReliabilityStats::new(&self.config.size_bucket_edges);
        // One timeline point per ~1/512 of the horizon: enough for the
        // figure, bounded memory at any scale. Collected even with
        // tracing off — the ClusterTimeline figure always needs it and
        // the cost is one float compare per event.
        let mut timeline = Timeline::new((trace.spec().duration_secs() / 512.0).max(1.0));
        let mut requeue_backlog: u64 = 0;

        // Pre-schedule injected failures, if enabled. The schedule is a
        // pure function of (model, fleet, horizon) — see
        // [`FailureModel::schedule`].
        let failure_schedule: Vec<ScheduledFailure> = match &self.config.failures {
            Some(model) => model.schedule(
                self.config.cluster.total_nodes(),
                self.config.cluster.total_gpus(),
                trace.spec().duration_secs() * 1.2,
            ),
            None => Vec::new(),
        };
        for (i, f) in failure_schedule.iter().enumerate() {
            queue.push(f.time, Event::Fault(i));
        }

        while let Some((now, event)) = queue.pop() {
            stats.events += 1;
            match event {
                Event::Submit(idx) => {
                    let requeued = progress[idx].in_backoff;
                    if requeued {
                        progress[idx].in_backoff = false;
                        requeue_backlog -= 1;
                    }
                    if obs.events_on() {
                        let j = &jobs[idx];
                        obs.event(
                            now,
                            "submit",
                            vec![
                                ("job", j.job_id.0.into()),
                                ("gpus", j.gpus.into()),
                                ("requeued", u64::from(requeued).into()),
                            ],
                        );
                    }
                    if let Some(p) = policy.as_deref_mut() {
                        p.admit(&jobs[idx], now);
                    }
                    scheduler.submit(idx, now);
                    // The scheduling loop wakes up a beat later.
                    queue.push(now + self.config.sched_latency_secs, Event::Tick);
                    continue;
                }
                Event::Tick => {
                    if let Some(p) = policy.as_deref_mut() {
                        p.tick(now, &cluster);
                    }
                }
                Event::Finish { job, attempt } => {
                    match pending_end.get(&job) {
                        Some(&(_, _, live)) if live == attempt => {}
                        _ => continue, // stale: the attempt died earlier
                    }
                    let running = scheduler.finish(job);
                    cluster.release(&running.alloc);
                    let (end_time, exit, _) = pending_end.remove(&job).expect("checked above");
                    debug_assert!((end_time - now).abs() < 1e-6);
                    let spec = &jobs[running.trace_idx];
                    self.settle_attempt(
                        &mut goodput,
                        &mut reliability,
                        spec,
                        now - running.start_time,
                        exit_cause(exit),
                    );
                    let prog = progress[running.trace_idx];
                    if obs.events_on() {
                        obs.event(
                            now,
                            "finish",
                            vec![("job", job.0.into()), ("exit", exit.label().into())],
                        );
                    }
                    if obs.spans_on() {
                        obs.end(
                            now,
                            "attempt",
                            vec![
                                ("job", job.0.into()),
                                ("attempt", attempt.into()),
                                ("exit", exit.label().into()),
                            ],
                        );
                    }
                    completions.push(Completion {
                        trace_idx: running.trace_idx,
                        start_time: running.start_time,
                        end_time,
                        exit,
                        cap_w: running.power_cap_w,
                    });
                    fates.push(JobFate {
                        job_id: job,
                        attempts: prog.attempts,
                        injected_failures: prog.injected_failures,
                        exit,
                        last_cause: exit_cause(exit).or(prog.last_cause),
                    });
                    if let Some(p) = policy.as_deref_mut() {
                        p.release(job, now);
                    }
                }
                Event::Fault(fi) => {
                    let f = failure_schedule[fi];
                    if obs.events_on() {
                        obs.event(
                            now,
                            "fault",
                            vec![("cause", f.cause.label().into()), ("node", f.node.0.into())],
                        );
                    }
                    let requeues_before = stats.requeues;
                    if down.contains(&f.node) {
                        stats.absorbed_faults += 1;
                        continue; // node already out of service
                    }
                    if f.cause == FailureCause::GpuXid {
                        // A single GPU faults: exactly one GPU-holding
                        // resident dies; the node stays in service.
                        let victims = scheduler.gpu_residents_on_node(f.node);
                        if victims.is_empty() {
                            stats.absorbed_faults += 1;
                            continue;
                        }
                        let victim = victims[(f.pick % victims.len() as u64) as usize];
                        self.kill_attempt(
                            victim,
                            f.cause,
                            now,
                            obs,
                            &mut scheduler,
                            &mut cluster,
                            jobs,
                            &mut progress,
                            &mut pending_end,
                            &mut goodput,
                            &mut reliability,
                            &mut stats,
                            &mut queue,
                            &mut completions,
                            &mut fates,
                        );
                        if let Some(p) = policy.as_deref_mut() {
                            p.release(victim, now);
                        }
                    } else {
                        // Whole-node event: every resident dies and the
                        // node leaves service for repair.
                        let residents = scheduler.running_on_node(f.node);
                        if residents.is_empty() {
                            stats.absorbed_faults += 1;
                        }
                        for job_id in residents {
                            self.kill_attempt(
                                job_id,
                                f.cause,
                                now,
                                obs,
                                &mut scheduler,
                                &mut cluster,
                                jobs,
                                &mut progress,
                                &mut pending_end,
                                &mut goodput,
                                &mut reliability,
                                &mut stats,
                                &mut queue,
                                &mut completions,
                                &mut fates,
                            );
                            if let Some(p) = policy.as_deref_mut() {
                                p.release(job_id, now);
                            }
                        }
                        down.insert(f.node);
                        cluster.set_offline(f.node);
                        if obs.spans_on() {
                            obs.begin(
                                now,
                                "node_down",
                                vec![("node", f.node.0.into()), ("cause", f.cause.label().into())],
                            );
                        }
                        queue.push(now + f.repair_secs.max(1.0), Event::NodeRepair(f.node));
                    }
                    requeue_backlog += stats.requeues - requeues_before;
                }
                Event::NodeRepair(node) => {
                    down.remove(&node);
                    cluster.set_online(node);
                    if obs.spans_on() {
                        obs.end(now, "node_down", vec![("node", node.0.into())]);
                    }
                }
            }
            // One scheduling pass after every event.
            let pass = scheduler.schedule_with(now, &mut cluster, jobs, policy.as_deref_mut());
            for (idx, alloc) in pass.started {
                let job = &jobs[idx];
                // Slow-tier physics: compute-bound work stretches by
                // 1/speed; idle (data/CPU) time is speed-invariant.
                let tier_stretch = match self.config.cluster.slow_tier {
                    Some(tier)
                        if alloc
                            .parts
                            .iter()
                            .any(|p| self.config.cluster.is_slow_node(p.node.0)) =>
                    {
                        stats.slow_tier_jobs += 1;
                        let af = job
                            .truth_params
                            .as_ref()
                            .map_or(0.0, |p| p.active_fraction.clamp(0.0, 1.0));
                        af / tier.speed.max(1e-6) + (1.0 - af)
                    }
                    _ => 1.0,
                };
                // Dispatch directive: the policy may stretch the run
                // further (DVFS throttling, co-location interference)
                // and impose a per-job power cap on its telemetry.
                let directive = match policy.as_deref_mut() {
                    Some(p) => p.dispatch(job, &alloc, now),
                    None => Dispatch::default(),
                };
                let stretch = tier_stretch * directive.stretch.max(1.0);
                match directive.decision {
                    Some(PolicyDecision::CapThrottle { cap_w, slowdown }) => {
                        stats.policy_cap_throttles += 1;
                        if obs.events_on() {
                            obs.event(
                                now,
                                "cap_throttle",
                                vec![
                                    ("job", job.job_id.0.into()),
                                    ("cap_w", cap_w.into()),
                                    ("slowdown", slowdown.into()),
                                ],
                            );
                        }
                    }
                    Some(PolicyDecision::CosharePlace { host, slowdown }) => {
                        stats.policy_coshares += 1;
                        if obs.events_on() {
                            obs.event(
                                now,
                                "coshare_place",
                                vec![
                                    ("job", job.job_id.0.into()),
                                    ("host", host.0.into()),
                                    ("slowdown", slowdown.into()),
                                ],
                            );
                        }
                    }
                    Some(PolicyDecision::TierRoute { slow }) => {
                        stats.policy_tier_routes += 1;
                        if obs.events_on() {
                            obs.event(
                                now,
                                "tier_route",
                                vec![
                                    ("job", job.job_id.0.into()),
                                    ("slow", u64::from(slow).into()),
                                ],
                            );
                        }
                    }
                    None => {}
                }
                progress[idx].attempts += 1;
                let attempt = progress[idx].attempts;
                reliability.observe_attempt_start(job.gpus);
                if let Some(killed_at) = progress[idx].killed_at.take() {
                    reliability.observe_recovery(job.gpus, (now - killed_at).max(0.0));
                }
                if progress[idx].completed_work > 0.0 {
                    stats.checkpoint_restores += 1;
                    if obs.events_on() {
                        obs.event(
                            now,
                            "checkpoint_restore",
                            vec![
                                ("job", job.job_id.0.into()),
                                ("attempt", attempt.into()),
                                ("saved_work_secs", progress[idx].completed_work.into()),
                            ],
                        );
                    }
                }
                if obs.spans_on() {
                    obs.begin(
                        now,
                        "attempt",
                        vec![
                            ("job", job.job_id.0.into()),
                            ("attempt", attempt.into()),
                            ("gpus", job.gpus.into()),
                        ],
                    );
                }
                let (end_time, exit) =
                    self.decide_end(trace, job, now, stretch, progress[idx].completed_work);
                scheduler.mark_running(
                    job.job_id,
                    RunningJob {
                        trace_idx: idx,
                        alloc,
                        start_time: now,
                        estimated_end: now + job.time_limit,
                        stretch,
                        power_cap_w: directive.power_cap_w,
                    },
                );
                pending_end.insert(job.job_id, (end_time, exit, attempt));
                queue.push(end_time, Event::Finish { job: job.job_id, attempt });
            }
            stats.peak_gpus_in_use = stats.peak_gpus_in_use.max(cluster.gpus_in_use());
            if now > stats.makespan_secs {
                stats.makespan_secs = now;
            }
            timeline.observe_depth(scheduler.pending_len() as u64);
            timeline.maybe_sample(now, || TimelineSample {
                t: now,
                queued: scheduler.pending_len() as u64,
                running: scheduler.running_len() as u64,
                gpus_in_use: cluster.gpus_in_use() as u64,
                gpus_free: cluster.gpus_free() as u64,
                nodes_down: down.len() as u64,
                requeue_backlog,
                injected_failures: stats.injected_failures,
                checkpoint_restores: stats.checkpoint_restores,
            });
        }
        assert_eq!(scheduler.running_len(), 0, "all jobs must terminate");
        assert_eq!(scheduler.pending_len(), 0, "no job may be left queued");
        assert_eq!(fates.len(), jobs.len(), "every job must have exactly one fate");
        for j in jobs {
            reliability.observe_job(j.gpus);
        }
        timeline.sample_final(TimelineSample {
            t: stats.makespan_secs,
            queued: 0,
            running: 0,
            gpus_in_use: 0,
            gpus_free: cluster.gpus_free() as u64,
            nodes_down: down.len() as u64,
            requeue_backlog,
            injected_failures: stats.injected_failures,
            checkpoint_restores: stats.checkpoint_restores,
        });
        if obs.events_on() {
            obs.event(
                stats.makespan_secs,
                "sim_end",
                vec![
                    ("events", stats.events.into()),
                    ("injected_failures", stats.injected_failures.into()),
                    ("absorbed_faults", stats.absorbed_faults.into()),
                    ("requeues", stats.requeues.into()),
                    ("checkpoint_restores", stats.checkpoint_restores.into()),
                ],
            );
        }
        debug_assert!(
            goodput.balance_error() <= 1e-6 * goodput.allocated_gpu_secs.max(1.0),
            "goodput ledger out of balance: {goodput:?}"
        );
        let event_loop_secs = wall.elapsed().as_secs_f64();

        // Streaming telemetry synthesis, decoupled from the event
        // loop. Each epilog is a pure function of (job spec, start,
        // end, exit), so producers parallelize freely; `par_stream`
        // delivers results in completion order through bounded SPSC
        // channels, which keeps the dataset byte-identical to the old
        // materialize-everything batch at any thread count while
        // bounding in-flight epilogs to O(threads x channel capacity).
        let batch_t0 = std::time::Instant::now();
        let mut sched_records: Vec<SchedulerRecord> = Vec::with_capacity(jobs.len());
        let mut gpu_records: Vec<GpuJobRecord> = Vec::new();
        let mut detailed: Vec<DetailedJobStats> = Vec::new();
        let mut telemetry_summary = TelemetryStreamSummary::new();
        sc_par::par_stream(
            &completions,
            |c| {
                self.synthesize_epilog(
                    &jobs[c.trace_idx],
                    c.start_time,
                    c.end_time,
                    c.exit,
                    c.cap_w,
                    detailed_fraction,
                    &sampler,
                )
            },
            |_, epilog| {
                // Scalar stats and the streaming summary accumulate in
                // input order (par_stream reorders deliveries), exactly
                // as the inline path summed them (float addition order
                // matters for reproducibility).
                stats.gpu_hours += epilog.sched.gpu_hours();
                if epilog.sched.exit == ExitStatus::NodeFailure {
                    stats.hardware_failures += 1;
                }
                if let Some(gpu) = &epilog.gpu {
                    telemetry_summary.record_gpu_job(epilog.sched.run_time(), &gpu.per_gpu);
                }
                if let Some(d) = &epilog.detailed {
                    telemetry_summary.record_detail(&d.phases);
                }
                sched_records.push(epilog.sched);
                gpu_records.extend(epilog.gpu);
                detailed.extend(epilog.detailed);
            },
        );
        let telemetry_secs = batch_t0.elapsed().as_secs_f64();

        (
            SimOutput {
                dataset: Dataset::join(sched_records, gpu_records),
                detailed,
                stats,
                fates,
                goodput,
                timeline,
                telemetry_summary,
                reliability,
            },
            SimTimings { event_loop_secs, telemetry_secs },
        )
    }

    /// Wall-clock seconds of an `elapsed`-second attempt that a
    /// checkpoint preserved: the last completed interval boundary, or 0
    /// when the job does not checkpoint.
    fn checkpoint_saved_wall(&self, job: &JobSpec, elapsed: f64) -> f64 {
        match self.config.checkpoint {
            Some(cp) if job.checkpointable && cp.interval_secs > 0.0 => {
                ((elapsed / cp.interval_secs).floor() * cp.interval_secs).min(elapsed)
            }
            _ => 0.0,
        }
    }

    /// Posts one finished attempt to the goodput ledger and the
    /// per-size reliability accumulator. `failure` is the cause if an
    /// infrastructure failure ended the attempt; `None` means the work
    /// survived. Both ledgers see identical split values, so the
    /// per-size sums reconcile exactly with the global totals.
    fn settle_attempt(
        &self,
        goodput: &mut GoodputAccounting,
        rel: &mut ReliabilityStats,
        job: &JobSpec,
        elapsed: f64,
        failure: Option<FailureCause>,
    ) {
        let d = elapsed.max(0.0);
        let gpus = job.gpus as f64;
        let idle_g = job.idle_gpus.min(job.gpus) as f64;
        let active_g = gpus - idle_g;
        let mut idle = idle_g * d;
        goodput.allocated_gpu_secs += gpus * d;
        let (mut useful, lost) = match failure {
            None => (active_g * d, 0.0),
            Some(cause) => {
                let saved = self.checkpoint_saved_wall(job, d);
                let lost = active_g * (d - saved);
                goodput.lost_by_cause_gpu_secs[cause.index()] += lost;
                goodput.deaths_by_cause[cause.index()] += 1;
                (active_g * saved, lost)
            }
        };
        // Completed checkpoint writes stall the active GPUs for
        // `write_secs` each — whether or not the attempt later failed —
        // so they are debited from useful into idle time. This is the
        // overhead side of the Young/Daly tradeoff: short intervals
        // bound lost work but pay more write stalls.
        if let Some(cp) = self.config.checkpoint {
            if job.checkpointable && cp.interval_secs > 0.0 {
                let writes = (d / cp.interval_secs).floor() * cp.write_secs * active_g;
                let write = writes.min(useful);
                goodput.checkpoint_write_gpu_secs += write;
                useful -= write;
                idle += write;
            }
        }
        goodput.idle_gpu_secs += idle;
        goodput.useful_gpu_secs += useful;
        goodput.lost_gpu_secs += lost;
        let b = size_bucket(job.gpus);
        goodput.allocated_by_size_gpu_secs[b] += gpus * d;
        goodput.useful_by_size_gpu_secs[b] += useful;
        goodput.lost_by_size_gpu_secs[b] += lost;
        goodput.idle_by_size_gpu_secs[b] += idle;
        rel.settle_attempt(job.gpus, d, useful, lost, idle, failure.is_some());
    }

    /// Kills one running attempt at `now` because of an injected
    /// failure: releases its resources, settles the ledger, banks any
    /// checkpointed work, and either requeues the job (with exponential
    /// backoff) or records its terminal node-failure death once the
    /// retry budget is spent.
    #[allow(clippy::too_many_arguments)]
    fn kill_attempt(
        &self,
        job_id: JobId,
        cause: FailureCause,
        now: f64,
        obs: &Obs<'_>,
        scheduler: &mut Scheduler,
        cluster: &mut ClusterState,
        jobs: &[JobSpec],
        progress: &mut [JobProgress],
        pending_end: &mut HashMap<JobId, (f64, ExitStatus, u32)>,
        goodput: &mut GoodputAccounting,
        rel: &mut ReliabilityStats,
        stats: &mut SimStats,
        queue: &mut EventQueue,
        completions: &mut Vec<Completion>,
        fates: &mut Vec<JobFate>,
    ) {
        let running = scheduler.finish(job_id);
        cluster.release(&running.alloc);
        pending_end.remove(&job_id);
        let job = &jobs[running.trace_idx];
        let elapsed = (now - running.start_time).max(0.0);
        self.settle_attempt(goodput, rel, job, elapsed, Some(cause));
        let saved_wall = self.checkpoint_saved_wall(job, elapsed);
        let prog = &mut progress[running.trace_idx];
        // Saved wall-clock converts back to work units through the
        // tier's stretch factor, so a checkpoint taken on the slow tier
        // resumes correctly anywhere.
        prog.completed_work += saved_wall / running.stretch;
        prog.injected_failures += 1;
        prog.last_cause = Some(cause);
        stats.injected_failures += 1;
        if obs.events_on() {
            obs.event(
                now,
                "kill",
                vec![
                    ("job", job_id.0.into()),
                    ("cause", cause.label().into()),
                    ("elapsed_secs", elapsed.into()),
                    ("saved_secs", saved_wall.into()),
                ],
            );
        }
        if obs.spans_on() {
            obs.end(
                now,
                "attempt",
                vec![
                    ("job", job_id.0.into()),
                    ("attempt", prog.attempts.into()),
                    ("exit", "killed".into()),
                    ("cause", cause.label().into()),
                ],
            );
        }
        let retry = self.config.failures.as_ref().expect("kill implies failures on").retry;
        let cap = retry.max_retries.min(job.max_restarts);
        if prog.retries < cap {
            prog.retries += 1;
            stats.requeues += 1;
            prog.in_backoff = true;
            prog.killed_at = Some(now);
            let backoff = retry.backoff_secs(prog.retries);
            if obs.events_on() {
                obs.event(
                    now,
                    "requeue",
                    vec![
                        ("job", job_id.0.into()),
                        ("retry", prog.retries.into()),
                        ("backoff_secs", backoff.into()),
                    ],
                );
            }
            queue.push(now + backoff, Event::Submit(running.trace_idx));
        } else {
            if obs.events_on() {
                obs.event(
                    now,
                    "finish",
                    vec![
                        ("job", job_id.0.into()),
                        ("exit", ExitStatus::NodeFailure.label().into()),
                    ],
                );
            }
            completions.push(Completion {
                trace_idx: running.trace_idx,
                start_time: running.start_time,
                end_time: now.max(running.start_time + 1.0),
                exit: ExitStatus::NodeFailure,
                cap_w: running.power_cap_w,
            });
            fates.push(JobFate {
                job_id,
                attempts: prog.attempts,
                injected_failures: prog.injected_failures,
                exit: ExitStatus::NodeFailure,
                last_cause: Some(cause),
            });
        }
    }

    /// Decides when and how a started job ends. `stretch ≥ 1` scales
    /// the job's productive run (slow-tier placement); the wall-clock
    /// limit is a property of the queue and never stretches.
    /// `completed_work` is checkpoint-preserved work (un-stretched
    /// seconds) from earlier attempts; with it zero the result is
    /// bit-identical to a fresh start.
    fn decide_end(
        &self,
        trace: &Trace,
        job: &JobSpec,
        start: f64,
        stretch: f64,
        completed_work: f64,
    ) -> (f64, ExitStatus) {
        if trace.is_hardware_victim(job.job_id) {
            // The node dies somewhere inside the natural run time.
            let natural =
                ((job.outcome.run_time(job.time_limit) - completed_work) * stretch).max(1.0);
            let frac = 0.05 + 0.9 * hash_unit(job.truth_seed ^ 0xdead_beef);
            return (start + natural * frac, ExitStatus::NodeFailure);
        }
        let stretched = |secs: f64| (secs - completed_work) * stretch;
        let (run, exit) = match job.outcome {
            PlannedOutcome::Complete { work_secs } => {
                if stretched(work_secs) < job.time_limit {
                    (stretched(work_secs), ExitStatus::Completed)
                } else {
                    (job.time_limit, ExitStatus::Timeout)
                }
            }
            PlannedOutcome::Cancel { after_secs } => {
                if stretched(after_secs) < job.time_limit {
                    (stretched(after_secs), ExitStatus::Cancelled)
                } else {
                    (job.time_limit, ExitStatus::Timeout)
                }
            }
            PlannedOutcome::Fail { after_secs } => {
                if stretched(after_secs) < job.time_limit {
                    (stretched(after_secs), ExitStatus::Failed)
                } else {
                    (job.time_limit, ExitStatus::Timeout)
                }
            }
            // A session runs to its (fresh, per-attempt) limit no
            // matter how much earlier work a checkpoint preserved.
            PlannedOutcome::RunUntilTimeout => (job.time_limit, ExitStatus::Timeout),
        };
        (start + run.max(1.0), exit)
    }

    /// The epilog of one finished job: scheduler record, analytic
    /// telemetry aggregates, and — for the detailed subset — the 100 ms
    /// sampled series reduced to phase statistics. Pure with respect to
    /// its inputs (the ground truth regenerates from the job's seed),
    /// which is what lets the batch run in parallel.
    #[allow(clippy::too_many_arguments)]
    fn synthesize_epilog(
        &self,
        job: &JobSpec,
        start_time: f64,
        end_time: f64,
        exit: ExitStatus,
        cap_w: Option<f64>,
        detailed_fraction: f64,
        sampler: &GpuSampler,
    ) -> JobEpilog {
        let sched = SchedulerRecord {
            job_id: job.job_id,
            user: job.user,
            interface: job.interface,
            gpus_requested: job.gpus,
            cpus_requested: job.cpus,
            mem_requested_gib: job.mem_gib,
            submit_time: job.arrival,
            start_time,
            end_time,
            time_limit: job.time_limit,
            exit,
        };
        let run_time = sched.run_time();
        let mut gpu = None;
        let mut detailed = None;
        if job.is_gpu_job() && run_time >= MIN_GPU_JOB_RUNTIME_SECS {
            if let Some(truth) = job.ground_truth() {
                let mut per_gpu = truth.analytic_aggregates(run_time);
                if let Some(cap) = cap_w {
                    // A capped board reports capped power: the cap
                    // clamps what telemetry sees (utilizations are
                    // untouched — capping slows the clock, it does not
                    // idle the SMs).
                    for a in &mut per_gpu {
                        *a = a.with_power_cap(cap);
                    }
                }
                gpu = Some(GpuJobRecord { job_id: job.job_id, per_gpu });
                if hash_unit(job.truth_seed ^ 0x5eed_cafe) < detailed_fraction {
                    // Streaming path: the ground truth pushes job-level
                    // ticks straight into the one-pass detail reducer —
                    // bit-identical to materializing the series and
                    // running `phase_stats` / `active_variability`, at
                    // O(#runs) memory (tested in sc-workload).
                    let period = sampler.period_secs();
                    if tick_count(run_time, period) > 0 && !truth.gpus.is_empty() {
                        let (phases, variability) =
                            stream_detail(|sink| truth.stream_util3(run_time, period, sink))
                                .expect("non-empty stream of finite ticks");
                        detailed =
                            Some(DetailedJobStats { job_id: job.job_id, phases, variability });
                    }
                }
            }
        }
        JobEpilog { sched, gpu, detailed }
    }
}

/// The failure cause attributed to a naturally-decided exit: the
/// trace's per-job hardware victims die to node hardware; every other
/// exit is user or queue behaviour, not an infrastructure death.
fn exit_cause(exit: ExitStatus) -> Option<FailureCause> {
    (exit == ExitStatus::NodeFailure).then_some(FailureCause::NodeHardware)
}

/// Hashes a seed to a unit-interval float, for deterministic per-job
/// coin flips that are independent of RNG consumption order.
fn hash_unit(mut x: u64) -> f64 {
    x = (x ^ (x >> 33)).wrapping_mul(0xff51_afd7_ed55_8ccd);
    x = (x ^ (x >> 33)).wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^= x >> 33;
    (x >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_workload::WorkloadSpec;

    fn run_small(seed: u64) -> (Trace, SimOutput) {
        let spec = WorkloadSpec::supercloud().scaled(0.01);
        let trace = Trace::generate(&spec, seed);
        let sim = Simulation::new(SimConfig { detailed_series_jobs: 60, ..Default::default() });
        let out = sim.run(&trace);
        (trace, out)
    }

    #[test]
    fn every_job_terminates_exactly_once() {
        let (trace, out) = run_small(1);
        assert_eq!(out.dataset.funnel().total_jobs, trace.jobs().len());
        // Records are unique by job id.
        let mut ids: Vec<u64> = out.dataset.records().iter().map(|r| r.sched.job_id.0).collect();
        let before = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), before);
    }

    #[test]
    fn starts_never_precede_submission() {
        let (_, out) = run_small(2);
        for r in out.dataset.records() {
            assert!(r.sched.start_time >= r.sched.submit_time - 1e-9);
            assert!(r.sched.end_time > r.sched.start_time);
            assert!(r.sched.run_time() <= r.sched.time_limit + 1e-6);
        }
    }

    #[test]
    fn gpu_capacity_never_exceeded() {
        let (_, out) = run_small(3);
        assert!(out.stats.peak_gpus_in_use <= 448);
        assert!(out.stats.gpu_hours > 0.0);
    }

    #[test]
    fn exit_statuses_cover_all_lifecycles() {
        let (_, out) = run_small(4);
        let mut seen = std::collections::HashSet::new();
        for r in out.dataset.records() {
            seen.insert(r.sched.exit);
        }
        assert!(seen.contains(&ExitStatus::Completed));
        assert!(seen.contains(&ExitStatus::Cancelled));
        assert!(seen.contains(&ExitStatus::Failed));
        assert!(seen.contains(&ExitStatus::Timeout));
    }

    #[test]
    fn hardware_failures_are_rare() {
        let (_, out) = run_small(5);
        let frac = out.stats.hardware_failures as f64 / out.dataset.funnel().total_jobs as f64;
        assert!(frac < 0.02, "hardware failure fraction {frac}");
    }

    #[test]
    fn detailed_subset_collected() {
        let (_, out) = run_small(6);
        assert!(!out.detailed.is_empty(), "detailed subset must not be empty");
        for d in &out.detailed {
            assert!((0.0..=1.0).contains(&d.phases.active_fraction));
        }
    }

    #[test]
    fn ide_jobs_timeout_on_interactive_interface() {
        let (_, out) = run_small(7);
        let ide_like = out
            .dataset
            .records()
            .iter()
            .filter(|r| {
                r.sched.exit == ExitStatus::Timeout
                    && r.sched.interface == sc_telemetry::record::SubmissionInterface::Interactive
            })
            .count();
        assert!(ide_like > 0, "expected some interactive timeouts (IDE jobs)");
    }

    #[test]
    fn slow_tier_hosts_interactive_jobs_and_stretches_work() {
        use crate::spec::SlowTierSpec;
        let spec = WorkloadSpec::supercloud().scaled(0.01);
        let trace = Trace::generate(&spec, 2_024);
        let mut cluster = ClusterSpec::supercloud();
        cluster.slow_tier = Some(SlowTierSpec { nodes: 32, speed: 0.5 });
        let tiered =
            Simulation::new(SimConfig { cluster, detailed_series_jobs: 0, ..Default::default() })
                .run(&trace);
        let flat = Simulation::new(SimConfig { detailed_series_jobs: 0, ..Default::default() })
            .run(&trace);
        // Interactive jobs landed on the tier.
        assert!(tiered.stats.slow_tier_jobs > 0, "no jobs routed to slow tier");
        assert_eq!(flat.stats.slow_tier_jobs, 0);
        // Non-interactive run times are untouched; interactive,
        // non-timeout runs stretch (timeouts are reaped at the same
        // wall-clock limit either way).
        let runtimes = |out: &SimOutput| -> std::collections::HashMap<u64, (f64, bool)> {
            out.dataset
                .records()
                .iter()
                .map(|r| {
                    (
                        r.sched.job_id.0,
                        (
                            r.sched.run_time(),
                            r.sched.interface
                                == sc_telemetry::record::SubmissionInterface::Interactive,
                        ),
                    )
                })
                .collect()
        };
        let a = runtimes(&tiered);
        let b = runtimes(&flat);
        let mut stretched = 0;
        for (id, (rt_tiered, interactive)) in &a {
            let (rt_flat, _) = b[id];
            if *interactive {
                assert!(*rt_tiered >= rt_flat - 1e-6, "interactive job {id} sped up");
                if *rt_tiered > rt_flat + 1.0 {
                    stretched += 1;
                }
            } else {
                assert!(
                    (*rt_tiered - rt_flat).abs() < 1e-6,
                    "fast-tier job {id} changed: {rt_tiered} vs {rt_flat}"
                );
            }
        }
        assert!(stretched > 0, "no interactive job stretched");
    }

    #[test]
    fn node_failures_kill_residents_and_nodes_recover() {
        let spec = WorkloadSpec::supercloud().scaled(0.01);
        let trace = Trace::generate(&spec, 77);
        let sim = Simulation::new(SimConfig {
            detailed_series_jobs: 0,
            // Aggressive MTBF so the 125-day window sees many failures
            // even at 1% job scale.
            failures: Some(FailureModel::nodes_only(3_000_000.0, 4.0 * 3600.0, 5)),
            ..Default::default()
        });
        let out = sim.run(&trace);
        // Every job still terminates exactly once.
        assert_eq!(out.dataset.funnel().total_jobs, trace.jobs().len());
        assert_eq!(out.fates.len(), trace.jobs().len());
        assert!(out.stats.injected_failures > 0, "no failures injected");
        // The retry policy requeued victims, and most of them survived:
        // terminal node-failure deaths stay rare.
        assert!(out.stats.requeues > 0, "no victims were requeued");
        assert!(out.fates.iter().any(|f| f.attempts > 1 && f.exit != ExitStatus::NodeFailure));
        let node_deaths = out
            .dataset
            .records()
            .iter()
            .filter(|r| r.sched.exit == ExitStatus::NodeFailure)
            .count();
        let frac = node_deaths as f64 / out.dataset.funnel().total_jobs as f64;
        assert!(frac < 0.1, "node failures dominate: {frac}");
        // The goodput ledger balances and attributes the losses.
        assert!(out.goodput.lost_gpu_secs > 0.0);
        assert!(
            out.goodput.balance_error() <= 1e-6 * out.goodput.allocated_gpu_secs,
            "ledger imbalance: {:?}",
            out.goodput
        );
        assert_eq!(
            out.goodput.deaths_by_cause[FailureCause::NodeHardware.index()],
            out.goodput.total_deaths(),
            "nodes-only model must attribute everything to node hardware"
        );
        // Determinism holds with failures enabled.
        let out2 = sim.run(&trace);
        assert_eq!(out.dataset.records().len(), out2.dataset.records().len());
        assert_eq!(out.stats, out2.stats);
        assert_eq!(out.fates, out2.fates);
        assert_eq!(out.goodput, out2.goodput);
    }

    #[test]
    fn full_taxonomy_attributes_losses_per_cause() {
        let spec = WorkloadSpec::supercloud().scaled(0.01);
        let trace = Trace::generate(&spec, 21);
        let sim = Simulation::new(SimConfig {
            detailed_series_jobs: 0,
            failures: Some(FailureModel::supercloud(9).scaled_mtbf(0.05)),
            ..Default::default()
        });
        let out = sim.run(&trace);
        assert_eq!(out.fates.len(), trace.jobs().len());
        assert!(out.stats.injected_failures > 0);
        // With all three classes at stress rates, at least two causes
        // should claim victims over a 125-day window.
        let active_causes = out.goodput.deaths_by_cause.iter().filter(|&&d| d > 0).count();
        assert!(active_causes >= 2, "deaths: {:?}", out.goodput.deaths_by_cause);
        assert!(out.goodput.balance_error() <= 1e-6 * out.goodput.allocated_gpu_secs);
    }

    #[test]
    fn checkpointing_converts_lost_work_into_useful_work() {
        let spec = WorkloadSpec::supercloud().scaled(0.01);
        let trace = Trace::generate(&spec, 42);
        let failures = Some(FailureModel::supercloud(3).scaled_mtbf(0.05));
        let base = Simulation::new(SimConfig {
            detailed_series_jobs: 0,
            failures: failures.clone(),
            ..Default::default()
        })
        .run(&trace);
        let ckpt = Simulation::new(SimConfig {
            detailed_series_jobs: 0,
            failures,
            checkpoint: Some(CheckpointPolicy { interval_secs: 1800.0, write_secs: 30.0 }),
            ..Default::default()
        })
        .run(&trace);
        assert!(base.goodput.lost_gpu_secs > 0.0);
        assert!(
            ckpt.goodput.lost_gpu_secs < base.goodput.lost_gpu_secs,
            "checkpointing must reduce lost work: {} vs {}",
            ckpt.goodput.lost_gpu_secs,
            base.goodput.lost_gpu_secs
        );
        assert!(ckpt.goodput.checkpoint_write_gpu_secs > 0.0);
        assert!(ckpt.goodput.balance_error() <= 1e-6 * ckpt.goodput.allocated_gpu_secs);
    }

    #[test]
    fn reliability_stats_reconcile_with_the_goodput_ledger() {
        let spec = WorkloadSpec::supercloud().scaled(0.01);
        let trace = Trace::generate(&spec, 17);
        let sim = Simulation::new(SimConfig {
            detailed_series_jobs: 0,
            failures: Some(FailureModel::supercloud(9).scaled_mtbf(0.05)),
            ..Default::default()
        });
        let out = sim.run(&trace);
        let rel = &out.reliability;
        assert_eq!(rel.buckets.len(), SIZE_BUCKET_COUNT);
        // Every job counted once; attempts >= jobs (restarts only add).
        assert_eq!(rel.total(|b| b.jobs as f64) as usize, trace.jobs().len());
        let attempts: u64 = rel.buckets.iter().map(|b| b.attempts).sum();
        let expected: u64 = out.fates.iter().map(|f| u64::from(f.attempts)).sum();
        assert_eq!(attempts, expected);
        // Failure counts agree with the goodput ledger's deaths.
        assert_eq!(rel.total_failures(), out.goodput.total_deaths());
        // Per-size sums reconcile with the global ledger (same floats,
        // so tolerance only covers summation order).
        let tol = 1e-6 * out.goodput.allocated_gpu_secs.max(1.0);
        assert!((rel.total(|b| b.exposed_gpu_secs) - out.goodput.allocated_gpu_secs).abs() < tol);
        assert!((rel.total(|b| b.useful_gpu_secs) - out.goodput.useful_gpu_secs).abs() < tol);
        assert!((rel.total(|b| b.lost_gpu_secs) - out.goodput.lost_gpu_secs).abs() < tol);
        assert!((rel.total(|b| b.idle_gpu_secs) - out.goodput.idle_gpu_secs).abs() < tol);
        for i in 0..SIZE_BUCKET_COUNT {
            assert!(out.goodput.size_balance_error(i) < tol, "bucket {i} ledger imbalance");
            assert!(
                (out.goodput.allocated_by_size_gpu_secs[i] - rel.buckets[i].exposed_gpu_secs).abs()
                    < tol,
                "bucket {i}: ledger and reliability disagree on exposure"
            );
        }
        // Requeues produced recoveries with a sane ETTR: at least the
        // base backoff plus scheduler latency.
        let recoveries: u64 = rel.buckets.iter().map(|b| b.recoveries).sum();
        assert!(recoveries > 0, "expected kill-to-restart recoveries");
        assert!(recoveries <= out.stats.requeues);
        for b in rel.buckets.iter().filter(|b| b.recoveries > 0) {
            assert!(b.ettr_secs().unwrap() >= 60.0, "ETTR below base backoff");
        }
        // Rendering is pure text and deterministic across runs.
        assert_eq!(out.reliability.render(), sim.run(&trace).reliability.render());
    }

    #[test]
    fn custom_size_bucket_edges_flow_into_the_accumulator() {
        let spec = WorkloadSpec::supercloud().scaled(0.005);
        let trace = Trace::generate(&spec, 23);
        let out = Simulation::new(SimConfig {
            detailed_series_jobs: 0,
            size_bucket_edges: vec![4],
            ..Default::default()
        })
        .run(&trace);
        assert_eq!(out.reliability.buckets.len(), 2);
        assert_eq!(out.reliability.label(0), "0-4 GPU");
        assert_eq!(out.reliability.label(1), ">4 GPU");
        assert_eq!(out.reliability.total(|b| b.jobs as f64) as usize, trace.jobs().len());
    }

    #[test]
    fn disabled_model_keeps_goodput_ledger_clean() {
        let (_, out) = run_small(11);
        assert_eq!(out.stats.injected_failures, 0);
        assert_eq!(out.stats.requeues, 0);
        assert!(out.fates.iter().all(|f| f.attempts == 1 && f.injected_failures == 0));
        // Only the trace's own hardware victims register as losses.
        assert_eq!(
            out.goodput.total_deaths() as usize,
            out.stats.hardware_failures,
            "without injection, deaths are exactly the trace victims"
        );
        assert!(out.goodput.balance_error() <= 1e-6 * out.goodput.allocated_gpu_secs);
    }

    #[test]
    fn output_is_identical_across_thread_budgets() {
        // The deterministic-parallelism rule: the batch telemetry
        // synthesis must produce the same records, detailed subset, and
        // stats (including order-sensitive float sums) on 1 thread and
        // on many.
        let spec = WorkloadSpec::supercloud().scaled(0.005);
        let trace = Trace::generate(&spec, 31);
        let sim = Simulation::new(SimConfig { detailed_series_jobs: 30, ..Default::default() });
        let saved = sc_par::current_threads();
        sc_par::set_max_threads(1);
        let (single, timings) = sim.run_timed(&trace);
        sc_par::set_max_threads(4);
        let multi = sim.run(&trace);
        sc_par::set_max_threads(saved);
        assert_eq!(single.dataset.records(), multi.dataset.records());
        assert_eq!(single.detailed, multi.detailed);
        assert_eq!(single.stats, multi.stats);
        assert!(timings.event_loop_secs >= 0.0 && timings.telemetry_secs >= 0.0);
    }

    #[test]
    fn observed_run_emits_records_without_changing_output() {
        use sc_obs::{RingSink, TraceLevel};
        let spec = WorkloadSpec::supercloud().scaled(0.005);
        let trace = Trace::generate(&spec, 13);
        let sim = Simulation::new(SimConfig {
            detailed_series_jobs: 0,
            failures: Some(FailureModel::supercloud(6).scaled_mtbf(0.05)),
            checkpoint: Some(CheckpointPolicy { interval_secs: 1800.0, write_secs: 30.0 }),
            ..Default::default()
        });
        let plain = sim.run(&trace);
        let ring = RingSink::new(TraceLevel::Events, 1_000_000);
        let (observed, _) = sim.run_observed(&trace, &Obs::new(&ring));
        assert_eq!(plain.stats, observed.stats);
        assert_eq!(plain.fates, observed.fates);
        assert_eq!(plain.goodput, observed.goodput);
        assert_eq!(plain.timeline, observed.timeline);
        let records = ring.records();
        assert!(!records.is_empty());
        let names: std::collections::HashSet<&str> = records.iter().map(|r| r.name).collect();
        for expected in ["submit", "attempt", "finish", "fault", "kill", "requeue", "sim_end"] {
            assert!(names.contains(expected), "missing {expected} in {names:?}");
        }
        // Records arrive in event order: sim time never goes backwards.
        for pair in records.windows(2) {
            assert!(pair[1].t >= pair[0].t - 1e-9);
        }
        // The timeline saw the whole run and its counters are coherent.
        let last = *observed.timeline.samples().last().unwrap();
        assert_eq!(last.injected_failures, observed.stats.injected_failures);
        assert_eq!(last.checkpoint_restores, observed.stats.checkpoint_restores);
        assert_eq!(last.queued, 0);
        assert_eq!(last.running, 0);
        assert!(observed.stats.checkpoint_restores > 0, "checkpoint restores must register");
    }

    #[test]
    fn deterministic_output() {
        let (_, a) = run_small(8);
        let (_, b) = run_small(8);
        assert_eq!(a.dataset.records().len(), b.dataset.records().len());
        for (ra, rb) in a.dataset.records().iter().zip(b.dataset.records()) {
            assert_eq!(ra.sched, rb.sched);
        }
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn gpu_jobs_wait_less_than_cpu_jobs() {
        let (_, out) = run_small(9);
        let gpu_waits: Vec<f64> = out.dataset.gpu_jobs().map(|r| r.sched.queue_wait()).collect();
        let cpu_waits: Vec<f64> = out.dataset.cpu_jobs().map(|r| r.sched.queue_wait()).collect();
        assert!(!gpu_waits.is_empty() && !cpu_waits.is_empty());
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        // The paper's headline scheduling result, directionally: GPU
        // jobs clear the queue at (or near) the scheduler latency.
        assert!(
            mean(&gpu_waits) <= mean(&cpu_waits) + 5.0,
            "gpu mean wait {} vs cpu {}",
            mean(&gpu_waits),
            mean(&cpu_waits)
        );
        let median = |v: &[f64]| {
            let mut s = v.to_vec();
            s.sort_by(|a, b| a.partial_cmp(b).unwrap());
            s[s.len() / 2]
        };
        assert!(median(&gpu_waits) <= 10.0, "gpu median wait {}", median(&gpu_waits));
    }
}
