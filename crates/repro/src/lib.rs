//! Umbrella crate for `supercloud-lab`.
//!
//! Re-exports the whole workspace under one name and hosts the
//! repository-level `examples/` and `tests/` targets (see the
//! `[[example]]`/`[[test]]` tables in this crate's `Cargo.toml`).
//!
//! # Example
//!
//! ```
//! use sc_repro::prelude::*;
//!
//! let spec = WorkloadSpec::supercloud().scaled(0.002);
//! let trace = Trace::generate(&spec, 1);
//! let out = Simulation::supercloud().run(&trace);
//! assert!(out.dataset.funnel().gpu_jobs > 0);
//! ```

#![warn(missing_docs)]

pub use sc_cluster as cluster;
pub use sc_core as core;
pub use sc_learn as learn;
pub use sc_obs as obs;
pub use sc_opportunity as opportunity;
pub use sc_par as par;
pub use sc_policy as policy;
pub use sc_scenario as scenario;
pub use sc_serve as serve;
pub use sc_stats as stats;
pub use sc_telemetry as telemetry;
pub use sc_workload as workload;

/// One-line imports for examples and integration tests.
pub mod prelude {
    pub use sc_cluster::{
        CheckpointPolicy, ClusterSpec, FailureCause, FailureModel, GoodputAccounting, JobFate,
        ReliabilityStats, RetryPolicy, SimConfig, SimOutput, Simulation,
    };
    pub use sc_core::{
        classify_record, corrupt_and_ingest, gpu_views, ingest, run_reliability_study, user_stats,
        AnalysisReport, ClassifierFig, DataQualityError, DataQualityFig, DatasetReport, GoodputFig,
        IngestOutput, IngestReport, PipelineError, Provenance, QuarantineAction, ReliabilityConfig,
        ReliabilityReport,
    };
    pub use sc_learn::{ArchetypePredictor, ClassifierConfig};
    pub use sc_obs::{JsonlSink, Obs, RingSink, StageLog, TraceLevel, TraceSink};
    pub use sc_opportunity::OpportunityReport;
    pub use sc_policy::{
        CosharePolicy, PolicyExperiment, PolicySpec, PowerCapPolicy, TieredPolicy,
    };
    pub use sc_scenario::{CrossSystemFig, ErrorKind, Scenario, ScenarioError};
    pub use sc_serve::{Query, ServeConfig, Service};
    pub use sc_stats::{BoxStats, Ecdf, Lorenz};
    pub use sc_telemetry::{
        CorruptionCounters, Corruptor, DataQualityProfile, Dataset, ExitStatus, FaultClass,
        RawCollection, SubmissionInterface,
    };
    pub use sc_workload::{LifecycleClass, Trace, WorkloadSpec};
}
