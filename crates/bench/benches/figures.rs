//! One benchmark per table and figure of the paper: each measures
//! regenerating that figure's data from the (cached) simulated dataset.
//!
//! Run `cargo bench -p sc-bench --bench figures`. The companion binary
//! `repro_figures` prints the actual series and the paper-vs-measured
//! comparison; these benches time the analysis itself.

use criterion::{criterion_group, criterion_main, Criterion};
use sc_bench::bench_sim;
use sc_cluster::ClusterSpec;
use sc_core::figures::*;
use sc_core::{gpu_views, user_stats};
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    let out = bench_sim();
    let views = gpu_views(&out.dataset);
    let users = user_stats(&views);

    let mut g = c.benchmark_group("figures");
    g.sample_size(20);

    g.bench_function("table1_system_spec", |b| {
        b.iter(|| black_box(ClusterSpec::supercloud().table1()))
    });
    g.bench_function("fig03_runtimes_and_waits", |b| {
        b.iter(|| black_box(Fig3::compute(&out.dataset)))
    });
    g.bench_function("fig04_utilization_cdfs", |b| b.iter(|| black_box(Fig4::compute(&views))));
    g.bench_function("fig05_interface_boxes", |b| b.iter(|| black_box(Fig5::compute(&views))));
    g.bench_function("fig06_phases", |b| b.iter(|| black_box(Fig6::compute(&out.detailed))));
    g.bench_function("fig07_variability_bottlenecks", |b| {
        b.iter(|| black_box(Fig7::compute(&out.detailed, &views)))
    });
    g.bench_function("fig08_bottleneck_pairs", |b| b.iter(|| black_box(Fig8::compute(&views))));
    g.bench_function("fig09_power", |b| b.iter(|| black_box(Fig9::compute(&views))));
    g.bench_function("fig10_user_averages", |b| b.iter(|| black_box(Fig10::compute(&users))));
    g.bench_function("fig11_user_variability", |b| b.iter(|| black_box(Fig11::compute(&users))));
    g.bench_function("fig12_spearman", |b| b.iter(|| black_box(Fig12::compute(&users))));
    g.bench_function("fig13_multi_gpu", |b| b.iter(|| black_box(Fig13::compute(&views, &users))));
    g.bench_function("fig14_cross_gpu_balance", |b| b.iter(|| black_box(Fig14::compute(&views))));
    g.bench_function("fig15_lifecycle_mix", |b| b.iter(|| black_box(Fig15::compute(&views))));
    g.bench_function("fig16_class_boxes", |b| b.iter(|| black_box(Fig16::compute(&views))));
    g.bench_function("fig17_user_mixes", |b| b.iter(|| black_box(Fig17::compute(&users))));
    g.finish();

    // The whole evaluation at once — the cost of `AnalysisReport`.
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);
    g.bench_function("all_figures", |b| {
        b.iter(|| black_box(sc_core::AnalysisReport::from_sim(out)))
    });
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
