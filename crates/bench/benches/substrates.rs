//! Benchmarks of the substrates the reproduction had to build: the
//! workload generator, the discrete-event scheduler, the telemetry
//! samplers/aggregators, and the statistics primitives.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sc_bench::bench_trace;
use sc_cluster::{SimConfig, Simulation};
use sc_stats::dist::Sample;
use sc_telemetry::sampler::GpuSampler;
use sc_workload::{Trace, TruthParams, WorkloadSpec};
use std::hint::black_box;

fn bench_workload(c: &mut Criterion) {
    let mut g = c.benchmark_group("workload");
    g.sample_size(10);
    g.bench_function("generate_trace_1pct", |b| {
        let spec = WorkloadSpec::supercloud().scaled(0.01);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(Trace::generate(&spec, seed))
        })
    });
    g.bench_function("ground_truth_one_job", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        let params = TruthParams { duration: 7200.0, ..Default::default() };
        b.iter(|| black_box(sc_workload::truth::generate_gpu_truth(&mut rng, &params)))
    });
    g.finish();
}

fn bench_scheduler(c: &mut Criterion) {
    let mut g = c.benchmark_group("scheduler");
    g.sample_size(10);
    let trace = bench_trace();
    g.bench_function("simulate_4pct_trace", |b| {
        let sim = Simulation::new(SimConfig { detailed_series_jobs: 0, ..Default::default() });
        b.iter(|| black_box(sim.run(&trace)))
    });
    g.finish();
}

fn bench_telemetry(c: &mut Criterion) {
    let mut g = c.benchmark_group("telemetry");
    let mut rng = StdRng::seed_from_u64(8);
    let params = TruthParams { duration: 1800.0, ..Default::default() };
    let truth = sc_workload::JobGroundTruth::generate(&mut rng, &params, 2, 0, 0.05);
    // The two data paths of Sec. II: streaming 100 ms sampling vs the
    // exact analytic aggregation that replaces it for the bulk dataset.
    g.bench_function("sample_100ms_30min_2gpu", |b| {
        let sampler = GpuSampler::new();
        b.iter(|| black_box(sampler.sample_aggregates(&truth, 1800.0)))
    });
    g.bench_function("analytic_aggregates_30min_2gpu", |b| {
        b.iter(|| black_box(truth.analytic_aggregates(1800.0)))
    });
    g.finish();
}

fn bench_stats(c: &mut Criterion) {
    let mut g = c.benchmark_group("stats");
    let mut rng = StdRng::seed_from_u64(3);
    let lognormal = sc_stats::dist::LogNormal::new(3.0, 1.5).unwrap();
    let data: Vec<f64> = lognormal.sample_n(&mut rng, 47_120);
    g.bench_function("ecdf_47k", |b| {
        b.iter(|| black_box(sc_stats::Ecdf::from_slice(&data).unwrap()))
    });
    g.bench_function("spearman_47k", |b| {
        let ys: Vec<f64> = data.iter().map(|x| x.sqrt()).collect();
        b.iter(|| black_box(sc_stats::spearman(&data, &ys).unwrap()))
    });
    g.bench_function("segmentation_36k_samples", |b| {
        let series: Vec<f64> =
            (0..36_000).map(|i| if (i / 600) % 2 == 0 { 80.0 } else { 0.0 }).collect();
        b.iter(|| black_box(sc_stats::segment_intervals(&series, 0.5, 10).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench_workload, bench_scheduler, bench_telemetry, bench_stats);
criterion_main!(benches);
