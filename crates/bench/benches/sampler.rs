//! Telemetry-sampler benchmarks: the streaming aggregate path and the
//! materialized series path, at a short (1 h) and a long (20 h) job
//! duration.
//!
//! Run `cargo bench -p sc-bench --bench sampler`. The 20-hour case is
//! the one that dominates the full reproduction (720,000 ticks per GPU
//! at the 100 ms production period); the constant-span fast path in
//! `GpuSampler` is what keeps it tractable, and these benches are where
//! a regression to per-tick sampling would show first.

use criterion::{criterion_group, criterion_main, Criterion};
use sc_bench::bench_trace;
use sc_telemetry::sampler::GpuSampler;
use sc_workload::JobGroundTruth;
use std::hint::black_box;

const HOUR_SECS: f64 = 3_600.0;

/// Ground truth of the first multi-GPU job in the bench trace — a real
/// phase/spike structure rather than a synthetic constant source, so
/// both the fast path and the per-tick path get exercised.
fn bench_truth() -> JobGroundTruth {
    let trace = bench_trace();
    trace
        .jobs()
        .iter()
        .filter(|j| j.gpus >= 2)
        .find_map(|j| j.ground_truth())
        .expect("bench trace contains a multi-GPU job")
}

fn bench_sampler(c: &mut Criterion) {
    let truth = bench_truth();
    let sampler = GpuSampler::new();

    let mut g = c.benchmark_group("sampler");
    g.sample_size(10);

    for (label, hours) in [("1h", 1.0), ("20h", 20.0)] {
        let duration = hours * HOUR_SECS;
        g.bench_function(&format!("aggregates_{label}"), |b| {
            b.iter(|| black_box(sampler.sample_aggregates(&truth, duration)))
        });
        g.bench_function(&format!("series_{label}"), |b| {
            b.iter(|| black_box(sampler.sample_series(&truth, duration)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sampler);
criterion_main!(benches);
