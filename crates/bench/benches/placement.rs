//! The scheduler placement hot path, with and without the closed-loop
//! co-sharing policy.
//!
//! Each iteration replays the event loop's placement work over a
//! contended backlog: a fill pass packs the cluster solid, every started
//! job is dispatched and marked running (so EASY has a real shadow
//! time), and a second pass then probes the whole remaining queue for
//! backfill. The baseline arm runs the cluster's own packing; the
//! coshare arm additionally consults [`CosharePolicy`] on every probe —
//! slot scans, ground-truth synthesis, and pair-interference scoring
//! included, exactly as `Simulation::run_policy` would. The delta
//! between the two medians is the policy's placement overhead, which
//! `scripts/check_bench.py --placement` gates in CI.

use criterion::{criterion_group, criterion_main, Criterion};
use sc_bench::bench_trace;
use sc_cluster::{ClusterSpec, ClusterState, Policy, RunningJob, Scheduler};
use sc_policy::CosharePolicy;
use sc_workload::JobSpec;
use std::hint::black_box;

/// A GPU-job backlog large enough to leave a deep queue behind the fill
/// pass on the benchmark cluster.
const BACKLOG_JOBS: usize = 600;

/// Cluster deliberately an order of magnitude smaller than the backlog
/// (32 nodes = 64 GPUs) so the second pass runs fully contended.
fn bench_cluster_spec() -> ClusterSpec {
    let mut spec = ClusterSpec::supercloud();
    spec.nodes = 32;
    spec
}

fn backlog() -> Vec<JobSpec> {
    bench_trace().gpu_jobs().take(BACKLOG_JOBS).cloned().collect()
}

/// One fill pass plus one fully contended pass, mirroring the event
/// loop's schedule → dispatch → mark-running sequence. Returns the
/// number of started jobs so the optimizer cannot discard the work.
fn contended_passes(
    jobs: &[JobSpec],
    spec: &ClusterSpec,
    mut policy: Option<&mut (dyn Policy + '_)>,
) -> usize {
    let mut cluster = ClusterState::new(spec.clone());
    let mut sched = Scheduler::new();
    for i in 0..jobs.len() {
        sched.submit(i, 0.0);
    }
    let mut started = 0;
    for _ in 0..2 {
        let pass = sched.schedule_with(0.0, &mut cluster, jobs, policy.as_deref_mut());
        for (idx, alloc) in &pass.started {
            let job = &jobs[*idx];
            if let Some(p) = policy.as_deref_mut() {
                black_box(p.dispatch(job, alloc, 0.0));
            }
            sched.mark_running(
                job.job_id,
                RunningJob {
                    trace_idx: *idx,
                    alloc: alloc.clone(),
                    start_time: 0.0,
                    estimated_end: job.time_limit,
                    stretch: 1.0,
                    power_cap_w: None,
                },
            );
        }
        started += pass.started.len();
    }
    started
}

fn bench_placement(c: &mut Criterion) {
    let mut g = c.benchmark_group("placement");
    g.sample_size(10);
    let jobs = backlog();
    let spec = bench_cluster_spec();
    g.bench_function("contended_pass_baseline", |b| {
        b.iter(|| black_box(contended_passes(&jobs, &spec, None)))
    });
    g.bench_function("contended_pass_coshare", |b| {
        // Fresh policy each iteration: host slots are consumed as guests
        // pair, and the event loop likewise starts every run empty.
        b.iter(|| {
            let mut p = CosharePolicy::default();
            black_box(contended_passes(&jobs, &spec, Some(&mut p)))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_placement);
criterion_main!(benches);
