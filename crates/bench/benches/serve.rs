//! Microbenchmarks of the query-service request path: the cache-hit
//! fast path, the cold compute it amortizes, and the executor
//! round-trip a submitted request pays on top of a blocking call.

use criterion::{criterion_group, criterion_main, Criterion};
use sc_core::{FigureId, PointStat};
use sc_serve::{Query, ServeConfig, Service};
use std::hint::black_box;
use std::sync::{Arc, OnceLock};

static SVC: OnceLock<Arc<Service>> = OnceLock::new();

/// One shared 2%-scale service; the simulation builds once per process
/// and every bench below only reads.
fn svc() -> &'static Arc<Service> {
    SVC.get_or_init(|| {
        Arc::new(Service::build(ServeConfig {
            seed: 20_230_101,
            threads: 2,
            ..ServeConfig::default()
        }))
    })
}

fn bench_serve(c: &mut Criterion) {
    let svc = svc();
    let point = Query::Point(PointStat::MedianRunMin);
    let figure = Query::Figure(FigureId::Fig9);
    // Warm both so the *_hit benches measure the cache path alone.
    svc.query_blocking(&point);
    svc.query_blocking(&figure);

    let mut g = c.benchmark_group("serve");
    g.bench_function("point_hit", |b| b.iter(|| black_box(svc.query_blocking(&point))));
    g.bench_function("figure_hit", |b| b.iter(|| black_box(svc.query_blocking(&figure))));
    g.bench_function("point_cold", |b| b.iter(|| black_box(svc.query_uncached(&point))));
    g.bench_function("figure_cold", |b| b.iter(|| black_box(svc.query_uncached(&figure))));
    // Executor + channel overhead on an always-hot response.
    g.bench_function("submit_join_hit", |b| {
        b.iter(|| black_box(svc.submit(point).wait().response))
    });
    g.finish();
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
