//! Benchmarks of the opportunity studies (Secs. III/VI/VIII): power-cap
//! over-provisioning, co-location pairing, two-tier economics, and
//! checkpointing.

use criterion::{criterion_group, criterion_main, Criterion};
use sc_bench::bench_sim;
use sc_core::gpu_views;
use sc_opportunity::{checkpoint, colocation, powercap, tiering, PairingPolicy, Tier};
use std::hint::black_box;

fn bench_opportunity(c: &mut Criterion) {
    let out = bench_sim();
    let views = gpu_views(&out.dataset);

    let mut g = c.benchmark_group("opportunity");
    g.sample_size(10);

    g.bench_function("powercap_sweep", |b| {
        let caps = [100.0, 150.0, 200.0, 250.0, 300.0];
        b.iter(|| {
            black_box(powercap::OverProvisionStudy::run(&views, &caps, 448.0 * 300.0, 300.0, 20.0))
        })
    });

    g.bench_function("tiering_three_policies", |b| {
        let slow = Tier { speed: 0.5, cost: 0.35 };
        b.iter(|| black_box(tiering::evaluate(&views, slow)))
    });

    g.bench_function("checkpoint_sweep", |b| {
        let intervals = [300.0, 900.0, 1_800.0, 3_600.0, 7_200.0];
        b.iter(|| black_box(checkpoint::sweep(&views, &intervals, 30.0)))
    });

    // Pairwise phase-interference simulation — the expensive one.
    g.bench_function("colocation_40_jobs", |b| {
        // Build a 40-candidate set once; measure the pairing simulation.
        let mut candidates = Vec::new();
        for (i, v) in views.iter().filter(|v| v.per_gpu.len() == 1).take(40).enumerate() {
            let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(i as u64);
            let truth = sc_workload::truth::generate_gpu_truth(
                &mut rng,
                &sc_workload::TruthParams {
                    duration: 2_000.0,
                    active_fraction: 0.6,
                    mean_levels: sc_workload::ResourceLevels {
                        sm: v.agg.sm_util.mean,
                        mem: v.agg.mem_util.mean,
                        mem_size: v.agg.mem_size_util.mean,
                        pcie_tx: 5.0,
                        pcie_rx: 5.0,
                    },
                    ..Default::default()
                },
            );
            candidates.push(colocation::Candidate {
                truth,
                duration: 1_500.0,
                mean_sm: v.agg.sm_util.mean,
            });
        }
        b.iter(|| {
            black_box(colocation::evaluate_policy(&candidates, PairingPolicy::UtilizationAware))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_opportunity);
criterion_main!(benches);
