//! Benchmarks of the streaming telemetry engine: the mergeable one-pass
//! aggregators in sc-stats, the SPSC channel and ordered parallel
//! stream in sc-par, and the end-to-end producer-to-aggregator path
//! that replaced the materialize-everything batch stage.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sc_stats::{LogQuantileSketch, MergeHistogram, Welford};
use sc_telemetry::stream_detail;
use sc_workload::TruthParams;
use std::hint::black_box;

/// A deterministic lognormal-ish value stream for the aggregators.
fn values(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| (rng.gen::<f64>() * 6.0).exp()).collect()
}

fn bench_aggregators(c: &mut Criterion) {
    let mut g = c.benchmark_group("streaming_aggregators");
    let data = values(100_000, 11);
    // Each bench folds the stream through 8 shards and merges them, the
    // shape the parallel collector produces.
    g.bench_function("sketch_push_merge_100k", |b| {
        b.iter(|| {
            let mut shards: Vec<_> =
                (0..8).map(|_| LogQuantileSketch::new(0.02).expect("valid alpha")).collect();
            for (i, chunk) in data.chunks(data.len() / 8).enumerate() {
                for &v in chunk {
                    shards[i.min(7)].push(v);
                }
            }
            let mut whole = shards.swap_remove(0);
            for s in &shards {
                whole.merge(s).expect("same alpha");
            }
            black_box(whole.quantile(0.5))
        })
    });
    g.bench_function("welford_push_merge_100k", |b| {
        b.iter(|| {
            let mut shards = vec![Welford::new(); 8];
            for (i, chunk) in data.chunks(data.len() / 8).enumerate() {
                for &v in chunk {
                    shards[i.min(7)].push(v);
                }
            }
            let mut whole = shards.swap_remove(0);
            for s in &shards {
                whole.merge(s);
            }
            black_box(whole.cov_percent())
        })
    });
    g.bench_function("histogram_push_merge_100k", |b| {
        b.iter(|| {
            let mut shards: Vec<_> = (0..8)
                .map(|_| MergeHistogram::new(0.0, 500.0, 50).expect("valid bounds"))
                .collect();
            for (i, chunk) in data.chunks(data.len() / 8).enumerate() {
                for &v in chunk {
                    shards[i.min(7)].push(v);
                }
            }
            let mut whole = shards.swap_remove(0);
            for s in &shards {
                whole.merge(s).expect("same bounds");
            }
            black_box(whole.count())
        })
    });
    g.finish();
}

fn bench_channels(c: &mut Criterion) {
    let mut g = c.benchmark_group("streaming_channels");
    g.bench_function("spsc_send_recv_100k", |b| {
        b.iter(|| {
            let (tx, mut rx) = sc_par::spsc::channel::<u64>(256);
            std::thread::scope(|scope| {
                scope.spawn(move || {
                    for i in 0..100_000u64 {
                        if tx.send(i).is_err() {
                            break;
                        }
                    }
                });
                let mut sum = 0u64;
                while let Some(v) = rx.recv() {
                    sum += v;
                }
                black_box(sum)
            })
        })
    });
    g.bench_function("par_stream_order_10k", |b| {
        let items: Vec<u64> = (0..10_000).collect();
        b.iter(|| {
            let mut folded = 0u64;
            sc_par::par_stream(&items, |&i| i.wrapping_mul(0x9e37_79b9), |_, r| folded ^= r);
            black_box(folded)
        })
    });
    g.finish();
}

fn bench_stream_detail(c: &mut Criterion) {
    let mut g = c.benchmark_group("streaming_detail");
    g.sample_size(20);
    let mut rng = StdRng::seed_from_u64(8);
    let params = TruthParams { duration: 1800.0, ..Default::default() };
    let truth = sc_workload::JobGroundTruth::generate(&mut rng, &params, 2, 0, 0.05);
    // The end-to-end streamed path of one detailed-subset job: producer
    // synthesizes 100 ms ticks straight into the segmentation builder
    // and CoV folds, no materialized series.
    g.bench_function("stream_detail_30min_2gpu", |b| {
        b.iter(|| {
            black_box(
                stream_detail(|sink| truth.stream_util3(1800.0, 0.1, sink))
                    .expect("finite non-empty stream"),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_aggregators, bench_channels, bench_stream_detail);
criterion_main!(benches);
