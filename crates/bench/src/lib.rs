//! Shared fixtures for the benchmark harness.
//!
//! Every Criterion bench measures an analysis stage over the same
//! deterministic simulation output, built once per process by
//! [`bench_sim`].

#![warn(missing_docs)]

use sc_cluster::{SimConfig, SimOutput, Simulation};
use sc_workload::{Trace, WorkloadSpec};
use std::sync::OnceLock;

static SIM: OnceLock<SimOutput> = OnceLock::new();

/// A cached 4%-scale Supercloud simulation (≈3,000 jobs, 64 users) —
/// large enough that every figure's population is non-degenerate, small
/// enough that the bench suite stays in seconds.
pub fn bench_sim() -> &'static SimOutput {
    SIM.get_or_init(|| {
        let mut spec = WorkloadSpec::supercloud().scaled(0.04);
        spec.users = 64;
        let trace = Trace::generate(&spec, 20_230_101);
        Simulation::new(SimConfig { detailed_series_jobs: 90, ..Default::default() }).run(&trace)
    })
}

/// The bench trace itself (for generator/scheduler benches).
pub fn bench_trace() -> Trace {
    let mut spec = WorkloadSpec::supercloud().scaled(0.04);
    spec.users = 64;
    Trace::generate(&spec, 20_230_101)
}
