//! Runs the figure pipeline over a previously exported dataset
//! (`export_dataset` output) — the consumer side of the paper's
//! published-dataset workflow. Figures 6–7 need the 100 ms time-series
//! subset and are not part of the dataset release; every other figure
//! is regenerated.
//!
//! ```text
//! analyze_dataset dataset.json
//! ```

use sc_core::DatasetReport;
use sc_telemetry::Dataset;

fn main() {
    let path = std::env::args().nth(1).expect("usage: analyze_dataset <dataset.json>");
    let json = std::fs::read_to_string(&path).expect("readable dataset file");
    let dataset = Dataset::from_json(&json).expect("valid dataset JSON");
    eprintln!(
        "loaded {}: {} records, {} analyzed GPU jobs, {} users",
        path,
        dataset.records().len(),
        dataset.funnel().gpu_jobs,
        dataset.funnel().unique_users
    );
    let report = DatasetReport::from_dataset(&dataset);
    println!("{}", report.render_text());
}
