//! Runs the figure pipeline over a previously exported dataset
//! (`export_dataset` output) — the consumer side of the paper's
//! published-dataset workflow. Figures 6–7 need the 100 ms time-series
//! subset and are not part of the dataset release; every other figure
//! is regenerated.
//!
//! ```text
//! analyze_dataset dataset.json
//! ```

use sc_core::DatasetReport;
use sc_telemetry::Dataset;

const USAGE: &str = "usage: analyze_dataset <dataset.json>

Runs the figure pipeline over a dataset written by export_dataset.";

/// Prints an error plus the usage text and exits with status 2.
fn usage_error(msg: &str) -> ! {
    eprintln!("analyze_dataset: {msg}\n{USAGE}");
    std::process::exit(2);
}

/// Prints a runtime (non-usage) error and exits with status 1.
fn fail(msg: &str) -> ! {
    eprintln!("analyze_dataset: {msg}");
    std::process::exit(1);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let path = match args.next().as_deref() {
        Some("--help") | Some("-h") => {
            println!("{USAGE}");
            std::process::exit(0);
        }
        Some(p) => p.to_string(),
        None => usage_error("missing dataset path"),
    };
    if let Some(extra) = args.next() {
        usage_error(&format!("unexpected argument {extra}"));
    }
    let json = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    let dataset =
        Dataset::from_json(&json).unwrap_or_else(|e| fail(&format!("invalid dataset JSON: {e}")));
    eprintln!(
        "loaded {}: {} records, {} analyzed GPU jobs, {} users",
        path,
        dataset.records().len(),
        dataset.funnel().gpu_jobs,
        dataset.funnel().unique_users
    );
    let report = DatasetReport::from_dataset(&dataset);
    println!("{}", report.render_text());
}
