//! Seeded load generator for the `sc-serve` query service.
//!
//! ```text
//! serve_load [--scenario NAME|FILE] [--scale F] [--seed N] [--threads N]
//!            [--requests N] [--out BENCH_serve.json] [--trace FILE]
//! ```
//!
//! Builds one frozen-world [`Service`], then drives four request mixes
//! through it in a fixed order, each over a seeded query sequence:
//!
//! 1. `point_flood` — random point-statistic queries; the first
//!    occurrence of each statistic is cold, the rest hit.
//! 2. `cold_ab` — every standard policy arm and corruption profile
//!    once, all cold: the heavy what-if tail.
//! 3. `cache_storm` — warm the whole point+figure surface, then hammer
//!    it with random queries: the steady-state hit path.
//! 4. `steady` — a 70/25/5 point/figure/what-if blend over the now-warm
//!    cache: mixed steady-state serving.
//!
//! A final uncached replay of the storm surface measures the
//! cold-compute baseline the cache's speedup is gated against. Every
//! response body (mixes and baseline alike) folds into one FNV-1a
//! digest in submission order; because responses are pure functions of
//! `(scenario, seed, query)`, the digest is byte-stable across thread
//! budgets, cache states, and request interleavings — CI compares runs
//! by this one hex string. `--scenario` swaps the world under the same
//! harness: the service's cache keys gain the parsed scenario's hash
//! as a dimension, and the reported `scenario` label records exactly
//! which world the digest describes.
//!
//! The report (per-mix p50/p95/p99 latency, throughput, cache
//! hit-rate; cold baseline; storm speedup) prints to stdout as JSON
//! and also lands in `--out` when given. `--trace FILE` enables
//! per-query wall-clock spans and writes them as a Chrome trace.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sc_serve::{Digest, Pending, Query, ServeConfig, Service};
use sc_stats::percentile;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

struct Args {
    scenario: Option<sc_scenario::Scenario>,
    scale: f64,
    seed: u64,
    threads: Option<usize>,
    requests: usize,
    cache_capacity: usize,
    out: Option<String>,
    trace: Option<String>,
}

const USAGE: &str = "usage: serve_load [--scenario NAME|FILE] [--scale F] [--seed N]
                  [--threads N] [--requests N] [--out FILE] [--trace FILE]

  --scenario S   build the world from a scenario preset or TOML file
                 (presets: supercloud|philly|nersc|in2p3; default: the
                 flag-driven Supercloud world). The parsed scenario's
                 hash becomes a cache-key dimension and the report's
                 scenario label, so digests from different scenario
                 files never compare equal.
  --scale F      scale the simulated workload by F (default 0.02)
  --seed N       master RNG seed for the world and the query streams
                 (default 42)
  --threads N    executor worker threads (default: SC_PAR_THREADS or
                 all cores)
  --requests N   requests per flood mix (default 200; the cold what-if
                 mix always runs its 6 queries once each)
  --cache-capacity N
                 memo-cache bound, landed responses (default 256;
                 0 = unbounded). Overflow evicts by the deterministic
                 second-chance sweep and the report counts evictions.
  --out FILE     also write the JSON report to FILE
  --trace FILE   record per-query wall-clock spans and write them as a
                 Chrome trace (chrome://tracing / Perfetto)";

fn usage_error(msg: &str) -> ! {
    eprintln!("serve_load: {msg}\n{USAGE}");
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("serve_load: {msg}");
    std::process::exit(1);
}

fn parse_args() -> Args {
    let mut args = Args {
        scenario: None,
        scale: 0.02,
        seed: 42,
        threads: None,
        requests: 200,
        cache_capacity: 256,
        out: None,
        trace: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| usage_error(&format!("missing value for {name}")))
        };
        match flag.as_str() {
            "--scenario" => {
                let spec = value("--scenario");
                args.scenario = Some(
                    sc_scenario::Scenario::load(&spec)
                        .unwrap_or_else(|e| usage_error(&format!("--scenario {spec}: {e}"))),
                );
            }
            "--scale" => {
                args.scale = value("--scale")
                    .parse()
                    .unwrap_or_else(|_| usage_error("--scale needs a number"));
                if !(args.scale > 0.0 && args.scale.is_finite()) {
                    usage_error("--scale must be a positive finite factor");
                }
            }
            "--seed" => {
                args.seed =
                    value("--seed").parse().unwrap_or_else(|_| usage_error("--seed needs a u64"));
            }
            "--threads" => {
                let n: usize = value("--threads")
                    .parse()
                    .unwrap_or_else(|_| usage_error("--threads needs a count"));
                if n == 0 {
                    usage_error("--threads must be at least 1");
                }
                args.threads = Some(n);
            }
            "--requests" => {
                let n: usize = value("--requests")
                    .parse()
                    .unwrap_or_else(|_| usage_error("--requests needs a count"));
                if n == 0 {
                    usage_error("--requests must be at least 1");
                }
                args.requests = n;
            }
            "--cache-capacity" => {
                args.cache_capacity = value("--cache-capacity")
                    .parse()
                    .unwrap_or_else(|_| usage_error("--cache-capacity needs a count"));
            }
            "--out" => args.out = Some(value("--out")),
            "--trace" => args.trace = Some(value("--trace")),
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => usage_error(&format!("unknown flag {other:?}")),
        }
    }
    args
}

/// Submissions kept in flight at once. Deep enough to exercise
/// coalescing and stealing, shallow enough that latency still reflects
/// service time rather than pure queueing.
const WINDOW: usize = 32;

/// One mix's measurements.
struct MixReport {
    name: &'static str,
    requests: usize,
    secs: f64,
    /// Completion latencies, milliseconds, unsorted.
    latencies_ms: Vec<f64>,
    hits: u64,
    misses: u64,
    coalesced: u64,
    evictions: u64,
}

impl MixReport {
    fn qps(&self) -> f64 {
        self.requests as f64 / self.secs.max(1e-9)
    }

    fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses + self.coalesced;
        if total == 0 {
            return 0.0;
        }
        (self.hits + self.coalesced) as f64 / total as f64
    }

    fn pct(&self, p: f64) -> f64 {
        percentile(&self.latencies_ms, p)
            .unwrap_or_else(|e| fail(&format!("latency percentile for {}: {e}", self.name)))
    }
}

/// Drives `queries` through the service with a bounded in-flight
/// window, joining in submission order so the digest fold order is
/// independent of which worker finishes first.
fn run_mix(
    svc: &Arc<Service>,
    name: &'static str,
    queries: &[Query],
    digest: &mut Digest,
) -> MixReport {
    let before = svc.cache_stats();
    let mut latencies_ms = Vec::with_capacity(queries.len());
    let mut inflight: VecDeque<Pending> = VecDeque::with_capacity(WINDOW);
    let join = |p: Pending, lat: &mut Vec<f64>, digest: &mut Digest| {
        let done = p.wait();
        digest.update(done.response.body.as_bytes());
        lat.push(done.latency.as_secs_f64() * 1e3);
    };
    let t0 = Instant::now();
    for q in queries {
        if inflight.len() == WINDOW {
            let oldest = inflight.pop_front().expect("non-empty window");
            join(oldest, &mut latencies_ms, digest);
        }
        inflight.push_back(svc.submit(*q));
    }
    for p in inflight {
        join(p, &mut latencies_ms, digest);
    }
    let secs = t0.elapsed().as_secs_f64();
    let delta = svc.cache_stats().since(&before);
    MixReport {
        name,
        requests: queries.len(),
        secs,
        latencies_ms,
        hits: delta.hits,
        misses: delta.misses,
        coalesced: delta.coalesced,
        evictions: delta.evictions,
    }
}

/// `n` seeded draws from `pool`.
fn random_stream(pool: &[Query], n: usize, rng: &mut StdRng) -> Vec<Query> {
    (0..n).map(|_| pool[rng.gen_range(0..pool.len())]).collect()
}

/// The steady-state blend: 70% points, 25% figures, 5% what-ifs.
fn steady_stream(n: usize, rng: &mut StdRng) -> Vec<Query> {
    let points = Query::point_queries();
    let figures = Query::figure_queries();
    let what_ifs = Query::what_if_queries();
    (0..n)
        .map(|_| {
            let r: f64 = rng.gen();
            if r < 0.70 {
                points[rng.gen_range(0..points.len())]
            } else if r < 0.95 {
                figures[rng.gen_range(0..figures.len())]
            } else {
                what_ifs[rng.gen_range(0..what_ifs.len())]
            }
        })
        .collect()
}

fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.trim().trim_end_matches("kB").trim().parse::<u64>().ok())
        .map_or(0, |kb| kb * 1024)
}

/// Renders the report by hand, matching the repo's other bench JSONs:
/// four mixes and a handful of scalars do not warrant a serialization
/// dependency in a binary.
#[allow(clippy::too_many_arguments)]
fn report_json(
    args: &Args,
    scenario: &str,
    threads: usize,
    build_secs: f64,
    mixes: &[MixReport],
    cold_requests: usize,
    cold_secs: f64,
    storm_speedup: f64,
    digest_hex: &str,
) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"scenario\": \"{scenario}\",\n"));
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str(&format!("  \"scale\": {},\n", args.scale));
    out.push_str(&format!("  \"seed\": {},\n", args.seed));
    out.push_str(&format!("  \"requests_per_mix\": {},\n", args.requests));
    out.push_str(&format!("  \"build_secs\": {build_secs:.6},\n"));
    out.push_str("  \"mixes\": {\n");
    for (i, m) in mixes.iter().enumerate() {
        let comma = if i + 1 < mixes.len() { "," } else { "" };
        out.push_str(&format!(
            "    \"{}\": {{ \"requests\": {}, \"secs\": {:.6}, \"qps\": {:.1}, \
             \"p50_ms\": {:.4}, \"p95_ms\": {:.4}, \"p99_ms\": {:.4}, \
             \"hits\": {}, \"misses\": {}, \"coalesced\": {}, \"evictions\": {}, \
             \"hit_rate\": {:.4} }}{comma}\n",
            m.name,
            m.requests,
            m.secs,
            m.qps(),
            m.pct(50.0),
            m.pct(95.0),
            m.pct(99.0),
            m.hits,
            m.misses,
            m.coalesced,
            m.evictions,
            m.hit_rate(),
        ));
    }
    out.push_str("  },\n");
    let cold_qps = cold_requests as f64 / cold_secs.max(1e-9);
    out.push_str(&format!(
        "  \"cold_baseline\": {{ \"requests\": {cold_requests}, \"secs\": {cold_secs:.6}, \
         \"qps\": {cold_qps:.1} }},\n"
    ));
    out.push_str(&format!("  \"storm_speedup\": {storm_speedup:.1},\n"));
    out.push_str(&format!("  \"digest\": \"{digest_hex}\",\n"));
    out.push_str(&format!("  \"peak_rss_bytes\": {}\n", peak_rss_bytes()));
    out.push_str("}\n");
    out
}

fn main() {
    let args = parse_args();
    // --threads wins; SC_PAR_THREADS is the fallback so the binary
    // composes with the CI determinism matrix without extra flags.
    let requested = args.threads.or_else(|| {
        std::env::var("SC_PAR_THREADS").ok().and_then(|v| v.parse().ok()).filter(|&n| n > 0)
    });
    if let Some(n) = requested {
        sc_par::set_max_threads(n);
    }
    let threads = sc_par::current_threads();
    eprintln!(
        "building scale-{} world (seed {}, {} worker threads) ...",
        args.scale, args.seed, threads
    );
    let svc = Arc::new(Service::build(ServeConfig {
        scale: args.scale,
        seed: args.seed,
        threads,
        cache_capacity: args.cache_capacity,
        tracing: args.trace.is_some(),
        scenario: args.scenario.clone(),
        ..ServeConfig::default()
    }));
    eprintln!("world frozen in {:.2}s; serving {}", svc.build_secs(), svc.scenario());

    let mut digest = Digest::new();
    let mut mixes = Vec::with_capacity(4);

    // Each mix draws from its own seeded stream, so adding a mix never
    // perturbs the others' query sequences.
    let mut rng = StdRng::seed_from_u64(args.seed ^ 0x0070_6f69_6e74); // "point"
    let flood = random_stream(&Query::point_queries(), args.requests, &mut rng);
    mixes.push(run_mix(&svc, "point_flood", &flood, &mut digest));
    eprintln!("point_flood: {:.0} req/s", mixes[mixes.len() - 1].qps());

    let what_ifs = Query::what_if_queries();
    mixes.push(run_mix(&svc, "cold_ab", &what_ifs, &mut digest));
    eprintln!("cold_ab: p99 {:.0} ms", mixes[mixes.len() - 1].pct(99.0));

    // Warm the whole cheap surface (blocking, excluded from latency and
    // digest: the storm re-serves every one of these bodies), then
    // hammer it.
    let surface: Vec<Query> =
        Query::point_queries().into_iter().chain(Query::figure_queries()).collect();
    for q in &surface {
        svc.query_blocking(q);
    }
    let mut rng = StdRng::seed_from_u64(args.seed ^ 0x0073_746f_726d); // "storm"
    let storm = random_stream(&surface, args.requests * 2, &mut rng);
    mixes.push(run_mix(&svc, "cache_storm", &storm, &mut digest));
    eprintln!("cache_storm: {:.0} req/s", mixes[mixes.len() - 1].qps());

    let mut rng = StdRng::seed_from_u64(args.seed ^ 0x7374_6561_6479); // "steady"
    let steady = steady_stream(args.requests, &mut rng);
    mixes.push(run_mix(&svc, "steady", &steady, &mut digest));
    eprintln!("steady: {:.0} req/s", mixes[mixes.len() - 1].qps());

    // Cold-compute baseline: the storm surface once each, bypassing the
    // cache. Folded into the digest too — a cold render that diverged
    // from its cached twin must fail the cross-run comparison.
    let t0 = Instant::now();
    for q in &surface {
        digest.update(svc.query_uncached(q).as_bytes());
    }
    let cold_secs = t0.elapsed().as_secs_f64();
    let cold_qps = surface.len() as f64 / cold_secs.max(1e-9);
    let storm = mixes.iter().find(|m| m.name == "cache_storm").expect("storm mix ran");
    let storm_speedup = storm.qps() / cold_qps.max(1e-9);
    eprintln!("cold baseline: {cold_qps:.1} req/s (storm speedup {storm_speedup:.0}x)");

    let json = report_json(
        &args,
        svc.scenario(),
        threads,
        svc.build_secs(),
        &mixes,
        surface.len(),
        cold_secs,
        storm_speedup,
        &digest.hex(),
    );
    print!("{json}");
    if let Some(path) = &args.out {
        std::fs::write(path, &json).unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
        eprintln!("wrote {path}");
    }
    if let Some(path) = &args.trace {
        let trace = sc_obs::chrome_trace_json(&svc.stage_spans());
        std::fs::write(path, trace).unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
        eprintln!("wrote {path}");
    }
}
