//! Exports the joined analysis dataset as JSON — the synthetic
//! counterpart of the dataset the paper released at dcc.mit.edu.
//!
//! ```text
//! export_dataset [--scale F] [--seed N] [--out dataset.json]
//! ```

use sc_cluster::{SimConfig, Simulation};
use sc_workload::{Trace, WorkloadSpec};

fn main() {
    let mut scale = 0.05f64;
    let mut seed = 42u64;
    let mut out = "dataset.json".to_string();
    let mut csv: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value =
            |name: &str| it.next().unwrap_or_else(|| panic!("missing value for {name}"));
        match flag.as_str() {
            "--scale" => scale = value("--scale").parse().expect("numeric --scale"),
            "--seed" => seed = value("--seed").parse().expect("integer --seed"),
            "--out" => out = value("--out"),
            "--csv" => csv = Some(value("--csv")),
            other => panic!("unknown flag {other}"),
        }
    }
    let spec = WorkloadSpec::supercloud().scaled(scale);
    let trace = Trace::generate(&spec, seed);
    let sim = Simulation::new(SimConfig {
        detailed_series_jobs: (2_149.0 * scale) as usize,
        ..Default::default()
    });
    let result = sim.run(&trace);
    if let Some(path) = &csv {
        std::fs::write(path, result.dataset.to_csv()).expect("write CSV");
        eprintln!("wrote {path}");
    }
    let json = result.dataset.to_json().expect("serializable dataset");
    std::fs::write(&out, &json).expect("write dataset");
    eprintln!(
        "wrote {} ({} records, {:.1} MiB)",
        out,
        result.dataset.records().len(),
        json.len() as f64 / (1024.0 * 1024.0)
    );
}
