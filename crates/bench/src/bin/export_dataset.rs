//! Exports the joined analysis dataset as JSON — the synthetic
//! counterpart of the dataset the paper released at dcc.mit.edu.
//!
//! ```text
//! export_dataset [--scale F] [--seed N] [--out dataset.json] [--csv FILE]
//! ```

use sc_cluster::{SimConfig, Simulation};
use sc_workload::{Trace, WorkloadSpec};

const USAGE: &str = "usage: export_dataset [--scale F] [--seed N] [--out dataset.json] [--csv FILE]

  --scale F   scale the workload by F (default 0.05)
  --seed N    master RNG seed (default 42)
  --out FILE  JSON output path (default dataset.json)
  --csv FILE  also write the flat CSV form";

/// Prints an error plus the usage text and exits with status 2.
fn usage_error(msg: &str) -> ! {
    eprintln!("export_dataset: {msg}\n{USAGE}");
    std::process::exit(2);
}

/// Prints a runtime (non-usage) error and exits with status 1.
fn fail(msg: &str) -> ! {
    eprintln!("export_dataset: {msg}");
    std::process::exit(1);
}

fn main() {
    let mut scale = 0.05f64;
    let mut seed = 42u64;
    let mut out = "dataset.json".to_string();
    let mut csv: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| usage_error(&format!("missing value for {name}")))
        };
        match flag.as_str() {
            "--scale" => {
                scale = value("--scale")
                    .parse()
                    .unwrap_or_else(|_| usage_error("--scale needs a number"));
                if !(scale > 0.0 && scale.is_finite()) {
                    usage_error("--scale must be a positive finite factor");
                }
            }
            "--seed" => {
                seed = value("--seed")
                    .parse()
                    .unwrap_or_else(|_| usage_error("--seed needs an integer"));
            }
            "--out" => out = value("--out"),
            "--csv" => csv = Some(value("--csv")),
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => usage_error(&format!("unknown flag {other}")),
        }
    }
    let spec = WorkloadSpec::supercloud().scaled(scale);
    let trace = Trace::generate(&spec, seed);
    let sim = Simulation::new(SimConfig {
        detailed_series_jobs: (2_149.0 * scale) as usize,
        ..Default::default()
    });
    let result = sim.run(&trace);
    if let Some(path) = &csv {
        std::fs::write(path, result.dataset.to_csv())
            .unwrap_or_else(|e| fail(&format!("cannot write CSV {path}: {e}")));
        eprintln!("wrote {path}");
    }
    let json = result
        .dataset
        .to_json()
        .unwrap_or_else(|e| fail(&format!("cannot serialize dataset: {e}")));
    std::fs::write(&out, &json)
        .unwrap_or_else(|e| fail(&format!("cannot write dataset {out}: {e}")));
    eprintln!(
        "wrote {} ({} records, {:.1} MiB)",
        out,
        result.dataset.records().len(),
        json.len() as f64 / (1024.0 * 1024.0)
    );
}
