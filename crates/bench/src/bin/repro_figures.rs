//! Regenerates every table and figure of the paper and writes the
//! paper-vs-measured report.
//!
//! ```text
//! repro_figures [--scenario NAME|FILE] [--cross-system all|LIST]
//!               [--scale F] [--seed N] [--out EXPERIMENTS.md]
//!               [--threads N] [--bench-json BENCH_repro.json]
//!               [--failure-profile off|supercloud|stress|transient]
//!               [--mtbf FACTOR]
//!               [--trace FILE] [--trace-level off|spans|events]
//!               [--policy off|powercap:WATTS|coshare|coshare-predicted|tiered]
//!               [--data-quality off|supercloud|lossy|hostile]
//!               [--classify] [--classifier-json FILE]
//!               [--reliability] [--growth FACTORS]
//!               [--reliability-json FILE]
//! ```
//!
//! With no arguments this runs the full 125-day / 74,820-job Supercloud
//! reproduction on all available cores and prints the figure series to
//! stdout; pass `--out` to also write the Markdown comparison,
//! `--threads 1` for the sequential reference run, and `--bench-json`
//! for a machine-readable per-stage timing breakdown. The failure
//! flags enable the fault-injection subsystem: a taxonomy profile
//! schedules GPU Xid, node-hardware, and transient-infrastructure
//! faults, the scheduler requeues victims with capped backoff, and the
//! goodput ledger attributes every lost GPU-hour to its cause.
//!
//! `--scenario` replaces the flag-driven pipeline with a declarative
//! scenario (a committed preset name or a TOML file): cluster shape,
//! workload, arrival process, failure profile, data-quality profile,
//! policy arm, seed, and scale all come from the one validated spec,
//! and any explicit CLI flag still overrides its scenario counterpart.
//! The `supercloud` preset is the flag default, byte for byte.
//! `--cross-system` additionally runs a list of scenarios (or `all`
//! four presets) through the identical pipeline at a common scale and
//! seed and appends the side-by-side comparison.
//!
//! `--classify` trains the `sc-learn` workload-archetype classifier on
//! the generated trace — streamed feature extraction, seeded decision
//! forest, deterministic train/test split — and prints the
//! confusion-matrix report (`classifier_confusion.svg` with
//! `--svg-dir`). `--policy coshare-predicted` closes the loop: the A/B
//! harness routes co-sharing on *predicted* labels and runs a third
//! oracle-label arm, so the report shows what classifier error costs
//! in goodput and queue wait. `--classifier-json` writes the gate
//! metrics `scripts/check_bench.py --classifier` consumes.
//!
//! `--reliability` runs the reliability-at-scale study over the same
//! trace: a per-size-class ETTF/ETTR/failure-rate table under the
//! job-footprint-aware hazard model, a goodput frontier across MTBF
//! settings, and a checkpoint-interval sweep around the per-class
//! Young/Daly optimum with the simulated argmax overlaid on the
//! analytic prediction. `--growth 2,8,32` adds the cluster-growth
//! replay (same workload, scaled fleet); `--reliability-json` writes
//! the gate metrics `scripts/check_bench.py --reliability` consumes.
//!
//! `--trace FILE` streams the simulator's deterministic sim-time trace
//! (submit/start/finish/fault/kill/requeue, attempt and node-down
//! spans) as JSONL into FILE, plus a `FILE.chrome.json` sidecar of
//! wall-clock pipeline stage spans loadable in `chrome://tracing` or
//! Perfetto. `--trace-level` picks the detail (default `events` when
//! `--trace` is given); the `SC_OBS=level[:file]` environment variable
//! supplies a default when neither flag is present.

use sc_cluster::{FailureModel, SimConfig, Simulation};
use sc_core::{AnalysisReport, ClassifierFig, DataQualityFig, DatasetReport};
use sc_learn::{ArchetypePredictor, ClassifierConfig};
use sc_obs::{chrome_trace_json, JsonlSink, Obs, StageLog, TraceLevel, TraceSink};
use sc_opportunity::{CheckpointConfig, OpportunityReport};
use sc_policy::{ExperimentResult, PolicyExperiment, PolicySpec};
use sc_scenario::{CrossSystemFig, Scenario};
use sc_telemetry::DataQualityProfile;
use sc_workload::{Trace, WorkloadSpec};

struct Args {
    scenario: Option<Scenario>,
    cross_system: Vec<Scenario>,
    scale: Option<f64>,
    seed: Option<u64>,
    out: Option<String>,
    svg_dir: Option<String>,
    threads: Option<usize>,
    bench_json: Option<String>,
    failure_profile: Option<String>,
    mtbf_factor: Option<f64>,
    trace: Option<String>,
    trace_level: Option<String>,
    policy: Option<PolicySpec>,
    data_quality: Option<DataQualityProfile>,
    classify: bool,
    classifier_json: Option<String>,
    reliability: bool,
    growth: Option<Vec<f64>>,
    reliability_json: Option<String>,
}

const USAGE: &str = "usage: repro_figures [--scenario NAME|FILE] [--cross-system all|LIST]
                     [--scale F] [--seed N] [--out FILE] [--svg-dir DIR]
                     [--threads N] [--bench-json FILE]
                     [--failure-profile off|supercloud|stress|transient]
                     [--mtbf FACTOR]
                     [--trace FILE] [--trace-level off|spans|events]
                     [--policy off|powercap:WATTS|coshare|coshare-predicted|tiered]
                     [--data-quality off|supercloud|lossy|hostile]
                     [--classify] [--classifier-json FILE]
                     [--reliability] [--growth FACTORS]
                     [--reliability-json FILE]

  --scenario S         drive the pipeline from a scenario preset or TOML
                       file (presets: supercloud|philly|nersc|in2p3).
                       The scenario supplies cluster, workload, arrivals,
                       failures, data quality, policy, seed, and scale;
                       any explicit flag below overrides its scenario
                       counterpart. `supercloud` is the flag default,
                       byte for byte.
  --cross-system L     after the main run, replay the comma-separated
                       scenario list L (`all` = the four presets) at the
                       effective scale and seed and print the
                       side-by-side comparison (plus cross_system.svg
                       with --svg-dir and a methodology section in --out)
  --scale F            scale the 125-day / 74,820-job workload by F (default 1.0)
  --seed N             master RNG seed (default 42)
  --out FILE           also write the Markdown paper-vs-measured report
  --svg-dir DIR        write the SVG figure set into DIR
  --threads N          cap the worker pool (default: all cores)
  --bench-json FILE    write per-stage timings as JSON
  --failure-profile P  inject faults from taxonomy profile P (default off)
  --mtbf FACTOR        scale every class MTBF by FACTOR; implies
                       --failure-profile supercloud when none is given
  --trace FILE         write the deterministic sim-time JSONL trace to FILE
                       and a FILE.chrome.json Perfetto sidecar of pipeline
                       stage spans
  --trace-level L      trace detail: off, spans, or events (default events
                       when --trace is given); the SC_OBS=level[:file] env
                       var supplies a default when both flags are absent
  --policy P           run the closed-loop policy A/B harness: replay the
                       same trace with no policy and with P, and report
                       the deltas (see the Policy engine section of the
                       README); off (default) skips the harness
  --data-quality P     corrupt the recorded dataset with collection-fault
                       profile P, run the hardened ingest repair, and report
                       recovered-vs-clean headline deltas plus the repair
                       ledger; off (default) skips the stage entirely
  --classify           train the workload-archetype classifier on the
                       generated trace and print the confusion-matrix
                       report (classifier_confusion.svg with --svg-dir);
                       a scenario's [classifier] section enables this too
  --classifier-json F  write classifier gate metrics (accuracy, split
                       sizes, predicted-vs-oracle goodput delta when
                       --policy coshare-predicted ran) as JSON to F;
                       implies --classify
  --reliability        run the reliability-at-scale study: per-size-class
                       ETTF/ETTR table, goodput frontier across MTBF
                       settings, and the Young/Daly checkpoint-interval
                       sweep (simulated vs analytic); uses the effective
                       failure model, or the default supercloud taxonomy
                       at 0.05x MTBF when no failure flags are given; a
                       scenario's [reliability] section enables this too
  --growth FACTORS     comma-separated fleet scale factors (e.g. 2,8,32)
                       for the cluster-growth replay: same workload on a
                       scaled cluster, reporting queue wait, goodput, and
                       event-loop throughput per scale; implies
                       --reliability
  --reliability-json F write reliability gate metrics (sweep worst ratio,
                       frontier monotonicity, growth throughput floor) as
                       JSON to F; implies --reliability";

/// Prints an error plus the usage text and exits with status 2, the
/// conventional bad-usage code.
fn usage_error(msg: &str) -> ! {
    eprintln!("repro_figures: {msg}\n{USAGE}");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        scenario: None,
        cross_system: Vec::new(),
        scale: None,
        seed: None,
        out: None,
        svg_dir: None,
        threads: None,
        bench_json: None,
        failure_profile: None,
        mtbf_factor: None,
        trace: None,
        trace_level: None,
        policy: None,
        data_quality: None,
        classify: false,
        classifier_json: None,
        reliability: false,
        growth: None,
        reliability_json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| usage_error(&format!("missing value for {name}")))
        };
        match flag.as_str() {
            "--scenario" => {
                let spec = value("--scenario");
                args.scenario = Some(
                    Scenario::load(&spec)
                        .unwrap_or_else(|e| usage_error(&format!("--scenario {spec}: {e}"))),
                );
            }
            "--cross-system" => {
                let list = value("--cross-system");
                let names: Vec<String> = if list == "all" {
                    Scenario::preset_names().map(String::from).collect()
                } else {
                    list.split(',').map(String::from).collect()
                };
                args.cross_system = names
                    .iter()
                    .map(|n| {
                        Scenario::load(n)
                            .unwrap_or_else(|e| usage_error(&format!("--cross-system {n}: {e}")))
                    })
                    .collect();
                if args.cross_system.is_empty() {
                    usage_error("--cross-system needs at least one scenario");
                }
            }
            "--scale" => {
                let scale: f64 = value("--scale")
                    .parse()
                    .unwrap_or_else(|_| usage_error("--scale needs a number"));
                if !(scale > 0.0 && scale.is_finite()) {
                    usage_error("--scale must be a positive finite factor");
                }
                args.scale = Some(scale);
            }
            "--seed" => {
                args.seed = Some(
                    value("--seed")
                        .parse()
                        .unwrap_or_else(|_| usage_error("--seed needs an integer")),
                );
            }
            "--out" => args.out = Some(value("--out")),
            "--svg-dir" => args.svg_dir = Some(value("--svg-dir")),
            "--threads" => {
                args.threads = Some(
                    value("--threads")
                        .parse()
                        .unwrap_or_else(|_| usage_error("--threads needs an integer")),
                );
            }
            "--bench-json" => args.bench_json = Some(value("--bench-json")),
            "--failure-profile" => args.failure_profile = Some(value("--failure-profile")),
            "--mtbf" => {
                let f: f64 = value("--mtbf")
                    .parse()
                    .unwrap_or_else(|_| usage_error("--mtbf needs a number"));
                if !(f.is_finite() && f > 0.0) {
                    usage_error("--mtbf must be a positive finite factor");
                }
                args.mtbf_factor = Some(f);
            }
            "--trace" => args.trace = Some(value("--trace")),
            "--trace-level" => args.trace_level = Some(value("--trace-level")),
            "--policy" => {
                args.policy =
                    Some(PolicySpec::parse(&value("--policy")).unwrap_or_else(|e| usage_error(&e)));
            }
            "--data-quality" => {
                let name = value("--data-quality");
                args.data_quality = Some(DataQualityProfile::parse(&name).unwrap_or_else(|| {
                    usage_error(&format!(
                        "unknown --data-quality profile {name} (expected {})",
                        DataQualityProfile::NAMES
                    ))
                }));
            }
            "--classify" => args.classify = true,
            "--classifier-json" => args.classifier_json = Some(value("--classifier-json")),
            "--reliability" => args.reliability = true,
            "--growth" => {
                let list = value("--growth");
                let factors: Vec<f64> = list
                    .split(',')
                    .map(|s| {
                        let f: f64 = s.trim().parse().unwrap_or_else(|_| {
                            usage_error("--growth needs a comma-separated list of numbers")
                        });
                        if !(f.is_finite() && f > 0.0) {
                            usage_error("--growth factors must be positive and finite");
                        }
                        f
                    })
                    .collect();
                if factors.is_empty() {
                    usage_error("--growth needs at least one factor");
                }
                args.growth = Some(factors);
            }
            "--reliability-json" => args.reliability_json = Some(value("--reliability-json")),
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => usage_error(&format!("unknown flag {other}")),
        }
    }
    args
}

/// Resolves the failure flags into a model (or `None` for the stock,
/// failure-free reproduction). `--mtbf` without a profile means "the
/// default taxonomy, rescaled".
fn failure_model(args: &Args, seed: u64) -> Option<FailureModel> {
    let name = match (&args.failure_profile, args.mtbf_factor) {
        (Some(name), _) => name.as_str(),
        (None, Some(_)) => "supercloud",
        (None, None) => "off",
    };
    let model = FailureModel::profile(name, seed).unwrap_or_else(|| {
        usage_error(&format!(
            "unknown --failure-profile {name} (expected {})",
            FailureModel::PROFILE_NAMES
        ))
    })?;
    Some(match args.mtbf_factor {
        Some(f) => model.scaled_mtbf(f),
        None => model,
    })
}

/// Resolves the tracing flags to `(level, jsonl path)`. The flags win;
/// with both absent, `SC_OBS=level[:file]` supplies the default; with
/// neither, tracing is off.
fn trace_settings(args: &Args) -> (TraceLevel, Option<String>) {
    let parse_level = |s: &str| {
        TraceLevel::parse(s).unwrap_or_else(|| {
            usage_error(&format!("bad trace level {s} (expected {})", TraceLevel::NAMES))
        })
    };
    if args.trace.is_some() || args.trace_level.is_some() {
        let level = match &args.trace_level {
            Some(s) => parse_level(s),
            None => TraceLevel::Events,
        };
        if level > TraceLevel::Off && args.trace.is_none() {
            usage_error("--trace-level needs --trace FILE to write to");
        }
        return (level, args.trace.clone());
    }
    match std::env::var("SC_OBS") {
        Ok(v) => {
            let (level_str, path) = match v.split_once(':') {
                Some((l, p)) => (l.to_string(), Some(p.to_string())),
                None => (v, None),
            };
            let level = parse_level(&level_str);
            if level > TraceLevel::Off && path.is_none() {
                usage_error("SC_OBS enables tracing but names no file (use SC_OBS=level:file)");
            }
            (level, path)
        }
        Err(_) => (TraceLevel::Off, None),
    }
}

/// One timed pipeline stage for the `--bench-json` report.
struct Stage {
    name: &'static str,
    secs: f64,
}

/// Peak resident set size of this process in bytes, from the kernel's
/// high-water mark (`VmHWM` in `/proc/self/status`). Returns 0 where
/// procfs is unavailable (non-Linux), which downstream gates treat as
/// "not measured".
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.trim().trim_end_matches("kB").trim().parse::<u64>().ok())
        .map_or(0, |kb| kb * 1024)
}

/// Renders the benchmark report by hand: four stages and a handful of
/// scalars do not warrant a serialization dependency in a binary.
fn bench_json(threads: usize, scale: f64, seed: u64, jobs: usize, stages: &[Stage]) -> String {
    let total: f64 = stages.iter().map(|s| s.secs).sum();
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str(&format!("  \"scale\": {scale},\n"));
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"jobs\": {jobs},\n"));
    out.push_str("  \"stages\": {\n");
    for (i, s) in stages.iter().enumerate() {
        let comma = if i + 1 < stages.len() { "," } else { "" };
        out.push_str(&format!(
            "    \"{}\": {{ \"secs\": {:.6}, \"jobs_per_sec\": {:.1} }}{comma}\n",
            s.name,
            s.secs,
            jobs as f64 / s.secs.max(1e-9)
        ));
    }
    out.push_str("  },\n");
    out.push_str(&format!("  \"peak_rss_bytes\": {},\n", peak_rss_bytes()));
    out.push_str(&format!("  \"total_secs\": {total:.6},\n"));
    out.push_str(&format!("  \"total_jobs_per_sec\": {:.1}\n", jobs as f64 / total.max(1e-9)));
    out.push_str("}\n");
    out
}

/// Renders the classifier gate metrics by hand, like [`bench_json`]:
/// five scalars do not warrant a serialization dependency.
/// `goodput_delta_pp` is `null` unless the `coshare-predicted` policy
/// harness ran its oracle arm alongside.
fn classifier_json(fig: &ClassifierFig, policy: Option<&ExperimentResult>) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"accuracy\": {:.6},\n", fig.accuracy));
    out.push_str(&format!("  \"centroid_accuracy\": {:.6},\n", fig.centroid_accuracy));
    out.push_str(&format!("  \"train_jobs\": {},\n", fig.train_count));
    out.push_str(&format!("  \"test_jobs\": {},\n", fig.test_count));
    match policy.and_then(|r| r.predicted_vs_oracle_goodput_pp()) {
        Some(pp) => out.push_str(&format!("  \"goodput_delta_pp\": {pp:.6}\n")),
        None => out.push_str("  \"goodput_delta_pp\": null\n"),
    }
    out.push_str("}\n");
    out
}

/// Renders the reliability gate metrics by hand, like [`bench_json`]:
/// the three scalars `scripts/check_bench.py --reliability` gates, plus
/// the per-class sweep verdicts and growth timings behind them.
/// Non-finite values (a class the model cannot fail, an empty growth
/// list) render as `null`, which the gate script treats as "not
/// measured" for detail rows and a hard failure for gated scalars.
fn reliability_json(report: &sc_core::ReliabilityReport) -> String {
    let fin = |v: f64, prec: usize| {
        if v.is_finite() {
            format!("{v:.prec$}")
        } else {
            "null".to_string()
        }
    };
    let mut out = String::from("{\n");
    match report.sweep.worst_ratio() {
        Some(r) => out.push_str(&format!("  \"sweep_worst_ratio\": {},\n", fin(r, 6))),
        None => out.push_str("  \"sweep_worst_ratio\": null,\n"),
    }
    out.push_str(&format!(
        "  \"frontier_monotone_violation\": {},\n",
        fin(report.frontier.monotone_violation(), 6)
    ));
    let min_jps =
        report.growth_timings.iter().map(|t| t.jobs_per_sec()).fold(f64::INFINITY, f64::min);
    out.push_str(&format!("  \"growth_min_jobs_per_sec\": {},\n", fin(min_jps, 1)));
    out.push_str("  \"sweep_classes\": [\n");
    for (i, c) in report.sweep.classes.iter().enumerate() {
        let comma = if i + 1 < report.sweep.classes.len() { "," } else { "" };
        let sim = c.simulated_secs.map_or("null".to_string(), |t| fin(t, 1));
        let ratio = c.ratio().map_or("null".to_string(), |r| fin(r, 6));
        out.push_str(&format!(
            "    {{ \"label\": \"{}\", \"gpus\": {}, \"analytic_secs\": {}, \
             \"simulated_secs\": {sim}, \"ratio\": {ratio} }}{comma}\n",
            c.label,
            c.gpus,
            fin(c.analytic_secs, 1)
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"growth\": [\n");
    for (i, t) in report.growth_timings.iter().enumerate() {
        let comma = if i + 1 < report.growth_timings.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{ \"factor\": {}, \"jobs\": {}, \"event_loop_secs\": {:.6}, \
             \"jobs_per_sec\": {:.1} }}{comma}\n",
            t.factor,
            t.jobs,
            t.event_loop_secs,
            t.jobs_per_sec()
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// The reliability figure family as SVGs: the goodput frontier and the
/// checkpoint sweep as log-x line charts, the growth study as a bar
/// chart of median queue wait per scale. Series a degenerate run left
/// empty (a class with no exposure) are dropped; a chart with no data
/// at all is skipped rather than rendered blank.
fn reliability_svgs(report: &sc_core::ReliabilityReport) -> Vec<(&'static str, String)> {
    use sc_core::svg::{bar_chart, line_chart, Scale, Series};
    let mut out = Vec::new();

    let frontier: Vec<Series> = report
        .frontier
        .rows
        .iter()
        .map(|r| {
            let pts: Vec<(f64, f64)> = report
                .frontier
                .class_gpus
                .iter()
                .zip(&r.goodput_by_class)
                .filter_map(|(&g, gp)| gp.map(|v| (g as f64, v)))
                .collect();
            Series::new(format!("mtbf x{}", r.mtbf_factor), pts)
        })
        .filter(|s| !s.points.is_empty())
        .collect();
    if !frontier.is_empty() {
        out.push((
            "goodput_frontier.svg",
            line_chart(
                "Goodput frontier",
                "job size (GPUs)",
                "goodput fraction",
                Scale::Log10,
                &frontier,
            ),
        ));
    }

    let mut sweep = vec![Series::new(
        "overall",
        report.sweep.rows.iter().map(|r| (r.interval_secs, r.overall_goodput)).collect(),
    )];
    for (c, verdict) in report.sweep.classes.iter().enumerate() {
        let pts: Vec<(f64, f64)> = report
            .sweep
            .rows
            .iter()
            .filter_map(|r| r.goodput_by_class[c].map(|v| (r.interval_secs, v)))
            .collect();
        if !pts.is_empty() {
            sweep.push(Series::new(verdict.label.clone(), pts));
        }
    }
    out.push((
        "checkpoint_sweep.svg",
        line_chart(
            "Checkpoint-interval sweep (Young/Daly)",
            "checkpoint interval (s)",
            "goodput fraction",
            Scale::Log10,
            &sweep,
        ),
    ));

    if let Some(growth) = &report.growth {
        let bars: Vec<(String, f64)> =
            growth.rows.iter().map(|r| (format!("x{}", r.factor), r.median_wait_secs)).collect();
        out.push((
            "reliability_growth.svg",
            bar_chart("Cluster growth: median queue wait", "seconds", &bars),
        ));
    }
    out
}

/// Residual deviations we know about and accept; everything else in the
/// tables above tracks the paper within roughly ±30%.
const KNOWN_GAPS: &str = "\n## Known residual gaps\n\n\
- **Queue-wait CDF depth (Fig. 3b).** The orderings hold (GPU jobs clear in \
seconds, CPU jobs in minutes; 70% of CPU jobs wait over a minute), but our \
simulated cluster runs at ~20% GPU occupancy, so fewer GPU jobs ever wait at \
all than on the real system (≈90% under 2% of service time vs the paper's \
≈50%). Reproducing the deeper waits would require knowledge of the real \
system's background load that the paper does not report.\n\
- **Run-time p75 (Fig. 3a).** The paper's quantile triple (4/30/300 min) is \
wider than any single heavy-tailed family; our mixture honours the median and \
the GPU-hour shares of Fig. 15b, leaving p75 at ≈180-230 min. The class-level \
medians (36 min mature / 62 min exploratory) are matched instead.\n\
- **Per-user average run time (Fig. 10).** Median-of-averages lands at \
≈170-190 min vs the paper's 392 min; the spread (p25:p75 ≈ 1:3) and the \
heavy-tail shape are reproduced. Lifting it further would break the job-level \
run-time medians we prioritize.\n\
- **Fig. 12 CoV correlations.** The paper reports low positive bars; we land \
slightly negative to flat (≈-0.2…0.1). The qualitative claim — expert users \
are *not* more predictable — holds; the exact bar heights depend on \
unpublished within-user structure.\n\
- **Top-share sampling variance (Fig. 11).** The fitted Pareto shape \
(α ≈ 1.13) has infinite variance, so the *empirical* top-20% GPU-hour share \
of a 20k-user draw ranges 0.75-0.96 across seeds even though the analytic \
Lorenz shares match the paper exactly. Sampled-share tests therefore assert \
wide heavy-tail bands; the exact calibration is checked analytically.\n\
- **Wait growth under capacity loss.** With the full cluster at ~20% \
occupancy the mean queue wait is floored at the 3 s scheduler latency, so \
the wait-growth factor when capacity shrinks is bounded by queueing pressure \
alone: we measure ≈7× and assert a robust 5× directional bar rather than the \
10× one might expect from utilization ratios.\n\
- **Deadline surge is a GPU-job metric.** CPU campaign bursts can land \
hundreds of jobs on a single off-season day and swamp the all-jobs daily \
mean, so the pre-deadline surge (Sec. II) is computed over GPU submissions \
only, where the deadline ramp actually shows (≈1.2× vs the 1.1× bar).\n";

/// Prints a runtime (non-usage) error and exits with status 1.
fn fail(msg: &str) -> ! {
    eprintln!("repro_figures: {msg}");
    std::process::exit(1);
}

/// The failure-taxonomy section of the generated report: what the
/// injection subsystem models and how to reproduce it.
const FAILURE_TAXONOMY: &str = "\n## Failure taxonomy and goodput accounting\n\n\
The paper reports hardware behind fewer than 0.5% of job deaths over its \
window (Sec. II) and stops there. The simulator extends the analysis with a \
three-class failure-injection taxonomy and a goodput ledger that accounts \
for every allocated GPU-second:\n\n\
| class | interarrival | default MTBF per unit | repair | blast radius |\n\
|---|---|---|---|---|\n\
| gpu-xid | exponential | 1.5e7 s per GPU | none | one resident GPU job |\n\
| node-hardware | Weibull (k = 0.9) | 8.0e6 s per node | 4 h | whole node |\n\
| infra-transient | exponential | 5.0e6 s per node | 5 min | whole node |\n\n\
Failed attempts are requeued with exponential backoff (60 s base, 2× factor) \
up to min(3, per-job restart budget) retries; interactive jobs never retry. \
Checkpointable jobs (85% of mature/exploratory) resume from their last \
Young-interval checkpoint instead of restarting from scratch. The ledger \
splits allocated GPU-seconds into useful + lost + idle — the balance is \
asserted in tests — and attributes every lost GPU-second to the class that \
destroyed it.\n\n\
Reproduce with:\n\n\
```text\n\
repro_figures --failure-profile supercloud   # default taxonomy\n\
repro_figures --failure-profile stress       # 10x failure rates\n\
repro_figures --failure-profile transient    # transient infra only\n\
repro_figures --mtbf 0.5                     # halve every class MTBF\n\
```\n\n\
The failure schedule, every requeue decision, and the goodput report are \
byte-identical at any thread budget (`tests/determinism.rs`); the recovery \
invariants — double-failure absorption, requeue-after-repair, retry-cap \
exhaustion, no GPU-second leakage — are covered by \
`tests/scheduler_invariants.rs`.\n";

/// The observability section of the generated report: the
/// ClusterTimeline figure and the deterministic trace layer.
const TRACING: &str = "\n## ClusterTimeline and deterministic tracing\n\n\
Every run collects a cluster-state time series — queued and running \
jobs, GPUs in use, nodes down, requeue backlog — sampled on event-loop \
transitions at 512 points across the horizon, rendered as the \
ClusterTimeline figure (`cluster_timeline.svg` with `--svg-dir`). The \
timeline also feeds a log2-bucketed queue-depth histogram that sees \
every scheduler transition, not just the sampled instants.\n\n\
`--trace FILE` additionally streams a JSONL event trace keyed to \
*simulated* time: submit/finish/fault/kill/requeue/checkpoint_restore \
events plus attempt and node_down spans. The stream is emitted from the \
single-threaded event loop, so it is byte-identical at any \
`SC_PAR_THREADS` budget — a property pinned by a committed golden trace \
(`tests/golden/`) and the determinism suite. `--trace-level \
{off|spans|events}` (or `SC_OBS=level:file`) controls verbosity; a \
`FILE.chrome.json` sidecar carries the wall-clock stage spans for \
chrome://tracing or https://ui.perfetto.dev. With tracing off the \
instrumentation compiles down to a cached enum compare per site.\n";

/// The streaming-telemetry section of the generated report: the
/// before/after stage breakdown and the memory-bound claim. The
/// full-scale and 1M-job rows are measured constants (regenerated with
/// BENCH_repro.json); the per-run table below them is live.
const STREAMING_BENCH: &str = "\n## Streaming telemetry engine\n\n\
The original telemetry stage materialized every per-job sample series \
before any aggregation ran, so the full-scale reproduction spent 47.2 s \
of its 48.4 s wall-clock synthesizing series at 1,584 jobs/sec. The \
streaming engine synthesizes each job's series tick-by-tick straight \
into one-pass aggregators (segmentation builder, CoV folds, mergeable \
quantile sketch / Welford / histogram summaries) over a thread-local \
scratch spill, so wall-clock and peak memory scale with aggregate \
state, not sample count. Full-scale (74,820 jobs, seed 42) before vs \
after:\n\n\
| engine | threads | telemetry | jobs/sec | total | peak RSS |\n\
|---|---|---|---|---|---|\n\
| batch (committed baseline) | 1 | 47.23 s | 1,584 | 48.42 s | not recorded |\n\
| streaming | 1 | 4.52 s | 16,553 | 5.67 s | 81.3 MiB |\n\
| streaming | 4 | 5.08 s | 14,740 | 6.66 s | 122.6 MiB |\n\
| streaming | 8 | 5.32 s | 14,062 | 6.45 s | 198.1 MiB |\n\n\
(The rows above were measured on a one-core container, so extra \
workers only add scheduling overhead and per-worker scratch; the \
thread matrix exists to prove the determinism contract — stdout is \
byte-identical across all three rows — not scaling.)\n\n\
The O(aggregate state) memory claim is demonstrated by a 1M-job run \
(`--scale 13.366`, 1,000,044 jobs — 13.4x the sample volume): peak RSS \
grows only with the recorded dataset (one epilog record per job, plus \
O(threads) in-flight series scratch bounded by the SPSC channel \
capacity), not with the synthesized sample count. Measured: 776 MiB \
peak RSS for 57.4 s of telemetry (17,425 jobs/sec) — 9.5x the RSS of \
the 74,820-job run for 13.4x the jobs, where the batch engine's \
materialized series alone would have needed tens of GiB. \
`peak_rss_bytes` is recorded in every `--bench-json` report and \
regression-gated by `scripts/check_bench.py`.\n";

/// The query-service section of the generated report: the serve-once
/// architecture, the load-mix definitions, and the committed smoke
/// baseline (regenerated with BENCH_serve.json).
const SERVE_METHODOLOGY: &str = "\n## Query service methodology\n\n\
The serving layer (`sc-serve`) reframes the reproduction as a \
long-running system: `Service::build` runs the seeded simulation once \
(trace generation, event loop, streaming telemetry, ingest) and \
freezes the result as immutable shared state; every subsequent query \
— point statistic, rendered figure, policy A/B arm, data-quality \
round trip — is a pure function of `(scenario, seed, query)` computed \
on a work-stealing executor behind a single-flight memoization cache. \
Because responses are pure renders of frozen state, the determinism \
contract extends to serving for free: cache temperature, thread \
budget, and arrival interleaving can change *latency* but never \
*bytes*.\n\n\
**Load generation.** `serve_load` replays four seeded mixes and \
reports each separately, since they stress different paths:\n\n\
| mix | composition | path exercised |\n\
|---|---|---|\n\
| `point_flood` | N random point queries over 12 stats | small-answer \
fan-in; first touch per stat misses, rest hit |\n\
| `cold_ab` | the 6 what-if arms (3 policy A/Bs + 3 data-quality \
profiles), all cold | the expensive tail: each arm re-runs the event \
loop or ingest over the frozen trace |\n\
| `cache_storm` | 2N random queries after the full 36-query surface \
is warmed | pure hit path; measures cache + executor overhead floor |\n\
| `steady` | 70% points / 25% figures / 5% what-ifs, warm | the \
steady-state production mix |\n\n\
Requests are submitted asynchronously and *joined in submission \
order*, and every response body is folded into an FNV-1a 64 digest in \
that order — so the digest is a function of the query stream alone, \
not of completion order, worker count, or which requests coalesced. \
The bench-smoke CI job runs the generator at `SC_PAR_THREADS` 1, 4, \
and 8 and requires all three digests to be identical; \
`tests/determinism.rs` additionally pins cold (`query_uncached`) == \
warm (`query_blocking`) byte equality and that 8 concurrent identical \
cold queries produce exactly 1 miss and 7 hit-or-coalesced \
responses.\n\n\
**Committed smoke baseline** (`BENCH_serve.json`, scale 0.02, seed \
42, 200 requests/mix, 1 thread, one-core container):\n\n\
| mix | p50 | p99 | qps | hit rate |\n\
|---|---|---|---|---|\n\
| point_flood | 42 µs | 2.5 ms | 63.6k | 0.94 |\n\
| cold_ab | 30.3 ms | 126.1 ms | 47 | 0.00 |\n\
| cache_storm | 7.8 µs | 58 µs | 349.6k | 1.00 |\n\
| steady | 16 µs | 60 µs | 463.4k | 1.00 |\n\n\
The uncached cold baseline sustains 4.6k qps over the same surface, \
putting the storm at 76× cold throughput (criterion agrees on the \
per-query view: ~200 ns per hit vs ~210 µs per cold figure). \
`scripts/check_bench.py --serve` gates the report declaratively — p99 \
ceilings per mix (250 ms floods/steady, 50 ms storm, 30 s cold A/B), \
storm throughput ≥ 1k qps, storm and steady hit rates ≥ 0.95, and \
`storm_speedup` ≥ 10× — and the gate table itself is self-tested \
against committed pass/fail fixtures in the lint job. The weekly \
workflow runs the same gates over a full-scale soak (125-day world, \
2,000 requests/mix) and ships the per-response Chrome trace as an \
artifact; the floors are scale-independent because a cache hit costs \
the same regardless of how expensive the miss was.\n";

/// The data-quality section of the generated report: the collection
/// fault taxonomy and the ingest repair pipeline.
const DATA_QUALITY: &str = "\n## Data quality & ingest repair\n\n\
Real collection pipelines lose data: sample windows drop, epilogs go \
missing when collectors die, records duplicate on retry, clocks skew, \
power readings glitch. `--data-quality` injects exactly those faults \
into the recorded dataset with a seeded corruptor (off | supercloud | \
lossy | hostile), then runs the hardened ingest stage — canonical \
reordering, identity dedup, clock-skew translation, epilog \
reconstruction from telemetry sample counts, power imputation from the \
utilization-power model, gap imputation by last-phase hold — and \
re-runs the figure pipeline on the repaired dataset. The ledger is \
balanced by construction (injected == detected == repaired + \
quarantined, per class) and every repair/quarantine decision is \
emitted as an `sc-obs` event (`dq_repair`, `dq_quarantine`). The \
recovered-vs-clean headline deltas below quantify what survives; \
`tests/ingest_invariants.rs` holds the ledger balance across profiles \
and seeds and `tests/data_quality_acceptance.rs` pins the recovery \
bands under `lossy`.\n";

/// The policy-engine section of the generated report: the closed-loop
/// A/B methodology.
const POLICY_AB: &str = "\n## Closed-loop policy A/B\n\n\
The opportunity studies above score policies *offline* from the recorded \
dataset. `--policy` closes the loop: the same seeded trace is replayed \
twice through the identical simulator configuration — once with no \
policy, once with a closed-loop policy riding inside the event loop — \
so every delta below is attributable to the policy alone. Power capping \
stretches throttled runs by the DVFS slowdown model and clamps the \
synthesized telemetry; GPU co-sharing packs predicted-low-SM single-GPU \
jobs two per board with interference from the phase-overlap model; tier \
routing demotes non-mature classes to the slow tier (both arms get the \
same two-tier hardware, so only the routing differs). Every decision is \
counted in the simulation stats and emitted as an `sc-obs` event \
(`cap_throttle`, `coshare_place`, `tier_route`); the closed-loop \
outcomes are held to the offline models' predictions by \
`tests/policy_acceptance.rs`, and byte-level determinism across thread \
budgets by `tests/determinism.rs`.\n";

/// The workload-classification section of the generated report: the
/// archetype ground truth, the streamed feature extraction, and the
/// closed predicted-label loop.
const CLASSIFIER_METHODOLOGY: &str = "\n## Workload classification\n\n\
The paper characterizes what jobs *do* (utilization waves, phase \
structure, ramps — Secs. IV/VII); recognizing what a job *is* from \
that telemetry is the natural next step. Every synthesized GPU job \
carries a hidden ground-truth archetype — `cnn-periodic` (epoch \
waves), `transformer-plateau` (long saturated plateaus), `bursty-dev` \
(short irregular bursts), `idle-heavy` (open-but-idle sessions) — \
whose telemetry signature both the batch and the streaming samplers \
honor bit-identically. `sc-learn` folds each job's first hour of \
`[sm, mem, mem_size]` ticks into a 14-wide feature vector through the \
same one-pass `Util3Sink` interface the telemetry engine uses (the \
streamed fold is proptest-pinned bit-identical to batch \
recomputation), then trains a from-scratch seeded decision forest \
against a nearest-centroid baseline on a hash-split train/test \
partition. Dataset subsampling, the split, and tree bagging all hash \
off per-job `truth_seed`s, so the confusion matrix below is \
byte-identical at any `SC_PAR_THREADS` budget (a committed golden \
render pins it).\n\n\
`--policy coshare-predicted` closes the loop: the co-sharing gate \
routes on *predicted* labels, and a third oracle-label arm (same \
gating rule, ground-truth labels) isolates what classifier error \
costs — the predicted-vs-oracle goodput delta is gated in CI by \
`scripts/check_bench.py --classifier`, alongside the accuracy floor. \
Reproduce with:\n\n\
```text\n\
repro_figures --classify --svg-dir figs          # confusion matrix + SVG\n\
repro_figures --policy coshare-predicted         # three-arm A/B\n\
repro_figures --classify --classifier-json c.json # CI gate metrics\n\
```\n";

/// The reliability-at-scale section of the generated report: the
/// job-footprint hazard model, the figure family, and the Young/Daly
/// sweep methodology.
const RELIABILITY: &str = "\n## Reliability at scale\n\n\
Fleet studies of large training clusters (e.g. Meta's, arXiv \
2410.21680) report that failure burden grows with job footprint: a \
job spanning G GPUs samples G hazards in parallel, so its time to \
failure shrinks roughly as MTBF/G. The simulator models exactly that \
— every scheduled fault targets a GPU or node, so a job's per-attempt \
interrupt probability scales with the GPUs and nodes it holds — and \
`--reliability` measures the consequences end to end:\n\n\
- **Reliability vs job size.** Jobs are bucketed by allocated GPUs \
(canonical classes: <=1, 2, 3-8, >8; a scenario's `[reliability] \
size_buckets` re-draws the edges). Per class the table reports ETTF \
(exposed wall-clock per failure), ETTR (kill-to-restart gap), \
failures per 1,000 GPU-days, restart-overhead GPU-hours, and goodput \
— each derived from the same per-class ledger that is \
property-tested to balance (`useful + lost + idle == allocated`, \
`tests/reliability_invariants.rs`).\n\
- **Goodput frontier.** One event-loop run per MTBF scale factor \
(default 1x, 0.2x, 0.05x) plots goodput fraction against job size: \
how quickly large jobs fall off as the fleet degrades, and where \
checkpointing stops compensating.\n\
- **Young/Daly checkpoint sweep.** For each size class the analytic \
optimum is `sqrt(2 * write_cost * MTTI(footprint))`. The sweep runs \
the event loop over a geometric interval grid spanning every class's \
optimum (default 5 points, 4x half-span) and overlays the simulated \
per-class argmax on the analytic prediction; CI gates the worst \
simulated/analytic ratio to a coarse-grid band \
(`scripts/check_bench.py --reliability`).\n\
- **Cluster growth.** `--growth 2,8,32` replays the identical \
workload on a fleet scaled by each factor and reports queue-wait \
quantiles, goodput, makespan, and event-loop throughput per scale — \
the study runs with the detailed-series subset disabled, so memory \
stays O(aggregate state) even at 32x.\n\n\
All four figures are pure functions of (trace, config): byte-identical \
at any `SC_PAR_THREADS` budget, pinned by a committed golden report \
and the determinism suite. Wall-clock timings go only to \
`--reliability-json`. Reproduce with:\n\n\
```text\n\
repro_figures --reliability                        # default taxonomy at 0.05x MTBF\n\
repro_figures --reliability --failure-profile stress\n\
repro_figures --reliability --growth 2,8,32        # + cluster-growth replay\n\
repro_figures --reliability --reliability-json r.json  # CI gate metrics\n\
```\n";

/// The cross-system section of the generated report: the scenario DSL
/// and the comparison methodology.
const CROSS_SYSTEM: &str = "\n## Cross-system comparison methodology\n\n\
The paper contrasts Supercloud with Microsoft's Philly clusters in \
passing (single-GPU shares, queue waits, Sec. V). The scenario DSL \
(`sc-scenario`) generalizes that move: a TOML scenario declares the \
cluster shape, workload preset, arrival process (poisson | diurnal | \
spikes | up-and-down), failure profile, data-quality profile, and \
policy arm, and is parsed into one validated spec with typed \
line/field diagnostics. Four presets are committed under \
`scenarios/`:\n\n\
| preset | cluster | workload | arrivals | failures |\n\
|---|---|---|---|---|\n\
| `supercloud` | 224 nodes x 2 V100 | the paper's 125-day world | \
diurnal | off |\n\
| `philly` | same hardware | Philly-style single-GPU-heavy mix | \
diurnal | supercloud |\n\
| `nersc` | 512 nodes x 4 GPUs, Slingshot | allocation-cycle batch | \
up-and-down | supercloud |\n\
| `in2p3` | 96 GPU + 128 CPU nodes | HEP grid, CPU-burst-heavy | \
monthly spikes | transient |\n\n\
`--cross-system` replays every requested scenario through the \
*identical* simulator, telemetry, and analysis pipeline at one common \
scale and seed, so every difference in the comparison table is \
attributable to the declared scenario, not to methodology drift. The \
`supercloud` preset reproduces the flag-driven default byte for byte \
(pinned by `tests/scenario_invariants.rs`); malformed scenarios are \
rejected with typed errors, never panics (property-tested over the \
grammar). Reproduce with:\n\n\
```text\n\
repro_figures --scenario scenarios/supercloud.toml   # == no flags\n\
repro_figures --scenario nersc --scale 0.05          # one preset\n\
repro_figures --cross-system all --scale 0.05        # the comparison\n\
```\n";

fn main() {
    let args = parse_args();
    if let Some(n) = args.threads {
        sc_par::set_max_threads(n);
    }
    let (trace_level, trace_path) = trace_settings(&args);
    // Effective settings: explicit CLI flags win, then the scenario's
    // declarations, then the historical flag defaults. The `supercloud`
    // preset declares exactly the flag defaults, so scenario-driven and
    // flag-driven default runs are byte-identical.
    let scale = args.scale.unwrap_or_else(|| args.scenario.as_ref().map_or(1.0, |sc| sc.scale));
    let seed = args.seed.unwrap_or_else(|| args.scenario.as_ref().map_or(42, |sc| sc.seed));
    let policy = args
        .policy
        .unwrap_or_else(|| args.scenario.as_ref().map_or(PolicySpec::Off, |sc| sc.policy_spec()));
    let data_quality = args.data_quality.unwrap_or_else(|| {
        args.scenario.as_ref().map_or(DataQualityProfile::Off, |sc| sc.data_quality_profile())
    });
    // The classifier stage runs when a flag asks for it or the scenario
    // declares `[classifier] enabled = true`; its hyper-parameters come
    // from the scenario's section (library defaults when absent), so a
    // flag-driven and a section-less scenario run stay byte-identical.
    let classify = args.classify
        || args.classifier_json.is_some()
        || args.scenario.as_ref().is_some_and(|sc| sc.classifier.enabled);
    let classifier_cfg =
        args.scenario.as_ref().map_or_else(ClassifierConfig::default, |sc| sc.classifier_config());
    let cli_failures = args.failure_profile.is_some() || args.mtbf_factor.is_some();
    let failures = if cli_failures || args.scenario.is_none() {
        failure_model(&args, seed)
    } else {
        args.scenario.as_ref().and_then(|sc| sc.failure_model(seed))
    };
    let spec = match &args.scenario {
        Some(sc) => sc.scaled_spec(scale),
        None => WorkloadSpec::supercloud().scaled(scale),
    };
    if let Some(sc) = &args.scenario {
        eprintln!("scenario {} (hash {:016x})", sc.name, sc.hash());
    }
    eprintln!(
        "generating {} jobs / {} users over {} days (seed {}, {} threads) ...",
        spec.total_jobs,
        spec.users,
        spec.duration_days,
        seed,
        sc_par::current_threads()
    );
    let stage_log = StageLog::new();
    let t0 = std::time::Instant::now();
    let trace = stage_log.time("trace_gen", || Trace::generate(&spec, seed));
    let trace_gen_secs = t0.elapsed().as_secs_f64();
    let detailed = ((2_149.0 * scale).round() as usize).max(50);
    // With injection on, run checkpointing at the Young interval for the
    // model's per-node interrupt rate, so checkpointable victims resume
    // from their last interval instead of restarting from scratch.
    let checkpoint = failures.as_ref().map(|model| {
        let rate: f64 = model.classes.iter().map(|c| 1.0 / c.interarrival.mtbf_secs()).sum();
        let policy = CheckpointConfig::for_mtti(1.0 / rate).sim_policy();
        eprintln!(
            "failure injection on: {} classes, checkpoint interval {:.0}s",
            model.classes.len(),
            policy.interval_secs
        );
        policy
    });
    // The scenario supplies the cluster shape; failures and checkpoint
    // are overwritten with the resolution above so explicit CLI failure
    // flags override a scenario's declared profile.
    let sim_config = {
        let mut config = match &args.scenario {
            Some(sc) => sc.sim_config(scale, seed),
            None => SimConfig::default(),
        };
        config.detailed_series_jobs = detailed;
        config.failures = failures;
        config.checkpoint = checkpoint;
        config
    };
    let sim = Simulation::new(sim_config.clone());
    let sink = trace_path.as_ref().map(|path| {
        let file = std::fs::File::create(path)
            .unwrap_or_else(|e| fail(&format!("cannot create trace file {path}: {e}")));
        JsonlSink::new(trace_level, file)
    });
    let t0 = std::time::Instant::now();
    let sim_start = stage_log.elapsed_secs();
    let (out, timings) = match &sink {
        Some(s) => sim.run_observed(&trace, &Obs::new(s)),
        None => sim.run_timed(&trace),
    };
    stage_log.push("sim_event_loop", sim_start, timings.event_loop_secs);
    stage_log.push("telemetry", sim_start + timings.event_loop_secs, timings.telemetry_secs);
    if let Some(s) = &sink {
        s.flush().unwrap_or_else(|e| fail(&format!("cannot flush trace file: {e}")));
    }
    eprintln!("simulated in {:?}; analyzing ...", t0.elapsed());
    let t0 = std::time::Instant::now();
    let report = AnalysisReport::from_sim_logged(&out, &stage_log);
    let analysis_secs = t0.elapsed().as_secs_f64();

    // The Chrome sidecar carries the wall-clock stage spans (trace
    // generation, event loop, telemetry batch, every figure) — load it
    // in chrome://tracing or https://ui.perfetto.dev.
    if let Some(path) = &trace_path {
        let chrome_path = format!("{path}.chrome.json");
        std::fs::write(&chrome_path, chrome_trace_json(&stage_log.spans()))
            .unwrap_or_else(|e| fail(&format!("cannot write {chrome_path}: {e}")));
        eprintln!("wrote {path} (sim-time JSONL) and {chrome_path} (Perfetto stages)");
    }

    let stages = [
        Stage { name: "trace_gen", secs: trace_gen_secs },
        Stage { name: "sim_event_loop", secs: timings.event_loop_secs },
        Stage { name: "telemetry", secs: timings.telemetry_secs },
        Stage { name: "analysis", secs: analysis_secs },
    ];
    if let Some(path) = &args.bench_json {
        let json = bench_json(sc_par::current_threads(), scale, seed, trace.jobs().len(), &stages);
        std::fs::write(path, json)
            .unwrap_or_else(|e| fail(&format!("cannot write bench json {path}: {e}")));
        eprintln!("wrote {path}");
    }

    println!("{}", report.render_text());
    println!("detailed-series jobs collected: {}", out.detailed.len());
    println!("simulation stats: {:?}", out.stats);

    // Streaming-vs-batch cross-validation: every one-pass aggregate the
    // telemetry stage folded in flight is re-derived from the
    // materialized dataset and held to its documented error law. A
    // divergence means the streaming engine broke the batch contract,
    // so it is a hard failure, like an unbalanced ingest ledger.
    let streaming_fig = match sc_core::StreamingTelemetryFig::try_compute(&out) {
        Ok(fig) => {
            println!("{}", fig.render());
            if !fig.passes() {
                fail("streaming telemetry aggregates diverge from the batch dataset");
            }
            Some(fig)
        }
        Err(_) => None, // CPU-only trace: nothing streamed
    };

    println!("\n================ paper vs measured ================\n");
    for (title, rows) in report.all_comparisons() {
        println!("{title}");
        for r in rows {
            println!(
                "  {:<42} paper {:>9.3} {:<4} measured {:>9.3}",
                r.metric, r.paper, r.unit, r.measured
            );
        }
        println!();
    }

    if let Some(dir) = &args.svg_dir {
        let files = sc_core::svg::write_report_svgs(&report, std::path::Path::new(dir))
            .unwrap_or_else(|e| fail(&format!("cannot write SVGs to {dir}: {e}")));
        eprintln!("wrote {} SVG figures to {dir}", files.len());
    }

    // Extra analyses: the Fig. 2 workflow chain and the Sec. II arrival
    // patterns.
    let views = sc_core::gpu_views(&out.dataset);
    println!("{}", sc_core::WorkflowChain::fit(&views).render());
    println!(
        "{}",
        sc_core::arrivals::ArrivalAnalysis::compute(&out.dataset).render(&spec.deadline_days)
    );

    println!(
        "{}",
        sc_core::facility::reconstruct(
            &views,
            sc_telemetry::gpu_power::SUPERCLOUD_GPUS,
            sc_telemetry::gpu_power::V100_TDP_W,
            sc_telemetry::gpu_power::V100_IDLE_W,
        )
        .render()
    );

    // Opportunity studies (Secs. III/VI/VIII) over the same population.
    let opportunity = OpportunityReport::run(&views, 400);
    println!("{}", opportunity.render());

    // Closed-loop policy A/B: replay the same trace with no policy and
    // with the selected policy, on the same configuration minus the
    // detailed-series sampling (the deltas don't need it). The policy
    // arm shares the CLI's trace sink so every cap_throttle /
    // coshare_place / tier_route decision lands in --trace output.
    let policy_ab = (policy != PolicySpec::Off).then(|| {
        eprintln!("running policy A/B ({}) ...", policy.label());
        let t0 = std::time::Instant::now();
        let mut exp = PolicyExperiment::new(
            SimConfig { detailed_series_jobs: 0, ..sim_config.clone() },
            policy,
        );
        exp.classifier = classifier_cfg.clone();
        let result = match &sink {
            Some(s) => exp.run_observed(&trace, &Obs::new(s)),
            None => exp.run(&trace),
        };
        eprintln!("policy A/B done in {:?}", t0.elapsed());
        println!("{}", result.fig.render());
        if let Some(fig) = &result.oracle_fig {
            println!("{}", fig.render());
        }
        if let (Some(pp), Some(wait)) =
            (result.predicted_vs_oracle_goodput_pp(), result.predicted_vs_oracle_wait_secs())
        {
            println!(
                "predicted vs oracle placement: goodput {pp:+.3} pp, mean queue wait \
                 {wait:+.1} s (negative goodput = classifier error cost)\n"
            );
        }
        result
    });
    if let Some(s) = &sink {
        s.flush().unwrap_or_else(|e| fail(&format!("cannot flush trace file: {e}")));
    }
    if let (Some(result), Some(dir)) = (&policy_ab, &args.svg_dir) {
        let path = std::path::Path::new(dir).join("policy_ab.svg");
        std::fs::write(&path, result.fig.to_svg())
            .unwrap_or_else(|e| fail(&format!("cannot write {}: {e}", path.display())));
        eprintln!("wrote {}", path.display());
    }

    // Workload classification: train the archetype classifier on the
    // same trace and report the held-out confusion matrix. When the
    // coshare-predicted harness already trained one (with the identical
    // config), reuse its evaluation instead of training twice.
    let classifier_fig = classify.then(|| {
        let eval = match policy_ab.as_ref().and_then(|r| r.classifier_eval.clone()) {
            Some(eval) => eval,
            None => {
                eprintln!(
                    "training workload classifier ({} trees, seed {}) ...",
                    classifier_cfg.trees, classifier_cfg.seed
                );
                let t0 = std::time::Instant::now();
                let (_, eval) = ArchetypePredictor::train(&trace, &classifier_cfg);
                eprintln!("classifier trained in {:?}", t0.elapsed());
                eval
            }
        };
        let fig = eval.to_fig();
        println!("{}", fig.render());
        fig
    });
    if let (Some(fig), Some(dir)) = (&classifier_fig, &args.svg_dir) {
        let path = std::path::Path::new(dir).join("classifier_confusion.svg");
        std::fs::write(&path, fig.to_svg())
            .unwrap_or_else(|e| fail(&format!("cannot write {}: {e}", path.display())));
        eprintln!("wrote {}", path.display());
    }
    if let Some(path) = &args.classifier_json {
        let fig = classifier_fig.as_ref().expect("--classifier-json implies --classify");
        std::fs::write(path, classifier_json(fig, policy_ab.as_ref()))
            .unwrap_or_else(|e| fail(&format!("cannot write classifier json {path}: {e}")));
        eprintln!("wrote {path}");
    }

    // Data-quality round trip: corrupt the recorded dataset with the
    // selected collection-fault profile, repair it through the hardened
    // ingest stage, and re-run the figure pipeline on the recovered
    // dataset. `off` (the default) skips the stage entirely, so the
    // stock reproduction stays byte-identical.
    let data_quality_fig = (data_quality != DataQualityProfile::Off).then(|| {
        eprintln!("running data-quality round trip ({}) ...", data_quality.label());
        let t0 = std::time::Instant::now();
        let obs = match &sink {
            Some(s) => Obs::new(s),
            None => Obs::off(),
        };
        let clean_report = DatasetReport::try_from_dataset(&out.dataset)
            .unwrap_or_else(|e| fail(&format!("clean pipeline failed: {e}")));
        let (ingested, injected) =
            sc_core::corrupt_and_ingest(&out.dataset, data_quality, seed, &obs)
                .unwrap_or_else(|e| fail(&format!("ingest failed: {e}")));
        let recovered = DatasetReport::try_from_dataset(&ingested.dataset)
            .unwrap_or_else(|e| fail(&format!("recovered pipeline failed: {e}")));
        let study = sc_core::ingest::series_study(data_quality, seed, 64, 1_800.0, 0.1)
            .unwrap_or_else(|e| fail(&format!("series study failed: {e}")));
        let fig = DataQualityFig::compute(
            data_quality.label(),
            injected,
            ingested.report,
            &clean_report,
            &recovered,
            Some(study),
        );
        eprintln!("data-quality round trip done in {:?}", t0.elapsed());
        println!("{}", fig.render());
        if !fig.balanced() {
            fail("data-quality ledger does not balance");
        }
        fig
    });
    if let Some(s) = &sink {
        s.flush().unwrap_or_else(|e| fail(&format!("cannot flush trace file: {e}")));
    }
    if let (Some(fig), Some(dir)) = (&data_quality_fig, &args.svg_dir) {
        let path = std::path::Path::new(dir).join("data_quality.svg");
        std::fs::write(&path, fig.to_svg())
            .unwrap_or_else(|e| fail(&format!("cannot write {}: {e}", path.display())));
        eprintln!("wrote {}", path.display());
    }

    // Cross-system comparison: replay the requested scenario list
    // through the identical pipeline at the effective scale and seed.
    // Off by default, so the stock reproduction stays byte-identical.
    let cross_system = (!args.cross_system.is_empty()).then(|| {
        eprintln!("running cross-system comparison ({} systems) ...", args.cross_system.len());
        let t0 = std::time::Instant::now();
        let fig = CrossSystemFig::run(&args.cross_system, scale, seed)
            .unwrap_or_else(|e| fail(&format!("cross-system comparison: {e}")));
        eprintln!("cross-system comparison done in {:?}", t0.elapsed());
        println!("{}", fig.render());
        fig
    });
    if let (Some(fig), Some(dir)) = (&cross_system, &args.svg_dir) {
        let path = std::path::Path::new(dir).join("cross_system.svg");
        std::fs::write(&path, fig.to_svg())
            .unwrap_or_else(|e| fail(&format!("cannot write {}: {e}", path.display())));
        eprintln!("wrote {}", path.display());
    }

    // Reliability-at-scale study: per-size-class failure table, goodput
    // frontier, Young/Daly checkpoint sweep, and (with --growth) the
    // cluster-growth replay. Off by default, so the stock reproduction
    // stays byte-identical; a scenario's `[reliability] enabled = true`
    // turns it on too. With no failure flags the study injects the
    // default supercloud taxonomy at 0.05x MTBF so every figure has
    // failures to measure.
    let run_reliability = args.reliability
        || args.growth.is_some()
        || args.reliability_json.is_some()
        || args.scenario.as_ref().is_some_and(|sc| sc.reliability.enabled);
    let reliability_report = run_reliability.then(|| {
        let model = sim_config
            .failures
            .clone()
            .unwrap_or_else(|| FailureModel::supercloud(seed).scaled_mtbf(0.05));
        let mut rel_cfg = args
            .scenario
            .as_ref()
            .map_or_else(sc_core::ReliabilityConfig::default, |sc| sc.reliability_config());
        if let Some(growth) = &args.growth {
            rel_cfg.growth_factors = growth.clone();
        }
        eprintln!(
            "running reliability study ({} MTBF factors, {}-point sweep, {} growth factors) ...",
            rel_cfg.mtbf_factors.len(),
            rel_cfg.sweep_points,
            rel_cfg.growth_factors.len()
        );
        let t0 = std::time::Instant::now();
        let base = SimConfig { detailed_series_jobs: 0, ..sim_config.clone() };
        let report = sc_core::run_reliability_study(&trace, &base, &model, &rel_cfg);
        eprintln!("reliability study done in {:?}", t0.elapsed());
        println!("{}", report.render());
        report
    });
    if let Some(path) = &args.reliability_json {
        let report = reliability_report.as_ref().expect("--reliability-json implies --reliability");
        std::fs::write(path, reliability_json(report))
            .unwrap_or_else(|e| fail(&format!("cannot write reliability json {path}: {e}")));
        eprintln!("wrote {path}");
    }
    if let (Some(report), Some(dir)) = (&reliability_report, &args.svg_dir) {
        for (name, svg) in reliability_svgs(report) {
            let path = std::path::Path::new(dir).join(name);
            std::fs::write(&path, svg)
                .unwrap_or_else(|e| fail(&format!("cannot write {}: {e}", path.display())));
            eprintln!("wrote {}", path.display());
        }
    }

    if let Some(path) = args.out {
        let mut md = report.experiments_markdown();
        md.push_str(KNOWN_GAPS);
        md.push_str(FAILURE_TAXONOMY);
        md.push_str(TRACING);
        md.push_str(STREAMING_BENCH);
        md.push_str(&format!(
            "\nThis run (scale {}, seed {}, {} threads):\n\n\
             | stage | secs | jobs/sec |\n|---|---|---|\n",
            scale,
            seed,
            sc_par::current_threads()
        ));
        for s in &stages {
            md.push_str(&format!(
                "| {} | {:.3} | {:.0} |\n",
                s.name,
                s.secs,
                trace.jobs().len() as f64 / s.secs.max(1e-9)
            ));
        }
        md.push_str(&format!(
            "\nPeak RSS this run: {:.1} MiB.\n",
            peak_rss_bytes() as f64 / (1024.0 * 1024.0)
        ));
        if let Some(fig) = &streaming_fig {
            md.push_str("\n```text\n");
            md.push_str(&fig.render());
            md.push_str("```\n");
        }
        md.push_str(SERVE_METHODOLOGY);
        md.push_str("\n## Beyond the figures\n\n```text\n");
        md.push_str(&sc_core::WorkflowChain::fit(&views).render());
        md.push('\n');
        md.push_str(
            &sc_core::arrivals::ArrivalAnalysis::compute(&out.dataset).render(&spec.deadline_days),
        );
        md.push('\n');
        md.push_str(
            &sc_core::facility::reconstruct(
                &views,
                sc_telemetry::gpu_power::SUPERCLOUD_GPUS,
                sc_telemetry::gpu_power::V100_TDP_W,
                sc_telemetry::gpu_power::V100_IDLE_W,
            )
            .render(),
        );
        md.push_str("```\n");
        md.push_str("\n## Opportunity studies (Secs. III, VI, VIII)\n\n```text\n");
        md.push_str(&opportunity.render());
        md.push_str("```\n");
        if let Some(result) = &policy_ab {
            md.push_str(POLICY_AB);
            md.push_str("\n```text\n");
            md.push_str(&result.fig.render());
            if let Some(fig) = &result.oracle_fig {
                md.push('\n');
                md.push_str(&fig.render());
            }
            md.push_str("```\n");
            if let (Some(pp), Some(wait)) =
                (result.predicted_vs_oracle_goodput_pp(), result.predicted_vs_oracle_wait_secs())
            {
                md.push_str(&format!(
                    "\nPredicted-label vs oracle-label placement: goodput {pp:+.3} pp, \
                     mean queue wait {wait:+.1} s — the measured cost of routing on the \
                     classifier's labels instead of ground truth.\n"
                ));
            }
        }
        if let Some(fig) = &classifier_fig {
            md.push_str(CLASSIFIER_METHODOLOGY);
            md.push_str("\n```text\n");
            md.push_str(&fig.render());
            md.push_str("```\n");
            md.push_str(
                "\nThe rendered heatmap lands at `figs/classifier_confusion.svg` with \
                 `--svg-dir figs`.\n",
            );
        }
        if let Some(fig) = &data_quality_fig {
            md.push_str(DATA_QUALITY);
            md.push_str("\n```text\n");
            md.push_str(&fig.render());
            md.push_str("```\n");
        }
        md.push_str(RELIABILITY);
        if let Some(report) = &reliability_report {
            md.push_str("\n```text\n");
            md.push_str(&report.render());
            md.push_str("```\n");
        } else {
            md.push_str(
                "\nThis run did not request the study; produce it with \
                 `--reliability` (add `--growth 2,8,32` for the cluster-growth \
                 replay; the weekly CI job archives the full-scale version).\n",
            );
        }
        md.push_str(CROSS_SYSTEM);
        if let Some(fig) = &cross_system {
            md.push_str("\n```text\n");
            md.push_str(&fig.render());
            md.push_str("```\n");
        } else {
            md.push_str(
                "\nThis run did not request a comparison; the table is \
                 produced by `--cross-system` (the weekly CI job archives \
                 the full-scale version).\n",
            );
        }
        md.push_str(&format!(
            "\n---\nGenerated by `repro_figures --scale {} --seed {}`; detailed subset {} jobs; \
             simulated {} events.\n",
            scale,
            seed,
            out.detailed.len(),
            out.stats.events
        ));
        std::fs::write(&path, md)
            .unwrap_or_else(|e| fail(&format!("cannot write report {path}: {e}")));
        eprintln!("wrote {path}");
    }
}
