//! Regenerates every table and figure of the paper and writes the
//! paper-vs-measured report.
//!
//! ```text
//! repro_figures [--scale F] [--seed N] [--out EXPERIMENTS.md]
//! ```
//!
//! With no arguments this runs the full 125-day / 74,820-job Supercloud
//! reproduction (about two minutes on one core) and prints the figure
//! series to stdout; pass `--out` to also write the Markdown comparison.

use sc_cluster::{SimConfig, Simulation};
use sc_core::AnalysisReport;
use sc_opportunity::OpportunityReport;
use sc_workload::{Trace, WorkloadSpec};

struct Args {
    scale: f64,
    seed: u64,
    out: Option<String>,
    svg_dir: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args { scale: 1.0, seed: 42, out: None, svg_dir: None };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match flag.as_str() {
            "--scale" => args.scale = value("--scale").parse().expect("numeric --scale"),
            "--seed" => args.seed = value("--seed").parse().expect("integer --seed"),
            "--out" => args.out = Some(value("--out")),
            "--svg-dir" => args.svg_dir = Some(value("--svg-dir")),
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

/// Residual deviations we know about and accept; everything else in the
/// tables above tracks the paper within roughly ±30%.
const KNOWN_GAPS: &str = "\n## Known residual gaps\n\n\
- **Queue-wait CDF depth (Fig. 3b).** The orderings hold (GPU jobs clear in \
seconds, CPU jobs in minutes; 70% of CPU jobs wait over a minute), but our \
simulated cluster runs at ~20% GPU occupancy, so fewer GPU jobs ever wait at \
all than on the real system (≈90% under 2% of service time vs the paper's \
≈50%). Reproducing the deeper waits would require knowledge of the real \
system's background load that the paper does not report.\n\
- **Run-time p75 (Fig. 3a).** The paper's quantile triple (4/30/300 min) is \
wider than any single heavy-tailed family; our mixture honours the median and \
the GPU-hour shares of Fig. 15b, leaving p75 at ≈180-230 min. The class-level \
medians (36 min mature / 62 min exploratory) are matched instead.\n\
- **Per-user average run time (Fig. 10).** Median-of-averages lands at \
≈170-190 min vs the paper's 392 min; the spread (p25:p75 ≈ 1:3) and the \
heavy-tail shape are reproduced. Lifting it further would break the job-level \
run-time medians we prioritize.\n\
- **Fig. 12 CoV correlations.** The paper reports low positive bars; we land \
slightly negative to flat (≈-0.2…0.1). The qualitative claim — expert users \
are *not* more predictable — holds; the exact bar heights depend on \
unpublished within-user structure.\n";

fn main() {
    let args = parse_args();
    let spec = WorkloadSpec::supercloud().scaled(args.scale);
    eprintln!(
        "generating {} jobs / {} users over {} days (seed {}) ...",
        spec.total_jobs, spec.users, spec.duration_days, args.seed
    );
    let trace = Trace::generate(&spec, args.seed);
    let detailed = ((2_149.0 * args.scale).round() as usize).max(50);
    let sim = Simulation::new(SimConfig { detailed_series_jobs: detailed, ..Default::default() });
    let t0 = std::time::Instant::now();
    let out = sim.run(&trace);
    eprintln!("simulated in {:?}; analyzing ...", t0.elapsed());
    let report = AnalysisReport::from_sim(&out);

    println!("{}", report.render_text());
    println!("detailed-series jobs collected: {}", out.detailed.len());
    println!("simulation stats: {:?}", out.stats);

    println!("\n================ paper vs measured ================\n");
    for (title, rows) in report.all_comparisons() {
        println!("{title}");
        for r in rows {
            println!(
                "  {:<42} paper {:>9.3} {:<4} measured {:>9.3}",
                r.metric, r.paper, r.unit, r.measured
            );
        }
        println!();
    }

    if let Some(dir) = &args.svg_dir {
        let files = sc_core::svg::write_report_svgs(&report, std::path::Path::new(dir))
            .expect("write SVGs");
        eprintln!("wrote {} SVG figures to {dir}", files.len());
    }

    // Extra analyses: the Fig. 2 workflow chain and the Sec. II arrival
    // patterns.
    let views = sc_core::gpu_views(&out.dataset);
    println!("{}", sc_core::WorkflowChain::fit(&views).render());
    println!(
        "{}",
        sc_core::arrivals::ArrivalAnalysis::compute(&out.dataset).render(&spec.deadline_days)
    );

    println!(
        "{}",
        sc_core::facility::reconstruct(&views, 448, 300.0, 20.0).render()
    );

    // Opportunity studies (Secs. III/VI/VIII) over the same population.
    let opportunity = OpportunityReport::run(&views, 400);
    println!("{}", opportunity.render());

    if let Some(path) = args.out {
        let mut md = report.experiments_markdown();
        md.push_str(KNOWN_GAPS);
        md.push_str("\n## Beyond the figures\n\n```text\n");
        md.push_str(&sc_core::WorkflowChain::fit(&views).render());
        md.push('\n');
        md.push_str(
            &sc_core::arrivals::ArrivalAnalysis::compute(&out.dataset)
                .render(&spec.deadline_days),
        );
        md.push('\n');
        md.push_str(&sc_core::facility::reconstruct(&views, 448, 300.0, 20.0).render());
        md.push_str("```\n");
        md.push_str("\n## Opportunity studies (Secs. III, VI, VIII)\n\n```text\n");
        md.push_str(&opportunity.render());
        md.push_str("```\n");
        md.push_str(&format!(
            "\n---\nGenerated by `repro_figures --scale {} --seed {}`; detailed subset {} jobs; \
             simulated {} events.\n",
            args.scale, args.seed, out.detailed.len(), out.stats.events
        ));
        std::fs::write(&path, md).expect("write report");
        eprintln!("wrote {path}");
    }
}
