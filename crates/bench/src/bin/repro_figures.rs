//! Regenerates every table and figure of the paper and writes the
//! paper-vs-measured report.
//!
//! ```text
//! repro_figures [--scale F] [--seed N] [--out EXPERIMENTS.md]
//!               [--threads N] [--bench-json BENCH_repro.json]
//! ```
//!
//! With no arguments this runs the full 125-day / 74,820-job Supercloud
//! reproduction on all available cores and prints the figure series to
//! stdout; pass `--out` to also write the Markdown comparison,
//! `--threads 1` for the sequential reference run, and `--bench-json`
//! for a machine-readable per-stage timing breakdown.

use sc_cluster::{SimConfig, Simulation};
use sc_core::AnalysisReport;
use sc_opportunity::OpportunityReport;
use sc_workload::{Trace, WorkloadSpec};

struct Args {
    scale: f64,
    seed: u64,
    out: Option<String>,
    svg_dir: Option<String>,
    threads: Option<usize>,
    bench_json: Option<String>,
}

fn parse_args() -> Args {
    let mut args =
        Args { scale: 1.0, seed: 42, out: None, svg_dir: None, threads: None, bench_json: None };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value =
            |name: &str| it.next().unwrap_or_else(|| panic!("missing value for {name}"));
        match flag.as_str() {
            "--scale" => args.scale = value("--scale").parse().expect("numeric --scale"),
            "--seed" => args.seed = value("--seed").parse().expect("integer --seed"),
            "--out" => args.out = Some(value("--out")),
            "--svg-dir" => args.svg_dir = Some(value("--svg-dir")),
            "--threads" => {
                args.threads = Some(value("--threads").parse().expect("integer --threads"));
            }
            "--bench-json" => args.bench_json = Some(value("--bench-json")),
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

/// One timed pipeline stage for the `--bench-json` report.
struct Stage {
    name: &'static str,
    secs: f64,
}

/// Renders the benchmark report by hand: four stages and a handful of
/// scalars do not warrant a serialization dependency in a binary.
fn bench_json(threads: usize, scale: f64, seed: u64, jobs: usize, stages: &[Stage]) -> String {
    let total: f64 = stages.iter().map(|s| s.secs).sum();
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str(&format!("  \"scale\": {scale},\n"));
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"jobs\": {jobs},\n"));
    out.push_str("  \"stages\": {\n");
    for (i, s) in stages.iter().enumerate() {
        let comma = if i + 1 < stages.len() { "," } else { "" };
        out.push_str(&format!(
            "    \"{}\": {{ \"secs\": {:.6}, \"jobs_per_sec\": {:.1} }}{comma}\n",
            s.name,
            s.secs,
            jobs as f64 / s.secs.max(1e-9)
        ));
    }
    out.push_str("  },\n");
    out.push_str(&format!("  \"total_secs\": {total:.6},\n"));
    out.push_str(&format!("  \"total_jobs_per_sec\": {:.1}\n", jobs as f64 / total.max(1e-9)));
    out.push_str("}\n");
    out
}

/// Residual deviations we know about and accept; everything else in the
/// tables above tracks the paper within roughly ±30%.
const KNOWN_GAPS: &str = "\n## Known residual gaps\n\n\
- **Queue-wait CDF depth (Fig. 3b).** The orderings hold (GPU jobs clear in \
seconds, CPU jobs in minutes; 70% of CPU jobs wait over a minute), but our \
simulated cluster runs at ~20% GPU occupancy, so fewer GPU jobs ever wait at \
all than on the real system (≈90% under 2% of service time vs the paper's \
≈50%). Reproducing the deeper waits would require knowledge of the real \
system's background load that the paper does not report.\n\
- **Run-time p75 (Fig. 3a).** The paper's quantile triple (4/30/300 min) is \
wider than any single heavy-tailed family; our mixture honours the median and \
the GPU-hour shares of Fig. 15b, leaving p75 at ≈180-230 min. The class-level \
medians (36 min mature / 62 min exploratory) are matched instead.\n\
- **Per-user average run time (Fig. 10).** Median-of-averages lands at \
≈170-190 min vs the paper's 392 min; the spread (p25:p75 ≈ 1:3) and the \
heavy-tail shape are reproduced. Lifting it further would break the job-level \
run-time medians we prioritize.\n\
- **Fig. 12 CoV correlations.** The paper reports low positive bars; we land \
slightly negative to flat (≈-0.2…0.1). The qualitative claim — expert users \
are *not* more predictable — holds; the exact bar heights depend on \
unpublished within-user structure.\n\
- **Top-share sampling variance (Fig. 11).** The fitted Pareto shape \
(α ≈ 1.13) has infinite variance, so the *empirical* top-20% GPU-hour share \
of a 20k-user draw ranges 0.75-0.96 across seeds even though the analytic \
Lorenz shares match the paper exactly. Sampled-share tests therefore assert \
wide heavy-tail bands; the exact calibration is checked analytically.\n\
- **Wait growth under capacity loss.** With the full cluster at ~20% \
occupancy the mean queue wait is floored at the 3 s scheduler latency, so \
the wait-growth factor when capacity shrinks is bounded by queueing pressure \
alone: we measure ≈7× and assert a robust 5× directional bar rather than the \
10× one might expect from utilization ratios.\n\
- **Deadline surge is a GPU-job metric.** CPU campaign bursts can land \
hundreds of jobs on a single off-season day and swamp the all-jobs daily \
mean, so the pre-deadline surge (Sec. II) is computed over GPU submissions \
only, where the deadline ramp actually shows (≈1.2× vs the 1.1× bar).\n";

fn main() {
    let args = parse_args();
    if let Some(n) = args.threads {
        sc_par::set_max_threads(n);
    }
    let spec = WorkloadSpec::supercloud().scaled(args.scale);
    eprintln!(
        "generating {} jobs / {} users over {} days (seed {}, {} threads) ...",
        spec.total_jobs,
        spec.users,
        spec.duration_days,
        args.seed,
        sc_par::current_threads()
    );
    let t0 = std::time::Instant::now();
    let trace = Trace::generate(&spec, args.seed);
    let trace_gen_secs = t0.elapsed().as_secs_f64();
    let detailed = ((2_149.0 * args.scale).round() as usize).max(50);
    let sim = Simulation::new(SimConfig { detailed_series_jobs: detailed, ..Default::default() });
    let t0 = std::time::Instant::now();
    let (out, timings) = sim.run_timed(&trace);
    eprintln!("simulated in {:?}; analyzing ...", t0.elapsed());
    let t0 = std::time::Instant::now();
    let report = AnalysisReport::from_sim(&out);
    let analysis_secs = t0.elapsed().as_secs_f64();

    if let Some(path) = &args.bench_json {
        let stages = [
            Stage { name: "trace_gen", secs: trace_gen_secs },
            Stage { name: "sim_event_loop", secs: timings.event_loop_secs },
            Stage { name: "telemetry", secs: timings.telemetry_secs },
            Stage { name: "analysis", secs: analysis_secs },
        ];
        let json = bench_json(
            sc_par::current_threads(),
            args.scale,
            args.seed,
            trace.jobs().len(),
            &stages,
        );
        std::fs::write(path, json).expect("write bench json");
        eprintln!("wrote {path}");
    }

    println!("{}", report.render_text());
    println!("detailed-series jobs collected: {}", out.detailed.len());
    println!("simulation stats: {:?}", out.stats);

    println!("\n================ paper vs measured ================\n");
    for (title, rows) in report.all_comparisons() {
        println!("{title}");
        for r in rows {
            println!(
                "  {:<42} paper {:>9.3} {:<4} measured {:>9.3}",
                r.metric, r.paper, r.unit, r.measured
            );
        }
        println!();
    }

    if let Some(dir) = &args.svg_dir {
        let files = sc_core::svg::write_report_svgs(&report, std::path::Path::new(dir))
            .expect("write SVGs");
        eprintln!("wrote {} SVG figures to {dir}", files.len());
    }

    // Extra analyses: the Fig. 2 workflow chain and the Sec. II arrival
    // patterns.
    let views = sc_core::gpu_views(&out.dataset);
    println!("{}", sc_core::WorkflowChain::fit(&views).render());
    println!(
        "{}",
        sc_core::arrivals::ArrivalAnalysis::compute(&out.dataset).render(&spec.deadline_days)
    );

    println!("{}", sc_core::facility::reconstruct(&views, 448, 300.0, 20.0).render());

    // Opportunity studies (Secs. III/VI/VIII) over the same population.
    let opportunity = OpportunityReport::run(&views, 400);
    println!("{}", opportunity.render());

    if let Some(path) = args.out {
        let mut md = report.experiments_markdown();
        md.push_str(KNOWN_GAPS);
        md.push_str("\n## Beyond the figures\n\n```text\n");
        md.push_str(&sc_core::WorkflowChain::fit(&views).render());
        md.push('\n');
        md.push_str(
            &sc_core::arrivals::ArrivalAnalysis::compute(&out.dataset).render(&spec.deadline_days),
        );
        md.push('\n');
        md.push_str(&sc_core::facility::reconstruct(&views, 448, 300.0, 20.0).render());
        md.push_str("```\n");
        md.push_str("\n## Opportunity studies (Secs. III, VI, VIII)\n\n```text\n");
        md.push_str(&opportunity.render());
        md.push_str("```\n");
        md.push_str(&format!(
            "\n---\nGenerated by `repro_figures --scale {} --seed {}`; detailed subset {} jobs; \
             simulated {} events.\n",
            args.scale,
            args.seed,
            out.detailed.len(),
            out.stats.events
        ));
        std::fs::write(&path, md).expect("write report");
        eprintln!("wrote {path}");
    }
}
