//! CI smoke gate for the scenario DSL: parse, validate, and smoke-run
//! every committed preset, and prove the malformed-input contract.
//!
//! ```text
//! scenario_check [--run-scale F] [FILE ...]
//! ```
//!
//! With no arguments the binary checks the four embedded presets:
//! each must parse, render a summary, round-trip through its canonical
//! serialization to an identical value, and (at `--run-scale`, default
//! 0.002) generate a non-empty trace. It then feeds a corpus of
//! malformed documents to the parser and requires every one to come
//! back as a typed [`ScenarioError`] carrying line context — a panic
//! or an accepted document fails the gate. Extra `FILE` arguments are
//! validated the same way (parse + round-trip + smoke trace), so the
//! gate also covers user-supplied scenario files.
//!
//! Exit status: 0 all checks pass, 1 any check fails, 2 bad usage.

use sc_scenario::Scenario;
use sc_workload::Trace;

const USAGE: &str = "usage: scenario_check [--run-scale F] [FILE ...]

  --run-scale F  workload scale for the per-scenario smoke run
                 (default 0.002; 0 skips the run)
  FILE           extra scenario TOML files to validate alongside the
                 embedded presets";

fn usage_error(msg: &str) -> ! {
    eprintln!("scenario_check: {msg}\n{USAGE}");
    std::process::exit(2);
}

/// Malformed documents the parser must reject with a typed error.
/// Mirrors (a subset of) the corpus in `tests/scenario_invariants.rs`;
/// the binary re-checks it in CI so the gate holds even when the test
/// suite is skipped.
const MALFORMED: &[&str] = &[
    "",
    "[scenario]\n",
    "[scenario]\nname = \"x\"\nscale = 0.0\n",
    "[scenario]\nname = \"x\"\nbogus = 1\n",
    "[bogus]\nkey = 1\n",
    "[scenario]\nname = \"x\"\n[scenario]\nname = \"y\"\n",
    "[scenario]\nname = \"x\"\nname = \"y\"\n",
    "[scenario]\nname = \"x\"\n[arrivals]\nprocess = \"lunar\"\n",
    "[scenario]\nname = \"x\"\n[arrivals]\nprocess = \"spikes\"\n",
    "[scenario]\nname = \"x\"\n[workload]\ngpu_job_fraction = 1.5\n",
    "[scenario]\nname = \"x\"\nseed = \"forty-two\"\n",
    "[scenario]\nname = \"x\"\nscale = [1.0]\n",
    "[scenario]\nname = \"x\"\n[classifier]\ntrees = 0\n",
    "[scenario]\nname = \"x\"\n[classifier]\ntrain_fraction = 1.0\n",
    "[scenario]\nname = \"x\"\n[classifier]\nenabled = \"yes\"\n",
    "[scenario]\nname = \"x\"\n[classifier]\nforest_size = 5\n",
    "[scenario]\nname = \"x\"\n[reliability]\nenabled = true\n",
    "[scenario]\nname = \"x\"\n[reliability]\nsweep_points = 1\n",
    "[scenario]\nname = \"x\"\n[reliability]\nsize_buckets = [8, 2]\n",
    "[scenario]\nname = \"x\"\n[reliability]\nmtbf_factors = [0.0]\n",
    "[scenario]\nname = \"x\"\n[reliability]\ngrowth_factor = 2.0\n",
];

fn check(label: &str, ok: bool, detail: &str, failures: &mut u32) {
    if ok {
        println!("ok   {label}");
    } else {
        println!("FAIL {label}: {detail}");
        *failures += 1;
    }
}

/// Parse + round-trip + smoke-run one scenario source.
fn check_scenario(label: &str, text: &str, run_scale: f64, failures: &mut u32) {
    let sc = match Scenario::parse(text) {
        Ok(sc) => sc,
        Err(e) => {
            check(label, false, &format!("parse: {e}"), failures);
            return;
        }
    };
    let summary = sc.render_summary();
    check(
        &format!("{label}: summary"),
        summary.contains(&sc.name),
        "summary omits the scenario name",
        failures,
    );
    match Scenario::parse(&sc.to_toml()) {
        Ok(back) => check(
            &format!("{label}: round-trip"),
            back == sc,
            "canonical serialization parses to a different value",
            failures,
        ),
        Err(e) => check(&format!("{label}: round-trip"), false, &format!("reparse: {e}"), failures),
    }
    if run_scale > 0.0 {
        let spec = sc.scaled_spec(run_scale);
        let trace = Trace::generate(&spec, sc.seed);
        check(
            &format!("{label}: smoke run (scale {run_scale})"),
            !trace.jobs().is_empty(),
            "generated an empty trace",
            failures,
        );
    }
}

fn main() {
    let mut run_scale: f64 = 0.002;
    let mut files: Vec<String> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--run-scale" => {
                let v = it.next().unwrap_or_else(|| usage_error("missing value for --run-scale"));
                run_scale = v.parse().unwrap_or_else(|_| usage_error("--run-scale needs a number"));
                if !(run_scale >= 0.0 && run_scale.is_finite()) {
                    usage_error("--run-scale must be a non-negative finite factor");
                }
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other if other.starts_with("--") => usage_error(&format!("unknown flag {other}")),
            file => files.push(file.to_string()),
        }
    }

    let mut failures = 0u32;
    for name in Scenario::preset_names() {
        let sc = Scenario::preset(name).unwrap_or_else(|| unreachable!("embedded preset"));
        check_scenario(&format!("preset {name}"), &sc.to_toml(), run_scale, &mut failures);
    }
    for file in &files {
        match std::fs::read_to_string(file) {
            Ok(text) => check_scenario(&format!("file {file}"), &text, run_scale, &mut failures),
            Err(e) => check(&format!("file {file}"), false, &e.to_string(), &mut failures),
        }
    }
    for (i, text) in MALFORMED.iter().enumerate() {
        // A panic here aborts the process, which fails CI by itself;
        // an Ok is an accepted-garbage bug and fails explicitly.
        match Scenario::parse(text) {
            Err(e) => check(
                &format!("malformed #{i:02}: {e}"),
                !e.to_string().is_empty(),
                "empty diagnostic",
                &mut failures,
            ),
            Ok(_) => {
                check(&format!("malformed #{i:02}"), false, "parser accepted it", &mut failures)
            }
        }
    }

    if failures > 0 {
        eprintln!("scenario_check: {failures} check(s) failed");
        std::process::exit(1);
    }
    println!("scenario_check: all checks passed");
}
