//! Trains the archetype classifier on a scaled-down supercloud trace
//! and prints the held-out evaluation report.
//!
//! ```text
//! cargo run -p sc-learn --release --example train_classifier
//! ```

use sc_learn::{ArchetypePredictor, ClassifierConfig};
use sc_workload::{Trace, WorkloadSpec};

fn main() {
    let spec = WorkloadSpec::supercloud().scaled(0.02);
    let trace = Trace::generate(&spec, 7);
    let cfg = ClassifierConfig::default();
    let (_, report) = ArchetypePredictor::train(&trace, &cfg);
    println!("{}", report.to_fig().render());
}
