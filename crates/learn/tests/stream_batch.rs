//! The feature extractor under the streaming contract: folding a job's
//! tick stream through [`sc_learn::FeatureSink`] must equal — bit for
//! bit, not approximately — recomputing the same features from the
//! batch sampler's materialized series, for any job, sampling period,
//! and window, and the whole dataset build must be byte-identical at
//! any `SC_PAR_THREADS` budget.

use proptest::prelude::*;
use sc_learn::features::features_of_series;
use sc_learn::{build_dataset, job_features, ClassifierConfig, FEATURE_COUNT};
use sc_telemetry::sampler::GpuSampler;
use sc_workload::{JobSpec, Trace, WorkloadSpec};
use std::sync::OnceLock;

/// One shared 0.4%-scale trace: big enough that every archetype shows
/// up, small enough that a property case stays milliseconds.
fn trace() -> &'static Trace {
    static TRACE: OnceLock<Trace> = OnceLock::new();
    TRACE.get_or_init(|| Trace::generate(&WorkloadSpec::supercloud().scaled(0.004), 23))
}

/// The batch path `job_features` must match: materialize the window's
/// series with the stock sampler, reduce to the job level, then fold
/// the triples through the same sink.
fn batch_features(job: &JobSpec, cfg: &ClassifierConfig) -> Option<[f64; FEATURE_COUNT]> {
    let params = job.truth_params.as_ref()?;
    let truth = job.ground_truth()?;
    let window = params.duration.min(cfg.window_secs);
    let series = GpuSampler::with_period(cfg.period_secs).sample_series(&truth, window);
    let sm = series.job_level_series(|s| s.sm_util);
    let mem = series.job_level_series(|s| s.mem_util);
    let msize = series.job_level_series(|s| s.mem_size_util);
    let triples: Vec<[f64; 3]> = (0..series.len()).map(|k| [sm[k], mem[k], msize[k]]).collect();
    Some(features_of_series(&triples, params.duration))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn streamed_features_equal_batch_recomputation(
        pick in 0usize..4096,
        period_idx in 0usize..4,
        window in 30.0f64..7200.0,
    ) {
        let period = [0.5f64, 1.0, 2.0, 3.7][period_idx];
        let gpu_jobs: Vec<&JobSpec> = trace().gpu_jobs().collect();
        prop_assume!(!gpu_jobs.is_empty());
        let job = gpu_jobs[pick % gpu_jobs.len()];
        let cfg = ClassifierConfig {
            period_secs: period,
            window_secs: window,
            ..ClassifierConfig::default()
        };
        let streamed = job_features(job, &cfg).expect("gpu jobs have features");
        let batch = batch_features(job, &cfg).expect("gpu jobs have features");
        // Plain == on the f64 arrays: bit equality is the contract.
        prop_assert_eq!(streamed, batch);
    }
}

/// The N-thread side of the 1-vs-N comparison; the CI determinism
/// matrix sweeps `SC_PAR_THREADS` over 1, 4, 8.
fn alt_thread_budget() -> usize {
    std::env::var("SC_PAR_THREADS").ok().and_then(|v| v.parse().ok()).unwrap_or(4)
}

#[test]
fn dataset_build_is_identical_across_thread_budgets() {
    let cfg = ClassifierConfig::default();
    let saved = sc_par::current_threads();
    sc_par::set_max_threads(1);
    let one = build_dataset(trace(), &cfg);
    sc_par::set_max_threads(alt_thread_budget());
    let alt = build_dataset(trace(), &cfg);
    sc_par::set_max_threads(saved);
    assert!(!one.is_empty());
    assert_eq!(one, alt, "parallel feature extraction must merge in input order");
}
