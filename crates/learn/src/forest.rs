//! From-scratch seeded decision forest (bagged CART trees).
//!
//! No external ML or RNG dependency: bagging and per-split feature
//! subsampling draw from an explicit SplitMix64 stream seeded per
//! tree, so a `(train set, trees, seed)` triple always grows the same
//! forest. Trees train in parallel through `sc_par::par_map`
//! (index-ordered — the forest is identical at any thread budget).
//!
//! Splits greedily minimize weighted Gini impurity over a random
//! subset of features, scanning at most [`MAX_THRESHOLDS`] candidate
//! cuts per feature; ties keep the first candidate in deterministic
//! scan order.

use sc_workload::WorkloadArchetype;

use crate::dataset::Sample;
use crate::features::FEATURE_COUNT;
use crate::fmix64;

/// Number of classes (archetypes).
const CLASSES: usize = WorkloadArchetype::ALL.len();
/// Maximum tree depth.
const MAX_DEPTH: usize = 10;
/// Minimum samples on each side of a split.
const MIN_LEAF: usize = 4;
/// Maximum candidate thresholds scanned per feature per split.
const MAX_THRESHOLDS: usize = 32;
/// Features considered per split (~sqrt of [`FEATURE_COUNT`]).
const FEATURES_PER_SPLIT: usize = 4;

/// Minimal SplitMix64 generator — the crate's only randomness source.
#[derive(Debug, Clone)]
pub(crate) struct SplitMix64(u64);

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform index in `[0, n)` (modulo bias is irrelevant at these
    /// sizes and keeps the draw a single step).
    pub(crate) fn next_index(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

#[derive(Debug, Clone)]
enum Node {
    /// Predicted class index.
    Leaf(u8),
    /// Binary split: `feature <= threshold` goes left.
    Split { feature: usize, threshold: f64, left: u32, right: u32 },
}

/// One CART tree over bootstrap-resampled training data.
#[derive(Debug, Clone)]
pub struct Tree {
    nodes: Vec<Node>,
    root: u32,
}

impl Tree {
    fn train(samples: &[Sample], seed: u64) -> Tree {
        let mut rng = SplitMix64::new(seed);
        let n = samples.len();
        let bootstrap: Vec<usize> = (0..n).map(|_| rng.next_index(n)).collect();
        let mut nodes = Vec::new();
        let root = grow(samples, bootstrap, 0, &mut rng, &mut nodes);
        Tree { nodes, root }
    }

    fn predict(&self, x: &[f64; FEATURE_COUNT]) -> u8 {
        let mut at = self.root;
        loop {
            match &self.nodes[at as usize] {
                Node::Leaf(class) => return *class,
                Node::Split { feature, threshold, left, right } => {
                    at = if x[*feature] <= *threshold { *left } else { *right };
                }
            }
        }
    }

    /// Nodes in the tree (diagnostics).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

fn class_counts(samples: &[Sample], idx: &[usize]) -> [usize; CLASSES] {
    let mut counts = [0usize; CLASSES];
    for &i in idx {
        counts[samples[i].label.index()] += 1;
    }
    counts
}

/// Majority class; ties break to the lowest class index.
fn majority(counts: &[usize; CLASSES]) -> u8 {
    let mut best = 0usize;
    for (c, &n) in counts.iter().enumerate() {
        if n > counts[best] {
            best = c;
        }
    }
    best as u8
}

fn gini(counts: &[usize; CLASSES]) -> f64 {
    let n: usize = counts.iter().sum();
    if n == 0 {
        return 0.0;
    }
    let n = n as f64;
    1.0 - counts.iter().map(|&c| (c as f64 / n) * (c as f64 / n)).sum::<f64>()
}

fn pick_features(rng: &mut SplitMix64) -> [usize; FEATURES_PER_SPLIT] {
    let mut all = [0usize; FEATURE_COUNT];
    for (i, slot) in all.iter_mut().enumerate() {
        *slot = i;
    }
    let mut out = [0usize; FEATURES_PER_SPLIT];
    for (i, slot) in out.iter_mut().enumerate() {
        let j = i + rng.next_index(FEATURE_COUNT - i);
        all.swap(i, j);
        *slot = all[i];
    }
    out
}

/// Midpoints between consecutive distinct sorted values, thinned to at
/// most [`MAX_THRESHOLDS`] evenly spaced candidates.
fn candidate_cuts(sorted_distinct: &[f64]) -> Vec<f64> {
    let gaps = sorted_distinct.len() - 1;
    let take = gaps.min(MAX_THRESHOLDS);
    (0..take)
        .map(|k| {
            let i = k * gaps / take;
            (sorted_distinct[i] + sorted_distinct[i + 1]) / 2.0
        })
        .collect()
}

/// Best `(weighted-gini, feature, threshold)` split of `idx` over the
/// given candidate features, or `None` when no split leaves
/// [`MIN_LEAF`] samples on both sides.
fn best_split(samples: &[Sample], idx: &[usize], features: &[usize]) -> Option<(f64, usize, f64)> {
    let total = idx.len() as f64;
    let mut best: Option<(f64, usize, f64)> = None;
    for &feature in features {
        let mut vals: Vec<f64> = idx.iter().map(|&i| samples[i].features[feature]).collect();
        vals.sort_by(f64::total_cmp);
        vals.dedup();
        if vals.len() < 2 {
            continue;
        }
        for threshold in candidate_cuts(&vals) {
            let mut left = [0usize; CLASSES];
            let mut right = [0usize; CLASSES];
            for &i in idx {
                if samples[i].features[feature] <= threshold {
                    left[samples[i].label.index()] += 1;
                } else {
                    right[samples[i].label.index()] += 1;
                }
            }
            let (ln, rn): (usize, usize) = (left.iter().sum(), right.iter().sum());
            if ln < MIN_LEAF || rn < MIN_LEAF {
                continue;
            }
            let score = (ln as f64 * gini(&left) + rn as f64 * gini(&right)) / total;
            if best.is_none_or(|(s, _, _)| score < s) {
                best = Some((score, feature, threshold));
            }
        }
    }
    best
}

fn grow(
    samples: &[Sample],
    idx: Vec<usize>,
    depth: usize,
    rng: &mut SplitMix64,
    nodes: &mut Vec<Node>,
) -> u32 {
    let counts = class_counts(samples, &idx);
    let leaf_class = majority(&counts);
    let pure = counts.iter().filter(|&&c| c > 0).count() <= 1;
    if depth >= MAX_DEPTH || idx.len() < 2 * MIN_LEAF || pure {
        nodes.push(Node::Leaf(leaf_class));
        return (nodes.len() - 1) as u32;
    }
    // Prefer the sampled feature subset; if none of those can split
    // (e.g. all constant on this node), fall back to every feature so
    // a node only leafs out when the data is genuinely unsplittable.
    let sampled = pick_features(rng);
    let all: [usize; FEATURE_COUNT] = std::array::from_fn(|i| i);
    let best = best_split(samples, &idx, &sampled).or_else(|| best_split(samples, &idx, &all));
    let Some((_, feature, threshold)) = best else {
        nodes.push(Node::Leaf(leaf_class));
        return (nodes.len() - 1) as u32;
    };
    let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
        idx.into_iter().partition(|&i| samples[i].features[feature] <= threshold);
    let left = grow(samples, left_idx, depth + 1, rng, nodes);
    let right = grow(samples, right_idx, depth + 1, rng, nodes);
    nodes.push(Node::Split { feature, threshold, left, right });
    (nodes.len() - 1) as u32
}

/// A bagged forest of [`Tree`]s with majority voting.
#[derive(Debug, Clone)]
pub struct Forest {
    trees: Vec<Tree>,
}

impl Forest {
    /// Trains `trees` bagged CART trees from `train`, deterministically
    /// from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `train` is empty or `trees` is zero.
    pub fn train(train: &[Sample], trees: usize, seed: u64) -> Forest {
        assert!(!train.is_empty(), "forest needs training samples");
        assert!(trees > 0, "forest needs at least one tree");
        let seeds: Vec<u64> = (0..trees as u64)
            .map(|i| fmix64(seed ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15)))
            .collect();
        let trees = sc_par::par_map(&seeds, |s| Tree::train(train, *s));
        Forest { trees }
    }

    /// Majority vote over all trees; ties break to the lowest class
    /// index.
    pub fn predict(&self, x: &[f64; FEATURE_COUNT]) -> WorkloadArchetype {
        let mut votes = [0usize; CLASSES];
        for t in &self.trees {
            votes[t.predict(x) as usize] += 1;
        }
        WorkloadArchetype::ALL[majority(&votes) as usize]
    }

    /// Trees in the forest.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// Whether the forest holds no trees (never true post-`train`).
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_telemetry::record::JobId;

    /// Synthetic linearly separable samples: class index encoded in
    /// features 2 and 8 with a little hash jitter.
    fn synthetic(n: usize) -> Vec<Sample> {
        (0..n)
            .map(|i| {
                let class = i % CLASSES;
                let jitter = crate::hash_unit(i as u64) * 0.5;
                let mut features = [0.0; FEATURE_COUNT];
                features[2] = class as f64 * 10.0 + jitter;
                features[8] = (CLASSES - class) as f64 + jitter;
                Sample { job_id: JobId(i as u64), label: WorkloadArchetype::ALL[class], features }
            })
            .collect()
    }

    #[test]
    fn learns_a_separable_problem_perfectly() {
        let data = synthetic(200);
        let forest = Forest::train(&data, 9, 7);
        assert_eq!(forest.len(), 9);
        for s in &synthetic(80) {
            assert_eq!(forest.predict(&s.features), s.label, "{:?}", s.features);
        }
    }

    #[test]
    fn training_is_deterministic_in_the_seed() {
        let data = synthetic(120);
        let a = Forest::train(&data, 5, 42);
        let b = Forest::train(&data, 5, 42);
        let probe = synthetic(40);
        for s in &probe {
            assert_eq!(a.predict(&s.features), b.predict(&s.features));
        }
        let sizes_a: Vec<usize> = a.trees.iter().map(Tree::node_count).collect();
        let sizes_b: Vec<usize> = b.trees.iter().map(Tree::node_count).collect();
        assert_eq!(sizes_a, sizes_b, "identical seeds grow identical trees");
    }

    #[test]
    fn tie_votes_break_to_lowest_class() {
        assert_eq!(majority(&[3, 3, 1, 0]), 0);
        assert_eq!(majority(&[1, 4, 4, 2]), 1);
    }

    #[test]
    fn candidate_cuts_are_bounded_and_ordered() {
        let vals: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let cuts = candidate_cuts(&vals);
        assert_eq!(cuts.len(), MAX_THRESHOLDS);
        assert!(cuts.windows(2).all(|w| w[0] < w[1]));
    }
}
