//! Nearest-centroid baseline classifier.
//!
//! The simplest thing that could work: z-score features with the
//! training set's mean and standard deviation, average each class into
//! a centroid, and predict the nearest centroid by squared Euclidean
//! distance. The forest must beat this baseline for its complexity to
//! pay; the evaluation report carries both accuracies side by side.

use sc_workload::WorkloadArchetype;

use crate::dataset::Sample;
use crate::features::FEATURE_COUNT;

const CLASSES: usize = WorkloadArchetype::ALL.len();

/// Z-scored nearest-centroid classifier.
#[derive(Debug, Clone)]
pub struct NearestCentroid {
    mean: [f64; FEATURE_COUNT],
    std: [f64; FEATURE_COUNT],
    centroids: [[f64; FEATURE_COUNT]; CLASSES],
}

impl NearestCentroid {
    /// Fits standardization constants and per-class centroids.
    ///
    /// # Panics
    ///
    /// Panics if `train` is empty.
    pub fn train(train: &[Sample]) -> NearestCentroid {
        assert!(!train.is_empty(), "centroid classifier needs training samples");
        let n = train.len() as f64;
        let mut mean = [0.0; FEATURE_COUNT];
        let mut std = [0.0; FEATURE_COUNT];
        for s in train {
            for (f, v) in s.features.iter().enumerate() {
                mean[f] += v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        for s in train {
            for (f, v) in s.features.iter().enumerate() {
                std[f] += (v - mean[f]) * (v - mean[f]);
            }
        }
        for s in &mut std {
            *s = (*s / n).sqrt().max(1e-9);
        }
        let mut centroids = [[0.0; FEATURE_COUNT]; CLASSES];
        let mut counts = [0usize; CLASSES];
        for s in train {
            let c = s.label.index();
            counts[c] += 1;
            for (f, v) in s.features.iter().enumerate() {
                centroids[c][f] += (v - mean[f]) / std[f];
            }
        }
        for (c, centroid) in centroids.iter_mut().enumerate() {
            if counts[c] > 0 {
                for v in centroid.iter_mut() {
                    *v /= counts[c] as f64;
                }
            }
        }
        NearestCentroid { mean, std, centroids }
    }

    /// Predicts the class whose centroid is nearest in standardized
    /// space; ties break to the lowest class index.
    pub fn predict(&self, x: &[f64; FEATURE_COUNT]) -> WorkloadArchetype {
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for (c, centroid) in self.centroids.iter().enumerate() {
            let d: f64 = (0..FEATURE_COUNT)
                .map(|f| {
                    let z = (x[f] - self.mean[f]) / self.std[f];
                    (z - centroid[f]) * (z - centroid[f])
                })
                .sum();
            if d < best_d {
                best_d = d;
                best = c;
            }
        }
        WorkloadArchetype::ALL[best]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_telemetry::record::JobId;

    fn sample(class: usize, offset: f64) -> Sample {
        let mut features = [0.0; FEATURE_COUNT];
        features[0] = class as f64 * 100.0 + offset;
        features[5] = -(class as f64) + offset * 0.01;
        Sample { job_id: JobId(0), label: WorkloadArchetype::ALL[class], features }
    }

    #[test]
    fn recovers_well_separated_clusters() {
        let train: Vec<Sample> =
            (0..CLASSES).flat_map(|c| (0..10).map(move |i| sample(c, i as f64))).collect();
        let model = NearestCentroid::train(&train);
        for c in 0..CLASSES {
            assert_eq!(model.predict(&sample(c, 4.5).features), WorkloadArchetype::ALL[c]);
        }
    }

    #[test]
    fn constant_features_do_not_divide_by_zero() {
        let train: Vec<Sample> = (0..CLASSES)
            .flat_map(|c| {
                (0..4).map(move |_| {
                    let mut s = sample(c, 0.0);
                    s.features[3] = 7.0;
                    s
                })
            })
            .collect();
        let model = NearestCentroid::train(&train);
        let p = model.predict(&train[0].features);
        assert_eq!(p, train[0].label);
    }
}
