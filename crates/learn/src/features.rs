//! Incremental feature extraction over a job's sampled GPU series.
//!
//! [`FeatureSink`] folds the job-level `[sm, mem, mem_size]` tick
//! stream into a fixed-width feature vector in one pass. It implements
//! [`Util3Sink`] with the trait's *default* `push_run` (which unrolls
//! runs into per-tick `push` calls), so the streamed fold consumes
//! exactly the tick values the batch sampler materializes, in the same
//! order — streamed and batch-recomputed feature vectors are
//! bit-identical by construction, and `tests/` proves it across seeds
//! and thread budgets.
//!
//! The features are cheap per-tick accumulations chosen to separate
//! the hidden archetype signatures: periodicity proxies (delta
//! sign-change and total-variation rates beat an FFT at one pass and
//! zero allocation), active-phase run structure, utilization and
//! memory summary levels, and a ramp-shape ratio.

use sc_telemetry::phases::ACTIVE_SM_THRESHOLD;
use sc_telemetry::stream::Util3Sink;
use sc_workload::JobSpec;

use crate::ClassifierConfig;

/// Width of the feature vector.
pub const FEATURE_COUNT: usize = 14;

/// Feature names, index-aligned with the extracted vectors (used by
/// reports and the README matrix).
pub const FEATURE_NAMES: [&str; FEATURE_COUNT] = [
    "duration_secs",
    "active_fraction",
    "sm_mean",
    "sm_max",
    "mem_mean",
    "mem_size_mean",
    "active_run_count",
    "mean_active_run_ticks",
    "sm_total_variation_rate",
    "sm_sign_change_rate",
    "sm_active_variance",
    "ramp_ratio",
    "active_tv_rate",
    "active_sign_change_rate",
];

/// One-pass fold of a job-level utilization stream into features.
#[derive(Debug, Clone)]
pub struct FeatureSink {
    first_quarter_ticks: usize,
    ticks: u64,
    active_ticks: u64,
    sm_sum: f64,
    sm_max: f64,
    mem_sum: f64,
    mem_size_sum: f64,
    sm_sum_active: f64,
    sm_sumsq_active: f64,
    sm_sum_first_quarter: f64,
    active_runs: u64,
    in_active_run: bool,
    prev_sm: Option<f64>,
    total_variation: f64,
    sign_changes: u64,
    prev_delta_sign: i8,
    prev_active_sm: Option<f64>,
    active_deltas: u64,
    active_total_variation: f64,
    active_sign_changes: u64,
    prev_active_delta_sign: i8,
}

impl FeatureSink {
    /// Builds a sink expecting `expected_ticks` pushes (only the ramp
    /// feature's first-quarter boundary depends on it).
    pub fn new(expected_ticks: usize) -> Self {
        FeatureSink {
            first_quarter_ticks: (expected_ticks / 4).max(1),
            ticks: 0,
            active_ticks: 0,
            sm_sum: 0.0,
            sm_max: 0.0,
            mem_sum: 0.0,
            mem_size_sum: 0.0,
            sm_sum_active: 0.0,
            sm_sumsq_active: 0.0,
            sm_sum_first_quarter: 0.0,
            active_runs: 0,
            in_active_run: false,
            prev_sm: None,
            total_variation: 0.0,
            sign_changes: 0,
            prev_delta_sign: 0,
            prev_active_sm: None,
            active_deltas: 0,
            active_total_variation: 0.0,
            active_sign_changes: 0,
            prev_active_delta_sign: 0,
        }
    }

    /// Ticks consumed so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Finalizes the feature vector. `duration_secs` is the job's full
    /// ground-truth duration (feature 0), which may exceed the streamed
    /// window.
    pub fn features(&self, duration_secs: f64) -> [f64; FEATURE_COUNT] {
        let n = self.ticks as f64;
        let deltas = (self.ticks.saturating_sub(1)) as f64;
        let sm_mean = if self.ticks == 0 { 0.0 } else { self.sm_sum / n };
        let active_variance = if self.active_ticks == 0 {
            0.0
        } else {
            let na = self.active_ticks as f64;
            (self.sm_sumsq_active - self.sm_sum_active * self.sm_sum_active / na) / na
        };
        let q1_ticks = (self.ticks.min(self.first_quarter_ticks as u64)) as f64;
        let q1_mean = if q1_ticks == 0.0 { 0.0 } else { self.sm_sum_first_quarter / q1_ticks };
        [
            duration_secs,
            if self.ticks == 0 { 0.0 } else { self.active_ticks as f64 / n },
            sm_mean,
            self.sm_max,
            if self.ticks == 0 { 0.0 } else { self.mem_sum / n },
            if self.ticks == 0 { 0.0 } else { self.mem_size_sum / n },
            self.active_runs as f64,
            if self.active_runs == 0 {
                0.0
            } else {
                self.active_ticks as f64 / self.active_runs as f64
            },
            if deltas == 0.0 { 0.0 } else { self.total_variation / deltas },
            if deltas == 0.0 { 0.0 } else { self.sign_changes as f64 / deltas },
            active_variance.max(0.0),
            q1_mean / (sm_mean + 1.0),
            if self.active_deltas == 0 {
                0.0
            } else {
                self.active_total_variation / self.active_deltas as f64
            },
            if self.active_deltas == 0 {
                0.0
            } else {
                self.active_sign_changes as f64 / self.active_deltas as f64
            },
        ]
    }
}

impl Util3Sink for FeatureSink {
    // Deliberately no `push_run` override: the default unrolls runs
    // through `push`, which keeps this fold bit-identical to pushing
    // the batch-materialized series tick by tick.
    fn push(&mut self, v: [f64; 3]) {
        let [sm, mem, mem_size] = v;
        if (self.ticks as usize) < self.first_quarter_ticks {
            self.sm_sum_first_quarter += sm;
        }
        self.ticks += 1;
        self.sm_sum += sm;
        self.mem_sum += mem;
        self.mem_size_sum += mem_size;
        if sm > self.sm_max {
            self.sm_max = sm;
        }
        if sm >= ACTIVE_SM_THRESHOLD {
            self.active_ticks += 1;
            self.sm_sum_active += sm;
            self.sm_sumsq_active += sm * sm;
            if !self.in_active_run {
                self.active_runs += 1;
                self.in_active_run = true;
            }
            // Oscillation *within* active spans: this isolates the
            // wave-period signal from the active/idle duty cycle (the
            // whole-stream rates below are diluted by idle time).
            if let Some(prev) = self.prev_active_sm {
                let d = sm - prev;
                self.active_deltas += 1;
                self.active_total_variation += d.abs();
                let sign: i8 = if d > 0.0 {
                    1
                } else if d < 0.0 {
                    -1
                } else {
                    0
                };
                if sign != 0 {
                    if self.prev_active_delta_sign != 0 && sign != self.prev_active_delta_sign {
                        self.active_sign_changes += 1;
                    }
                    self.prev_active_delta_sign = sign;
                }
            }
            self.prev_active_sm = Some(sm);
        } else {
            self.in_active_run = false;
            self.prev_active_sm = None;
            self.prev_active_delta_sign = 0;
        }
        if let Some(prev) = self.prev_sm {
            let d = sm - prev;
            self.total_variation += d.abs();
            let sign: i8 = if d > 0.0 {
                1
            } else if d < 0.0 {
                -1
            } else {
                0
            };
            if sign != 0 {
                if self.prev_delta_sign != 0 && sign != self.prev_delta_sign {
                    self.sign_changes += 1;
                }
                self.prev_delta_sign = sign;
            }
        }
        self.prev_sm = Some(sm);
    }
}

/// Folds an already-materialized job-level series into features — the
/// batch counterpart the streaming path must match bit for bit.
pub fn features_of_series(series: &[[f64; 3]], duration_secs: f64) -> [f64; FEATURE_COUNT] {
    let mut sink = FeatureSink::new(series.len());
    for v in series {
        sink.push(*v);
    }
    sink.features(duration_secs)
}

/// Extracts the feature vector for one GPU job by streaming its
/// synthesized telemetry over the first
/// [`window_secs`](ClassifierConfig::window_secs) of its run.
///
/// Returns `None` for jobs without telemetry ground truth (CPU jobs).
pub fn job_features(job: &JobSpec, cfg: &ClassifierConfig) -> Option<[f64; FEATURE_COUNT]> {
    let params = job.truth_params.as_ref()?;
    let truth = job.ground_truth()?;
    let window = params.duration.min(cfg.window_secs);
    let expected = sc_telemetry::sampler::tick_count(window, cfg.period_secs);
    let mut sink = FeatureSink::new(expected);
    truth.stream_util3(window, cfg.period_secs, &mut sink);
    Some(sink.features(params.duration))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_names_match_width() {
        assert_eq!(FEATURE_NAMES.len(), FEATURE_COUNT);
    }

    #[test]
    fn empty_stream_yields_zeroed_features() {
        let f = features_of_series(&[], 123.0);
        assert_eq!(f[0], 123.0, "duration passes through");
        assert!(f[1..].iter().all(|v| *v == 0.0), "{f:?}");
    }

    #[test]
    fn square_wave_counts_runs_and_oscillation() {
        // 4 active runs of 3 ticks separated by 2 idle ticks.
        let mut series = Vec::new();
        for _ in 0..4 {
            series.extend([[40.0, 10.0, 20.0]; 3]);
            series.extend([[0.0, 0.0, 20.0]; 2]);
        }
        let f = features_of_series(&series, 20.0);
        assert_eq!(f[6], 4.0, "active runs");
        assert_eq!(f[7], 3.0, "mean run length");
        assert!((f[1] - 12.0 / 20.0).abs() < 1e-12, "active fraction");
        assert_eq!(f[3], 40.0, "sm max");
        assert!(f[8] > 0.0 && f[9] > 0.0, "oscillation measured: {f:?}");
    }

    #[test]
    fn flat_series_has_no_oscillation() {
        let f = features_of_series(&[[30.0, 5.0, 10.0]; 50], 50.0);
        assert_eq!(f[6], 1.0, "one long run");
        assert_eq!(f[8], 0.0);
        assert_eq!(f[9], 0.0);
        assert_eq!(f[10], 0.0, "zero variance");
        assert!((f[11] - 30.0 / 31.0).abs() < 1e-12, "ramp ratio of a flat series");
    }

    #[test]
    fn push_run_default_matches_per_tick_pushes() {
        let mut a = FeatureSink::new(10);
        let mut b = FeatureSink::new(10);
        a.push_run([7.0, 3.0, 5.0], 6);
        a.push([0.2, 0.1, 5.0]);
        for _ in 0..6 {
            b.push([7.0, 3.0, 5.0]);
        }
        b.push([0.2, 0.1, 5.0]);
        assert_eq!(a.features(60.0), b.features(60.0));
    }
}
