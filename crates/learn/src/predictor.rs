//! The trained classifier packaged for closed-loop use.

use sc_workload::{JobSpec, Trace, WorkloadArchetype};

use crate::centroid::NearestCentroid;
use crate::dataset::build_dataset;
use crate::eval::{evaluate, EvalReport};
use crate::features::job_features;
use crate::forest::Forest;
use crate::ClassifierConfig;

/// A trained archetype classifier plus the feature-extraction config
/// it was trained with — the hook `sc-policy` routes placement on.
#[derive(Debug, Clone)]
pub struct ArchetypePredictor {
    forest: Forest,
    cfg: ClassifierConfig,
}

impl ArchetypePredictor {
    /// Trains the forest (and the centroid baseline) on `trace`'s
    /// deterministic dataset and returns the predictor together with
    /// its held-out evaluation.
    ///
    /// # Panics
    ///
    /// Panics if the trace yields no labeled GPU jobs to train on.
    pub fn train(trace: &Trace, cfg: &ClassifierConfig) -> (ArchetypePredictor, EvalReport) {
        let dataset = build_dataset(trace, cfg);
        assert!(
            !dataset.train.is_empty() && !dataset.test.is_empty(),
            "classifier needs labeled GPU jobs in both splits (got {} train / {} test)",
            dataset.train.len(),
            dataset.test.len()
        );
        let forest = Forest::train(&dataset.train, cfg.trees, cfg.seed);
        let centroid = NearestCentroid::train(&dataset.train);
        let report = evaluate(&forest, &centroid, &dataset);
        (ArchetypePredictor { forest, cfg: cfg.clone() }, report)
    }

    /// Predicts the archetype of one job from its streamed telemetry
    /// features. Returns `None` for jobs without GPU ground truth.
    pub fn predict_job(&self, job: &JobSpec) -> Option<WorkloadArchetype> {
        Some(self.forest.predict(&job_features(job, &self.cfg)?))
    }

    /// The configuration the predictor was trained with.
    pub fn config(&self) -> &ClassifierConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_workload::WorkloadSpec;

    fn small_trace() -> Trace {
        Trace::generate(&WorkloadSpec::supercloud().scaled(0.004), 17)
    }

    #[test]
    fn trains_and_beats_chance_by_a_wide_margin() {
        let trace = small_trace();
        let (predictor, report) = ArchetypePredictor::train(&trace, &ClassifierConfig::default());
        assert!(
            report.accuracy > 0.6,
            "archetypes should be recognizable from their signatures: {:?}",
            report.confusion
        );
        assert!(report.test_count > 20);
        let gpu = trace.gpu_jobs().next().expect("trace has GPU jobs");
        let predicted = predictor.predict_job(gpu).expect("GPU job has features");
        assert!(WorkloadArchetype::ALL.contains(&predicted));
    }

    #[test]
    fn cpu_jobs_have_no_prediction() {
        let trace = small_trace();
        let (predictor, _) = ArchetypePredictor::train(&trace, &ClassifierConfig::default());
        let cpu = trace.jobs().iter().find(|j| j.truth_params.is_none()).expect("cpu job");
        assert_eq!(predictor.predict_job(cpu), None);
    }

    #[test]
    fn training_is_deterministic() {
        let trace = small_trace();
        let cfg = ClassifierConfig::default();
        let (_, a) = ArchetypePredictor::train(&trace, &cfg);
        let (_, b) = ArchetypePredictor::train(&trace, &cfg);
        assert_eq!(a, b, "same trace + config must evaluate identically");
    }
}
