//! Workload-archetype classification over synthesized telemetry.
//!
//! The HPCA 2022 paper characterizes what jobs on a large
//! GPU-accelerated system *do* — utilization waves, active/idle phase
//! structure, ramps — and poses recognizing what a job *is* as the
//! natural next step for AI-enabling systems telemetry (Sec. VII;
//! see also Weiss et al., arXiv:2204.05839). This crate closes that
//! loop inside the reproduction:
//!
//! 1. `sc-workload` stamps every GPU job with a hidden ground-truth
//!    [`WorkloadArchetype`](sc_workload::WorkloadArchetype) whose
//!    telemetry signature (wave period, plateau length, burstiness)
//!    the samplers honor bit-identically in batch and streaming form.
//! 2. [`features`] folds a job's sampled `[sm, mem, mem_size]` series
//!    into a fixed-width feature vector, incrementally, through the
//!    same [`Util3Sink`](sc_telemetry::stream::Util3Sink) streaming
//!    interface the telemetry pipeline uses.
//! 3. [`forest`] and [`centroid`] are from-scratch, dependency-free
//!    classifiers (a seeded CART decision forest and a z-scored
//!    nearest-centroid baseline) trained on a deterministic split.
//! 4. [`predictor`] packages the trained forest behind
//!    [`ArchetypePredictor`], the hook `sc-policy` uses to route
//!    placement decisions on *predicted* rather than oracle labels.
//!
//! Everything is deterministic: dataset subsampling and the
//! train/test split hash off each job's `truth_seed`, tree bagging
//! uses an explicit SplitMix64 stream, and parallel feature
//! extraction is index-ordered — so reports are byte-identical at any
//! `SC_PAR_THREADS` budget.

pub mod centroid;
pub mod dataset;
pub mod eval;
pub mod features;
pub mod forest;
pub mod predictor;

pub use centroid::NearestCentroid;
pub use dataset::{build_dataset, Dataset, Sample};
pub use eval::{evaluate, ClassScore, EvalReport};
pub use features::{job_features, FeatureSink, FEATURE_COUNT, FEATURE_NAMES};
pub use forest::Forest;
pub use predictor::ArchetypePredictor;

use serde::{Deserialize, Serialize};

/// Classifier hyper-parameters and dataset-construction knobs.
///
/// The defaults here are the single source of truth: the scenario
/// DSL's `[classifier]` section and the CLI flags both default to
/// exactly these values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassifierConfig {
    /// Trees in the decision forest.
    pub trees: usize,
    /// Seed for bagging and per-split feature subsampling.
    pub seed: u64,
    /// Fraction of sampled jobs assigned to the training split.
    pub train_fraction: f64,
    /// Deterministic cap on jobs sampled into the dataset (feature
    /// extraction streams every job's series; this bounds the work).
    pub max_jobs: usize,
    /// Telemetry sampling period for feature extraction, seconds.
    pub period_secs: f64,
    /// Features are extracted from at most this long a prefix of each
    /// job's run, seconds — the online setting where a job must be
    /// recognized from its first hour, not its whole life.
    pub window_secs: f64,
}

impl Default for ClassifierConfig {
    fn default() -> Self {
        ClassifierConfig {
            trees: 15,
            seed: 71,
            train_fraction: 0.7,
            max_jobs: 1500,
            period_secs: 1.0,
            window_secs: 3600.0,
        }
    }
}

/// Finalizer of 64-bit MurmurHash3: a cheap, well-mixed `u64 -> u64`
/// bijection used wherever a deterministic hash stream must not
/// consume RNG draws.
pub(crate) fn fmix64(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^= x >> 33;
    x
}

/// Maps a seed to a uniform float in `[0, 1)` without consuming any
/// RNG stream (same construction as `sc-workload`'s attribute hashes).
pub(crate) fn hash_unit(seed: u64) -> f64 {
    (fmix64(seed) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_unit_is_uniform_ish_and_deterministic() {
        let vals: Vec<f64> = (0..4096u64).map(|i| hash_unit(i.wrapping_mul(0x9e37))).collect();
        assert!(vals.iter().all(|v| (0.0..1.0).contains(v)));
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
        assert_eq!(hash_unit(42), hash_unit(42));
        assert_ne!(hash_unit(42), hash_unit(43));
    }

    #[test]
    fn default_config_matches_documented_values() {
        let c = ClassifierConfig::default();
        assert_eq!((c.trees, c.seed, c.max_jobs), (15, 71, 1500));
        assert_eq!((c.train_fraction, c.period_secs, c.window_secs), (0.7, 1.0, 3600.0));
    }
}
