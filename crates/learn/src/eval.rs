//! Held-out evaluation: confusion matrix, accuracy, precision/recall.

use sc_core::ClassifierFig;
use sc_workload::WorkloadArchetype;

use crate::centroid::NearestCentroid;
use crate::dataset::Dataset;
use crate::forest::Forest;

const CLASSES: usize = WorkloadArchetype::ALL.len();

/// Precision and recall for one class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassScore {
    /// Diagonal count over the predicted-column sum (0 when the class
    /// was never predicted).
    pub precision: f64,
    /// Diagonal count over the truth-row sum (0 when the class never
    /// occurs in the test split).
    pub recall: f64,
}

/// Evaluation of a trained forest (and the centroid baseline) on the
/// held-out split.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalReport {
    /// `confusion[truth][predicted]` forest counts on the test split.
    pub confusion: [[u64; CLASSES]; CLASSES],
    /// Forest accuracy on the test split.
    pub accuracy: f64,
    /// Nearest-centroid accuracy on the same split.
    pub centroid_accuracy: f64,
    /// Per-class forest scores, archetype-index order.
    pub per_class: [ClassScore; CLASSES],
    /// Training-split size.
    pub train_count: usize,
    /// Test-split size.
    pub test_count: usize,
}

impl EvalReport {
    /// Converts to the report/SVG figure in `sc-core`.
    pub fn to_fig(&self) -> ClassifierFig {
        ClassifierFig {
            labels: WorkloadArchetype::ALL.iter().map(|a| a.label().to_string()).collect(),
            confusion: self.confusion.iter().map(|row| row.to_vec()).collect(),
            accuracy: self.accuracy,
            centroid_accuracy: self.centroid_accuracy,
            precision: self.per_class.iter().map(|s| s.precision).collect(),
            recall: self.per_class.iter().map(|s| s.recall).collect(),
            train_count: self.train_count,
            test_count: self.test_count,
        }
    }
}

/// Scores `forest` and `centroid` on the dataset's test split.
pub fn evaluate(forest: &Forest, centroid: &NearestCentroid, dataset: &Dataset) -> EvalReport {
    let mut confusion = [[0u64; CLASSES]; CLASSES];
    let mut forest_hits = 0usize;
    let mut centroid_hits = 0usize;
    for s in &dataset.test {
        let predicted = forest.predict(&s.features);
        confusion[s.label.index()][predicted.index()] += 1;
        if predicted == s.label {
            forest_hits += 1;
        }
        if centroid.predict(&s.features) == s.label {
            centroid_hits += 1;
        }
    }
    let n = dataset.test.len();
    let mut per_class = [ClassScore { precision: 0.0, recall: 0.0 }; CLASSES];
    for (c, score) in per_class.iter_mut().enumerate() {
        let diag = confusion[c][c] as f64;
        let col: u64 = (0..CLASSES).map(|r| confusion[r][c]).sum();
        let row: u64 = confusion[c].iter().sum();
        score.precision = if col == 0 { 0.0 } else { diag / col as f64 };
        score.recall = if row == 0 { 0.0 } else { diag / row as f64 };
    }
    EvalReport {
        confusion,
        accuracy: if n == 0 { 0.0 } else { forest_hits as f64 / n as f64 },
        centroid_accuracy: if n == 0 { 0.0 } else { centroid_hits as f64 / n as f64 },
        per_class,
        train_count: dataset.train.len(),
        test_count: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Sample;
    use crate::features::FEATURE_COUNT;
    use sc_telemetry::record::JobId;

    fn separable(n: usize, start: usize) -> Vec<Sample> {
        (start..start + n)
            .map(|i| {
                let class = i % CLASSES;
                let mut features = [0.0; FEATURE_COUNT];
                features[1] = class as f64 + crate::hash_unit(i as u64) * 0.3;
                Sample { job_id: JobId(i as u64), label: WorkloadArchetype::ALL[class], features }
            })
            .collect()
    }

    #[test]
    fn perfect_classifier_scores_ones() {
        let ds = Dataset { train: separable(120, 0), test: separable(40, 1000) };
        let forest = Forest::train(&ds.train, 7, 3);
        let centroid = NearestCentroid::train(&ds.train);
        let report = evaluate(&forest, &centroid, &ds);
        assert_eq!(report.accuracy, 1.0, "{:?}", report.confusion);
        assert_eq!(report.centroid_accuracy, 1.0);
        for s in report.per_class {
            assert_eq!((s.precision, s.recall), (1.0, 1.0));
        }
        let total: u64 = report.confusion.iter().flatten().sum();
        assert_eq!(total, 40);
    }

    #[test]
    fn fig_conversion_carries_labels_and_counts() {
        let ds = Dataset { train: separable(80, 0), test: separable(20, 500) };
        let forest = Forest::train(&ds.train, 3, 1);
        let centroid = NearestCentroid::train(&ds.train);
        let fig = evaluate(&forest, &centroid, &ds).to_fig();
        assert_eq!(fig.labels.len(), CLASSES);
        assert!(fig.labels.contains(&"cnn-periodic".to_string()));
        assert_eq!((fig.train_count, fig.test_count), (80, 20));
        assert!(fig.render().contains("Workload classification"));
        assert!(fig.to_svg().starts_with("<svg"));
    }
}
