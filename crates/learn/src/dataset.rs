//! Deterministic labeled dataset construction from a synthesized trace.
//!
//! Every GPU job in a trace carries a hidden ground-truth archetype;
//! this module samples a bounded subset of them, extracts features in
//! parallel (index-ordered, so byte-identical at any `SC_PAR_THREADS`
//! budget), and splits train/test. Both the subsample and the split
//! hash off each job's `truth_seed` — pure functions of the job, so
//! the same trace always yields the same dataset, independent of
//! iteration order, thread budget, or any RNG stream.

use sc_telemetry::record::JobId;
use sc_workload::{JobSpec, Trace, WorkloadArchetype};

use crate::features::{job_features, FEATURE_COUNT};
use crate::{hash_unit, ClassifierConfig};

/// Salt for the keep/drop subsampling hash.
const SUBSAMPLE_SALT: u64 = 0xc1a5_51f1_0000_0001;
/// Salt for the train/test split hash.
const SPLIT_SALT: u64 = 0xc1a5_51f1_0000_0002;

/// One labeled job: its hidden archetype and extracted features.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// The job the sample came from.
    pub job_id: JobId,
    /// Ground-truth archetype (the label).
    pub label: WorkloadArchetype,
    /// Extracted feature vector (see [`crate::features::FEATURE_NAMES`]).
    pub features: [f64; FEATURE_COUNT],
}

/// A deterministic train/test split of labeled samples.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Dataset {
    /// Training samples.
    pub train: Vec<Sample>,
    /// Held-out evaluation samples.
    pub test: Vec<Sample>,
}

impl Dataset {
    /// Total samples across both splits.
    pub fn len(&self) -> usize {
        self.train.len() + self.test.len()
    }

    /// Whether the dataset holds no samples at all.
    pub fn is_empty(&self) -> bool {
        self.train.is_empty() && self.test.is_empty()
    }

    /// Per-class sample counts over both splits, in archetype-index
    /// order.
    pub fn class_counts(&self) -> [usize; WorkloadArchetype::ALL.len()] {
        let mut counts = [0usize; WorkloadArchetype::ALL.len()];
        for s in self.train.iter().chain(&self.test) {
            counts[s.label.index()] += 1;
        }
        counts
    }
}

/// Builds the labeled dataset for `trace`: deterministic subsample to
/// at most [`max_jobs`](ClassifierConfig::max_jobs) labeled GPU jobs,
/// parallel feature extraction, hash-based train/test split.
pub fn build_dataset(trace: &Trace, cfg: &ClassifierConfig) -> Dataset {
    let candidates: Vec<&JobSpec> =
        trace.jobs().iter().filter(|j| j.archetype.is_some() && j.truth_params.is_some()).collect();
    if candidates.is_empty() {
        return Dataset::default();
    }
    let keep_prob = (cfg.max_jobs as f64 / candidates.len() as f64).min(1.0);
    let selected: Vec<&JobSpec> = candidates
        .into_iter()
        .filter(|j| hash_unit(j.truth_seed ^ SUBSAMPLE_SALT) < keep_prob)
        .collect();
    let features = sc_par::par_map(&selected, |j| job_features(j, cfg));
    let mut out = Dataset::default();
    for (job, feats) in selected.iter().zip(features) {
        let Some(features) = feats else { continue };
        let sample = Sample {
            job_id: job.job_id,
            label: job.archetype.expect("candidates were filtered on archetype"),
            features,
        };
        if hash_unit(job.truth_seed ^ SPLIT_SALT) < cfg.train_fraction {
            out.train.push(sample);
        } else {
            out.test.push(sample);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_workload::WorkloadSpec;

    fn small_trace() -> Trace {
        Trace::generate(&WorkloadSpec::supercloud().scaled(0.004), 9)
    }

    #[test]
    fn dataset_is_deterministic_and_split_matches_fraction() {
        let trace = small_trace();
        let cfg = ClassifierConfig { max_jobs: 200, ..Default::default() };
        let a = build_dataset(&trace, &cfg);
        let b = build_dataset(&trace, &cfg);
        assert_eq!(a, b, "same trace and config must give the same dataset");
        assert!(!a.is_empty());
        assert!(a.len() <= 260, "subsample respects the cap (with hash slack): {}", a.len());
        let frac = a.train.len() as f64 / a.len() as f64;
        assert!((frac - 0.7).abs() < 0.12, "train fraction {frac} far from 0.7");
    }

    #[test]
    fn every_archetype_is_represented() {
        let trace = small_trace();
        let ds = build_dataset(&trace, &ClassifierConfig::default());
        let counts = ds.class_counts();
        assert!(counts.iter().all(|c| *c > 0), "missing classes: {counts:?}");
    }

    #[test]
    fn max_jobs_bounds_the_sample() {
        let trace = small_trace();
        let all = build_dataset(&trace, &ClassifierConfig::default());
        let capped =
            build_dataset(&trace, &ClassifierConfig { max_jobs: 50, ..Default::default() });
        assert!(capped.len() < all.len());
        assert!(capped.len() <= 80, "{}", capped.len());
    }
}
