//! Per-user aggregate statistics shared by Figs. 10–12 and 17.

use crate::view::{views_by_user, GpuJobView};
use sc_stats::coefficient_of_variation;
use sc_telemetry::record::UserId;
use sc_workload::LifecycleClass;
use serde::{Deserialize, Serialize};

/// One user's aggregate behaviour over their GPU jobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserStats {
    /// The user.
    pub user: UserId,
    /// Number of analyzed GPU jobs.
    pub jobs: usize,
    /// Total GPU hours consumed.
    pub gpu_hours: f64,
    /// Largest GPU count across the user's jobs.
    pub max_gpus: u32,
    /// Average job run time, minutes.
    pub avg_runtime_min: f64,
    /// Average job-mean SM utilization, %.
    pub avg_sm: f64,
    /// Average job-mean memory utilization, %.
    pub avg_mem: f64,
    /// Average job-mean memory-size utilization, %.
    pub avg_mem_size: f64,
    /// CoV (%) of run times across the user's jobs (`None` for users
    /// with a single job).
    pub cov_runtime: Option<f64>,
    /// CoV (%) of SM utilization across jobs.
    pub cov_sm: Option<f64>,
    /// CoV (%) of memory utilization across jobs.
    pub cov_mem: Option<f64>,
    /// CoV (%) of memory-size utilization across jobs.
    pub cov_mem_size: Option<f64>,
    /// Job-count mix over lifecycle classes, [`LifecycleClass::ALL`]
    /// order; sums to 1.
    pub class_job_mix: [f64; 4],
    /// GPU-hour mix over lifecycle classes; sums to 1 (all zeros for a
    /// user with zero GPU hours, which cannot happen post-filter).
    pub class_hours_mix: [f64; 4],
}

/// Computes per-user statistics from the job views, ordered by user id.
///
/// Per-user reductions are independent, so they run on the `sc-par`
/// thread budget; the `BTreeMap` grouping fixes the user order before
/// the parallel stage, keeping the output identical at any thread
/// count.
pub fn user_stats(views: &[GpuJobView<'_>]) -> Vec<UserStats> {
    let groups: Vec<_> = views_by_user(views).into_iter().collect();
    sc_par::par_map(&groups, |(user, jobs)| user_stats_for(*user, jobs))
}

/// One user's reduction (the `par_map` work item).
fn user_stats_for(user: UserId, jobs: &[&GpuJobView<'_>]) -> UserStats {
    let n = jobs.len() as f64;
    let runtimes: Vec<f64> = jobs.iter().map(|v| v.run_minutes()).collect();
    let sm: Vec<f64> = jobs.iter().map(|v| v.agg.sm_util.mean).collect();
    let mem: Vec<f64> = jobs.iter().map(|v| v.agg.mem_util.mean).collect();
    let msz: Vec<f64> = jobs.iter().map(|v| v.agg.mem_size_util.mean).collect();
    let cov = |data: &[f64]| {
        if data.len() < 2 {
            None
        } else {
            coefficient_of_variation(data).ok()
        }
    };
    let mut class_jobs = [0.0; 4];
    let mut class_hours = [0.0; 4];
    let mut gpu_hours = 0.0;
    let mut max_gpus = 0;
    for v in jobs {
        let idx = LifecycleClass::ALL.iter().position(|c| *c == v.class).expect("known");
        class_jobs[idx] += 1.0;
        class_hours[idx] += v.gpu_hours();
        gpu_hours += v.gpu_hours();
        max_gpus = max_gpus.max(v.sched.gpus_requested);
    }
    for c in &mut class_jobs {
        *c /= n;
    }
    if gpu_hours > 0.0 {
        for c in &mut class_hours {
            *c /= gpu_hours;
        }
    }
    UserStats {
        user,
        jobs: jobs.len(),
        gpu_hours,
        max_gpus,
        avg_runtime_min: runtimes.iter().sum::<f64>() / n,
        avg_sm: sm.iter().sum::<f64>() / n,
        avg_mem: mem.iter().sum::<f64>() / n,
        avg_mem_size: msz.iter().sum::<f64>() / n,
        cov_runtime: cov(&runtimes),
        cov_sm: cov(&sm),
        cov_mem: cov(&mem),
        cov_mem_size: cov(&msz),
        class_job_mix: class_jobs,
        class_hours_mix: class_hours,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testsupport::small_views;

    #[test]
    fn mixes_are_normalized() {
        let views = small_views();
        let stats = user_stats(&views);
        assert!(!stats.is_empty());
        for s in &stats {
            let j: f64 = s.class_job_mix.iter().sum();
            assert!((j - 1.0).abs() < 1e-9, "job mix sums to {j}");
            let h: f64 = s.class_hours_mix.iter().sum();
            assert!((h - 1.0).abs() < 1e-9 || h == 0.0);
            assert!(s.jobs > 0);
            assert!(s.gpu_hours > 0.0);
        }
    }

    #[test]
    fn job_counts_partition_views() {
        let views = small_views();
        let stats = user_stats(&views);
        let total: usize = stats.iter().map(|s| s.jobs).sum();
        assert_eq!(total, views.len());
    }

    #[test]
    fn single_job_users_have_no_cov() {
        let views = small_views();
        for s in user_stats(&views) {
            if s.jobs == 1 {
                assert_eq!(s.cov_runtime, None);
            } else {
                assert!(s.cov_runtime.is_some());
            }
        }
    }
}
