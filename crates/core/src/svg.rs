//! Minimal, dependency-free SVG rendering for the paper's figures.
//!
//! The text tables of [`crate::AnalysisReport`] are authoritative; this
//! module draws the same series as standalone SVG files so the
//! reproduction can be *looked at* next to the paper. Only the chart
//! types the paper uses are implemented: line charts (ECDFs), bar
//! charts (bottlenecks, shares), and box plots.

use std::fmt::Write as _;

/// A line-series color cycle (color-blind-safe, paper-ish).
const COLORS: [&str; 6] = ["#1b6ca8", "#d1495b", "#3e8e41", "#8d6a9f", "#e28413", "#4a4a4a"];

/// Chart margins and canvas size.
const W: f64 = 560.0;
const H: f64 = 360.0;
const ML: f64 = 62.0;
const MR: f64 = 18.0;
const MT: f64 = 34.0;
const MB: f64 = 50.0;

fn esc(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

/// One named line series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// `(x, y)` points in data coordinates.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Builds a series.
    pub fn new(name: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series { name: name.into(), points }
    }
}

/// Axis scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Linear axis.
    Linear,
    /// Log-10 axis (positive data only; values are clamped to the
    /// smallest positive point).
    Log10,
}

fn nice_ticks(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    if hi <= lo {
        return vec![lo];
    }
    let span = hi - lo;
    let raw = span / n.max(1) as f64;
    let mag = 10f64.powf(raw.log10().floor());
    let norm = raw / mag;
    let step = if norm < 1.5 {
        1.0
    } else if norm < 3.0 {
        2.0
    } else if norm < 7.0 {
        5.0
    } else {
        10.0
    } * mag;
    let start = (lo / step).ceil() * step;
    let mut t = start;
    let mut out = Vec::new();
    while t <= hi + 1e-9 * span {
        out.push(t);
        t += step;
    }
    out
}

fn fmt_tick(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 10.0 {
        format!("{:.0}", v)
    } else if v.abs() >= 1.0 {
        format!("{:.1}", v)
    } else {
        format!("{:.2}", v)
    }
}

/// Renders a line chart (the ECDF workhorse) to an SVG string.
///
/// # Panics
///
/// Panics if every series is empty.
pub fn line_chart(
    title: &str,
    x_label: &str,
    y_label: &str,
    x_scale: Scale,
    series: &[Series],
) -> String {
    let pts: Vec<(f64, f64)> = series.iter().flat_map(|s| s.points.iter().copied()).collect();
    assert!(!pts.is_empty(), "line chart needs data");
    let min_pos = pts.iter().map(|p| p.0).filter(|x| *x > 0.0).fold(f64::INFINITY, f64::min);
    let tx = |x: f64| -> f64 {
        match x_scale {
            Scale::Linear => x,
            Scale::Log10 => x.max(min_pos).log10(),
        }
    };
    let x_lo = pts.iter().map(|p| tx(p.0)).fold(f64::INFINITY, f64::min);
    let x_hi = pts.iter().map(|p| tx(p.0)).fold(f64::NEG_INFINITY, f64::max);
    let y_lo = pts.iter().map(|p| p.1).fold(f64::INFINITY, f64::min).min(0.0);
    let y_hi = pts.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max).max(1e-9);
    let x_span = (x_hi - x_lo).max(1e-9);
    let y_span = (y_hi - y_lo).max(1e-9);
    let px = |x: f64| ML + (tx(x) - x_lo) / x_span * (W - ML - MR);
    let py = |y: f64| H - MB - (y - y_lo) / y_span * (H - MT - MB);

    let mut s = svg_header(title);
    // Axes.
    let _ = writeln!(
        s,
        r##"<line x1="{ML}" y1="{0}" x2="{1}" y2="{0}" stroke="#333"/><line x1="{ML}" y1="{MT}" x2="{ML}" y2="{0}" stroke="#333"/>"##,
        H - MB,
        W - MR
    );
    // X ticks.
    match x_scale {
        Scale::Linear => {
            for t in nice_ticks(x_lo, x_hi, 6) {
                let x = ML + (t - x_lo) / x_span * (W - ML - MR);
                let _ = writeln!(
                    s,
                    r##"<line x1="{x:.1}" y1="{0}" x2="{x:.1}" y2="{1}" stroke="#333"/><text x="{x:.1}" y="{2}" font-size="11" text-anchor="middle">{3}</text>"##,
                    H - MB,
                    H - MB + 5.0,
                    H - MB + 18.0,
                    fmt_tick(t)
                );
            }
        }
        Scale::Log10 => {
            let d0 = x_lo.floor() as i32;
            let d1 = x_hi.ceil() as i32;
            for d in d0..=d1 {
                let xv = d as f64;
                if xv < x_lo - 1e-9 || xv > x_hi + 1e-9 {
                    continue;
                }
                let x = ML + (xv - x_lo) / x_span * (W - ML - MR);
                let _ = writeln!(
                    s,
                    r##"<line x1="{x:.1}" y1="{0}" x2="{x:.1}" y2="{1}" stroke="#333"/><text x="{x:.1}" y="{2}" font-size="11" text-anchor="middle">{3}</text>"##,
                    H - MB,
                    H - MB + 5.0,
                    H - MB + 18.0,
                    fmt_tick(10f64.powi(d))
                );
            }
        }
    }
    // Y ticks.
    for t in nice_ticks(y_lo, y_hi, 5) {
        let y = py(t);
        let _ = writeln!(
            s,
            r##"<line x1="{0}" y1="{y:.1}" x2="{ML}" y2="{y:.1}" stroke="#333"/><text x="{1}" y="{2:.1}" font-size="11" text-anchor="end">{3}</text>"##,
            ML - 5.0,
            ML - 8.0,
            y + 4.0,
            fmt_tick(t)
        );
    }
    // Series.
    for (i, ser) in series.iter().enumerate() {
        if ser.points.is_empty() {
            continue;
        }
        let color = COLORS[i % COLORS.len()];
        let path: String = ser
            .points
            .iter()
            .map(|(x, y)| format!("{:.1},{:.1}", px(*x), py(*y)))
            .collect::<Vec<_>>()
            .join(" ");
        let _ = writeln!(
            s,
            r##"<polyline points="{path}" fill="none" stroke="{color}" stroke-width="1.8"/>"##
        );
        // Legend.
        let ly = MT + 14.0 * i as f64;
        let _ = writeln!(
            s,
            r##"<line x1="{0}" y1="{ly:.1}" x2="{1}" y2="{ly:.1}" stroke="{color}" stroke-width="2.5"/><text x="{2}" y="{3:.1}" font-size="11">{4}</text>"##,
            W - MR - 120.0,
            W - MR - 100.0,
            W - MR - 94.0,
            ly + 4.0,
            esc(&ser.name)
        );
    }
    axis_labels(&mut s, x_label, y_label);
    s.push_str("</svg>\n");
    s
}

/// Renders a labeled bar chart.
///
/// # Panics
///
/// Panics if `bars` is empty.
pub fn bar_chart(title: &str, y_label: &str, bars: &[(String, f64)]) -> String {
    assert!(!bars.is_empty(), "bar chart needs data");
    let y_hi = bars.iter().map(|b| b.1).fold(0.0f64, f64::max).max(1e-9);
    let mut s = svg_header(title);
    let n = bars.len() as f64;
    let bw = (W - ML - MR) / n * 0.64;
    for (i, (label, v)) in bars.iter().enumerate() {
        let cx = ML + (i as f64 + 0.5) / n * (W - ML - MR);
        let h = v / y_hi * (H - MT - MB);
        let _ = writeln!(
            s,
            r##"<rect x="{0:.1}" y="{1:.1}" width="{bw:.1}" height="{h:.1}" fill="{2}"/><text x="{cx:.1}" y="{3}" font-size="10" text-anchor="middle">{4}</text><text x="{cx:.1}" y="{5:.1}" font-size="10" text-anchor="middle">{6}</text>"##,
            cx - bw / 2.0,
            H - MB - h,
            COLORS[i % COLORS.len()],
            H - MB + 14.0,
            esc(label),
            H - MB - h - 4.0,
            fmt_tick(*v)
        );
    }
    let _ = writeln!(
        s,
        r##"<line x1="{ML}" y1="{0}" x2="{1}" y2="{0}" stroke="#333"/>"##,
        H - MB,
        W - MR
    );
    axis_labels(&mut s, "", y_label);
    s.push_str("</svg>\n");
    s
}

/// A box glyph: `(whisker_low, q1, median, q3, whisker_high)`.
pub type BoxGlyph = (f64, f64, f64, f64, f64);

/// Renders grouped box plots from `(label, glyph)` rows.
///
/// # Panics
///
/// Panics if `boxes` is empty.
pub fn box_chart(title: &str, y_label: &str, boxes: &[(String, BoxGlyph)]) -> String {
    assert!(!boxes.is_empty(), "box chart needs data");
    let y_hi = boxes.iter().map(|b| b.1 .4).fold(0.0f64, f64::max).max(1e-9);
    let py = |y: f64| H - MB - y.max(0.0) / y_hi * (H - MT - MB);
    let mut s = svg_header(title);
    let n = boxes.len() as f64;
    let bw = (W - ML - MR) / n * 0.4;
    for (i, (label, (wl, q1, med, q3, wh))) in boxes.iter().enumerate() {
        let cx = ML + (i as f64 + 0.5) / n * (W - ML - MR);
        let color = COLORS[i % COLORS.len()];
        let _ = writeln!(
            s,
            r##"<line x1="{cx:.1}" y1="{0:.1}" x2="{cx:.1}" y2="{1:.1}" stroke="{color}"/><rect x="{2:.1}" y="{3:.1}" width="{bw:.1}" height="{4:.1}" fill="none" stroke="{color}" stroke-width="1.6"/><line x1="{2:.1}" y1="{5:.1}" x2="{6:.1}" y2="{5:.1}" stroke="{color}" stroke-width="2.2"/><text x="{cx:.1}" y="{7}" font-size="10" text-anchor="middle">{8}</text>"##,
            py(*wl),
            py(*wh),
            cx - bw / 2.0,
            py(*q3),
            (py(*q1) - py(*q3)).max(0.5),
            py(*med),
            cx + bw / 2.0,
            H - MB + 14.0,
            esc(label)
        );
    }
    for t in nice_ticks(0.0, y_hi, 5) {
        let y = py(t);
        let _ = writeln!(
            s,
            r##"<line x1="{0}" y1="{y:.1}" x2="{ML}" y2="{y:.1}" stroke="#333"/><text x="{1}" y="{2:.1}" font-size="11" text-anchor="end">{3}</text>"##,
            ML - 5.0,
            ML - 8.0,
            y + 4.0,
            fmt_tick(t)
        );
    }
    let _ = writeln!(
        s,
        r##"<line x1="{ML}" y1="{0}" x2="{1}" y2="{0}" stroke="#333"/>"##,
        H - MB,
        W - MR
    );
    axis_labels(&mut s, "", y_label);
    s.push_str("</svg>\n");
    s
}

fn svg_header(title: &str) -> String {
    format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{W}\" height=\"{H}\" \
         viewBox=\"0 0 {W} {H}\" font-family=\"sans-serif\">\n\
         <rect width=\"{W}\" height=\"{H}\" fill=\"white\"/>\n\
         <text x=\"{}\" y=\"20\" font-size=\"14\" text-anchor=\"middle\" font-weight=\"bold\">{}</text>\n",
        W / 2.0,
        esc(title)
    )
}

fn axis_labels(s: &mut String, x_label: &str, y_label: &str) {
    if !x_label.is_empty() {
        let _ = writeln!(
            s,
            r##"<text x="{0}" y="{1}" font-size="12" text-anchor="middle">{2}</text>"##,
            (W + ML - MR) / 2.0,
            H - 12.0,
            esc(x_label)
        );
    }
    if !y_label.is_empty() {
        let _ = writeln!(
            s,
            r##"<text x="16" y="{0}" font-size="12" text-anchor="middle" transform="rotate(-90 16 {0})">{1}</text>"##,
            (H + MT - MB) / 2.0,
            esc(y_label)
        );
    }
}

/// Writes every figure of an [`crate::AnalysisReport`] as SVG files into
/// `dir` (created if missing). Returns the written paths.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_report_svgs(
    report: &crate::AnalysisReport,
    dir: &std::path::Path,
) -> std::io::Result<Vec<std::path::PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut written: Vec<std::path::PathBuf> = Vec::new();
    let mut save = |name: &str, content: String| -> std::io::Result<()> {
        let path = dir.join(name);
        std::fs::write(&path, content)?;
        written.push(path);
        Ok(())
    };

    let cdf = |e: &sc_stats::Ecdf, n: usize| e.curve(n);
    let log_cdf = |e: &sc_stats::Ecdf, n: usize| e.log_curve(n, 0.05);

    save(
        "fig03a_runtimes.svg",
        line_chart(
            "Fig. 3(a) — run-time ECDFs",
            "run time (min, log)",
            "fraction of jobs",
            Scale::Log10,
            &[
                Series::new("GPU jobs", log_cdf(&report.fig3.gpu_runtime_min, 64)),
                Series::new("CPU jobs", log_cdf(&report.fig3.cpu_runtime_min, 64)),
            ],
        ),
    )?;
    save(
        "fig03b_waits.svg",
        line_chart(
            "Fig. 3(b) — queue wait as % of service time",
            "wait % of service time",
            "fraction of jobs",
            Scale::Linear,
            &[
                Series::new("GPU jobs", cdf(&report.fig3.gpu_wait_pct, 64)),
                Series::new("CPU jobs", cdf(&report.fig3.cpu_wait_pct, 64)),
            ],
        ),
    )?;
    save(
        "fig04a_utilization.svg",
        line_chart(
            "Fig. 4(a) — utilization ECDFs",
            "job-mean utilization (%)",
            "fraction of jobs",
            Scale::Linear,
            &[
                Series::new("SM", cdf(&report.fig4.sm, 64)),
                Series::new("memory BW", cdf(&report.fig4.mem, 64)),
                Series::new("memory size", cdf(&report.fig4.mem_size, 64)),
            ],
        ),
    )?;
    save(
        "fig04b_pcie.svg",
        line_chart(
            "Fig. 4(b) — PCIe bandwidth ECDFs",
            "job-mean PCIe utilization (%)",
            "fraction of jobs",
            Scale::Linear,
            &[
                Series::new("Tx", cdf(&report.fig4.pcie_tx, 64)),
                Series::new("Rx", cdf(&report.fig4.pcie_rx, 64)),
            ],
        ),
    )?;
    save(
        "fig05a_sm_by_interface.svg",
        box_chart(
            "Fig. 5(a) — SM utilization by job type",
            "SM utilization (%)",
            &report
                .fig5
                .rows
                .iter()
                .map(|r| {
                    (
                        r.interface.to_string(),
                        (r.sm.whisker_low, r.sm.q1, r.sm.median, r.sm.q3, r.sm.whisker_high),
                    )
                })
                .collect::<Vec<_>>(),
        ),
    )?;
    save(
        "fig06a_active_share.svg",
        line_chart(
            "Fig. 6(a) — time in active phases",
            "active time (% of run)",
            "fraction of jobs",
            Scale::Linear,
            &[Series::new("jobs", cdf(&report.fig6.active_pct, 64))],
        ),
    )?;
    save(
        "fig06b_interval_cov.svg",
        line_chart(
            "Fig. 6(b) — interval-length CoV",
            "CoV (%)",
            "fraction of jobs",
            Scale::Linear,
            &[
                Series::new("idle intervals", cdf(&report.fig6.idle_cov, 64)),
                Series::new("active intervals", cdf(&report.fig6.active_cov, 64)),
            ],
        ),
    )?;
    save(
        "fig07b_bottlenecks.svg",
        bar_chart(
            "Fig. 7(b) — jobs bottlenecked per resource",
            "fraction of jobs",
            &report.fig7.bottlenecks.iter().map(|(r, f)| (r.to_string(), *f)).collect::<Vec<_>>(),
        ),
    )?;
    save(
        "fig09a_power.svg",
        line_chart(
            "Fig. 9(a) — GPU power ECDFs",
            "power (W)",
            "fraction of jobs",
            Scale::Linear,
            &[
                Series::new("average", cdf(&report.fig9.avg_power, 64)),
                Series::new("maximum", cdf(&report.fig9.max_power, 64)),
            ],
        ),
    )?;
    save(
        "fig13a_sizes.svg",
        bar_chart(
            "Fig. 13 — job sizes",
            "fraction of jobs",
            &report
                .fig13
                .rows
                .iter()
                .map(|r| (r.bucket.label().to_string(), r.job_share))
                .collect::<Vec<_>>(),
        ),
    )?;
    save(
        "fig15_lifecycle.svg",
        bar_chart(
            "Fig. 15 — GPU-hour share by life-cycle class",
            "fraction of GPU hours",
            &report
                .fig15
                .shares
                .iter()
                .map(|c| (c.class.to_string(), c.hours_share))
                .collect::<Vec<_>>(),
        ),
    )?;
    save(
        "fig16a_sm_by_class.svg",
        box_chart(
            "Fig. 16(a) — SM utilization by life-cycle class",
            "SM utilization (%)",
            &report
                .fig16
                .rows
                .iter()
                .map(|r| {
                    (
                        r.class.to_string(),
                        (r.sm.whisker_low, r.sm.q1, r.sm.median, r.sm.q3, r.sm.whisker_high),
                    )
                })
                .collect::<Vec<_>>(),
        ),
    )?;
    save(
        "goodput_ledger.svg",
        bar_chart("Goodput — where allocated GPU-hours went", "GPU-hours", &{
            let g = &report.goodput;
            let mut bars = vec![
                ("useful".to_string(), g.useful_gpu_hours),
                ("lost".to_string(), g.lost_gpu_hours),
                ("idle".to_string(), g.idle_gpu_hours),
            ];
            bars.extend(
                g.by_cause.iter().map(|r| (format!("lost: {}", r.cause), r.lost_gpu_hours)),
            );
            bars
        }),
    )?;
    save(
        "cluster_timeline.svg",
        line_chart(
            "ClusterTimeline — cluster state over the run",
            "time (days)",
            "count",
            Scale::Linear,
            &report
                .timeline
                .curves()
                .into_iter()
                .map(|(name, points)| Series::new(name, points))
                .collect::<Vec<_>>(),
        ),
    )?;
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_well_formed(svg: &str) {
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<svg").count(), 1);
        for tag in ["polyline", "rect", "line", "text"] {
            let open = svg.matches(&format!("<{tag}")).count();
            let closed = svg.matches(&format!("<{tag} ")).count();
            assert_eq!(open, closed, "tag {tag} malformed");
        }
    }

    #[test]
    fn line_chart_renders_all_series() {
        let svg = line_chart(
            "t",
            "x",
            "y",
            Scale::Linear,
            &[
                Series::new("a", vec![(0.0, 0.0), (1.0, 0.5), (2.0, 1.0)]),
                Series::new("b", vec![(0.0, 0.2), (2.0, 0.9)]),
            ],
        );
        is_well_formed(&svg);
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains(">a</text>") && svg.contains(">b</text>"));
    }

    #[test]
    fn log_scale_handles_wide_ranges() {
        let pts: Vec<(f64, f64)> =
            (0..50).map(|i| (10f64.powf(i as f64 / 10.0), i as f64 / 50.0)).collect();
        let svg = line_chart("t", "x", "y", Scale::Log10, &[Series::new("s", pts)]);
        is_well_formed(&svg);
        assert!(svg.contains("100")); // decade tick
    }

    #[test]
    fn bar_chart_draws_one_rect_per_bar() {
        let bars = vec![("SM".to_string(), 0.22), ("Mem".to_string(), 0.001)];
        let svg = bar_chart("t", "y", &bars);
        is_well_formed(&svg);
        assert_eq!(svg.matches("<rect").count(), 1 + 2); // background + bars
    }

    #[test]
    fn box_chart_orders_glyphs() {
        let boxes = vec![("mature".to_string(), (1.0, 10.0, 21.0, 45.0, 90.0))];
        let svg = box_chart("t", "y", &boxes);
        is_well_formed(&svg);
        assert!(svg.contains("mature"));
    }

    #[test]
    fn titles_are_escaped() {
        let svg = bar_chart("a<b&c", "y", &[("x".into(), 1.0)]);
        assert!(svg.contains("a&lt;b&amp;c"));
    }

    #[test]
    fn write_report_svgs_produces_files() {
        let report = crate::AnalysisReport::from_sim(crate::testsupport::small_sim());
        let dir = std::env::temp_dir().join("sc_svg_test");
        let files = write_report_svgs(&report, &dir).expect("svg files written");
        assert!(files.len() >= 11);
        for f in &files {
            let content = std::fs::read_to_string(f).expect("readable");
            assert!(content.starts_with("<svg"), "{f:?}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
