//! Lifecycle classification — the paper's primary methodological
//! contribution (Sec. VI).
//!
//! "This study is the first work to classify the deep learning jobs in
//! mature and non-mature jobs." The classification is *observational*:
//! it reads only what the scheduler log records (exit status and
//! submission interface), never the generator's hidden class label.

use sc_telemetry::record::{ExitStatus, SchedulerRecord, SubmissionInterface};
use sc_workload::LifecycleClass;

/// Classifies a finished job into its development-life-cycle stage.
///
/// The mapping mirrors Sec. VI:
///
/// - exit 0 → **mature** ("these jobs are completed with a zero exit
///   code");
/// - cancelled by the user → **exploratory** ("terminated by the user
///   before completion as they deem the jobs to be suboptimal");
/// - non-zero exit → **development** ("run while the algorithm is being
///   developed and the code is being debugged");
/// - timeout on the interactive interface → **IDE** ("interactive jobs
///   that run for a long time and timeout");
/// - timeout elsewhere → **development** (a batch job that overran its
///   limit is still unfinished work);
/// - node failure → **development** (indistinguishable from a crash in
///   the accounting log; <0.5% of jobs).
///
/// # Example
///
/// ```
/// use sc_core::classify::classify_exit;
/// use sc_telemetry::{ExitStatus, SubmissionInterface};
/// use sc_workload::LifecycleClass;
///
/// let class = classify_exit(ExitStatus::Timeout, SubmissionInterface::Interactive);
/// assert_eq!(class, LifecycleClass::Ide);
/// ```
pub fn classify_exit(exit: ExitStatus, interface: SubmissionInterface) -> LifecycleClass {
    match exit {
        ExitStatus::Completed => LifecycleClass::Mature,
        ExitStatus::Cancelled => LifecycleClass::Exploratory,
        ExitStatus::Failed => LifecycleClass::Development,
        ExitStatus::Timeout => {
            if interface == SubmissionInterface::Interactive {
                LifecycleClass::Ide
            } else {
                LifecycleClass::Development
            }
        }
        ExitStatus::NodeFailure => LifecycleClass::Development,
    }
}

/// Classifies a scheduler record.
pub fn classify_record(record: &SchedulerRecord) -> LifecycleClass {
    classify_exit(record.exit, record.interface)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_telemetry::record::{JobId, UserId};

    #[test]
    fn truth_table() {
        use ExitStatus::*;
        use SubmissionInterface::*;
        assert_eq!(classify_exit(Completed, Other), LifecycleClass::Mature);
        assert_eq!(classify_exit(Completed, Interactive), LifecycleClass::Mature);
        assert_eq!(classify_exit(Cancelled, Batch), LifecycleClass::Exploratory);
        assert_eq!(classify_exit(Failed, Other), LifecycleClass::Development);
        assert_eq!(classify_exit(Timeout, Interactive), LifecycleClass::Ide);
        assert_eq!(classify_exit(Timeout, Batch), LifecycleClass::Development);
        assert_eq!(classify_exit(Timeout, Other), LifecycleClass::Development);
        assert_eq!(classify_exit(NodeFailure, Other), LifecycleClass::Development);
    }

    #[test]
    fn classification_is_total() {
        // Every (exit, interface) combination maps to some class without
        // panicking.
        let exits = [
            ExitStatus::Completed,
            ExitStatus::Cancelled,
            ExitStatus::Failed,
            ExitStatus::Timeout,
            ExitStatus::NodeFailure,
        ];
        for e in exits {
            for i in SubmissionInterface::ALL {
                let _ = classify_exit(e, i);
            }
        }
    }

    #[test]
    fn record_wrapper_matches_field_classification() {
        let r = SchedulerRecord {
            job_id: JobId(1),
            user: UserId(1),
            interface: SubmissionInterface::Interactive,
            gpus_requested: 1,
            cpus_requested: 4,
            mem_requested_gib: 16.0,
            submit_time: 0.0,
            start_time: 0.0,
            end_time: 43_200.0,
            time_limit: 43_200.0,
            exit: ExitStatus::Timeout,
        };
        assert_eq!(classify_record(&r), LifecycleClass::Ide);
    }
}
