//! Arrival-pattern analysis: diurnal rhythm and conference-deadline
//! surges.
//!
//! Sec. II: "The usage of the system often increases closer to the
//! deadlines of popular deep learning conferences like ICML and NeurIPS
//! and there are requests for increased allocations. We account for
//! this effect in our analysis." This module recovers both effects from
//! the scheduler log: the submissions-per-day series with its
//! deadline-window surge ratio, and the hour-of-day profile.

use sc_telemetry::dataset::Dataset;
use serde::{Deserialize, Serialize};

/// Seconds per day.
const DAY_SECS: f64 = 86_400.0;

/// Arrival-pattern statistics recovered from the trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrivalAnalysis {
    /// Submissions per day, day 0 first.
    pub daily: Vec<usize>,
    /// GPU-job submissions per day, day 0 first. The deadline surge is
    /// measured on this series: CPU campaign bursts land hundreds of
    /// jobs on a single arbitrary day (Fig. 3b behaviour), which would
    /// swamp a mean over all submissions.
    pub daily_gpu: Vec<usize>,
    /// Submissions per hour-of-day, hour 0 first (24 bins).
    pub hourly_profile: [usize; 24],
    /// Mean daily submissions.
    pub mean_daily: f64,
    /// Peak-day over mean-day ratio.
    pub peak_ratio: f64,
    /// Ratio of hour-of-day peak to trough (diurnal swing).
    pub diurnal_ratio: f64,
}

impl ArrivalAnalysis {
    /// Computes the analysis from the joined dataset's submit times.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn compute(dataset: &Dataset) -> Self {
        assert!(!dataset.records().is_empty(), "need jobs");
        let last_day = dataset
            .records()
            .iter()
            .map(|r| (r.sched.submit_time / DAY_SECS) as usize)
            .max()
            .expect("non-empty");
        let mut daily = vec![0usize; last_day + 1];
        let mut daily_gpu = vec![0usize; last_day + 1];
        let mut hourly = [0usize; 24];
        for r in dataset.records() {
            let t = r.sched.submit_time;
            let day = (t / DAY_SECS) as usize;
            daily[day] += 1;
            if r.sched.is_gpu_job() {
                daily_gpu[day] += 1;
            }
            hourly[((t % DAY_SECS) / 3_600.0) as usize % 24] += 1;
        }
        let mean_daily = daily.iter().sum::<usize>() as f64 / daily.len() as f64;
        let peak = daily.iter().copied().max().unwrap_or(0) as f64;
        let h_peak = hourly.iter().copied().max().unwrap_or(0) as f64;
        let h_trough = hourly.iter().copied().min().unwrap_or(0).max(1) as f64;
        ArrivalAnalysis {
            daily,
            daily_gpu,
            hourly_profile: hourly,
            mean_daily,
            peak_ratio: if mean_daily > 0.0 { peak / mean_daily } else { 0.0 },
            diurnal_ratio: h_peak / h_trough,
        }
    }

    /// Mean GPU-job submissions per day inside `±window` days of any
    /// deadline, relative to the mean outside — the surge factor.
    ///
    /// Measured on the GPU-only series because the deadline ramp drives
    /// interactive/training submissions; CPU campaigns arrive in
    /// planted bursts of hundreds of jobs on arbitrary days, and a
    /// single such day outside the window would otherwise swamp the
    /// outside mean.
    ///
    /// # Panics
    ///
    /// Panics if `deadline_days` is empty.
    pub fn deadline_surge(&self, deadline_days: &[f64], window: f64) -> f64 {
        assert!(!deadline_days.is_empty(), "need deadlines");
        let mut inside = Vec::new();
        let mut outside = Vec::new();
        for (day, &n) in self.daily_gpu.iter().enumerate() {
            let d = day as f64;
            if deadline_days.iter().any(|&dd| (d - dd).abs() <= window) {
                inside.push(n as f64);
            } else {
                outside.push(n as f64);
            }
        }
        let mean = |v: &[f64]| {
            if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<f64>() / v.len() as f64
            }
        };
        let out = mean(&outside).max(1e-9);
        mean(&inside) / out
    }

    /// Renders the analysis compactly.
    pub fn render(&self, deadline_days: &[f64]) -> String {
        let surge =
            if deadline_days.is_empty() { 1.0 } else { self.deadline_surge(deadline_days, 7.0) };
        let mut s = format!(
            "Arrival patterns:\n  mean submissions/day: {:.0}; peak day: {:.1}× mean\n  \
             diurnal peak/trough: {:.1}×\n  deadline-week surge: {:.2}× baseline\n  hourly profile:",
            self.mean_daily, self.peak_ratio, self.diurnal_ratio, surge
        );
        for (h, n) in self.hourly_profile.iter().enumerate() {
            if h % 6 == 0 {
                s.push_str(&format!("\n    {:02}:00", h));
            }
            s.push_str(&format!(" {n:>5}"));
        }
        s.push('\n');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testsupport::small_sim;

    #[test]
    fn daily_series_covers_trace_and_conserves_jobs() {
        let a = ArrivalAnalysis::compute(&small_sim().dataset);
        let total: usize = a.daily.iter().sum();
        assert_eq!(total, small_sim().dataset.records().len());
        assert!(a.daily.len() >= 100, "days {}", a.daily.len());
        let hourly_total: usize = a.hourly_profile.iter().sum();
        assert_eq!(hourly_total, total);
    }

    #[test]
    fn diurnal_rhythm_is_visible() {
        let a = ArrivalAnalysis::compute(&small_sim().dataset);
        // The generator's 0.55 diurnal amplitude must show up as a
        // clear peak/trough swing.
        assert!(a.diurnal_ratio > 1.5, "diurnal ratio {}", a.diurnal_ratio);
    }

    #[test]
    fn deadline_weeks_surge() {
        let a = ArrivalAnalysis::compute(&small_sim().dataset);
        // The spec plants deadlines at days 28 and 97 with a 1.1×
        // amplitude ramp; the surge factor must exceed baseline.
        let surge = a.deadline_surge(&[28.0, 97.0], 7.0);
        assert!(surge > 1.1, "deadline surge {surge}");
    }

    #[test]
    fn render_mentions_the_surge() {
        let a = ArrivalAnalysis::compute(&small_sim().dataset);
        let text = a.render(&[28.0, 97.0]);
        assert!(text.contains("deadline-week surge"));
        assert!(text.contains("hourly profile"));
    }
}
