//! The algorithm-development workflow of Fig. 2, recovered from the
//! trace.
//!
//! Fig. 2 sketches a typical user's interaction loop: design in an IDE
//! session → develop/debug → explore hyper-parameters → finalize
//! (mature), with back-edges everywhere. This module estimates that
//! workflow empirically as a Markov chain over consecutive jobs of the
//! same user: `P(next class | current class)`. The paper never fits
//! this chain, but its existence is the mechanism behind Sec. VI's
//! takeaways; exposing it makes the life-cycle story checkable.

use crate::view::{views_by_user, GpuJobView};
use sc_workload::LifecycleClass;
use serde::{Deserialize, Serialize};

/// A first-order Markov chain over lifecycle classes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkflowChain {
    /// `counts[i][j]`: transitions from class `i` to class `j`
    /// (indices in [`LifecycleClass::ALL`] order).
    pub counts: [[u64; 4]; 4],
    /// Number of users contributing transitions.
    pub users: usize,
}

impl WorkflowChain {
    /// Fits the chain from consecutive same-user jobs, ordered by
    /// submission (job ids are submission-ordered).
    ///
    /// # Panics
    ///
    /// Panics if `views` is empty.
    pub fn fit(views: &[GpuJobView<'_>]) -> Self {
        assert!(!views.is_empty(), "need jobs");
        let by_user = views_by_user(views);
        let idx = |c: LifecycleClass| {
            LifecycleClass::ALL.iter().position(|k| *k == c).expect("known class")
        };
        let mut counts = [[0u64; 4]; 4];
        let mut users = 0;
        for (_, mut jobs) in by_user {
            if jobs.len() < 2 {
                continue;
            }
            users += 1;
            jobs.sort_by_key(|v| v.sched.job_id);
            for w in jobs.windows(2) {
                counts[idx(w[0].class)][idx(w[1].class)] += 1;
            }
        }
        WorkflowChain { counts, users }
    }

    /// Row-normalized transition probability `P(to | from)`; `None` if
    /// the `from` class was never observed.
    pub fn probability(&self, from: LifecycleClass, to: LifecycleClass) -> Option<f64> {
        let idx = |c: LifecycleClass| {
            LifecycleClass::ALL.iter().position(|k| *k == c).expect("known class")
        };
        let row = &self.counts[idx(from)];
        let total: u64 = row.iter().sum();
        if total == 0 {
            None
        } else {
            Some(row[idx(to)] as f64 / total as f64)
        }
    }

    /// Probability of staying in the same class on the next job — the
    /// "campaign persistence" of each workflow stage.
    pub fn self_transition(&self, class: LifecycleClass) -> Option<f64> {
        self.probability(class, class)
    }

    /// The stationary distribution of the chain (power iteration), or
    /// `None` if some class was never left or entered.
    pub fn stationary(&self) -> Option<[f64; 4]> {
        // Build the row-stochastic matrix.
        let mut p = [[0.0f64; 4]; 4];
        for (row, counts) in p.iter_mut().zip(&self.counts) {
            let total: u64 = counts.iter().sum();
            if total == 0 {
                return None;
            }
            for (cell, &c) in row.iter_mut().zip(counts) {
                *cell = c as f64 / total as f64;
            }
        }
        let mut v = [0.25f64; 4];
        for _ in 0..500 {
            let mut next = [0.0f64; 4];
            for (j, n) in next.iter_mut().enumerate() {
                for (i, vi) in v.iter().enumerate() {
                    *n += vi * p[i][j];
                }
            }
            let norm: f64 = next.iter().sum();
            for n in &mut next {
                *n /= norm;
            }
            let delta: f64 = next.iter().zip(&v).map(|(a, b)| (a - b).abs()).sum();
            v = next;
            if delta < 1e-12 {
                break;
            }
        }
        Some(v)
    }

    /// Renders the transition matrix as text.
    pub fn render(&self) -> String {
        let mut s = String::from(
            "Fig. 2 workflow chain (P(next | current), fitted from consecutive same-user jobs):\n\
             \x20 from \\ to     mature  explor  devel   IDE\n",
        );
        for &from in &LifecycleClass::ALL {
            s.push_str(&format!("  {:<12}", from.to_string()));
            for &to in &LifecycleClass::ALL {
                match self.probability(from, to) {
                    Some(p) => s.push_str(&format!("  {:>5.2}", p)),
                    None => s.push_str("      -"),
                }
            }
            s.push('\n');
        }
        if let Some(st) = self.stationary() {
            s.push_str(&format!(
                "  stationary mix: mature {:.2}, exploratory {:.2}, development {:.2}, IDE {:.2}\n",
                st[0], st[1], st[2], st[3]
            ));
        }
        s.push_str(&format!("  ({} users with ≥2 jobs)\n", self.users));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testsupport::small_views;

    #[test]
    fn chain_rows_are_distributions() {
        let views = small_views();
        let chain = WorkflowChain::fit(&views);
        assert!(chain.users > 5);
        for &from in &LifecycleClass::ALL {
            let total: f64 =
                LifecycleClass::ALL.iter().filter_map(|&to| chain.probability(from, to)).sum();
            assert!(total == 0.0 || (total - 1.0).abs() < 1e-9, "row sums to {total}");
        }
    }

    #[test]
    fn campaigns_persist() {
        // User mixes are sticky (a tuning campaign produces runs of
        // exploratory jobs), so self-transitions beat the uniform 0.25
        // for the dominant class.
        let views = small_views();
        let chain = WorkflowChain::fit(&views);
        let mature_stay = chain.self_transition(LifecycleClass::Mature).expect("observed");
        assert!(mature_stay > 0.3, "P(mature→mature) = {mature_stay}");
    }

    #[test]
    fn stationary_matches_class_mix() {
        // The chain's stationary distribution must reproduce the
        // trace's job-class shares (it was fitted from them).
        let views = small_views();
        let chain = WorkflowChain::fit(&views);
        let st = chain.stationary().expect("all classes observed");
        let total = views.len() as f64;
        for (i, &class) in LifecycleClass::ALL.iter().enumerate() {
            let share = views.iter().filter(|v| v.class == class).count() as f64 / total;
            assert!((st[i] - share).abs() < 0.12, "{class}: stationary {} vs share {share}", st[i]);
        }
    }

    #[test]
    fn render_prints_matrix() {
        let views = small_views();
        let text = WorkflowChain::fit(&views).render();
        assert!(text.contains("from \\ to"));
        assert!(text.contains("stationary mix"));
    }
}
