//! Every quantitative claim the paper makes, as named constants.
//!
//! The experiment report compares each measured statistic against these.
//! Section/figure references are in the doc comments; values are exactly
//! as printed in the paper.

/// Sec. II — dataset funnel.
pub mod dataset {
    /// Study length in days.
    pub const DURATION_DAYS: f64 = 125.0;
    /// Unique users.
    pub const UNIQUE_USERS: usize = 191;
    /// Total jobs executed.
    pub const TOTAL_JOBS: usize = 74_820;
    /// GPU jobs after the 30-second filter.
    pub const ANALYZED_GPU_JOBS: usize = 47_120;
    /// Jobs in the 100 ms time-series subset.
    pub const DETAILED_SERIES_JOBS: usize = 2_149;
}

/// Fig. 3 — run times and queue waits.
pub mod fig3 {
    /// Median GPU-job run time, minutes.
    pub const GPU_RUNTIME_MEDIAN_MIN: f64 = 30.0;
    /// 25th-percentile GPU-job run time, minutes.
    pub const GPU_RUNTIME_P25_MIN: f64 = 4.0;
    /// 75th-percentile GPU-job run time, minutes.
    pub const GPU_RUNTIME_P75_MIN: f64 = 300.0;
    /// Median CPU-job run time, minutes.
    pub const CPU_RUNTIME_MEDIAN_MIN: f64 = 8.0;
    /// Fraction of GPU jobs spending <2% of service time queued.
    pub const GPU_WAIT_UNDER_2PCT_FRACTION: f64 = 0.50;
    /// Fraction of GPU jobs queued under one minute.
    pub const GPU_WAIT_UNDER_1MIN_FRACTION: f64 = 0.70;
    /// Fraction of CPU jobs queued over one minute.
    pub const CPU_WAIT_OVER_1MIN_FRACTION: f64 = 0.70;
}

/// Fig. 4 — GPU resource utilization CDFs.
pub mod fig4 {
    /// Median job-mean SM utilization, %.
    pub const SM_MEDIAN: f64 = 16.0;
    /// Median job-mean memory-bandwidth utilization, %.
    pub const MEM_MEDIAN: f64 = 2.0;
    /// Median job-mean memory-size utilization, %.
    pub const MEM_SIZE_MEDIAN: f64 = 9.0;
    /// Fraction of jobs above 50% SM utilization.
    pub const SM_ABOVE_50_FRACTION: f64 = 0.20;
    /// Fraction of jobs above 50% memory utilization.
    pub const MEM_ABOVE_50_FRACTION: f64 = 0.04;
    /// Fraction of jobs above 50% memory-size utilization.
    pub const MEM_SIZE_ABOVE_50_FRACTION: f64 = 0.15;
}

/// Sec. III — job-type mix (submission interfaces).
pub mod interfaces {
    /// Map-reduce share of all jobs.
    pub const MAP_REDUCE: f64 = 0.01;
    /// Batch share.
    pub const BATCH: f64 = 0.30;
    /// Interactive share.
    pub const INTERACTIVE: f64 = 0.04;
    /// Everything submitted via the general Slurm interface.
    pub const OTHER: f64 = 0.65;
}

/// Fig. 6 — active/idle phases.
pub mod fig6 {
    /// Median fraction of run time spent active.
    pub const ACTIVE_FRACTION_MEDIAN: f64 = 0.84;
    /// 25th-percentile active fraction.
    pub const ACTIVE_FRACTION_P25: f64 = 0.14;
    /// 75th-percentile active fraction.
    pub const ACTIVE_FRACTION_P75: f64 = 0.95;
    /// Median CoV of idle-interval lengths, %.
    pub const IDLE_INTERVAL_COV_MEDIAN: f64 = 126.0;
    /// Median CoV of active-interval lengths, %.
    pub const ACTIVE_INTERVAL_COV_MEDIAN: f64 = 169.0;
}

/// Fig. 7 — within-run utilization variability and bottlenecks.
pub mod fig7 {
    /// Median CoV of SM utilization during active phases, %.
    pub const SM_COV_MEDIAN: f64 = 14.0;
    /// Median CoV of memory utilization, %.
    pub const MEM_COV_MEDIAN: f64 = 14.6;
    /// Median CoV of memory-size utilization, %.
    pub const MEM_SIZE_COV_MEDIAN: f64 = 8.2;
    /// Fraction of jobs with SM-utilization CoV of 23% or higher.
    pub const SM_COV_ABOVE_23_FRACTION: f64 = 0.25;
    /// Fraction of jobs bottlenecked on SM (max hit 100%).
    pub const SM_BOTTLENECK_FRACTION: f64 = 0.22;
    /// Fraction of jobs bottlenecked on memory bandwidth (≈ 0).
    pub const MEM_BOTTLENECK_FRACTION: f64 = 0.0;
}

/// Fig. 8 — multi-resource bottlenecks.
pub mod fig8 {
    /// Fraction of jobs with both PCIe-Rx and SM bottlenecks.
    pub const RX_AND_SM_FRACTION: f64 = 0.09;
    /// Upper bound on any two-resource bottleneck combination.
    pub const ANY_PAIR_MAX_FRACTION: f64 = 0.10;
}

/// Fig. 9 — power.
pub mod fig9 {
    /// Median job-average GPU power, watts.
    pub const AVG_POWER_MEDIAN_W: f64 = 45.0;
    /// Median job-maximum GPU power, watts.
    pub const MAX_POWER_MEDIAN_W: f64 = 87.0;
    /// V100 maximum power draw, watts.
    pub const TDP_W: f64 = sc_telemetry::gpu_power::V100_TDP_W;
    /// Fraction of jobs unimpacted by a 150 W cap (even at max draw).
    pub const UNIMPACTED_AT_150W: f64 = 0.60;
    /// Fraction of jobs whose *average* draw exceeds 150 W.
    pub const AVG_IMPACTED_AT_150W: f64 = 0.10;
    /// The cap levels studied, watts.
    pub const CAP_LEVELS_W: [f64; 3] = [150.0, 200.0, 250.0];
}

/// Fig. 10 — per-user averages.
pub mod fig10 {
    /// Median (across users) of the average job run time, minutes.
    pub const USER_AVG_RUNTIME_MEDIAN_MIN: f64 = 392.0;
    /// 25th percentile of per-user average run time, minutes.
    pub const USER_AVG_RUNTIME_P25_MIN: f64 = 135.0;
    /// 75th percentile of per-user average run time, minutes.
    pub const USER_AVG_RUNTIME_P75_MIN: f64 = 823.0;
    /// Median per-user average SM utilization, %.
    pub const USER_AVG_SM_MEDIAN: f64 = 10.75;
    /// Median per-user average memory utilization, %.
    pub const USER_AVG_MEM_MEDIAN: f64 = 1.8;
    /// Median per-user average memory-size utilization, %.
    pub const USER_AVG_MEM_SIZE_MEDIAN: f64 = 11.2;
    /// Fraction of users with average SM utilization above 20%.
    pub const USER_SM_ABOVE_20_FRACTION: f64 = 0.32;
    /// Fraction of users with average memory utilization above 20%.
    pub const USER_MEM_ABOVE_20_FRACTION: f64 = 0.05;
}

/// Sec. IV — user concentration.
pub mod concentration {
    /// Median jobs submitted per user.
    pub const MEDIAN_JOBS_PER_USER: f64 = 36.0;
    /// Share of jobs from the top 5% of users.
    pub const TOP5_JOB_SHARE: f64 = 0.44;
    /// Share of jobs from the top 20% of users.
    pub const TOP20_JOB_SHARE: f64 = 0.832;
}

/// Fig. 11 — per-user variability.
pub mod fig11 {
    /// Median per-user CoV of job run times, %.
    pub const USER_RUNTIME_COV_MEDIAN: f64 = 155.0;
    /// 25th percentile (across users) of run-time CoV, % — "75% of the
    /// users have a job run time CoV of more than 86%".
    pub const USER_RUNTIME_COV_P25: f64 = 86.0;
    /// 75th percentile of run-time CoV, %.
    pub const USER_RUNTIME_COV_P75: f64 = 227.0;
    /// Median per-user CoV of SM utilization, %.
    pub const USER_SM_COV_MEDIAN: f64 = 121.0;
    /// Median per-user CoV of memory utilization, %.
    pub const USER_MEM_COV_MEDIAN: f64 = 182.0;
    /// Median per-user CoV of memory-size utilization, %.
    pub const USER_MEM_SIZE_COV_MEDIAN: f64 = 99.0;
}

/// Fig. 13 / Sec. V — multi-GPU jobs.
pub mod fig13 {
    /// Fraction of jobs on a single GPU.
    pub const SINGLE_GPU_FRACTION: f64 = 0.84;
    /// Fraction of jobs on more than two GPUs.
    pub const ABOVE_2_GPU_FRACTION: f64 = 0.024;
    /// Fraction of jobs on nine or more GPUs (< 1%).
    pub const NINE_PLUS_GPU_FRACTION: f64 = 0.01;
    /// Share of all GPU hours consumed by multi-GPU jobs.
    pub const MULTI_GPU_HOURS_SHARE: f64 = 0.50;
    /// Fraction of users who ran at least one multi-GPU job.
    pub const USERS_WITH_MULTI_GPU: f64 = 0.60;
    /// Fraction of users who ran jobs with at least three GPUs.
    pub const USERS_WITH_3_GPU: f64 = 0.13;
    /// Fraction of users who ran jobs with nine or more GPUs.
    pub const USERS_WITH_9_GPU: f64 = 0.052;
    /// Median queue wait of single-GPU jobs, seconds.
    pub const WAIT_1GPU_MEDIAN_S: f64 = 3.0;
    /// Median queue wait of 2-GPU jobs, seconds.
    pub const WAIT_2GPU_MEDIAN_S: f64 = 1.0;
    /// Philly baseline: single-GPU job share (Jeon et al., reference 23 of the paper).
    pub const PHILLY_SINGLE_GPU_FRACTION: f64 = 0.93;
    /// Philly baseline: share of jobs above four GPUs.
    pub const PHILLY_ABOVE_4_GPU_FRACTION: f64 = 0.025;
}

/// Fig. 14 — multi-GPU utilization balance.
pub mod fig14 {
    /// Fraction of multi-GPU jobs with very high cross-GPU CoV (driven
    /// by half-or-more idle GPUs).
    pub const HIGH_COV_FRACTION: f64 = 0.40;
    /// Fraction of multi-GPU jobs with little to no cross-GPU
    /// variability.
    pub const LOW_COV_FRACTION: f64 = 0.50;
}

/// Fig. 15 — lifecycle mix.
pub mod fig15 {
    /// Mature share of jobs.
    pub const MATURE_JOB_SHARE: f64 = 0.60;
    /// Exploratory share of jobs.
    pub const EXPLORATORY_JOB_SHARE: f64 = 0.18;
    /// Development share of jobs.
    pub const DEVELOPMENT_JOB_SHARE: f64 = 0.19;
    /// IDE share of jobs.
    pub const IDE_JOB_SHARE: f64 = 0.035;
    /// Mature share of GPU hours.
    pub const MATURE_HOURS_SHARE: f64 = 0.39;
    /// Exploratory share of GPU hours.
    pub const EXPLORATORY_HOURS_SHARE: f64 = 0.34;
    /// Development + IDE share of GPU hours.
    pub const DEV_IDE_HOURS_SHARE: f64 = 0.27;
    /// IDE share of GPU hours (3.5% of jobs consume 18%).
    pub const IDE_HOURS_SHARE: f64 = 0.18;
    /// Median mature-job run time, minutes.
    pub const MATURE_RUNTIME_MEDIAN_MIN: f64 = 36.0;
    /// Median exploratory-job run time, minutes.
    pub const EXPLORATORY_RUNTIME_MEDIAN_MIN: f64 = 62.0;
}

/// Fig. 16 — utilization by lifecycle class.
pub mod fig16 {
    /// Median SM utilization of mature jobs, %.
    pub const MATURE_SM_MEDIAN: f64 = 21.0;
    /// Median SM utilization of exploratory jobs, %.
    pub const EXPLORATORY_SM_MEDIAN: f64 = 15.0;
    /// Median SM utilization of development jobs, %.
    pub const DEVELOPMENT_SM_MEDIAN: f64 = 0.0;
    /// Median SM utilization of IDE jobs, %.
    pub const IDE_SM_MEDIAN: f64 = 0.0;
    /// p75 SM utilization of IDE jobs, % ("even the 75th percentile SM
    /// utilization of IDE jobs is 0%").
    pub const IDE_SM_P75: f64 = 0.0;
}

/// Fig. 17 — per-user lifecycle structure.
pub mod fig17 {
    /// Fraction of users whose mature-job share is below 40%.
    pub const USERS_MATURE_BELOW_40PCT: f64 = 0.50;
    /// Fraction of users for whom non-mature jobs consume over 60% of
    /// their GPU hours.
    pub const USERS_NONMATURE_HOURS_ABOVE_60PCT: f64 = 0.25;
}

/// Sec. II — operations.
pub mod operations {
    /// Hardware reliability: job failures attributable to hardware.
    pub const HARDWARE_FAILURE_FRACTION: f64 = 0.005;
}
