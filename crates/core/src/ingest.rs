//! The hardened ingest stage: detection, repair and quarantine of
//! collection faults, run *before* the analysis pipeline.
//!
//! The real pipeline joined a Slurm accounting log with per-job epilog
//! telemetry; both streams arrive dirty in production. This stage takes
//! a [`RawCollection`] (possibly produced by the seeded injector in
//! [`sc_telemetry::corruption`]) and emits an analysis-ready
//! [`Dataset`] plus an [`IngestReport`] whose ledger balances exactly:
//! every detected fault is either repaired or quarantined, and for
//! injector-produced streams `injected == detected` per class (the
//! injector only injects what these detectors define as detectable).
//!
//! Detection → repair mapping, per [`FaultClass`]:
//!
//! | class | detector | repair / quarantine |
//! |---|---|---|
//! | duplicate-record | same job id twice | drop copies; conflicting payloads quarantined |
//! | out-of-order | submit below running max | stable re-sort to `(submit, job_id)` |
//! | clock-skew | `start < submit` | translate forward so `start == submit` |
//! | truncated-epilog | NaN end time | reconstruct from the epilog sample count |
//! | missing-epilog | GPU job ≥ 30 s without telemetry | quarantine (kept, excluded from GPU analyses) |
//! | nan-power | non-finite power aggregate | impute via the linear V100 power model |
//! | power-spike | power max > 1.05 × TDP | clamp via the model from utilization maxima |
//! | dropped-window | interior NaN sample run | last-phase hold imputation |
//! | truncated-series | series shorter than the run | extend by holding the last sample |

use sc_obs::{Obs, Value};
use sc_stats::StatsError;
use sc_telemetry::corruption::{
    self, has_nan_power, has_power_spike, impute_power, is_missing, out_of_order_ids,
    records_equivalent, sort_canonical, CorruptionCounters, Corruptor, DataQualityProfile,
    FaultClass, RawCollection,
};
use sc_telemetry::dataset::{Dataset, MIN_GPU_JOB_RUNTIME_SECS};
use sc_telemetry::record::{GpuJobRecord, JobId, SchedulerRecord};
use sc_telemetry::sampler::{GpuSampler, GpuTimeSeries, GPU_SAMPLE_PERIOD_SECS};
use sc_telemetry::{phases, V100_IDLE_W, V100_TDP_W};
use sc_workload::{JobGroundTruth, TruthParams};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Typed ingest failures: the faults no repair strategy covers. These
/// abort the stage; everything else degrades to repair or quarantine.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DataQualityError {
    /// The scheduler stream is empty — there is nothing to analyze.
    EmptyCollection,
    /// A record's submit or start timestamp is non-finite; no repair
    /// strategy can anchor such a record on the timeline.
    CorruptTimestamp(JobId),
    /// A telemetry record references a job id absent from the
    /// scheduler stream — the join key itself is corrupt.
    OrphanTelemetry(JobId),
}

impl std::fmt::Display for DataQualityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DataQualityError::EmptyCollection => write!(f, "empty scheduler stream"),
            DataQualityError::CorruptTimestamp(id) => {
                write!(f, "non-finite submit/start timestamp on {id}")
            }
            DataQualityError::OrphanTelemetry(id) => {
                write!(f, "telemetry for {id} has no scheduler record")
            }
        }
    }
}

impl std::error::Error for DataQualityError {}

/// Per-record provenance: which fault classes touched a record on its
/// way through ingest. One bit per [`FaultClass`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Provenance(pub u16);

impl Provenance {
    /// Marks `class` as having touched the record.
    pub fn set(&mut self, class: FaultClass) {
        self.0 |= 1 << class.index();
    }

    /// Whether `class` touched the record.
    pub fn has(&self, class: FaultClass) -> bool {
        self.0 & (1 << class.index()) != 0
    }

    /// Whether any fault touched the record.
    pub fn is_clean(&self) -> bool {
        self.0 == 0
    }
}

impl std::fmt::Display for Provenance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_clean() {
            return f.write_str("clean");
        }
        let mut first = true;
        for class in FaultClass::ALL {
            if self.has(class) {
                if !first {
                    f.write_str("+")?;
                }
                f.write_str(class.label())?;
                first = false;
            }
        }
        Ok(())
    }
}

/// What happened to a quarantined fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QuarantineAction {
    /// The record could not be repaired and was dropped entirely.
    DroppedRecord,
    /// The record is kept but excluded from GPU analyses (its
    /// telemetry is gone).
    ExcludedFromGpuAnalysis,
    /// A duplicate copy with a conflicting payload was discarded in
    /// favor of the first-seen record.
    DroppedConflictingDuplicate,
}

impl QuarantineAction {
    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            QuarantineAction::DroppedRecord => "dropped-record",
            QuarantineAction::ExcludedFromGpuAnalysis => "excluded-from-gpu-analysis",
            QuarantineAction::DroppedConflictingDuplicate => "dropped-conflicting-duplicate",
        }
    }
}

impl std::fmt::Display for QuarantineAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One quarantined fault: the audit-trail row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuarantineEntry {
    /// The affected job.
    pub job_id: JobId,
    /// The fault class that triggered quarantine.
    pub class: FaultClass,
    /// What the quarantine path did.
    pub action: QuarantineAction,
}

/// The ingest ledger: what was detected, what was repaired, what was
/// quarantined, and which records carry provenance flags.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct IngestReport {
    /// Faults detected, per class.
    pub detected: CorruptionCounters,
    /// Faults repaired in place, per class.
    pub repaired: CorruptionCounters,
    /// Faults routed to quarantine, per class.
    pub quarantined: CorruptionCounters,
    /// The quarantine audit trail.
    pub quarantine: Vec<QuarantineEntry>,
    /// Provenance flags for every record a fault touched (job ids are
    /// unique after dedup; sorted for determinism).
    pub provenance: Vec<(JobId, Provenance)>,
    /// Scheduler records entering the stage.
    pub records_in: usize,
    /// Records surviving into the dataset.
    pub records_out: usize,
}

impl IngestReport {
    /// Whether the ledger balances against an injection ledger:
    /// `injected == detected == repaired + quarantined` for every
    /// fault class.
    pub fn balances_against(&self, injected: &CorruptionCounters) -> bool {
        FaultClass::ALL.iter().all(|&c| {
            injected.get(c) == self.detected.get(c)
                && self.detected.get(c) == self.repaired.get(c) + self.quarantined.get(c)
        })
    }

    /// Human-readable ledger table.
    pub fn render(&self) -> String {
        let mut s = String::from("ingest repair ledger\n");
        s.push_str(&format!(
            "  records: {} in -> {} out ({} dropped)\n",
            self.records_in,
            self.records_out,
            self.records_in - self.records_out
        ));
        s.push_str("  class              detected  repaired  quarantined\n");
        for class in FaultClass::ALL {
            if self.detected.get(class) == 0 {
                continue;
            }
            s.push_str(&format!(
                "  {:<18} {:>8}  {:>8}  {:>11}\n",
                class.label(),
                self.detected.get(class),
                self.repaired.get(class),
                self.quarantined.get(class)
            ));
        }
        s.push_str(&format!(
            "  total              {:>8}  {:>8}  {:>11}\n",
            self.detected.total(),
            self.repaired.total(),
            self.quarantined.total()
        ));
        s
    }
}

/// The ingest stage's output: an analysis-ready dataset plus its
/// repair ledger.
#[derive(Debug, Clone)]
pub struct IngestOutput {
    /// The repaired, joined, canonical-order dataset.
    pub dataset: Dataset,
    /// The repair ledger and audit trail.
    pub report: IngestReport,
}

/// Runs detection + repair + quarantine over a raw collection and
/// joins the surviving streams into an analysis-ready [`Dataset`].
///
/// Every repaired fault emits one `dq_repair` event and every
/// quarantined fault one `dq_quarantine` event on `obs`, so the event
/// stream is 1:1 with the ledger counters.
///
/// # Errors
///
/// Returns a [`DataQualityError`] for faults outside every repair
/// strategy: an empty stream, non-finite submit/start timestamps, or
/// telemetry whose join key matches no scheduler record.
pub fn ingest(raw: RawCollection, obs: &Obs) -> Result<IngestOutput, DataQualityError> {
    if raw.sched.is_empty() {
        return Err(DataQualityError::EmptyCollection);
    }
    let mut report = IngestReport { records_in: raw.sched.len(), ..Default::default() };
    let mut provenance: BTreeMap<JobId, Provenance> = BTreeMap::new();
    let mut sched = raw.sched;
    let mut gpu = raw.gpu;

    for rec in &sched {
        if !rec.submit_time.is_finite() || !rec.start_time.is_finite() {
            return Err(DataQualityError::CorruptTimestamp(rec.job_id));
        }
    }
    let known: HashSet<JobId> = sched.iter().map(|r| r.job_id).collect();
    if let Some(orphan) = gpu.iter().find(|g| !known.contains(&g.job_id)) {
        return Err(DataQualityError::OrphanTelemetry(orphan.job_id));
    }

    // Stage 1: out-of-order detection (running submit-time maximum,
    // the same definition the injector counts with), then the stable
    // re-sort to canonical `(submit, job_id)` order.
    let displaced = out_of_order_ids(&sched);
    let mut events: Vec<(f64, &'static str, JobId, FaultClass)> = Vec::new();
    for &id in &displaced {
        report.detected.record(FaultClass::OutOfOrder);
        report.repaired.record(FaultClass::OutOfOrder);
        provenance.entry(id).or_default().set(FaultClass::OutOfOrder);
        events.push((0.0, "dq_repair", id, FaultClass::OutOfOrder));
    }
    sort_canonical(&mut sched);
    gpu.sort_by_key(|g| g.job_id);

    // Stage 2: dedup by record identity. After the canonical sort,
    // copies of a job are adjacent; the first-seen record wins.
    let mut deduped: Vec<SchedulerRecord> = Vec::with_capacity(sched.len());
    for rec in sched {
        match deduped.last() {
            Some(prev) if prev.job_id == rec.job_id => {
                let class = FaultClass::DuplicateRecord;
                report.detected.record(class);
                provenance.entry(rec.job_id).or_default().set(class);
                if records_equivalent(prev, &rec) {
                    report.repaired.record(class);
                    events.push((rec.submit_time, "dq_repair", rec.job_id, class));
                } else {
                    report.quarantined.record(class);
                    report.quarantine.push(QuarantineEntry {
                        job_id: rec.job_id,
                        class,
                        action: QuarantineAction::DroppedConflictingDuplicate,
                    });
                    events.push((rec.submit_time, "dq_quarantine", rec.job_id, class));
                }
            }
            _ => deduped.push(rec),
        }
    }
    let mut sched = deduped;
    gpu.dedup_by(|a, b| a.job_id == b.job_id); // silent: counted on the sched side
    let mut gpu_by_id: HashMap<JobId, GpuJobRecord> =
        gpu.into_iter().map(|g| (g.job_id, g)).collect();

    // Stage 3: per-record timestamp repair.
    let mut kept: Vec<SchedulerRecord> = Vec::with_capacity(sched.len());
    for mut rec in sched.drain(..) {
        let id = rec.job_id;
        // Clock skew: a backwards node clock stamped start (and end)
        // earlier than the scheduler stamped submit. Translate the run
        // forward so start == submit; the run length is preserved, the
        // (unknowable) true queue wait collapses to zero.
        if rec.start_time < rec.submit_time - 1e-9 {
            let delta = rec.submit_time - rec.start_time;
            rec.start_time += delta;
            rec.end_time += delta; // NaN end stays NaN
            report.detected.record(FaultClass::ClockSkew);
            report.repaired.record(FaultClass::ClockSkew);
            provenance.entry(id).or_default().set(FaultClass::ClockSkew);
            events.push((rec.submit_time, "dq_repair", id, FaultClass::ClockSkew));
        }
        // Truncated epilog: the accounting end time never got stamped.
        // The epilog's sample count reconstructs the run length for
        // GPU jobs; CPU jobs have no second witness and are dropped.
        if rec.end_time.is_nan() {
            let class = FaultClass::TruncatedEpilog;
            report.detected.record(class);
            provenance.entry(id).or_default().set(class);
            let count = gpu_by_id
                .get(&id)
                .and_then(|g| g.per_gpu.first())
                .map(|a| a.sm_util.count)
                .unwrap_or(0);
            if count > 0 {
                rec.end_time = rec.start_time + count as f64 * GPU_SAMPLE_PERIOD_SECS;
                report.repaired.record(class);
                events.push((rec.submit_time, "dq_repair", id, class));
            } else {
                report.quarantined.record(class);
                report.quarantine.push(QuarantineEntry {
                    job_id: id,
                    class,
                    action: QuarantineAction::DroppedRecord,
                });
                events.push((rec.submit_time, "dq_quarantine", id, class));
                gpu_by_id.remove(&id);
                continue;
            }
        }
        kept.push(rec);
    }

    // Stage 4: power-sensor repair on the surviving telemetry.
    for rec in &kept {
        let Some(g) = gpu_by_id.get_mut(&rec.job_id) else { continue };
        if has_nan_power(g) {
            let class = FaultClass::NanPower;
            for agg in &mut g.per_gpu {
                agg.power_w = impute_power(agg);
            }
            report.detected.record(class);
            report.repaired.record(class);
            provenance.entry(rec.job_id).or_default().set(class);
            events.push((rec.submit_time, "dq_repair", rec.job_id, class));
        } else if has_power_spike(g) {
            let class = FaultClass::PowerSpike;
            for agg in &mut g.per_gpu {
                if agg.power_w.max > V100_TDP_W * 1.05 {
                    agg.power_w.max = impute_power(agg).max.max(agg.power_w.mean);
                }
            }
            report.detected.record(class);
            report.repaired.record(class);
            provenance.entry(rec.job_id).or_default().set(class);
            events.push((rec.submit_time, "dq_repair", rec.job_id, class));
        }
    }

    // Stage 5: missing epilogs. The record survives (its scheduler
    // facts are intact) but is excluded from GPU analyses downstream —
    // the dataset join marks it missing-telemetry.
    for rec in &kept {
        if is_gpu_analyzed(rec) && !gpu_by_id.contains_key(&rec.job_id) {
            let class = FaultClass::MissingEpilog;
            report.detected.record(class);
            report.quarantined.record(class);
            provenance.entry(rec.job_id).or_default().set(class);
            report.quarantine.push(QuarantineEntry {
                job_id: rec.job_id,
                class,
                action: QuarantineAction::ExcludedFromGpuAnalysis,
            });
            events.push((rec.submit_time, "dq_quarantine", rec.job_id, class));
        }
    }

    report.records_out = kept.len();
    report.provenance = provenance.into_iter().collect();
    if obs.events_on() {
        for (t, name, id, class) in events {
            obs.event(
                t,
                name,
                vec![("job", Value::U64(id.0)), ("class", Value::Str(class.label()))],
            );
        }
    }
    let gpu: Vec<GpuJobRecord> = kept.iter().filter_map(|r| gpu_by_id.remove(&r.job_id)).collect();
    let dataset = Dataset::join(kept, gpu);
    Ok(IngestOutput { dataset, report })
}

/// Whether a record belongs to the GPU-analysis population (the
/// paper's ≥ 30 s GPU-job filter) and therefore must carry telemetry.
fn is_gpu_analyzed(rec: &SchedulerRecord) -> bool {
    rec.is_gpu_job() && rec.run_time() >= MIN_GPU_JOB_RUNTIME_SECS
}

/// The outcome of repairing one detailed time series.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SeriesRepair {
    /// Faults detected (dropped windows, truncated tails).
    pub detected: CorruptionCounters,
    /// Faults repaired (all series faults are repairable).
    pub repaired: CorruptionCounters,
    /// Samples filled by last-phase hold inside dropped windows.
    pub imputed_samples: u64,
    /// Samples appended to reconstruct a truncated tail.
    pub appended_samples: u64,
}

/// Repairs a corrupted detailed series in place: interior NaN runs
/// (dropped collector windows) are filled by holding the last valid
/// sample — the *last-phase hold* — and a short series is extended to
/// `expected_len` by holding its final sample, reconstructing the tail
/// a killed collector lost. Leading NaN runs back-fill from the first
/// valid sample; a GPU with no valid samples at all is filled with
/// idle readings.
pub fn repair_series(series: &mut GpuTimeSeries, expected_len: usize) -> SeriesRepair {
    let mut out = SeriesRepair::default();
    for samples in &mut series.per_gpu {
        if samples.len() < expected_len {
            out.detected.record(FaultClass::TruncatedSeries);
            out.repaired.record(FaultClass::TruncatedSeries);
            let tail = samples
                .iter()
                .rev()
                .find(|s| !is_missing(s))
                .copied()
                .unwrap_or_else(|| sc_telemetry::GpuMetricSample::idle(V100_IDLE_W));
            out.appended_samples += (expected_len - samples.len()) as u64;
            samples.resize(expected_len, tail);
        }
        // Interior gap imputation: each maximal NaN run is one
        // detected dropped window.
        let mut last_valid: Option<sc_telemetry::GpuMetricSample> = None;
        let mut run_start: Option<usize> = None;
        for i in 0..samples.len() {
            if is_missing(&samples[i]) {
                if run_start.is_none() {
                    run_start = Some(i);
                    out.detected.record(FaultClass::DroppedWindow);
                    out.repaired.record(FaultClass::DroppedWindow);
                }
                if let Some(hold) = last_valid {
                    samples[i] = hold;
                    out.imputed_samples += 1;
                }
            } else {
                if let Some(start) = run_start.take() {
                    if last_valid.is_none() {
                        // Leading gap: back-fill from this first valid
                        // sample.
                        let fill = samples[i];
                        for s in &mut samples[start..i] {
                            *s = fill;
                            out.imputed_samples += 1;
                        }
                    }
                }
                last_valid = Some(samples[i]);
            }
        }
        if run_start.is_some() && last_valid.is_none() {
            // No valid sample anywhere: fall back to idle readings.
            for s in samples.iter_mut() {
                *s = sc_telemetry::GpuMetricSample::idle(V100_IDLE_W);
                out.imputed_samples += 1;
            }
        }
    }
    out
}

/// The series-level corrupt → repair round trip, measured: a fixed
/// panel of representative ground-truth processes is sampled, fed
/// through the injector's series faults, repaired, and compared
/// against its clean phase statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeriesStudy {
    /// Number of series in the panel.
    pub jobs: usize,
    /// Series faults injected.
    pub injected: CorruptionCounters,
    /// Series faults detected by the repairer.
    pub detected: CorruptionCounters,
    /// Series faults repaired.
    pub repaired: CorruptionCounters,
    /// Samples imputed by last-phase hold.
    pub imputed_samples: u64,
    /// Samples appended to reconstruct truncated tails.
    pub appended_samples: u64,
    /// Mean active fraction over the clean panel.
    pub mean_active_clean: f64,
    /// Mean active fraction over the recovered panel.
    pub mean_active_recovered: f64,
    /// Largest per-job |active-fraction delta| clean vs recovered.
    pub max_abs_active_delta: f64,
}

/// Runs the series-level round trip for `jobs` synthetic processes of
/// `duration_secs` sampled at `period_secs`.
///
/// # Errors
///
/// Propagates phase-analysis errors (practically unreachable for
/// non-empty panels).
pub fn series_study(
    profile: DataQualityProfile,
    seed: u64,
    jobs: usize,
    duration_secs: f64,
    period_secs: f64,
) -> Result<SeriesStudy, StatsError> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let corruptor = Corruptor::new(profile, seed);
    let sampler = GpuSampler::with_period(period_secs);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5e71_e55a);
    let mut injected = CorruptionCounters::new();
    let mut detected = CorruptionCounters::new();
    let mut repaired = CorruptionCounters::new();
    let mut imputed = 0u64;
    let mut appended = 0u64;
    let mut clean_sum = 0.0;
    let mut rec_sum = 0.0;
    let mut max_delta = 0.0f64;
    for j in 0..jobs {
        let params = TruthParams {
            duration: duration_secs,
            active_fraction: rng.gen_range(0.2..0.9),
            ..Default::default()
        };
        let truth = JobGroundTruth::generate(&mut rng, &params, 1, 0, 0.05);
        let mut series = sampler.sample_series(&truth, duration_secs);
        let expected_len = series.len();
        let clean = phases::phase_stats(&series)?;
        injected.merge(&corruptor.corrupt_series(&mut series, JobId(j as u64)));
        let repair = repair_series(&mut series, expected_len);
        detected.merge(&repair.detected);
        repaired.merge(&repair.repaired);
        imputed += repair.imputed_samples;
        appended += repair.appended_samples;
        let recovered = phases::phase_stats(&series)?;
        clean_sum += clean.active_fraction;
        rec_sum += recovered.active_fraction;
        max_delta = max_delta.max((recovered.active_fraction - clean.active_fraction).abs());
    }
    let n = jobs.max(1) as f64;
    Ok(SeriesStudy {
        jobs,
        injected,
        detected,
        repaired,
        imputed_samples: imputed,
        appended_samples: appended,
        mean_active_clean: clean_sum / n,
        mean_active_recovered: rec_sum / n,
        max_abs_active_delta: max_delta,
    })
}

/// Convenience: corrupt a clean dataset with `profile` and run the
/// hardened ingest, returning the recovered dataset, the ingest
/// report, and the injection ledger.
///
/// # Errors
///
/// Propagates [`ingest()`] errors.
pub fn corrupt_and_ingest(
    clean: &Dataset,
    profile: DataQualityProfile,
    seed: u64,
    obs: &Obs,
) -> Result<(IngestOutput, CorruptionCounters), DataQualityError> {
    let raw = Corruptor::new(profile, seed).corrupt(clean);
    let injected = raw.injected;
    let out = ingest(raw, obs)?;
    Ok((out, injected))
}

// `corruption::missing_sample` is re-exported for tests that build
// degenerate series by hand.
pub use corruption::missing_sample as missing_series_sample;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testsupport::small_sim;
    use sc_obs::{RingSink, TraceLevel};

    fn lossy_ingest() -> (IngestOutput, CorruptionCounters) {
        let clean = &small_sim().dataset;
        corrupt_and_ingest(clean, DataQualityProfile::Lossy, 42, &Obs::off())
            .expect("lossy ingest succeeds")
    }

    #[test]
    fn empty_collection_is_a_typed_error() {
        let raw = RawCollection {
            sched: Vec::new(),
            gpu: Vec::new(),
            injected: CorruptionCounters::new(),
        };
        assert_eq!(ingest(raw, &Obs::off()).unwrap_err(), DataQualityError::EmptyCollection);
    }

    #[test]
    fn ledger_balances_per_class_under_every_profile() {
        let clean = &small_sim().dataset;
        for profile in
            [DataQualityProfile::Supercloud, DataQualityProfile::Lossy, DataQualityProfile::Hostile]
        {
            let (out, injected) =
                corrupt_and_ingest(clean, profile, 7, &Obs::off()).expect("ingest succeeds");
            assert!(
                out.report.balances_against(&injected),
                "{profile}: injected {:?}\ndetected {:?}\nrepaired {:?}\nquarantined {:?}",
                injected,
                out.report.detected,
                out.report.repaired,
                out.report.quarantined
            );
        }
    }

    #[test]
    fn off_profile_is_a_no_op() {
        let clean = &small_sim().dataset;
        let (out, injected) =
            corrupt_and_ingest(clean, DataQualityProfile::Off, 42, &Obs::off()).expect("ingest");
        assert_eq!(injected.total(), 0);
        assert_eq!(out.report.detected.total(), 0);
        assert_eq!(out.report.records_in, out.report.records_out);
        // Same records, canonical order: funnels agree.
        assert_eq!(out.dataset.records().len(), clean.records().len());
        assert_eq!(out.dataset.funnel().gpu_jobs, clean.funnel().gpu_jobs);
    }

    #[test]
    fn recovered_dataset_is_structurally_sound() {
        let (out, _) = lossy_ingest();
        let mut seen = HashSet::new();
        let mut last_submit = f64::NEG_INFINITY;
        for r in out.dataset.records() {
            assert!(seen.insert(r.sched.job_id), "duplicate survived: {}", r.sched.job_id);
            assert!(r.sched.submit_time >= last_submit, "order not canonical");
            last_submit = r.sched.submit_time;
            assert!(r.sched.end_time.is_finite(), "NaN end survived");
            assert!(r.sched.start_time >= r.sched.submit_time - 1e-9, "skew survived");
            if let Some(g) = &r.gpu {
                for a in &g.per_gpu {
                    assert!(a.power_w.mean.is_finite(), "NaN power survived");
                    assert!(a.power_w.max <= V100_TDP_W * 1.05, "spike survived");
                }
            }
        }
    }

    #[test]
    fn missing_epilogs_surface_as_missing_telemetry() {
        let (out, injected) = lossy_ingest();
        assert_eq!(
            out.dataset.funnel().gpu_jobs_missing_telemetry as u64,
            injected.get(FaultClass::MissingEpilog)
        );
    }

    #[test]
    fn obs_events_are_one_to_one_with_ledger() {
        let clean = &small_sim().dataset;
        let sink = RingSink::new(TraceLevel::Events, 1 << 20);
        let obs = Obs::new(&sink);
        let (out, _) =
            corrupt_and_ingest(clean, DataQualityProfile::Lossy, 42, &obs).expect("ingest");
        let records = sink.records();
        let repairs = records.iter().filter(|r| r.name == "dq_repair").count() as u64;
        let quarantines = records.iter().filter(|r| r.name == "dq_quarantine").count() as u64;
        assert_eq!(repairs, out.report.repaired.total());
        assert_eq!(quarantines, out.report.quarantined.total());
    }

    #[test]
    fn provenance_flags_name_the_fault() {
        let (out, _) = lossy_ingest();
        assert!(!out.report.provenance.is_empty());
        for (_, prov) in &out.report.provenance {
            assert!(!prov.is_clean());
            assert!(!prov.to_string().is_empty());
        }
        let mut p = Provenance::default();
        p.set(FaultClass::ClockSkew);
        p.set(FaultClass::NanPower);
        assert_eq!(p.to_string(), "clock-skew+nan-power");
    }

    #[test]
    fn repair_series_round_trips_gaps_and_tails() {
        let n = 600;
        let samples: Vec<sc_telemetry::GpuMetricSample> = (0..n)
            .map(|i| sc_telemetry::GpuMetricSample {
                sm_util: if (i / 50) % 2 == 0 { 60.0 } else { 0.0 },
                power_w: 100.0,
                ..Default::default()
            })
            .collect();
        let mut series = GpuTimeSeries { period_secs: 1.0, per_gpu: vec![samples] };
        let corruptor = Corruptor::new(DataQualityProfile::Lossy, 3);
        let mut run = 0;
        let injected = loop {
            let mut trial = series.clone();
            let injected = corruptor.corrupt_series(&mut trial, JobId(run));
            if injected.total() > 0 {
                series = trial;
                break injected;
            }
            run += 1;
            assert!(run < 64, "injector never fired");
        };
        let repair = repair_series(&mut series, n);
        assert_eq!(repair.detected, injected);
        assert_eq!(repair.repaired, injected);
        assert_eq!(series.len(), n);
        for s in &series.per_gpu[0] {
            assert!(s.is_valid(), "invalid sample after repair");
        }
    }

    #[test]
    fn series_study_ledger_balances_and_recovers() {
        let study =
            series_study(DataQualityProfile::Lossy, 11, 24, 1800.0, 1.0).expect("study succeeds");
        assert_eq!(study.injected, study.detected);
        assert_eq!(study.detected, study.repaired);
        assert!(study.injected.total() > 0, "panel saw no series faults");
        assert!(
            (study.mean_active_recovered - study.mean_active_clean).abs() < 0.05,
            "recovered active fraction drifted: {} vs {}",
            study.mean_active_recovered,
            study.mean_active_clean
        );
    }
}
