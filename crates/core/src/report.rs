//! Paper-vs-measured comparison plumbing shared by all figures.

use serde::{Deserialize, Serialize};

/// One comparison row: a statistic the paper reports vs what this
/// reproduction measured.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Comparison {
    /// Human-readable metric name, e.g. `"median GPU-job run time"`.
    pub metric: String,
    /// The paper's value.
    pub paper: f64,
    /// Our measured value.
    pub measured: f64,
    /// Unit label, e.g. `"min"`, `"%"`, `"W"`.
    pub unit: &'static str,
}

impl Comparison {
    /// Builds a comparison row.
    pub fn new(metric: impl Into<String>, paper: f64, measured: f64, unit: &'static str) -> Self {
        Comparison { metric: metric.into(), paper, measured, unit }
    }

    /// `measured / paper`, or `NaN` when the paper value is zero
    /// (zero-valued claims are checked by absolute closeness instead).
    pub fn ratio(&self) -> f64 {
        if self.paper == 0.0 {
            f64::NAN
        } else {
            self.measured / self.paper
        }
    }

    /// Whether the measured value is within `rel` relative error of the
    /// paper value (absolute tolerance `abs` for zero-valued claims).
    pub fn within(&self, rel: f64, abs: f64) -> bool {
        if self.paper == 0.0 {
            self.measured.abs() <= abs
        } else {
            (self.measured - self.paper).abs() / self.paper.abs() <= rel
        }
    }

    /// One Markdown table row.
    pub fn markdown_row(&self) -> String {
        let ratio = self.ratio();
        let ratio_s = if ratio.is_nan() { "—".to_string() } else { format!("{ratio:.2}×") };
        format!(
            "| {} | {:.3} {} | {:.3} {} | {} |",
            self.metric, self.paper, self.unit, self.measured, self.unit, ratio_s
        )
    }
}

/// Renders a Markdown comparison table with a header.
pub fn markdown_table(title: &str, rows: &[Comparison]) -> String {
    let mut s =
        format!("### {title}\n\n| Metric | Paper | Measured | Ratio |\n|---|---|---|---|\n");
    for r in rows {
        s.push_str(&r.markdown_row());
        s.push('\n');
    }
    s
}

/// Formats an `(x, F(x))` CDF series compactly for text output.
pub fn format_cdf_points(points: &[(f64, f64)], max_points: usize) -> String {
    let step = (points.len() / max_points.max(1)).max(1);
    points
        .iter()
        .step_by(step)
        .map(|(x, f)| format!("({x:.3}, {f:.3})"))
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_and_within() {
        let c = Comparison::new("m", 10.0, 11.0, "min");
        assert!((c.ratio() - 1.1).abs() < 1e-12);
        assert!(c.within(0.15, 0.0));
        assert!(!c.within(0.05, 0.0));
    }

    #[test]
    fn zero_paper_value_uses_absolute_tolerance() {
        let c = Comparison::new("mem bottleneck", 0.0, 0.004, "%");
        assert!(c.ratio().is_nan());
        assert!(c.within(0.1, 0.01));
        assert!(!c.within(0.1, 0.001));
    }

    #[test]
    fn markdown_rendering() {
        let rows = vec![Comparison::new("a", 1.0, 2.0, "s"), Comparison::new("b", 0.0, 0.0, "%")];
        let md = markdown_table("Fig. X", &rows);
        assert!(md.contains("### Fig. X"));
        assert!(md.contains("| a | 1.000 s | 2.000 s | 2.00× |"));
        assert!(md.contains("| b |"));
    }

    #[test]
    fn cdf_formatting_subsamples() {
        let pts: Vec<(f64, f64)> = (0..100).map(|i| (i as f64, i as f64 / 100.0)).collect();
        let s = format_cdf_points(&pts, 10);
        assert!(s.matches('(').count() <= 11);
    }
}
