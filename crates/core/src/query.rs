//! Query-addressable figure and statistic computation.
//!
//! The batch pipeline ([`crate::pipeline::AnalysisReport`]) computes
//! *everything* in one pass. A serving system needs the opposite
//! granularity: one figure, or one scalar, on demand, addressed by a
//! stable token that can live in a cache key. This module provides the
//! address space:
//!
//! - [`FigureId`] — every figure of the report, each renderable on its
//!   own from a [`SimOutput`].
//! - [`PointStat`] — headline scalar statistics (medians, utilization
//!   means, totals), cheap enough to flood-query.
//! - [`QueryKey`] — the `(scenario, seed, query)` triple that uniquely
//!   identifies a memoizable response.
//!
//! Tokens (`fig3` … `fig17`, `goodput`, `median_run_min`, …) round-trip
//! through [`FigureId::parse`] / [`PointStat::parse`], so a query trace
//! is replayable from its textual form.

use crate::figures::*;
use crate::pipeline::PipelineError;
use crate::userstats::user_stats;
use crate::view::gpu_views;
use sc_cluster::SimOutput;
use sc_stats::{mean, percentile};

/// Every figure of the report, addressable one at a time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)] // Variants mirror the figure structs they address.
pub enum FigureId {
    Fig3,
    Fig4,
    Fig5,
    Fig6,
    Fig7,
    Fig8,
    Fig9,
    Fig10,
    Fig11,
    Fig12,
    Fig13,
    Fig14,
    Fig15,
    Fig16,
    Fig17,
    /// Goodput and failure attribution (reliability extension).
    Goodput,
    /// Cluster state over the run (observability extension).
    Timeline,
    /// Streaming-vs-batch telemetry cross-validation.
    Streaming,
}

impl FigureId {
    /// Every figure, in report order.
    pub const ALL: [FigureId; 18] = [
        FigureId::Fig3,
        FigureId::Fig4,
        FigureId::Fig5,
        FigureId::Fig6,
        FigureId::Fig7,
        FigureId::Fig8,
        FigureId::Fig9,
        FigureId::Fig10,
        FigureId::Fig11,
        FigureId::Fig12,
        FigureId::Fig13,
        FigureId::Fig14,
        FigureId::Fig15,
        FigureId::Fig16,
        FigureId::Fig17,
        FigureId::Goodput,
        FigureId::Timeline,
        FigureId::Streaming,
    ];

    /// The stable token naming this figure (`fig3` … `fig17`,
    /// `goodput`, `timeline`, `streaming`).
    pub fn name(&self) -> &'static str {
        match self {
            FigureId::Fig3 => "fig3",
            FigureId::Fig4 => "fig4",
            FigureId::Fig5 => "fig5",
            FigureId::Fig6 => "fig6",
            FigureId::Fig7 => "fig7",
            FigureId::Fig8 => "fig8",
            FigureId::Fig9 => "fig9",
            FigureId::Fig10 => "fig10",
            FigureId::Fig11 => "fig11",
            FigureId::Fig12 => "fig12",
            FigureId::Fig13 => "fig13",
            FigureId::Fig14 => "fig14",
            FigureId::Fig15 => "fig15",
            FigureId::Fig16 => "fig16",
            FigureId::Fig17 => "fig17",
            FigureId::Goodput => "goodput",
            FigureId::Timeline => "timeline",
            FigureId::Streaming => "streaming",
        }
    }

    /// Parses a [`FigureId::name`] token.
    pub fn parse(s: &str) -> Option<FigureId> {
        FigureId::ALL.iter().copied().find(|id| id.name() == s)
    }

    /// Computes and renders this figure from a simulation output.
    ///
    /// Per-figure inputs (job views, user statistics) are derived on
    /// demand — the serving layer memoizes whole responses, so repeated
    /// requests never recompute them.
    ///
    /// # Errors
    ///
    /// Returns a [`PipelineError`] tagged with this figure's stage name
    /// when the output lacks the population the figure needs.
    pub fn render_from_sim(&self, out: &SimOutput) -> Result<String, PipelineError> {
        let stage = self.name();
        let err = |source| PipelineError { stage, source };
        // Views and (where needed) user stats are recomputed per call;
        // both are cheap relative to a figure over them, and response
        // memoization amortizes everything above this line anyway.
        let views = gpu_views(&out.dataset);
        let rendered = match self {
            FigureId::Fig3 => Fig3::try_compute(&out.dataset).map_err(err)?.render(),
            FigureId::Fig4 => Fig4::try_compute(&views).map_err(err)?.render(),
            FigureId::Fig5 => Fig5::try_compute(&views).map_err(err)?.render(),
            FigureId::Fig6 => Fig6::try_compute(&out.detailed).map_err(err)?.render(),
            FigureId::Fig7 => Fig7::try_compute(&out.detailed, &views).map_err(err)?.render(),
            FigureId::Fig8 => Fig8::try_compute(&views).map_err(err)?.render(),
            FigureId::Fig9 => Fig9::try_compute(&views).map_err(err)?.render(),
            FigureId::Fig10 => Fig10::try_compute(&user_stats(&views)).map_err(err)?.render(),
            FigureId::Fig11 => Fig11::try_compute(&user_stats(&views)).map_err(err)?.render(),
            FigureId::Fig12 => Fig12::try_compute(&user_stats(&views)).map_err(err)?.render(),
            FigureId::Fig13 => {
                Fig13::try_compute(&views, &user_stats(&views)).map_err(err)?.render()
            }
            FigureId::Fig14 => Fig14::try_compute(&views).map_err(err)?.render(),
            FigureId::Fig15 => Fig15::try_compute(&views).map_err(err)?.render(),
            FigureId::Fig16 => Fig16::try_compute(&views).map_err(err)?.render(),
            FigureId::Fig17 => Fig17::try_compute(&user_stats(&views)).map_err(err)?.render(),
            FigureId::Goodput => GoodputFig::try_compute(out).map_err(err)?.render(),
            FigureId::Timeline => ClusterTimelineFig::try_compute(out).map_err(err)?.render(),
            FigureId::Streaming => StreamingTelemetryFig::try_compute(out).map_err(err)?.render(),
        };
        Ok(rendered)
    }
}

/// A headline scalar statistic, cheap enough to serve under a
/// point-query flood.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PointStat {
    /// Analyzed GPU jobs (post-filter).
    JobsAnalyzed,
    /// Unique users in the dataset.
    UniqueUsers,
    /// Median job run time, minutes.
    MedianRunMin,
    /// 95th-percentile job run time, minutes.
    P95RunMin,
    /// Median queue wait, seconds.
    MedianQueueWaitSec,
    /// Mean of job-mean SM utilization, %.
    MeanSmUtil,
    /// Median of job-mean SM utilization, %.
    MedianSmUtil,
    /// Mean of job-mean memory-bandwidth utilization, %.
    MeanMemUtil,
    /// Median of job-mean board power, W.
    MedianPowerW,
    /// 95th percentile of job-mean board power, W.
    P95PowerW,
    /// Total GPU-hours across analyzed jobs.
    TotalGpuHours,
    /// Largest GPU count any single job used.
    MaxJobGpus,
}

impl PointStat {
    /// Every point statistic, in token order.
    pub const ALL: [PointStat; 12] = [
        PointStat::JobsAnalyzed,
        PointStat::UniqueUsers,
        PointStat::MedianRunMin,
        PointStat::P95RunMin,
        PointStat::MedianQueueWaitSec,
        PointStat::MeanSmUtil,
        PointStat::MedianSmUtil,
        PointStat::MeanMemUtil,
        PointStat::MedianPowerW,
        PointStat::P95PowerW,
        PointStat::TotalGpuHours,
        PointStat::MaxJobGpus,
    ];

    /// The stable token naming this statistic.
    pub fn name(&self) -> &'static str {
        match self {
            PointStat::JobsAnalyzed => "jobs_analyzed",
            PointStat::UniqueUsers => "unique_users",
            PointStat::MedianRunMin => "median_run_min",
            PointStat::P95RunMin => "p95_run_min",
            PointStat::MedianQueueWaitSec => "median_queue_wait_sec",
            PointStat::MeanSmUtil => "mean_sm_util",
            PointStat::MedianSmUtil => "median_sm_util",
            PointStat::MeanMemUtil => "mean_mem_util",
            PointStat::MedianPowerW => "median_power_w",
            PointStat::P95PowerW => "p95_power_w",
            PointStat::TotalGpuHours => "total_gpu_hours",
            PointStat::MaxJobGpus => "max_job_gpus",
        }
    }

    /// Parses a [`PointStat::name`] token.
    pub fn parse(s: &str) -> Option<PointStat> {
        PointStat::ALL.iter().copied().find(|p| p.name() == s)
    }

    /// Computes this statistic from a simulation output.
    ///
    /// # Errors
    ///
    /// Returns a [`PipelineError`] (stage = the stat token) when the
    /// output has no analyzed GPU jobs.
    pub fn compute(&self, out: &SimOutput) -> Result<f64, PipelineError> {
        let stage = self.name();
        let err = |source| PipelineError { stage, source };
        let views = gpu_views(&out.dataset);
        let series: Vec<f64> = match self {
            PointStat::JobsAnalyzed => return Ok(views.len() as f64),
            PointStat::UniqueUsers => {
                return Ok(out.dataset.funnel().unique_users as f64);
            }
            PointStat::MaxJobGpus => {
                return Ok(views.iter().map(|v| v.sched.gpus_requested).max().unwrap_or(0) as f64);
            }
            PointStat::TotalGpuHours => {
                return Ok(views.iter().map(|v| v.gpu_hours()).sum());
            }
            PointStat::MedianRunMin | PointStat::P95RunMin => {
                views.iter().map(|v| v.run_minutes()).collect()
            }
            PointStat::MedianQueueWaitSec => views.iter().map(|v| v.sched.queue_wait()).collect(),
            PointStat::MeanSmUtil | PointStat::MedianSmUtil => {
                views.iter().map(|v| v.agg.sm_util.mean).collect()
            }
            PointStat::MeanMemUtil => views.iter().map(|v| v.agg.mem_util.mean).collect(),
            PointStat::MedianPowerW | PointStat::P95PowerW => {
                views.iter().map(|v| v.agg.power_w.mean).collect()
            }
        };
        match self {
            PointStat::MeanSmUtil | PointStat::MeanMemUtil => mean(&series).map_err(err),
            PointStat::P95RunMin | PointStat::P95PowerW => percentile(&series, 95.0).map_err(err),
            _ => percentile(&series, 50.0).map_err(err),
        }
    }
}

/// The identity of one memoizable response: which simulated world
/// (`scenario`, `seed`) and which question (`query` token).
///
/// The serving layer keys its cache on this triple, so two services
/// over different scenarios or seeds can share one cache without
/// cross-talk, and a persisted query trace names its world explicitly.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryKey {
    /// Scenario descriptor (workload preset + scale, e.g.
    /// `supercloud:s0.02`).
    pub scenario: String,
    /// Master RNG seed the world was generated from.
    pub seed: u64,
    /// Canonical query token (`fig:fig3`, `point:median_run_min`,
    /// `ab:powercap:150`, `dq:lossy`).
    pub query: String,
}

impl std::fmt::Display for QueryKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}#{}/{}", self.scenario, self.seed, self.query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testsupport::small_sim;

    #[test]
    fn figure_tokens_round_trip() {
        for id in FigureId::ALL {
            assert_eq!(FigureId::parse(id.name()), Some(id));
        }
        assert_eq!(FigureId::parse("fig99"), None);
    }

    #[test]
    fn point_tokens_round_trip() {
        for p in PointStat::ALL {
            assert_eq!(PointStat::parse(p.name()), Some(p));
        }
        assert_eq!(PointStat::parse("nope"), None);
    }

    #[test]
    fn every_figure_renders_standalone() {
        let out = small_sim();
        for id in FigureId::ALL {
            let text = id.render_from_sim(out).unwrap_or_else(|e| panic!("{}: {e}", id.name()));
            assert!(!text.is_empty(), "{} rendered empty", id.name());
        }
    }

    #[test]
    fn standalone_renders_match_the_batch_pipeline() {
        let out = small_sim();
        let report = crate::AnalysisReport::from_sim(out);
        assert_eq!(FigureId::Fig3.render_from_sim(out).expect("fig3"), report.fig3.render());
        assert_eq!(FigureId::Fig17.render_from_sim(out).expect("fig17"), report.fig17.render());
        assert_eq!(
            FigureId::Goodput.render_from_sim(out).expect("goodput"),
            report.goodput.render()
        );
    }

    #[test]
    fn point_stats_compute_and_are_finite() {
        let out = small_sim();
        for p in PointStat::ALL {
            let v = p.compute(out).unwrap_or_else(|e| panic!("{}: {e}", p.name()));
            assert!(v.is_finite(), "{} not finite", p.name());
            assert!(v >= 0.0, "{} negative", p.name());
        }
        let jobs = PointStat::JobsAnalyzed.compute(out).expect("jobs");
        assert_eq!(jobs, gpu_views(&out.dataset).len() as f64);
    }

    #[test]
    fn query_key_displays_canonically() {
        let key = QueryKey {
            scenario: "supercloud:s0.02".to_string(),
            seed: 42,
            query: "fig:fig3".to_string(),
        };
        assert_eq!(key.to_string(), "supercloud:s0.02#42/fig:fig3");
    }
}
